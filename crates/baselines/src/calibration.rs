//! Calibrated model constants for the baseline systems.
//!
//! The paper reports end-to-end ratios against TrieJax (its §4.3/§4.4
//! headline numbers); these constants are chosen once so that the
//! *reproduced* ratios land in the same bands on the synthetic Table-2
//! datasets, and are then left alone. They are deliberately favourable to
//! the baselines where the paper was (§4.1).
//!
//! Paper targets:
//!
//! | baseline      | speedup (avg, range)   | energy ratio (avg) |
//! |---------------|------------------------|--------------------|
//! | CTJ           | 20x   (5.5 - 45x)      | 110x               |
//! | EmptyHeaded   | 9x    (2.5 - 44x)      | 59x                |
//! | Graphicionado | 7x    (0.8 - 32x)      | 15x                |
//! | Q100          | 63x   (0.9 - 539x)     | 179x               |

/// Xeon E5-2630 v3 clock (paper Table 3).
pub const CPU_FREQ_GHZ: f64 = 2.4;

/// Software cost of one engine control operation (leapfrog step, trie
/// expansion, hash probe): instruction overhead, branches, pointer chasing.
pub const SW_CYCLES_PER_OP: f64 = 16.0;

/// Software cost of one counted index-word read (cache-hierarchy average:
/// mostly L1/L2 hits, occasional DRAM on the irregular trie walks).
pub const SW_CYCLES_PER_INDEX_READ: f64 = 7.0;

/// Software cost of one intermediate-data word touched (cache/result
/// buffers, better locality than index walks).
pub const SW_CYCLES_PER_INTERMEDIATE: f64 = 2.5;

/// Software cost of emitting one result tuple.
pub const SW_CYCLES_PER_RESULT: f64 = 10.0;

/// EmptyHeaded parallel efficiency. EmptyHeaded partitions work statically
/// on the first join attribute (paper Figure 8 discussion), which on the
/// skewed pattern workloads leaves most cores idle behind the hub-heavy
/// partitions; the paper's own relative results (TrieJax 20x over
/// single-thread CTJ but only 9x over 16-core EmptyHeaded) imply an
/// effective parallel gain of ~2x, which SIMD then roughly doubles.
pub const EH_PARALLEL_FACTOR: f64 = 1.9;

/// EmptyHeaded SIMD speedup on intersection probe reads (net of
/// gather/permute overheads on the irregular trie data).
pub const EH_SIMD_FACTOR: f64 = 2.0;

/// Net (idle-deducted) package+DRAM power of single-threaded CTJ, watts.
/// The paper deducts idle power measured on the same machine (§4.1), so
/// these are increments over idle, not absolute TDP.
pub const CTJ_NET_POWER_W: f64 = 2.6;

/// Net power of EmptyHeaded: 16 active cores with SIMD units lit up.
pub const EH_NET_POWER_W: f64 = 3.4;

/// Q100 streaming bandwidth, bytes per second: the accelerator is fed at
/// DDR3 speed and the paper grants it perfect operator pipelining.
pub const Q100_BYTES_PER_S: f64 = 22.0e9;

/// Q100 intermediate-tuple throughput. Q100 composes sort / merge-join /
/// partition operators; a *single* binary join streams at full bandwidth
/// (which is why Q100 stays comparable on Path3), but every materialized
/// intermediate relation must be re-sorted and re-partitioned before the
/// next operator — several passes per intermediate tuple.
pub const Q100_TUPLES_PER_S: f64 = 0.05e9;

/// Q100 net power (accelerator tile plus its DRAM activity).
pub const Q100_NET_POWER_W: f64 = 1.35;

/// Graphicionado message throughput: 8 processing streams at 1 GHz.
/// A pattern-matching message carries a multi-word partial match through
/// the crossbar, a scratchpad lookup and an output queue — several
/// stream-cycles per message rather than the one cycle of scalar vertex
/// programs — but no bandwidth ceiling is applied, per the paper's
/// favourable assumption (§4.3).
pub const GRAPHICIONADO_MSGS_PER_S: f64 = 1.25e9;

/// Graphicionado net power (eDRAM scratchpad plus streams plus DRAM).
pub const GRAPHICIONADO_NET_POWER_W: f64 = 1.0;

/// DRAM energy per byte moved, for the baseline accelerators' explicit
/// traffic (DDR3-class, ~60 pJ/bit I/O + array).
pub const DRAM_PJ_PER_BYTE: f64 = 60.0;

/// Fraction of CTJ's index-word reads that miss the Xeon's caches and
/// reach DRAM. CTJ's bounded working set (the WCOJ property plus the
/// partial-join-result cache) keeps most trie walks resident — the basis
/// of the paper's Figure 17.
pub const CTJ_INDEX_MISS_RATE: f64 = 0.08;

/// EmptyHeaded's miss fraction: its per-level candidate materialization
/// and wider scans thrash more (2.8x more main-memory accesses than CTJ
/// in paper Figure 17).
pub const EH_INDEX_MISS_RATE: f64 = 0.30;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn power_ratios_match_paper_bands() {
        // TrieJax effective power is ~0.45 W (DRAM background dominated,
        // Figure 15); the paper's speedup/energy pairs imply baseline net
        // powers within roughly these bands.
        let triejax_w = 0.45;
        assert!(CTJ_NET_POWER_W / triejax_w > 4.0 && CTJ_NET_POWER_W / triejax_w < 8.0);
        assert!(EH_NET_POWER_W / triejax_w > 5.0 && EH_NET_POWER_W / triejax_w < 9.0);
        assert!(Q100_NET_POWER_W / triejax_w > 2.0 && Q100_NET_POWER_W / triejax_w < 4.5);
        assert!(
            GRAPHICIONADO_NET_POWER_W / triejax_w > 1.2
                && GRAPHICIONADO_NET_POWER_W / triejax_w < 3.5
        );
    }
}
