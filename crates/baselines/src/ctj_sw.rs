use triejax_join::{Catalog, CountSink, Ctj, EngineStats, JoinEngine, JoinError};

use triejax_query::CompiledQuery;

use crate::calibration::{
    CPU_FREQ_GHZ, CTJ_INDEX_MISS_RATE, CTJ_NET_POWER_W, SW_CYCLES_PER_INDEX_READ,
    SW_CYCLES_PER_INTERMEDIATE, SW_CYCLES_PER_OP, SW_CYCLES_PER_RESULT,
};
use crate::{BaselineReport, BaselineSystem};

/// Single-threaded Cached TrieJoin on the Table-3 Xeon — the software
/// system TrieJax implements in hardware (Kalinsky et al., EDBT'17).
///
/// The real CTJ algorithm runs (via [`triejax_join::Ctj`]); its operation
/// and memory counters are costed with the software constants of
/// [`crate::calibration`]. Energy is net power integrated over the modeled
/// runtime, matching the paper's idle-deducted RAPL methodology (§4.1).
#[derive(Debug, Clone, Copy, Default)]
pub struct CtjSoftware {
    _private: (),
}

impl CtjSoftware {
    /// Creates the model; identical to `Default::default()`.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Converts engine counters into single-thread CPU seconds.
pub(crate) fn software_time_s(stats: &EngineStats) -> f64 {
    let cycles = stats.total_ops() as f64 * SW_CYCLES_PER_OP
        + stats.access.index_reads as f64 * SW_CYCLES_PER_INDEX_READ
        + stats.access.intermediate_accesses as f64 * SW_CYCLES_PER_INTERMEDIATE
        + stats.results as f64 * SW_CYCLES_PER_RESULT;
    cycles / (CPU_FREQ_GHZ * 1e9)
}

/// Main-memory (64-byte) accesses of a cache-friendly WCOJ engine: index
/// reads miss at `miss_rate`; intermediate and result traffic is streamed
/// through (the Figure 17 metric).
pub(crate) fn main_memory_accesses(stats: &EngineStats, miss_rate: f64) -> u64 {
    let bytes = stats.access.index_bytes as f64 * miss_rate
        + stats.access.intermediate_bytes as f64
        + stats.access.result_bytes as f64;
    (bytes / 64.0).ceil() as u64
}

impl BaselineSystem for CtjSoftware {
    fn name(&self) -> &'static str {
        "ctj"
    }

    fn evaluate(
        &mut self,
        plan: &CompiledQuery,
        catalog: &Catalog,
    ) -> Result<BaselineReport, JoinError> {
        let mut sink = CountSink::default();
        let stats = Ctj::new().execute(plan, catalog, &mut sink)?;
        let time_s = software_time_s(&stats);
        Ok(BaselineReport {
            system: self.name(),
            time_s,
            energy_j: CTJ_NET_POWER_W * time_s,
            results: stats.results,
            intermediates: stats.intermediates,
            memory_accesses: main_memory_accesses(&stats, CTJ_INDEX_MISS_RATE),
            bytes_moved: stats.bytes_moved(),
            stats,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use triejax_query::patterns;
    use triejax_relation::Relation;

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.insert(
            "G",
            Relation::from_pairs(vec![(0, 1), (1, 2), (2, 0), (2, 3), (3, 1), (1, 3)]),
        );
        c
    }

    #[test]
    fn produces_time_energy_and_counts() {
        let plan = CompiledQuery::compile(&patterns::cycle3()).unwrap();
        let r = CtjSoftware::new().evaluate(&plan, &catalog()).unwrap();
        assert!(r.time_s > 0.0);
        assert!(r.energy_j > 0.0);
        assert!(r.results > 0);
        assert!((r.energy_j / r.time_s - CTJ_NET_POWER_W).abs() < 1e-9);
    }

    #[test]
    fn more_work_means_more_time() {
        let p3 = CompiledQuery::compile(&patterns::path3()).unwrap();
        let c4 = CompiledQuery::compile(&patterns::clique4()).unwrap();
        let c = catalog();
        let small = CtjSoftware::new().evaluate(&p3, &c).unwrap();
        let big = CtjSoftware::new().evaluate(&c4, &c).unwrap();
        assert!(big.time_s > small.time_s);
    }
}
