use triejax_join::{Catalog, CountSink, GenericJoin, JoinEngine, JoinError};
use triejax_query::CompiledQuery;

use crate::calibration::{
    CPU_FREQ_GHZ, EH_INDEX_MISS_RATE, EH_NET_POWER_W, EH_PARALLEL_FACTOR, EH_SIMD_FACTOR,
    SW_CYCLES_PER_INDEX_READ, SW_CYCLES_PER_INTERMEDIATE, SW_CYCLES_PER_OP, SW_CYCLES_PER_RESULT,
};
use crate::ctj_sw::main_memory_accesses;
use crate::{BaselineReport, BaselineSystem};

/// EmptyHeaded (Aberger et al., SIGMOD'16): Generic Join with SIMD set
/// intersections, parallelized across the Xeon's 16 cores.
///
/// The real Generic Join runs (via [`triejax_join::GenericJoin`]); probe
/// reads are discounted by the SIMD factor and the total by the parallel
/// efficiency, per [`crate::calibration`]. EmptyHeaded lands ~2x faster
/// than single-threaded CTJ, as in the paper's relative results.
#[derive(Debug, Clone, Copy, Default)]
pub struct EmptyHeaded {
    _private: (),
}

impl EmptyHeaded {
    /// Creates the model; identical to `Default::default()`.
    pub fn new() -> Self {
        Self::default()
    }
}

impl BaselineSystem for EmptyHeaded {
    fn name(&self) -> &'static str {
        "emptyheaded"
    }

    fn evaluate(
        &mut self,
        plan: &CompiledQuery,
        catalog: &Catalog,
    ) -> Result<BaselineReport, JoinError> {
        let mut sink = CountSink::default();
        let stats = GenericJoin::new().execute(plan, catalog, &mut sink)?;
        let serial_cycles = stats.total_ops() as f64 * SW_CYCLES_PER_OP
            + stats.access.index_reads as f64 * SW_CYCLES_PER_INDEX_READ / EH_SIMD_FACTOR
            + stats.access.intermediate_accesses as f64 * SW_CYCLES_PER_INTERMEDIATE
            + stats.results as f64 * SW_CYCLES_PER_RESULT;
        let time_s = serial_cycles / EH_PARALLEL_FACTOR / (CPU_FREQ_GHZ * 1e9);
        Ok(BaselineReport {
            system: self.name(),
            time_s,
            energy_j: EH_NET_POWER_W * time_s,
            results: stats.results,
            intermediates: stats.intermediates,
            memory_accesses: main_memory_accesses(&stats, EH_INDEX_MISS_RATE),
            bytes_moved: stats.bytes_moved(),
            stats,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CtjSoftware;
    use triejax_query::patterns;
    use triejax_relation::Relation;

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        let mut edges = Vec::new();
        for i in 0..40u32 {
            edges.push((i, (i + 1) % 40));
            edges.push((i, (i + 5) % 40));
            edges.push((i, (i + 11) % 40));
        }
        c.insert("G", Relation::from_pairs(edges));
        c
    }

    #[test]
    fn agrees_on_results_with_ctj_model() {
        let plan = CompiledQuery::compile(&patterns::cycle4()).unwrap();
        let c = catalog();
        let eh = EmptyHeaded::new().evaluate(&plan, &c).unwrap();
        let ctj = CtjSoftware::new().evaluate(&plan, &c).unwrap();
        assert_eq!(eh.results, ctj.results);
    }

    #[test]
    fn parallel_simd_engine_is_faster_than_single_thread_ctj() {
        let plan = CompiledQuery::compile(&patterns::path4()).unwrap();
        let c = catalog();
        let eh = EmptyHeaded::new().evaluate(&plan, &c).unwrap();
        let ctj = CtjSoftware::new().evaluate(&plan, &c).unwrap();
        assert!(
            eh.time_s < ctj.time_s,
            "eh {} should beat ctj {}",
            eh.time_s,
            ctj.time_s
        );
    }
}
