use triejax_join::{Catalog, CountSink, JoinEngine, JoinError, PairwiseHash};
use triejax_query::CompiledQuery;
use triejax_relation::Relation;

use crate::calibration::{DRAM_PJ_PER_BYTE, GRAPHICIONADO_MSGS_PER_S, GRAPHICIONADO_NET_POWER_W};
use crate::{BaselineReport, BaselineSystem};

/// Graphicionado (Ham et al., MICRO'16): a vertex-programming graph
/// accelerator with eight processing streams and a large eDRAM scratchpad.
///
/// Pattern matching on a vertex-programming model proceeds by *expansion*:
/// every partial match is a message travelling along edges, and — unlike a
/// join engine — the model cannot constrain a traversal by a variable
/// bound elsewhere until the message arrives. Each traversal atom
/// therefore costs one message per **unfiltered walk** extension, computed
/// here by an exact walk-count dynamic program over the edge relation;
/// atoms over already-bound variables are destination-local checks and
/// cost nothing (favourable). Message throughput is charged with the
/// paper's favourable assumption of unlimited memory bandwidth (§4.3).
///
/// This reproduces both paper crossovers: Graphicionado edges out TrieJax
/// on the result-dominated Path4 wiki/facebook cells (its pipeline streams
/// walks at full rate) and falls far behind on cyclic queries, where the
/// unfiltered expansion is the intermediate-result explosion the WCOJ
/// bound avoids (§2.1, Appendix A).
#[derive(Debug, Clone, Copy, Default)]
pub struct Graphicionado {
    _private: (),
}

impl Graphicionado {
    /// Creates the model; identical to `Default::default()`.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Exact message count of the vertex-programming expansion: every atom
/// that traverses — to a new variable, or the first closing edge of a
/// cycle — costs one message per unfiltered walk extension. Subsequent
/// all-bound atoms verify already-filtered candidates and are charged
/// nothing (favourable to Graphicionado, per the paper's methodology).
pub(crate) fn expansion_messages(plan: &CompiledQuery, edges: &Relation) -> f64 {
    // Out-degree table and frontier walk counts.
    let n = edges
        .iter()
        .flat_map(|t| [t[0], t[1]])
        .max()
        .map_or(0, |m| m as usize + 1);
    let mut outdeg = vec![0f64; n];
    for t in edges.iter() {
        outdeg[t[0] as usize] += 1.0;
    }

    let query = plan.query();
    let mut bound = vec![false; query.num_vars()];
    // Walks currently ending at each vertex (the message frontier).
    let mut frontier = vec![1.0f64; n];
    let mut messages = 0.0;
    let mut closed = false;
    for atom in query.atoms() {
        let all_bound = atom.vars().iter().all(|&v| bound[v]);
        if all_bound {
            if closed {
                // Candidates are filtered by now: destination-local check,
                // no traversal charged (favourable).
                continue;
            }
            // The closing edge of a cycle still traverses: the vertex
            // program cannot test edge existence without sending the
            // partial match along every out-edge and filtering on arrival.
            closed = true;
        }
        // One message per frontier walk per out-edge.
        messages += frontier
            .iter()
            .zip(&outdeg)
            .map(|(f, d)| f * d)
            .sum::<f64>();
        // Advance the frontier: walks now end at each vertex's successors.
        let mut next = vec![0.0f64; n];
        for t in edges.iter() {
            next[t[1] as usize] += frontier[t[0] as usize];
        }
        frontier = next;
        for &v in atom.vars() {
            bound[v] = true;
        }
    }
    messages
}

impl BaselineSystem for Graphicionado {
    fn name(&self) -> &'static str {
        "graphicionado"
    }

    fn evaluate(
        &mut self,
        plan: &CompiledQuery,
        catalog: &Catalog,
    ) -> Result<BaselineReport, JoinError> {
        // Ground-truth results and byte traffic via the pairwise engine.
        let mut sink = CountSink::default();
        let stats = PairwiseHash::new().execute(plan, catalog, &mut sink)?;

        let first_rel = plan
            .atom_plans()
            .first()
            .expect("non-empty query")
            .relation();
        let edges = catalog
            .get(first_rel)
            .ok_or_else(|| JoinError::MissingRelation {
                name: first_rel.to_owned(),
            })?;
        let messages = expansion_messages(plan, edges);

        let time_s = messages / GRAPHICIONADO_MSGS_PER_S;
        // Messages beyond the on-chip scratchpad spill: charge half their
        // bytes to DRAM (favourable; 8-byte messages).
        let msg_bytes = messages * 8.0 / 2.0;
        let energy_j = GRAPHICIONADO_NET_POWER_W * time_s + msg_bytes * DRAM_PJ_PER_BYTE * 1e-12;
        Ok(BaselineReport {
            system: self.name(),
            time_s,
            energy_j,
            results: stats.results,
            intermediates: messages.min(u64::MAX as f64) as u64,
            // Spilled message bytes reach DRAM: one access per line.
            memory_accesses: (msg_bytes / 64.0).ceil() as u64,
            bytes_moved: (msg_bytes as u64).max(stats.bytes_moved()),
            stats,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Q100;
    use triejax_query::patterns;

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        let mut edges = Vec::new();
        for i in 0..30u32 {
            edges.push((i, (i + 1) % 30));
            edges.push((i, (i + 4) % 30));
            edges.push((i, (i + 9) % 30));
        }
        c.insert("G", Relation::from_pairs(edges));
        c
    }

    #[test]
    fn walk_dp_counts_exactly_on_a_cycle_graph() {
        // A directed 3-cycle: walks of any length k number exactly 3.
        let mut c = Catalog::new();
        c.insert("G", Relation::from_pairs(vec![(0, 1), (1, 2), (2, 0)]));
        let plan = CompiledQuery::compile(&patterns::path3()).unwrap();
        let edges = c.get("G").unwrap();
        // path3 = two traversal atoms: 3 + 3 messages.
        assert_eq!(expansion_messages(&plan, edges), 6.0);
    }

    #[test]
    fn post_closing_check_atoms_are_free() {
        let mut c = Catalog::new();
        c.insert("G", Relation::from_pairs(vec![(0, 1), (1, 2), (2, 0)]));
        let edges = c.get("G").unwrap();
        // clique4 = 4 traversals (R, S, T and the closing U) plus two free
        // checks (V, W): same message count as cycle4's 4 traversals.
        let clique = CompiledQuery::compile(&patterns::clique4()).unwrap();
        let cycle = CompiledQuery::compile(&patterns::cycle4()).unwrap();
        assert_eq!(
            expansion_messages(&clique, edges),
            expansion_messages(&cycle, edges)
        );
        // And cycle3 charges its closing atom: 3 traversals on the
        // 3-cycle graph = 9 messages.
        let c3 = CompiledQuery::compile(&patterns::cycle3()).unwrap();
        assert_eq!(expansion_messages(&c3, edges), 9.0);
    }

    #[test]
    fn beats_q100_on_complex_queries() {
        // The paper: "Q100 is also outperformed by Graphicionado ... for
        // large queries such as Cycle4 and Clique4".
        let c = catalog();
        for q in [patterns::cycle4(), patterns::clique4()] {
            let plan = CompiledQuery::compile(&q).unwrap();
            let g = Graphicionado::new().evaluate(&plan, &c).unwrap();
            let q100 = Q100::new().evaluate(&plan, &c).unwrap();
            assert!(g.time_s < q100.time_s, "{}", q.name());
            assert_eq!(g.results, q100.results);
        }
    }

    #[test]
    fn cyclic_queries_cost_far_more_than_their_results() {
        let c = catalog();
        let plan = CompiledQuery::compile(&patterns::cycle4()).unwrap();
        let r = Graphicionado::new().evaluate(&plan, &c).unwrap();
        assert!(r.intermediates > 10 * r.results.max(1));
    }
}
