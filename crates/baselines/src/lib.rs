//! Performance and energy models of the paper's four comparison systems
//! (§4.1 "Baselines"):
//!
//! * [`CtjSoftware`] — Cached TrieJoin on a Xeon (EDBT'17), single thread.
//! * [`EmptyHeaded`] — Generic Join with SIMD intersections on 16 cores
//!   (SIGMOD'16).
//! * [`Q100`] — the database processing unit (ASPLOS'14), which executes
//!   pairwise relational operators and streams every intermediate relation
//!   through memory.
//! * [`Graphicionado`] — the vertex-programming graph accelerator
//!   (MICRO'16), whose pattern expansion passes partial matches as
//!   messages.
//!
//! Each model *executes the real algorithm* (via `triejax-join`) to obtain
//! exact operation, intermediate-result and memory-traffic counts, then
//! converts them into time and energy with the calibrated constants in
//! [`calibration`]. This mirrors the paper's own methodology: the authors
//! did not have Q100/Graphicionado RTL either and scaled from the
//! accelerators' published baselines, deliberately favourably (§4.1); our
//! constants grant the same favours (unlimited bandwidth for
//! Graphicionado, perfect pipelining for Q100).
//!
//! # Example
//!
//! ```
//! use triejax_baselines::{BaselineSystem, CtjSoftware, Q100};
//! use triejax_join::Catalog;
//! use triejax_query::{patterns, CompiledQuery};
//! use triejax_relation::Relation;
//!
//! let mut catalog = Catalog::new();
//! catalog.insert("G", Relation::from_pairs(vec![(0, 1), (1, 2), (2, 0)]));
//! let plan = CompiledQuery::compile(&patterns::cycle3())?;
//! let ctj = CtjSoftware::default().evaluate(&plan, &catalog)?;
//! let q100 = Q100::default().evaluate(&plan, &catalog)?;
//! assert_eq!(ctj.results, q100.results); // same answers, different costs
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod calibration;
mod ctj_sw;
mod emptyheaded;
mod graphicionado;
mod q100;
mod report;

pub use ctj_sw::CtjSoftware;
pub use emptyheaded::EmptyHeaded;
pub use graphicionado::Graphicionado;
pub use q100::Q100;
pub use report::{BaselineReport, BaselineSystem};
