use triejax_join::{Catalog, CountSink, JoinEngine, JoinError, PairwiseHash};
use triejax_query::CompiledQuery;

use crate::calibration::{DRAM_PJ_PER_BYTE, Q100_BYTES_PER_S, Q100_NET_POWER_W, Q100_TUPLES_PER_S};
use crate::{BaselineReport, BaselineSystem};

/// Q100 (Wu et al., ASPLOS'14): a database processing unit built from
/// pairwise relational operators (select, sort, merge-join).
///
/// The defining cost of Q100 on multi-way joins is that every binary join
/// *streams* its inputs and materializes its full intermediate relation
/// through memory — the AGM-bound explosion of paper §2.1. The model runs
/// the real left-deep pairwise plan (via [`triejax_join::PairwiseHash`]),
/// counts all bytes moved, and charges them at streaming bandwidth with
/// perfect operator pipelining (favourable, per the paper's methodology).
#[derive(Debug, Clone, Copy, Default)]
pub struct Q100 {
    _private: (),
}

impl Q100 {
    /// Creates the model; identical to `Default::default()`.
    pub fn new() -> Self {
        Self::default()
    }
}

impl BaselineSystem for Q100 {
    fn name(&self) -> &'static str {
        "q100"
    }

    fn evaluate(
        &mut self,
        plan: &CompiledQuery,
        catalog: &Catalog,
    ) -> Result<BaselineReport, JoinError> {
        let mut sink = CountSink::default();
        let stats = PairwiseHash::new().execute(plan, catalog, &mut sink)?;
        let bytes = stats.bytes_moved();
        // Streaming is bandwidth-bound; every materialized intermediate
        // additionally pays the sort/partition passes.
        let time_s =
            bytes as f64 / Q100_BYTES_PER_S + stats.intermediates as f64 / Q100_TUPLES_PER_S;
        let energy_j = Q100_NET_POWER_W * time_s + bytes as f64 * DRAM_PJ_PER_BYTE * 1e-12;
        Ok(BaselineReport {
            system: self.name(),
            time_s,
            energy_j,
            results: stats.results,
            intermediates: stats.intermediates,
            // Q100 streams every byte through DRAM: one access per line.
            memory_accesses: bytes / 64,
            bytes_moved: bytes,
            stats,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use triejax_query::patterns;
    use triejax_relation::Relation;

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        let mut edges = Vec::new();
        for i in 0..30u32 {
            edges.push((i, (i + 1) % 30));
            edges.push((i, (i + 4) % 30));
        }
        c.insert("G", Relation::from_pairs(edges));
        c
    }

    #[test]
    fn time_covers_both_traffic_and_tuple_costs() {
        let plan = CompiledQuery::compile(&patterns::path4()).unwrap();
        let r = Q100::new().evaluate(&plan, &catalog()).unwrap();
        assert!(r.time_s > 0.0);
        assert!(r.time_s >= r.bytes_moved as f64 / Q100_BYTES_PER_S);
        assert!(r.intermediates > 0, "pairwise plans always materialize");
    }

    #[test]
    fn complex_queries_move_far_more_bytes() {
        let c = catalog();
        let p3 = Q100::new()
            .evaluate(&CompiledQuery::compile(&patterns::path3()).unwrap(), &c)
            .unwrap();
        let c4 = Q100::new()
            .evaluate(&CompiledQuery::compile(&patterns::clique4()).unwrap(), &c)
            .unwrap();
        assert!(c4.bytes_moved > 2 * p3.bytes_moved);
    }
}
