use triejax_join::{Catalog, EngineStats, JoinError};
use triejax_query::CompiledQuery;

/// The outcome of evaluating one baseline system on one (query, dataset).
#[derive(Debug, Clone, PartialEq)]
pub struct BaselineReport {
    /// System name (e.g. `"ctj"`).
    pub system: &'static str,
    /// Modeled wall-clock seconds.
    pub time_s: f64,
    /// Modeled energy in joules (net of idle, as measured in the paper).
    pub energy_j: f64,
    /// Result tuples produced.
    pub results: u64,
    /// Intermediate results materialized (Figure 18 metric).
    pub intermediates: u64,
    /// Simulated memory accesses (Figure 17 metric).
    pub memory_accesses: u64,
    /// Bytes moved through memory.
    pub bytes_moved: u64,
    /// The raw engine counters behind the model.
    pub stats: EngineStats,
}

/// A modeled comparison system: executes the real algorithm and converts
/// its counters into time and energy.
pub trait BaselineSystem {
    /// Short stable name (matches the paper's figure legends).
    fn name(&self) -> &'static str;

    /// Evaluates one query over one catalog.
    ///
    /// # Errors
    ///
    /// Returns a [`JoinError`] when the catalog does not satisfy the plan.
    fn evaluate(
        &mut self,
        plan: &CompiledQuery,
        catalog: &Catalog,
    ) -> Result<BaselineReport, JoinError>;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_is_plain_data() {
        let r = BaselineReport {
            system: "x",
            time_s: 1.0,
            energy_j: 2.0,
            results: 3,
            intermediates: 4,
            memory_accesses: 5,
            bytes_moved: 6,
            stats: EngineStats::default(),
        };
        assert_eq!(r.clone(), r);
    }
}
