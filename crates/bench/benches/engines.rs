//! Criterion benchmarks of the four software join engines on the paper's
//! queries — real wall-clock time of our implementations, complementing
//! the modeled comparisons of the figure binaries.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use triejax_graph::{Dataset, Scale};
use triejax_join::{
    Catalog, CountSink, Ctj, GenericJoin, JoinEngine, Lftj, PairwiseHash, PairwiseSortMerge,
};
use triejax_query::{patterns::Pattern, CompiledQuery};

fn catalog() -> Catalog {
    let mut c = Catalog::new();
    c.insert("G", Dataset::GrQc.generate(Scale::Tiny).edge_relation());
    c
}

fn bench_engines(c: &mut Criterion) {
    let cat = catalog();
    for pattern in [Pattern::Cycle3, Pattern::Cycle4] {
        let plan = CompiledQuery::compile(&pattern.query()).expect("compiles");
        let mut group = c.benchmark_group(format!("engines_{}", pattern.label()));
        let engines: Vec<(&str, Box<dyn Fn() -> Box<dyn JoinEngine>>)> = vec![
            ("lftj", Box::new(|| Box::new(Lftj::new()))),
            ("ctj", Box::new(|| Box::new(Ctj::new()))),
            ("generic", Box::new(|| Box::new(GenericJoin::new()))),
            ("pairwise", Box::new(|| Box::new(PairwiseHash::new()))),
            ("sortmerge", Box::new(|| Box::new(PairwiseSortMerge::new()))),
        ];
        for (name, make) in engines {
            group.bench_function(BenchmarkId::from_parameter(name), |b| {
                b.iter(|| {
                    let mut sink = CountSink::default();
                    make().execute(&plan, &cat, &mut sink).expect("runs");
                    sink.count()
                });
            });
        }
        group.finish();
    }
}

criterion_group!(benches, bench_engines);
criterion_main!(benches);
