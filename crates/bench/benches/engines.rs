//! Criterion benchmarks of the software join engines on the paper's
//! queries — real wall-clock time of our implementations, complementing
//! the modeled comparisons of the figure binaries.
//!
//! Besides the cross-engine comparison, `triangle_tally` measures the cost
//! of instrumentation itself: the same LFTJ kernel with the counting tally
//! (paper-figure mode), with `NoTally` (instrumentation compiled away) and
//! root-partitioned across threads (`ParLftj`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use triejax_graph::{Dataset, Scale};
use triejax_join::{
    Catalog, CountSink, Counting, Ctj, GenericJoin, JoinEngine, Lftj, NoTally, PairwiseHash,
    PairwiseSortMerge, ParCtj, ParLftj,
};
use triejax_query::{patterns::Pattern, CompiledQuery};

fn catalog() -> Catalog {
    let mut c = Catalog::new();
    c.insert("G", Dataset::GrQc.generate(Scale::Tiny).edge_relation());
    c
}

fn bench_engines(c: &mut Criterion) {
    let cat = catalog();
    for pattern in [Pattern::Cycle3, Pattern::Cycle4] {
        let plan = CompiledQuery::compile(&pattern.query()).expect("compiles");
        let mut group = c.benchmark_group(format!("engines_{}", pattern.label()));
        type EngineFactory = Box<dyn Fn() -> Box<dyn JoinEngine>>;
        let engines: Vec<(&str, EngineFactory)> = vec![
            ("lftj", Box::new(|| Box::new(Lftj::new()))),
            ("ctj", Box::new(|| Box::new(Ctj::new()))),
            ("generic", Box::new(|| Box::new(GenericJoin::new()))),
            ("pairwise", Box::new(|| Box::new(PairwiseHash::new()))),
            ("sortmerge", Box::new(|| Box::new(PairwiseSortMerge::new()))),
            ("par-lftj", Box::new(|| Box::new(ParLftj::new()))),
            ("par-ctj", Box::new(|| Box::new(ParCtj::new()))),
        ];
        for (name, make) in engines {
            group.bench_function(BenchmarkId::from_parameter(name), |b| {
                b.iter(|| {
                    let mut sink = CountSink::default();
                    make().execute(&plan, &cat, &mut sink).expect("runs");
                    sink.count()
                });
            });
        }
        group.finish();
    }
}

/// Counting vs. no-tally vs. parallel LFTJ on triangle counting: the cost
/// of welded-in instrumentation, and what root partitioning buys on top.
fn bench_tally_modes(c: &mut Criterion) {
    let cat = catalog();
    let plan = CompiledQuery::compile(&Pattern::Cycle3.query()).expect("compiles");
    let mut group = c.benchmark_group("triangle_tally");

    group.bench_function(BenchmarkId::from_parameter("lftj-counting"), |b| {
        b.iter(|| {
            let mut sink = CountSink::default();
            Lftj::new()
                .run_tallied::<Counting>(&plan, &cat, &mut sink)
                .expect("runs");
            sink.count()
        });
    });
    group.bench_function(BenchmarkId::from_parameter("lftj-notally"), |b| {
        b.iter(|| {
            let mut sink = CountSink::default();
            Lftj::new()
                .run_tallied::<NoTally>(&plan, &cat, &mut sink)
                .expect("runs");
            sink.count()
        });
    });
    group.bench_function(BenchmarkId::from_parameter("parlftj-counting"), |b| {
        b.iter(|| {
            let mut sink = CountSink::default();
            ParLftj::new()
                .run_tallied::<Counting>(&plan, &cat, &mut sink)
                .expect("runs");
            sink.count()
        });
    });
    group.bench_function(BenchmarkId::from_parameter("parlftj-notally"), |b| {
        b.iter(|| {
            let mut sink = CountSink::default();
            ParLftj::new()
                .run_tallied::<NoTally>(&plan, &cat, &mut sink)
                .expect("runs");
            sink.count()
        });
    });
    group.finish();
}

criterion_group!(benches, bench_engines, bench_tally_modes);
criterion_main!(benches);
