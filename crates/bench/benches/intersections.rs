//! Criterion micro-benchmarks of the galloping set intersection used by
//! the Generic Join engine, across size ratios and tally modes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use triejax_join::{intersect_sorted, Counting, EngineStats, NoTally};

fn make_set(n: u32, stride: u32, offset: u32) -> Vec<u32> {
    (0..n).map(|i| i * stride + offset).collect()
}

fn bench_intersections(c: &mut Criterion) {
    let mut group = c.benchmark_group("intersect");
    for (label, a, b) in [
        (
            "balanced_10k",
            make_set(10_000, 3, 0),
            make_set(10_000, 5, 0),
        ),
        (
            "skewed_100_vs_100k",
            make_set(100, 1009, 0),
            make_set(100_000, 7, 0),
        ),
        (
            "disjoint_10k",
            make_set(10_000, 2, 0),
            make_set(10_000, 2, 1),
        ),
    ] {
        group.bench_function(BenchmarkId::new(label, "counting"), |bench| {
            let mut out = Vec::new();
            bench.iter(|| {
                let mut stats = EngineStats::<Counting>::default();
                intersect_sorted(&a, &b, &mut out, &mut stats);
                out.len()
            });
        });
        group.bench_function(BenchmarkId::new(label, "notally"), |bench| {
            let mut out = Vec::new();
            bench.iter(|| {
                let mut stats = EngineStats::<NoTally>::default();
                intersect_sorted(&a, &b, &mut out, &mut stats);
                out.len()
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_intersections);
criterion_main!(benches);
