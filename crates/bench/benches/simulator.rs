//! Criterion benchmarks of the cycle-level TrieJax simulator itself:
//! simulation throughput (host time per simulated query) across thread
//! counts and queries.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use triejax::{TrieJax, TrieJaxConfig};
use triejax_graph::{Dataset, Scale};
use triejax_join::Catalog;
use triejax_query::{patterns::Pattern, CompiledQuery};

fn catalog() -> Catalog {
    let mut c = Catalog::new();
    c.insert("G", Dataset::GrQc.generate(Scale::Tiny).edge_relation());
    c
}

fn bench_simulator_queries(c: &mut Criterion) {
    let cat = catalog();
    let mut group = c.benchmark_group("simulator_query");
    group.sample_size(20);
    for pattern in [Pattern::Path3, Pattern::Cycle3, Pattern::Cycle4] {
        let plan = CompiledQuery::compile(&pattern.query()).expect("compiles");
        group.bench_function(BenchmarkId::from_parameter(pattern.label()), |b| {
            let accel = TrieJax::new(TrieJaxConfig::default());
            b.iter(|| accel.run(&plan, &cat).expect("runs"));
        });
    }
    group.finish();
}

fn bench_simulator_threads(c: &mut Criterion) {
    let cat = catalog();
    let plan = CompiledQuery::compile(&Pattern::Cycle4.query()).expect("compiles");
    let mut group = c.benchmark_group("simulator_threads");
    group.sample_size(20);
    for threads in [1usize, 8, 32] {
        group.bench_function(BenchmarkId::from_parameter(threads), |b| {
            let accel = TrieJax::new(TrieJaxConfig::default().with_threads(threads));
            b.iter(|| accel.run(&plan, &cat).expect("runs"));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_simulator_queries, bench_simulator_threads);
criterion_main!(benches);
