//! Criterion micro-benchmarks of the trie substrate: build, full scan,
//! and lowest-upper-bound seeks — the primitives behind every engine.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use triejax_graph::{Dataset, Scale};
use triejax_relation::{AccessCounter, Relation, Trie, TrieCursor};

fn bench_trie_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("trie_build");
    for d in [Dataset::GrQc, Dataset::WikiVote] {
        let rel = d.generate(Scale::Tiny).edge_relation();
        group.bench_with_input(BenchmarkId::from_parameter(d.label()), &rel, |b, rel| {
            b.iter(|| Trie::build(rel));
        });
    }
    group.finish();
}

fn bench_cursor_scan(c: &mut Criterion) {
    let rel = Dataset::WikiVote.generate(Scale::Tiny).edge_relation();
    let trie = Trie::build(&rel);
    c.bench_function("cursor_full_scan_wiki_tiny", |b| {
        b.iter(|| {
            let mut cur = TrieCursor::new(&trie);
            let mut counter = AccessCounter::default();
            let mut sum = 0u64;
            cur.open(&mut counter);
            loop {
                sum += u64::from(cur.key());
                cur.open(&mut counter);
                loop {
                    sum += u64::from(cur.key());
                    if !cur.next(&mut counter) {
                        break;
                    }
                }
                cur.up();
                if !cur.next(&mut counter) {
                    break;
                }
            }
            sum
        });
    });
}

fn bench_seeks(c: &mut Criterion) {
    let values: Vec<Vec<u32>> = (0..100_000u32).map(|i| vec![i * 3]).collect();
    let rel = Relation::from_tuples(1, values).expect("valid");
    let trie = Trie::build(&rel);
    c.bench_function("seek_100k_sorted", |b| {
        b.iter(|| {
            let mut cur = TrieCursor::new(&trie);
            let mut counter = AccessCounter::default();
            cur.open(&mut counter);
            let mut hits = 0u32;
            for probe in (0..300_000u32).step_by(1013) {
                if !cur.seek(probe, &mut counter) {
                    break;
                }
                hits += 1;
            }
            hits
        });
    });
}

criterion_group!(benches, bench_trie_build, bench_cursor_scan, bench_seeks);
criterion_main!(benches);
