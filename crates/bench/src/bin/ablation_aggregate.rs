//! Extension experiment (paper §5 future work): aggregation mode.
//!
//! "We plan to extend our accelerator to other important graph operations
//! such as aggregations (e.g., triangle counting)." — counting results in
//! an on-chip accumulator removes all result-write traffic, which is most
//! valuable exactly where the bypass ablation showed the write bottleneck
//! (result-heavy path queries on the social graphs).

use triejax_bench::{geomean, Harness, Table};

fn main() {
    let h = Harness::from_args();
    println!(
        "Extension: aggregation (count-only) mode ({} scale)\n",
        h.scale.label()
    );

    let mut table = Table::new([
        "query",
        "dataset",
        "count",
        "speedup",
        "DRAM writes saved",
        "energy saved",
    ]);
    let mut speedups = Vec::new();
    let mut energy_gains = Vec::new();
    for &p in &h.patterns {
        for &d in &h.datasets {
            let catalog = h.catalog(d);
            let full = h.run_triejax(p, &catalog);
            let mut hh = h.clone();
            hh.config = hh.config.with_aggregate(true);
            let agg = hh.run_triejax(p, &catalog);
            assert_eq!(full.results, agg.results);
            let s = full.cycles as f64 / agg.cycles.max(1) as f64;
            let e = full.energy_j() / agg.energy_j().max(1e-18);
            speedups.push(s);
            energy_gains.push(e);
            table.row([
                p.label().to_string(),
                d.label().to_string(),
                agg.results.to_string(),
                format!("{s:.2}x"),
                full.mem.dram.writes.to_string(),
                format!("{e:.2}x"),
            ]);
        }
    }
    println!("{}", table.render());
    println!(
        "aggregation: speedup geomean {:.2}x, energy geomean {:.2}x",
        geomean(speedups),
        geomean(energy_gains)
    );
    println!("(with the write bypass already shielding threads from result");
    println!(" traffic, counting mostly converts the saved DRAM write energy;");
    println!(" cycle gains appear once result bandwidth saturates, as in the");
    println!(" write-bypass ablation)");
}
