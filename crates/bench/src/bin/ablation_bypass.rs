//! Ablation (paper §3.1): result writes bypassing the caches.
//!
//! "On some of the benchmarks we evaluate (e.g., path4 query), where the
//! size of the resulting join table is extremely large, bypassing the
//! private caches improves performance by up to 2.5x."

use triejax_bench::{geomean, paper, Harness, Table};

fn main() {
    let h = Harness::from_args();
    println!(
        "Ablation: result-write cache bypass ({} scale)\n",
        h.scale.label()
    );

    let mut table = Table::new([
        "query",
        "dataset",
        "results",
        "bypass cycles",
        "no-bypass cycles",
        "speedup",
    ]);
    let mut speedups = Vec::new();
    let mut path4_max: f64 = 0.0;
    for &p in &h.patterns {
        for &d in &h.datasets {
            let catalog = h.catalog(d);
            let with = h.run_triejax(p, &catalog);
            let mut hh = h.clone();
            hh.config = hh.config.with_write_bypass(false);
            let without = hh.run_triejax(p, &catalog);
            let s = without.cycles as f64 / with.cycles.max(1) as f64;
            speedups.push(s);
            if p.label() == "Path4" {
                path4_max = path4_max.max(s);
            }
            table.row([
                p.label().to_string(),
                d.label().to_string(),
                with.results.to_string(),
                with.cycles.to_string(),
                without.cycles.to_string(),
                format!("{s:.2}x"),
            ]);
        }
    }
    println!("{}", table.render());
    println!(
        "bypass speedup: geomean {:.2}x, best path4 cell {:.2}x (paper: up to {}x on path4)",
        geomean(speedups),
        path4_max,
        paper::BYPASS_MAX_SPEEDUP
    );
}
