//! Ablation (paper §3.4): static vs dynamic vs combined multithreading.
//!
//! Static MT suffers unbalanced partitions (paper Figure 8); dynamic MT
//! has slow ramp-up on queries with infrequent matches; TrieJax combines
//! both. Cycles are reported per scheme, normalized to combined.

use triejax::MtMode;
use triejax_bench::{geomean, Harness, Table};

fn main() {
    let h = Harness::from_args();
    println!(
        "Ablation: multithreading schemes ({} scale, {} threads)\n",
        h.scale.label(),
        h.config.threads
    );

    let modes = [MtMode::Static, MtMode::Dynamic, MtMode::Combined];
    let mut table = Table::new(["query", "dataset", "static", "dynamic", "combined"]);
    let mut ratio_static = Vec::new();
    let mut ratio_dynamic = Vec::new();
    for &p in &h.patterns {
        for &d in &h.datasets {
            let catalog = h.catalog(d);
            let mut cycles = [0u64; 3];
            for (i, &m) in modes.iter().enumerate() {
                let mut hh = h.clone();
                hh.config = hh.config.with_mt_mode(m);
                cycles[i] = hh.run_triejax(p, &catalog).cycles.max(1);
            }
            let base = cycles[2] as f64;
            ratio_static.push(cycles[0] as f64 / base);
            ratio_dynamic.push(cycles[1] as f64 / base);
            table.row([
                p.label().to_string(),
                d.label().to_string(),
                format!("{:.2}x", cycles[0] as f64 / base),
                format!("{:.2}x", cycles[1] as f64 / base),
                "1.00x".to_string(),
            ]);
        }
    }
    println!("{}", table.render());
    println!(
        "slowdown vs combined (geomean): static {:.2}x, dynamic {:.2}x",
        geomean(ratio_static),
        geomean(ratio_dynamic)
    );
    println!("(paper: combined MT is the shipped configuration; both pure schemes lose)");
}
