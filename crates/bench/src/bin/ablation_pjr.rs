//! Ablation (paper §3.5/§3.7): the partial-join-result cache.
//!
//! Sweeps the PJR capacity (including disabled) on the cacheable queries;
//! cycle3/clique4 are insensitive by construction (no valid cache specs).

use triejax_bench::{Harness, Table};

fn main() {
    let h = Harness::from_args();
    println!("Ablation: PJR cache capacity ({} scale)\n", h.scale.label());

    let sizes: [(&str, Option<u64>); 5] = [
        ("off", None),
        ("64KB", Some(64 << 10)),
        ("512KB", Some(512 << 10)),
        ("4MB", Some(4 << 20)),
        ("32MB", Some(32 << 20)),
    ];
    let mut table = Table::new(
        ["query", "dataset"]
            .into_iter()
            .map(String::from)
            .chain(sizes.iter().map(|(l, _)| format!("cycles @{l}")))
            .chain(["hit rate @4MB".to_string()]),
    );
    for &p in &h.patterns {
        for &d in &h.datasets {
            let catalog = h.catalog(d);
            let mut cells = vec![p.label().to_string(), d.label().to_string()];
            let mut hit_rate_4mb = 0.0;
            for (label, bytes) in sizes {
                let mut hh = h.clone();
                hh.config = match bytes {
                    None => hh.config.with_pjr_enabled(false),
                    Some(b) => hh.config.with_pjr_bytes(b),
                };
                let r = hh.run_triejax(p, &catalog);
                if label == "4MB" {
                    hit_rate_4mb = r.pjr.hit_rate();
                }
                cells.push(r.cycles.to_string());
            }
            cells.push(format!("{:.0}%", hit_rate_4mb * 100.0));
            table.row(cells);
        }
    }
    println!("{}", table.render());
    println!("(cycle3/clique4 have no valid cache: identical cycles across sizes)");
}
