//! Runs the full evaluation matrix once and prints a compact summary of
//! every paper claim versus the measured value — the source of
//! `EXPERIMENTS.md`.

use triejax_bench::{fmt_ratio, geomean, paper, Harness};

fn main() {
    let h = Harness::from_args();
    println!(
        "TrieJax reproduction: full experiment sweep ({} scale, {} threads)\n",
        h.scale.label(),
        h.config.threads
    );

    // --- Figures 13/16/17: the five-system matrix -----------------------
    let mut speed: [Vec<f64>; 4] = Default::default();
    let mut energy: [Vec<f64>; 4] = Default::default();
    let mut access_ratio: [Vec<f64>; 3] = Default::default();
    let mut mem_fraction = Vec::new();
    let mut cells = 0usize;
    for &p in &h.patterns {
        for &d in &h.datasets {
            let cell = h.run_cell(p, d);
            cell.assert_agreement();
            cells += 1;
            let base = [
                &cell.q100,
                &cell.graphicionado,
                &cell.emptyheaded,
                &cell.ctj,
            ];
            for i in 0..4 {
                speed[i].push(cell.speedup_over(base[i]));
                energy[i].push(cell.energy_reduction_over(base[i]));
            }
            let ctj_acc = cell.ctj.memory_accesses.max(1) as f64;
            access_ratio[0].push(cell.q100.memory_accesses as f64 / ctj_acc);
            access_ratio[1].push(cell.graphicionado.memory_accesses as f64 / ctj_acc);
            access_ratio[2].push(cell.emptyheaded.memory_accesses as f64 / ctj_acc);
            mem_fraction.push(cell.triejax.energy.memory_fraction());
        }
    }
    println!("matrix: {cells} cells, all five systems agree on result counts\n");

    println!("Figure 13 (speedup) / Figure 16 (energy reduction):");
    let names = ["q100", "graphicionado", "emptyheaded", "ctj"];
    for i in 0..4 {
        let band = paper::band_for(names[i]).expect("known");
        println!(
            "  {:14} speedup geomean {:>7} (paper avg {:>5}) | energy geomean {:>7} (paper avg {:>6})",
            names[i],
            fmt_ratio(geomean(speed[i].iter().copied())),
            fmt_ratio(band.speedup_avg),
            fmt_ratio(geomean(energy[i].iter().copied())),
            fmt_ratio(band.energy_avg),
        );
    }

    println!("\nFigure 15 (energy distribution):");
    println!(
        "  memory-system fraction: {:.0}%..{:.0}% (paper {:.0}%..{:.0}%)",
        100.0 * mem_fraction.iter().copied().fold(f64::INFINITY, f64::min),
        100.0 * mem_fraction.iter().copied().fold(0.0, f64::max),
        100.0 * paper::ENERGY_MEMORY_FRACTION.0,
        100.0 * paper::ENERGY_MEMORY_FRACTION.1
    );

    println!("\nFigure 17 (memory accesses over CTJ):");
    let f17 = ["q100", "graphicionado", "emptyheaded"];
    let f17_paper = [
        paper::ACCESS_RATIO_Q100_OVER_CTJ,
        paper::ACCESS_RATIO_GRAPHICIONADO_OVER_CTJ,
        paper::ACCESS_RATIO_EH_OVER_CTJ,
    ];
    for i in 0..3 {
        println!(
            "  {:14} {:>8} (paper {}x)",
            f17[i],
            fmt_ratio(geomean(access_ratio[i].iter().copied())),
            f17_paper[i]
        );
    }

    // --- Figure 14: thread sweep ----------------------------------------
    println!("\nFigure 14 (multithreading, geomean over matrix):");
    for threads in [8usize, 32] {
        let mut ratios = Vec::new();
        for &p in &h.patterns {
            for &d in &h.datasets {
                let catalog = h.catalog(d);
                let mut h1 = h.clone();
                h1.config = h1.config.with_threads(1);
                let c1 = h1.run_triejax(p, &catalog).cycles.max(1);
                let mut ht = h.clone();
                ht.config = ht.config.with_threads(threads);
                let ct = ht.run_triejax(p, &catalog).cycles.max(1);
                ratios.push(c1 as f64 / ct as f64);
            }
        }
        let target = if threads == 8 {
            paper::MT_SPEEDUP_8T
        } else {
            paper::MT_SPEEDUP_32T
        };
        println!(
            "  {threads:>2} threads: {:.2}x over 1T (paper {target}x)",
            geomean(ratios)
        );
    }
}
