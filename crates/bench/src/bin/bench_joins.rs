//! Machine-readable join-engine benchmark: writes `BENCH_joins.json`.
//!
//! Times triangle counting (and Cycle4) with the instrumented LFTJ kernel,
//! the zero-overhead `NoTally` kernel, and the root-partitioned parallel
//! engine, so successive PRs can track the performance trajectory from a
//! stable JSON artifact instead of scraping bench output.
//!
//! Usage: `bench_joins [--scale tiny|mini|full] [--dataset <label>]
//! [--runs N] [--out PATH]`

use std::time::Instant;

use triejax_graph::{Dataset, Scale};
use triejax_join::{Catalog, CountSink, Counting, Lftj, NoTally, ParLftj};
use triejax_query::{patterns::Pattern, CompiledQuery};

/// One named, boxed benchmark body (borrowing the plan and catalog).
type BenchCase<'a> = (&'static str, Box<dyn FnMut() -> u64 + 'a>);

struct Measurement {
    engine: &'static str,
    query: &'static str,
    median_ns: u128,
    min_ns: u128,
    max_ns: u128,
    results: u64,
}

fn time_runs(runs: usize, mut f: impl FnMut() -> u64) -> (u128, u128, u128, u64) {
    // One warm-up execution, then `runs` timed ones.
    let mut results = f();
    let mut samples: Vec<u128> = Vec::with_capacity(runs);
    for _ in 0..runs {
        let t = Instant::now();
        results = f();
        samples.push(t.elapsed().as_nanos());
    }
    samples.sort_unstable();
    (
        samples[samples.len() / 2],
        samples[0],
        samples[samples.len() - 1],
        results,
    )
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = Scale::Tiny;
    let mut dataset = Dataset::GrQc;
    let mut runs = 7usize;
    let mut out_path = String::from("BENCH_joins.json");
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                i += 1;
                scale = match args[i].as_str() {
                    "tiny" => Scale::Tiny,
                    "mini" => Scale::Mini,
                    "full" => Scale::Full,
                    other => panic!("unknown scale {other}"),
                };
            }
            "--dataset" => {
                i += 1;
                dataset = Dataset::from_label(&args[i])
                    .unwrap_or_else(|| panic!("unknown dataset {}", args[i]));
            }
            "--runs" => {
                i += 1;
                runs = args[i].parse().expect("--runs takes a number");
                assert!(runs > 0, "--runs must be at least 1");
            }
            "--out" => {
                i += 1;
                out_path = args[i].clone();
            }
            other => panic!("unknown argument {other}"),
        }
        i += 1;
    }

    let mut catalog = Catalog::new();
    catalog.insert("G", dataset.generate(scale).edge_relation());

    let mut measurements: Vec<Measurement> = Vec::new();
    for pattern in [Pattern::Cycle3, Pattern::Cycle4] {
        let plan = CompiledQuery::compile(&pattern.query()).expect("compiles");
        let cases: Vec<BenchCase<'_>> = vec![
            (
                "lftj-counting",
                Box::new(|| {
                    let mut sink = CountSink::default();
                    Lftj::new()
                        .run_tallied::<Counting>(&plan, &catalog, &mut sink)
                        .expect("runs");
                    sink.count()
                }),
            ),
            (
                "lftj-notally",
                Box::new(|| {
                    let mut sink = CountSink::default();
                    Lftj::new()
                        .run_tallied::<NoTally>(&plan, &catalog, &mut sink)
                        .expect("runs");
                    sink.count()
                }),
            ),
            (
                "parlftj-counting",
                Box::new(|| {
                    let mut sink = CountSink::default();
                    ParLftj::new()
                        .run_tallied::<Counting>(&plan, &catalog, &mut sink)
                        .expect("runs");
                    sink.count()
                }),
            ),
            (
                "parlftj-notally",
                Box::new(|| {
                    let mut sink = CountSink::default();
                    ParLftj::new()
                        .run_tallied::<NoTally>(&plan, &catalog, &mut sink)
                        .expect("runs");
                    sink.count()
                }),
            ),
        ];
        for (engine, mut f) in cases {
            let (median_ns, min_ns, max_ns, results) = time_runs(runs, &mut f);
            println!(
                "{:>8} {:<18} median {:>12} ns  ({} results)",
                pattern.label(),
                engine,
                median_ns,
                results
            );
            measurements.push(Measurement {
                engine,
                query: pattern.label(),
                median_ns,
                min_ns,
                max_ns,
                results,
            });
        }
    }

    // Hand-rolled JSON (no serde in the offline environment).
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str(&format!("  \"dataset\": \"{}\",\n", dataset.label()));
    json.push_str(&format!("  \"scale\": \"{}\",\n", scale.label()));
    json.push_str(&format!("  \"runs\": {runs},\n"));
    json.push_str("  \"measurements\": [\n");
    for (i, m) in measurements.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"query\": \"{}\", \"engine\": \"{}\", \"median_ns\": {}, \
             \"min_ns\": {}, \"max_ns\": {}, \"results\": {}}}{}\n",
            m.query,
            m.engine,
            m.median_ns,
            m.min_ns,
            m.max_ns,
            m.results,
            if i + 1 == measurements.len() { "" } else { "," }
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&out_path, json).expect("write BENCH_joins.json");
    println!("wrote {out_path}");
}
