//! Machine-readable join-engine benchmark: writes `BENCH_joins.json` and
//! gates on regressions against the previous artifact.
//!
//! Times triangle counting (and Cycle4) with the instrumented and
//! zero-overhead (`NoTally`) LFTJ and CTJ kernels plus both pool-based
//! parallel engines (`parlftj`, `parctj`), so successive PRs can track
//! the performance trajectory from a stable JSON artifact instead of
//! scraping bench output.
//!
//! If an output artifact from a previous run (same dataset/scale/runs/pool
//! configuration) exists, the per-(query, engine) median deltas are
//! printed and any row whose median *and* min both regressed beyond
//! `GATE_THRESHOLD_PCT` makes the run exit non-zero *without* overwriting
//! the baseline (requiring the min too keeps scheduler noise on loaded
//! machines from flapping the gate; pass `--no-gate` to report deltas but
//! always write and exit 0 — e.g. to rebase the artifact).
//!
//! Usage: `bench_joins [--scale tiny|mini|full] [--dataset <label>]
//! [--runs N] [--pool N] [--cache-cap N] [--trie-cache-mb N]
//! [--split | --no-split] [--split-depth N|max] [--cache-adapt]
//! [--row-limit N] [--deadline-ms N]
//! [--store PATH] [--mutate-batch N] [--out PATH] [--no-gate]`
//!
//! `--cache-cap N` bounds the `parctj` rows' shared PJR cache to `N`
//! total entries (per-stripe FIFO eviction; `0` disables caching), so
//! the eviction-churn path can be benchmarked and gated like any other
//! configuration. Artifacts record the capacity, and medians are only
//! compared between identical configurations.
//!
//! `--split` / `--no-split` pins dynamic shard splitting for the
//! parallel rows (default: the engines' `TRIEJAX_SPLIT` resolution).
//! Splitting runs record `"split": true` in the artifact and its config
//! signature; non-splitting runs omit the field, so artifacts from
//! before the knob existed still gate against non-splitting runs.
//!
//! `--split-depth N|max` pins how deep a splitting shard may donate
//! (`0` = root-only, `max` = uncapped; default: the engines'
//! `TRIEJAX_SPLIT_DEPTH` resolution) and `--cache-adapt` runs the
//! `parctj` rows with the cost-based adaptive cache policy (default:
//! the engines' `TRIEJAX_CACHE_ADAPT` resolution). Both are recorded in
//! the artifact and its config signature only when non-default
//! (`split_depth` > 0 / adaptive on), so pre-knob artifacts still gate
//! against default runs.
//!
//! `--row-limit N` / `--deadline-ms N` put the parallel rows under a
//! query budget, timing cancellation (time-to-first-N-rows /
//! time-to-deadline) instead of full runs. Governed runs record the knob
//! in the artifact and its config signature; ungoverned runs omit the
//! fields, so pre-knob artifacts still gate against ungoverned runs.
//! Every invocation also smoke-checks that a zero-deadline run reports
//! `Cancelled` — a cheap liveness probe that is never a gated row.
//!
//! `--trie-cache-mb N` shares one cross-query [`triejax_join::TrieCache`]
//! (capacity `N` MiB; `0` disables it) across every parallel engine row.
//! Every invocation records a per-query `trie-build-cold` row (the trie
//! construction phase timed through `EngineStats::trie_build_ns`, cache
//! explicitly off); with the cache enabled a `trie-build-warm` row rides
//! along — every build served from the cache — together with a
//! `trie_cache_mb` config-signature field, so cacheless artifacts from
//! before the knob existed still gate against cacheless runs. Build rows
//! report `trie_cache_hits` in their `results` column.
//!
//! `--store PATH` benchmarks the persistent trie store: if `PATH` does
//! not exist it is created once (a [`triejax_join::Session`] snapshot of
//! the benchmark catalog's Cycle3+Cycle4 tries, saved through
//! `StoredCatalog::save`), then every sampled `store-open-cold` row times
//! a full cold open — `StoredCatalog::open` plus a cache preload — and
//! verifies the serving claim by running the query against the preloaded
//! cache and asserting `EngineStats::trie_build_ns == 0`. The row's
//! `results` column reports the store-served hit count. Store runs record
//! `"store": true` in the artifact and its config signature; storeless
//! runs omit the field, so pre-knob artifacts still gate.
//!
//! `--mutate-batch N` benchmarks the incremental-maintenance path with a
//! deterministic batch of `N` inserted edges plus `N/2` deletes of base
//! tuples, three rows per query: `delta-apply` times folding the batch
//! into a session's pending [`triejax_relation::RelationDelta`]
//! (`results` = resulting delta size); `query-warm-delta` times the
//! parallel engine over base + pending delta through the merge-cursor
//! path (`results` = result count); `compaction` times promoting the
//! delta into a fresh frozen base (`results` = merged relation size).
//! Every sample rebuilds its session, so each one times the identical
//! state transition. Mutating runs record `mutate_batch` in the artifact
//! and its config signature; non-mutating runs omit the field, so
//! pre-knob artifacts still gate against non-mutating runs.

use std::sync::Arc;
use std::time::{Duration, Instant};

use triejax_graph::{Dataset, Scale};
use triejax_join::{
    Catalog, CountSink, Counting, Ctj, JoinError, Lftj, NoTally, ParCtj, ParLftj, Session,
    StoredCatalog, TrieCache,
};
use triejax_query::{patterns::Pattern, CompiledQuery};
use triejax_relation::Relation;

/// Median slowdown (percent) beyond which the gate fails the run.
const GATE_THRESHOLD_PCT: f64 = 25.0;

/// One named, boxed benchmark body (borrowing the plan and catalog).
type BenchCase<'a> = (&'static str, Box<dyn FnMut() -> u64 + 'a>);

struct Measurement {
    engine: &'static str,
    query: &'static str,
    median_ns: u128,
    min_ns: u128,
    max_ns: u128,
    results: u64,
}

fn time_runs(runs: usize, mut f: impl FnMut() -> u64) -> (u128, u128, u128, u64) {
    // One warm-up execution, then `runs` timed ones.
    let mut results = f();
    let mut samples: Vec<u128> = Vec::with_capacity(runs);
    for _ in 0..runs {
        let t = Instant::now();
        results = f();
        samples.push(t.elapsed().as_nanos());
    }
    samples.sort_unstable();
    (
        samples[samples.len() / 2],
        samples[0],
        samples[samples.len() - 1],
        results,
    )
}

/// Extracts `(query, engine, median_ns, min_ns)` rows from a previous
/// artifact (the exact format this binary writes; no serde in the offline
/// environment).
fn parse_previous(text: &str) -> Vec<(String, String, u128, u128)> {
    text.lines()
        .filter_map(|line| {
            let line = line.trim();
            Some((
                field_str(line, "query")?,
                field_str(line, "engine")?,
                field_num(line, "median_ns")?,
                field_num(line, "min_ns")?,
            ))
        })
        .collect()
}

fn field_str(line: &str, key: &str) -> Option<String> {
    let pat = format!("\"{key}\": \"");
    let start = line.find(&pat)? + pat.len();
    let end = line[start..].find('"')? + start;
    Some(line[start..end].to_string())
}

fn field_num(line: &str, key: &str) -> Option<u128> {
    let pat = format!("\"{key}\": ");
    let start = line.find(&pat)? + pat.len();
    let digits: String = line[start..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect();
    digits.parse().ok()
}

/// `true` when the artifact recorded `"key": true` (the field is only
/// written for splitting runs, so absent means `false`).
fn field_bool(text: &str, key: &str) -> bool {
    text.contains(&format!("\"{key}\": true"))
}

/// The benchmark configuration recorded in (or computed for) one artifact;
/// medians are only comparable between identical configurations.
#[derive(PartialEq)]
struct ConfigSig {
    dataset: Option<String>,
    scale: Option<String>,
    runs: Option<u128>,
    pool: Option<u128>,
    cache_cap: Option<u128>,
    trie_cache_mb: Option<u128>,
    split: bool,
    split_depth: Option<u128>,
    cache_adapt: bool,
    row_limit: Option<u128>,
    deadline_ms: Option<u128>,
    store: bool,
    mutate_batch: Option<u128>,
}

fn config_signature(text: &str) -> ConfigSig {
    ConfigSig {
        dataset: field_str(text, "dataset"),
        scale: field_str(text, "scale"),
        runs: field_num(text, "runs"),
        pool: field_num(text, "pool"),
        cache_cap: field_num(text, "cache_cap"),
        trie_cache_mb: field_num(text, "trie_cache_mb"),
        split: field_bool(text, "split"),
        split_depth: field_num(text, "split_depth"),
        cache_adapt: field_bool(text, "cache_adapt"),
        row_limit: field_num(text, "row_limit"),
        deadline_ms: field_num(text, "deadline_ms"),
        store: field_bool(text, "store"),
        mutate_batch: field_num(text, "mutate_batch"),
    }
}

/// Samples the trie-construction phase of `runs` engine runs through
/// `EngineStats::trie_build_ns` (median, min, max) plus the last run's
/// `trie_cache_hits` — reported in the artifact's `results` column: 0
/// for a cold row, one per distinct `(relation, perm)` build for a warm
/// one. Build rows always run ungoverned: the build phase completes
/// before any budget is consulted, so a budget knob could only add
/// noise, not change what is measured.
fn build_phase_samples(
    runs: usize,
    plan: &CompiledQuery,
    catalog: &Catalog,
    mut engine: impl FnMut() -> ParLftj,
) -> (u128, u128, u128, u64) {
    let mut samples: Vec<u128> = Vec::with_capacity(runs);
    let mut hits = 0u64;
    for _ in 0..runs {
        let mut sink = CountSink::default();
        let stats = engine()
            .run_tallied::<NoTally>(plan, catalog, &mut sink)
            .expect("build rows run ungoverned");
        samples.push(u128::from(stats.trie_build_ns));
        hits = stats.trie_cache_hits;
    }
    samples.sort_unstable();
    (
        samples[samples.len() / 2],
        samples[0],
        samples[samples.len() - 1],
        hits,
    )
}

/// Samples a full cold open of the persistent store — `StoredCatalog::open`
/// plus a fresh cache preload, the whole O(bytes-read) serving path — and
/// verifies the claim each time by running `plan` against the preloaded
/// cache: the run must report zero `trie_build_ns` (nothing was rebuilt)
/// and its store-served hit count lands in the row's `results` column.
fn store_open_samples(
    runs: usize,
    path: &str,
    plan: &CompiledQuery,
    catalog: &Catalog,
    pool: Option<usize>,
    split: bool,
) -> (u128, u128, u128, u64) {
    let mut samples: Vec<u128> = Vec::with_capacity(runs);
    let mut hits = 0u64;
    for _ in 0..runs {
        let t = Instant::now();
        let stored = StoredCatalog::open(path).expect("open store");
        let cache = Arc::new(TrieCache::unbounded());
        cache.preload(&stored);
        samples.push(t.elapsed().as_nanos());

        let mut sink = CountSink::default();
        let stats = pool
            .map_or_else(ParLftj::new, ParLftj::with_pool)
            .with_split(split)
            .with_trie_cache(cache)
            .run_tallied::<NoTally>(plan, catalog, &mut sink)
            .expect("store rows run ungoverned");
        assert_eq!(
            stats.trie_build_ns, 0,
            "a store-served run must do zero trie-build work"
        );
        assert!(stats.trie_cache_hits > 0, "the store served nothing");
        hits = stats.trie_cache_hits;
    }
    samples.sort_unstable();
    (
        samples[samples.len() / 2],
        samples[0],
        samples[samples.len() - 1],
        hits,
    )
}

/// The deterministic mutation batch for `--mutate-batch N`: `N` fresh
/// edges on vertices far above the dataset's id range (guaranteed
/// inserts) plus every other base tuple up to `N/2` rows (guaranteed
/// live deletes) — so both delta sides take part in every sample.
fn mutation_batch(base: &Relation, n: usize) -> (Relation, Relation) {
    const FRESH: u32 = 1 << 24;
    let inserts = Relation::from_pairs((0..n as u32).map(|i| (FRESH + i, FRESH + i + 1)));
    let deletes = Relation::from_tuples(
        base.arity(),
        (0..base.len().min(n / 2)).map(|i| base.tuple(i * 2 % base.len())),
    )
    .expect("base tuples share the base arity");
    (inserts, deletes)
}

/// Samples the three incremental-maintenance phases. Applies and
/// compactions are one-shot state transitions, so — unlike the steady
/// -state query rows — every sample rebuilds a fresh session and times
/// the identical transition: fold the batch in (`delta-apply`), answer
/// over base + pending delta (`query-warm-delta`), promote the delta to
/// a frozen base (`compaction`).
fn mutation_samples(
    runs: usize,
    plan: &CompiledQuery,
    catalog: &Catalog,
    batch_n: usize,
    pool: Option<usize>,
    split: bool,
) -> Vec<(&'static str, u128, u128, u128, u64)> {
    let (inserts, deletes) = mutation_batch(catalog.get("G").expect("benchmark relation"), batch_n);
    let session_with = |ratio: f64| {
        let mut s = Session::new(catalog.clone()).with_compact_ratio(ratio);
        if let Some(n) = pool {
            s = s.with_pool(n);
        }
        s
    };
    let mut rows = Vec::new();

    // delta-apply: the batch algebra alone (no compaction, no queries).
    let mut samples: Vec<u128> = Vec::with_capacity(runs);
    let mut delta_len = 0u64;
    for _ in 0..runs {
        let session = session_with(f64::INFINITY);
        let t = Instant::now();
        session.apply("G", &inserts, &deletes).expect("apply");
        samples.push(t.elapsed().as_nanos());
        delta_len = session.deltas().get("G").map_or(0, |d| d.len() as u64);
    }
    samples.sort_unstable();
    rows.push((
        "delta-apply",
        samples[samples.len() / 2],
        samples[0],
        samples[samples.len() - 1],
        delta_len,
    ));

    // query-warm-delta: the merge-cursor serving path over the pending
    // delta. One state, many runs — time_runs applies (base tries warm
    // after the untimed first execution, like every other query row).
    let session = session_with(f64::INFINITY);
    session.apply("G", &inserts, &deletes).expect("apply");
    let (state_catalog, state_deltas) = (session.catalog(), session.deltas());
    assert!(!state_deltas.is_empty(), "the batch must leave a delta");
    let (median_ns, min_ns, max_ns, results) = time_runs(runs, || {
        let mut sink = CountSink::default();
        pool.map_or_else(ParLftj::new, ParLftj::with_pool)
            .with_split(split)
            .run_tallied_with::<NoTally>(plan, &state_catalog, &state_deltas, &mut sink)
            .expect("mutation rows run ungoverned");
        sink.count()
    });
    rows.push(("query-warm-delta", median_ns, min_ns, max_ns, results));

    // compaction: promoting the pending delta into a fresh frozen base.
    let mut samples: Vec<u128> = Vec::with_capacity(runs);
    let mut merged_len = 0u64;
    for _ in 0..runs {
        let session = session_with(f64::INFINITY);
        session.apply("G", &inserts, &deletes).expect("apply");
        let t = Instant::now();
        session.compact("G");
        samples.push(t.elapsed().as_nanos());
        merged_len = session.catalog().get("G").map_or(0, |r| r.len() as u64);
    }
    samples.sort_unstable();
    rows.push((
        "compaction",
        samples[samples.len() / 2],
        samples[0],
        samples[samples.len() - 1],
        merged_len,
    ));
    rows
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = Scale::Tiny;
    let mut dataset = Dataset::GrQc;
    let mut runs = 7usize;
    let mut pool: Option<usize> = None;
    let mut cache_cap: Option<usize> = None;
    let mut trie_cache_mb: Option<u64> = None;
    let mut split: Option<bool> = None;
    let mut split_depth: Option<usize> = None;
    let mut cache_adapt: Option<bool> = None;
    let mut row_limit: Option<u64> = None;
    let mut deadline_ms: Option<u64> = None;
    let mut store_path: Option<String> = None;
    let mut mutate_batch: Option<usize> = None;
    let mut gate = true;
    let mut out_path = String::from("BENCH_joins.json");
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                i += 1;
                scale = match args[i].as_str() {
                    "tiny" => Scale::Tiny,
                    "mini" => Scale::Mini,
                    "full" => Scale::Full,
                    other => panic!("unknown scale {other}"),
                };
            }
            "--dataset" => {
                i += 1;
                dataset = Dataset::from_label(&args[i])
                    .unwrap_or_else(|| panic!("unknown dataset {}", args[i]));
            }
            "--runs" => {
                i += 1;
                runs = args[i].parse().expect("--runs takes a number");
                assert!(runs > 0, "--runs must be at least 1");
            }
            "--pool" => {
                i += 1;
                let n: usize = args[i].parse().expect("--pool takes a number");
                assert!(n > 0, "--pool must be at least 1");
                pool = Some(n);
            }
            "--cache-cap" => {
                i += 1;
                cache_cap = Some(args[i].parse().expect("--cache-cap takes a number"));
            }
            "--trie-cache-mb" => {
                i += 1;
                trie_cache_mb = Some(args[i].parse().expect("--trie-cache-mb takes a number"));
            }
            "--split" => split = Some(true),
            "--no-split" => split = Some(false),
            "--split-depth" => {
                i += 1;
                split_depth = Some(match args[i].as_str() {
                    "max" => usize::MAX,
                    n => n.parse().expect("--split-depth takes a number or 'max'"),
                });
            }
            "--cache-adapt" => cache_adapt = Some(true),
            "--row-limit" => {
                i += 1;
                let n: u64 = args[i].parse().expect("--row-limit takes a number");
                assert!(n > 0, "--row-limit must be at least 1");
                row_limit = Some(n);
            }
            "--deadline-ms" => {
                i += 1;
                let n: u64 = args[i].parse().expect("--deadline-ms takes a number");
                assert!(n > 0, "--deadline-ms must be at least 1");
                deadline_ms = Some(n);
            }
            "--store" => {
                i += 1;
                store_path = Some(args[i].clone());
            }
            "--mutate-batch" => {
                i += 1;
                let n: usize = args[i].parse().expect("--mutate-batch takes a number");
                assert!(n > 0, "--mutate-batch must be at least 1");
                mutate_batch = Some(n);
            }
            "--no-gate" => gate = false,
            "--out" => {
                i += 1;
                out_path = args[i].clone();
            }
            other => panic!("unknown argument {other}"),
        }
        i += 1;
    }

    // Without --cache-cap the engines would read TRIEJAX_CACHE_CAP on
    // their own; resolve it up front (through the engine's own
    // resolution, so the rules can never drift) and pin it explicitly,
    // so the measured capacity is always the recorded one — otherwise an
    // env-capped run would signature-match (and gate against) uncapped
    // baselines.
    let cache_cap = cache_cap.or_else(|| ParCtj::new().effective_config().max_entries);
    // Same resolution for the split knob: pin the engines' own
    // `TRIEJAX_SPLIT` default explicitly so the measured schedule is
    // always the recorded one.
    let split = split.unwrap_or_else(|| ParLftj::new().effective_split());
    // And for the depth cap and the adaptive cache policy: resolve the
    // `TRIEJAX_SPLIT_DEPTH` / `TRIEJAX_CACHE_ADAPT` defaults through the
    // engines and pin them, so the measured schedule and cache policy are
    // always the recorded ones.
    let split_depth = split_depth.unwrap_or_else(|| ParLftj::new().effective_split_depth());
    let cache_adapt = cache_adapt.unwrap_or_else(|| ParCtj::new().effective_config().adaptive);
    // The trie cache is flag-only: without `--trie-cache-mb` (or with 0)
    // the parallel rows run with the cache pinned *off* — an ambient
    // `TRIEJAX_TRIE_CACHE_MB` must not make the measured configuration
    // drift from the recorded one.
    let trie_cache: Option<Arc<TrieCache>> = trie_cache_mb
        .filter(|&mb| mb > 0)
        .map(|mb| Arc::new(TrieCache::with_capacity_mb(mb)));

    let mut catalog = Catalog::new();
    catalog.insert("G", dataset.generate(scale).edge_relation());
    // A missing --store file is created once from this catalog's own
    // Cycle3+Cycle4 tries, so the first invocation bootstraps the store
    // that later ones (and CI) open cold.
    if let Some(path) = &store_path {
        if !std::path::Path::new(path).exists() {
            let plans: Vec<CompiledQuery> = [Pattern::Cycle3, Pattern::Cycle4]
                .iter()
                .map(|p| CompiledQuery::compile(&p.query()).expect("compiles"))
                .collect();
            let mut session = Session::new(catalog.clone());
            if let Some(n) = pool {
                session = session.with_pool(n);
            }
            let stored = session.snapshot(&plans).expect("snapshot");
            stored.save(path).expect("save store");
            println!("created trie store {path} ({} tries)", stored.tries().len());
        }
    }
    let pin_trie_cache = |engine: ParLftj| match &trie_cache {
        Some(c) => engine.with_trie_cache(c.clone()),
        None => engine.without_trie_cache(),
    };
    let pin_trie_cache_ctj = |engine: ParCtj| match &trie_cache {
        Some(c) => engine.with_trie_cache(c.clone()),
        None => engine.without_trie_cache(),
    };
    let par_lftj = || {
        let mut engine = pin_trie_cache(
            pool.map_or_else(ParLftj::new, ParLftj::with_pool)
                .with_split(split)
                .with_split_depth(split_depth),
        );
        if let Some(n) = row_limit {
            engine = engine.with_row_limit(n);
        }
        if let Some(ms) = deadline_ms {
            engine = engine.with_deadline(Duration::from_millis(ms));
        }
        engine
    };
    let par_ctj = || {
        let mut engine = pin_trie_cache_ctj(
            pool.map_or_else(ParCtj::new, ParCtj::with_pool)
                .with_split(split)
                .with_split_depth(split_depth)
                .with_cache_adapt(cache_adapt),
        );
        if let Some(cap) = cache_cap {
            engine = engine.cache_capacity(cap);
        }
        if let Some(n) = row_limit {
            engine = engine.with_row_limit(n);
        }
        if let Some(ms) = deadline_ms {
            engine = engine.with_deadline(Duration::from_millis(ms));
        }
        engine
    };
    // A governed row legitimately reports `Cancelled` — the time to trip
    // the budget is the thing being measured; any other error is a bug.
    let settle = |outcome: Result<(), JoinError>| {
        if let Err(e) = outcome {
            assert!(matches!(e, JoinError::Cancelled { .. }), "runs: {e}");
        }
    };

    // Robustness smoke probe (never a timed or gated row): a zero-deadline
    // governed run must come back `Cancelled`, proving the cancellation
    // path is live on this build before any measurement depends on it.
    {
        let plan = CompiledQuery::compile(&Pattern::Cycle3.query()).expect("compiles");
        let mut sink = CountSink::default();
        let outcome = pool
            .map_or_else(ParLftj::new, ParLftj::with_pool)
            .with_split(split)
            .with_deadline(Duration::ZERO)
            .run_tallied::<Counting>(&plan, &catalog, &mut sink);
        match outcome {
            Err(JoinError::Cancelled { reason, .. }) => {
                println!("cancellation smoke check: zero-deadline run reported \"{reason}\"");
            }
            Ok(_) => panic!("zero-deadline run must report Cancelled, got a full result"),
            Err(other) => panic!("zero-deadline run must report Cancelled, got {other}"),
        }
    }

    let mut measurements: Vec<Measurement> = Vec::new();
    for pattern in [Pattern::Cycle3, Pattern::Cycle4] {
        let plan = CompiledQuery::compile(&pattern.query()).expect("compiles");
        let cases: Vec<BenchCase<'_>> = vec![
            (
                "lftj-counting",
                Box::new(|| {
                    let mut sink = CountSink::default();
                    Lftj::new()
                        .run_tallied::<Counting>(&plan, &catalog, &mut sink)
                        .expect("runs");
                    sink.count()
                }),
            ),
            (
                "lftj-notally",
                Box::new(|| {
                    let mut sink = CountSink::default();
                    Lftj::new()
                        .run_tallied::<NoTally>(&plan, &catalog, &mut sink)
                        .expect("runs");
                    sink.count()
                }),
            ),
            (
                "ctj-counting",
                Box::new(|| {
                    let mut sink = CountSink::default();
                    Ctj::new()
                        .run_tallied::<Counting>(&plan, &catalog, &mut sink)
                        .expect("runs");
                    sink.count()
                }),
            ),
            (
                "ctj-notally",
                Box::new(|| {
                    let mut sink = CountSink::default();
                    Ctj::new()
                        .run_tallied::<NoTally>(&plan, &catalog, &mut sink)
                        .expect("runs");
                    sink.count()
                }),
            ),
            (
                "parlftj-counting",
                Box::new(|| {
                    let mut sink = CountSink::default();
                    settle(
                        par_lftj()
                            .run_tallied::<Counting>(&plan, &catalog, &mut sink)
                            .map(|_| ()),
                    );
                    sink.count()
                }),
            ),
            (
                "parlftj-notally",
                Box::new(|| {
                    let mut sink = CountSink::default();
                    settle(
                        par_lftj()
                            .run_tallied::<NoTally>(&plan, &catalog, &mut sink)
                            .map(|_| ()),
                    );
                    sink.count()
                }),
            ),
            (
                "parctj-counting",
                Box::new(|| {
                    let mut sink = CountSink::default();
                    settle(
                        par_ctj()
                            .run_tallied::<Counting>(&plan, &catalog, &mut sink)
                            .map(|_| ()),
                    );
                    sink.count()
                }),
            ),
            (
                "parctj-notally",
                Box::new(|| {
                    let mut sink = CountSink::default();
                    settle(
                        par_ctj()
                            .run_tallied::<NoTally>(&plan, &catalog, &mut sink)
                            .map(|_| ()),
                    );
                    sink.count()
                }),
            ),
        ];
        for (engine, mut f) in cases {
            let (median_ns, min_ns, max_ns, results) = time_runs(runs, &mut f);
            println!(
                "{:>8} {:<18} median {:>12} ns  ({} results)",
                pattern.label(),
                engine,
                median_ns,
                results
            );
            measurements.push(Measurement {
                engine,
                query: pattern.label(),
                median_ns,
                min_ns,
                max_ns,
                results,
            });
        }

        // Build-phase rows. Cold (always): the cache pinned off, every
        // sampled run pays the full trie construction. Warm (cache on):
        // one untimed priming run fills the shared cache, then every
        // sampled run serves all of the query's builds from it.
        let (cold_median, cold_min, cold_max, cold_hits) =
            build_phase_samples(runs, &plan, &catalog, || {
                pool.map_or_else(ParLftj::new, ParLftj::with_pool)
                    .with_split(split)
                    .without_trie_cache()
            });
        println!(
            "{:>8} {:<18} median {:>12} ns  ({} hits)",
            pattern.label(),
            "trie-build-cold",
            cold_median,
            cold_hits
        );
        measurements.push(Measurement {
            engine: "trie-build-cold",
            query: pattern.label(),
            median_ns: cold_median,
            min_ns: cold_min,
            max_ns: cold_max,
            results: cold_hits,
        });
        if let Some(cache) = &trie_cache {
            build_phase_samples(1, &plan, &catalog, || {
                pool.map_or_else(ParLftj::new, ParLftj::with_pool)
                    .with_split(split)
                    .with_trie_cache(cache.clone())
            });
            let (median_ns, min_ns, max_ns, hits) =
                build_phase_samples(runs, &plan, &catalog, || {
                    pool.map_or_else(ParLftj::new, ParLftj::with_pool)
                        .with_split(split)
                        .with_trie_cache(cache.clone())
                });
            assert!(hits > 0, "a primed cache must serve the warm build row");
            println!(
                "{:>8} {:<18} median {:>12} ns  ({} hits, {:.1}x cheaper than cold)",
                pattern.label(),
                "trie-build-warm",
                median_ns,
                hits,
                cold_median as f64 / median_ns.max(1) as f64
            );
            measurements.push(Measurement {
                engine: "trie-build-warm",
                query: pattern.label(),
                median_ns,
                min_ns,
                max_ns,
                results: hits,
            });
        }
        if let Some(path) = &store_path {
            let (median_ns, min_ns, max_ns, hits) =
                store_open_samples(runs, path, &plan, &catalog, pool, split);
            println!(
                "{:>8} {:<18} median {:>12} ns  ({} hits)",
                pattern.label(),
                "store-open-cold",
                median_ns,
                hits
            );
            measurements.push(Measurement {
                engine: "store-open-cold",
                query: pattern.label(),
                median_ns,
                min_ns,
                max_ns,
                results: hits,
            });
        }
        if let Some(n) = mutate_batch {
            for (engine, median_ns, min_ns, max_ns, results) in
                mutation_samples(runs, &plan, &catalog, n, pool, split)
            {
                println!(
                    "{:>8} {:<18} median {:>12} ns  ({} results)",
                    pattern.label(),
                    engine,
                    median_ns,
                    results
                );
                measurements.push(Measurement {
                    engine,
                    query: pattern.label(),
                    median_ns,
                    min_ns,
                    max_ns,
                    results,
                });
            }
        }
    }

    // Regression gate: compare medians against the previous artifact —
    // but only when it was produced by the same configuration, otherwise
    // every delta is an artifact of the config change, not a regression.
    let previous_text = std::fs::read_to_string(&out_path).unwrap_or_default();
    let current_sig = ConfigSig {
        dataset: Some(dataset.label().to_string()),
        scale: Some(scale.label().to_string()),
        runs: Some(runs as u128),
        pool: pool.map(|n| n as u128),
        cache_cap: cache_cap.map(|n| n as u128),
        // Signature-relevant only when the cache is actually on: `0`
        // measures the same thing as an absent flag.
        trie_cache_mb: trie_cache.as_ref().and(trie_cache_mb).map(u128::from),
        split,
        // Signature-relevant only when sub-root donation is actually on:
        // a cap of 0 measures the same schedule as an absent knob.
        split_depth: (split_depth > 0).then_some(split_depth as u128),
        cache_adapt,
        row_limit: row_limit.map(u128::from),
        deadline_ms: deadline_ms.map(u128::from),
        store: store_path.is_some(),
        mutate_batch: mutate_batch.map(|n| n as u128),
    };
    let previous = if previous_text.is_empty() {
        Vec::new()
    } else if config_signature(&previous_text) != current_sig {
        println!(
            "previous {out_path} used a different dataset/scale/runs/pool/cache-cap/split/\
             budget configuration: skipping the regression gate"
        );
        Vec::new()
    } else {
        parse_previous(&previous_text)
    };
    let mut regressions: Vec<String> = Vec::new();
    let mut compared = 0usize;
    if previous.is_empty() {
        if previous_text.is_empty() {
            println!("no previous {out_path}: skipping the regression gate");
        }
    } else {
        println!("median deltas vs previous {out_path}:");
        for m in &measurements {
            let Some((_, _, old_median, old_min)) = previous
                .iter()
                .find(|(q, e, _, _)| q == m.query && e == m.engine)
            else {
                println!("  {:>8} {:<18} (new row)", m.query, m.engine);
                continue;
            };
            compared += 1;
            let delta = (m.median_ns as f64 - *old_median as f64) / *old_median as f64 * 100.0;
            let min_delta = (m.min_ns as f64 - *old_min as f64) / *old_min as f64 * 100.0;
            println!(
                "  {:>8} {:<18} {:>+8.1}%  ({} -> {} ns)",
                m.query, m.engine, delta, old_median, m.median_ns
            );
            // A real regression slows the best case down too; requiring
            // both deltas keeps scheduler noise (which inflates medians
            // far more than minima, especially on loaded single-core
            // machines) from flapping the gate.
            if delta > GATE_THRESHOLD_PCT && min_delta > GATE_THRESHOLD_PCT {
                regressions.push(format!(
                    "{} {}: median {:+.1}%, min {:+.1}% (both > {GATE_THRESHOLD_PCT}%)",
                    m.query, m.engine, delta, min_delta
                ));
            }
        }
        // Reverse pass: a row that exists in the baseline but not in this
        // run means perf coverage silently shrank — say so.
        for (q, e, _, _) in &previous {
            if !measurements.iter().any(|m| m.query == *q && m.engine == *e) {
                println!("  {q:>8} {e:<18} (row disappeared from this run)");
            }
        }
    }
    // Every compared row regressing in lockstep is a machine-speed shift
    // (throttling, co-tenant load), not a code regression — a code change
    // slows specific engines, not all sixteen rows uniformly. Report it
    // and rebase instead of failing. The sample-size floor keeps a small
    // row overlap (e.g. after an engine rename) from auto-rebasing on
    // what may be real regressions. (A genuinely global slowdown across
    // a full row set still slips through — the printed deltas are there
    // for a human to read.)
    const LOCKSTEP_MIN_ROWS: usize = 8;
    if compared >= LOCKSTEP_MIN_ROWS && regressions.len() == compared {
        println!(
            "all {compared} compared rows regressed together: treating as a \
             machine-speed shift, gate skipped and baseline rebased"
        );
        regressions.clear();
    }
    if gate && !regressions.is_empty() {
        eprintln!("performance regressions detected; baseline left untouched:");
        for r in &regressions {
            eprintln!("  {r}");
        }
        std::process::exit(1);
    }

    // Hand-rolled JSON (no serde in the offline environment).
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str(&format!("  \"dataset\": \"{}\",\n", dataset.label()));
    json.push_str(&format!("  \"scale\": \"{}\",\n", scale.label()));
    json.push_str(&format!("  \"runs\": {runs},\n"));
    match pool {
        Some(n) => json.push_str(&format!("  \"pool\": {n},\n")),
        None => json.push_str("  \"pool\": null,\n"),
    }
    // Written only when set so artifacts from before the knob existed
    // (no "cache_cap" field) still signature-match uncapped runs.
    if let Some(n) = cache_cap {
        json.push_str(&format!("  \"cache_cap\": {n},\n"));
    }
    // Written only for cache-enabled runs, so cacheless artifacts from
    // before the knob existed still signature-match cacheless runs.
    if trie_cache.is_some() {
        if let Some(mb) = trie_cache_mb {
            json.push_str(&format!("  \"trie_cache_mb\": {mb},\n"));
        }
    }
    // Likewise written only for splitting runs, so pre-knob artifacts
    // still signature-match non-splitting runs.
    if split {
        json.push_str("  \"split\": true,\n");
    }
    // Written only when sub-root donation / the adaptive cache policy is
    // on, so pre-knob artifacts still signature-match default runs.
    if split_depth > 0 {
        json.push_str(&format!("  \"split_depth\": {split_depth},\n"));
    }
    if cache_adapt {
        json.push_str("  \"cache_adapt\": true,\n");
    }
    // Budget knobs are also written only when set: a governed run times
    // something different (cancellation latency), so it must never
    // signature-match — and silently gate against — ungoverned baselines.
    if let Some(n) = row_limit {
        json.push_str(&format!("  \"row_limit\": {n},\n"));
    }
    if let Some(n) = deadline_ms {
        json.push_str(&format!("  \"deadline_ms\": {n},\n"));
    }
    // Written only for store-backed runs, so pre-knob artifacts still
    // signature-match storeless runs (absent means `false`).
    if store_path.is_some() {
        json.push_str("  \"store\": true,\n");
    }
    // Written only for mutating runs: the mutation rows measure different
    // work per batch size, so artifacts only gate against the same `N` —
    // and pre-knob artifacts still match non-mutating runs.
    if let Some(n) = mutate_batch {
        json.push_str(&format!("  \"mutate_batch\": {n},\n"));
    }
    json.push_str("  \"measurements\": [\n");
    for (i, m) in measurements.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"query\": \"{}\", \"engine\": \"{}\", \"median_ns\": {}, \
             \"min_ns\": {}, \"max_ns\": {}, \"results\": {}}}{}\n",
            m.query,
            m.engine,
            m.median_ns,
            m.min_ns,
            m.max_ns,
            m.results,
            if i + 1 == measurements.len() { "" } else { "," }
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&out_path, json).expect("write BENCH_joins.json");
    println!("wrote {out_path}");
}
