//! Figure 13: speedup of TrieJax over Q100, Graphicionado, EmptyHeaded and
//! CTJ, per query and dataset (log-scale bars in the paper).

use triejax_bench::{fmt_ratio, geomean, paper, Harness, Table};

fn main() {
    let h = Harness::from_args();
    println!(
        "Figure 13: TrieJax speedup vs baselines ({} scale, {} threads)\n",
        h.scale.label(),
        h.config.threads
    );

    let mut table = Table::new([
        "query",
        "dataset",
        "results",
        "vs Q100",
        "vs Graphicionado",
        "vs EmptyHeaded",
        "vs CTJ",
    ]);
    let mut per_system: [Vec<f64>; 4] = [Vec::new(), Vec::new(), Vec::new(), Vec::new()];
    for &p in &h.patterns {
        for &d in &h.datasets {
            let cell = h.run_cell(p, d);
            cell.assert_agreement();
            let s = [
                cell.speedup_over(&cell.q100),
                cell.speedup_over(&cell.graphicionado),
                cell.speedup_over(&cell.emptyheaded),
                cell.speedup_over(&cell.ctj),
            ];
            for (acc, v) in per_system.iter_mut().zip(s) {
                acc.push(v);
            }
            table.row([
                p.label().to_string(),
                d.label().to_string(),
                cell.triejax.results.to_string(),
                fmt_ratio(s[0]),
                fmt_ratio(s[1]),
                fmt_ratio(s[2]),
                fmt_ratio(s[3]),
            ]);
        }
    }
    println!("{}", table.render());

    let systems = ["q100", "graphicionado", "emptyheaded", "ctj"];
    println!("averages (geomean) vs paper:");
    for (i, sys) in systems.iter().enumerate() {
        let avg = geomean(per_system[i].iter().copied());
        let min = per_system[i].iter().copied().fold(f64::INFINITY, f64::min);
        let max = per_system[i].iter().copied().fold(0.0, f64::max);
        let band = paper::band_for(sys).expect("known system");
        println!(
            "  {:14} ours avg {:>7} range {:>7}..{:<7}   paper avg {:>5} range {}..{}",
            sys,
            fmt_ratio(avg),
            fmt_ratio(min),
            fmt_ratio(max),
            fmt_ratio(band.speedup_avg),
            band.speedup_range.0,
            band.speedup_range.1
        );
    }
}
