//! Figure 14: TrieJax speedup with 4/8/16/32/64 threads over a
//! single-threaded TrieJax (paper §4.2: 8T ≈ 5.8x, 32T ≈ 10.8x, 64T flat).

use triejax_bench::{geomean, paper, Harness, Table};

fn main() {
    let h = Harness::from_args();
    println!(
        "Figure 14: multithreading speedup over 1 thread ({} scale)\n",
        h.scale.label()
    );

    let threads = [1usize, 4, 8, 16, 32, 64];
    let mut table = Table::new(
        ["query", "dataset"]
            .into_iter()
            .map(String::from)
            .chain(threads.iter().map(|t| format!("{t}T"))),
    );
    // speedups[i] collects per-cell speedup at threads[i].
    let mut speedups: Vec<Vec<f64>> = vec![Vec::new(); threads.len()];
    for &p in &h.patterns {
        for &d in &h.datasets {
            let catalog = h.catalog(d);
            let mut cells: Vec<String> = vec![p.label().to_string(), d.label().to_string()];
            let mut base_cycles = 0u64;
            for (i, &t) in threads.iter().enumerate() {
                let mut hh = h.clone();
                hh.config = hh.config.with_threads(t);
                let r = hh.run_triejax(p, &catalog);
                if i == 0 {
                    base_cycles = r.cycles.max(1);
                }
                let s = base_cycles as f64 / r.cycles.max(1) as f64;
                speedups[i].push(s);
                cells.push(format!("{s:.2}x"));
            }
            table.row(cells);
        }
    }
    println!("{}", table.render());

    println!(
        "geomean speedup per thread count (paper: 8T={}x, 32T={}x, 64T ~flat):",
        paper::MT_SPEEDUP_8T,
        paper::MT_SPEEDUP_32T
    );
    for (i, &t) in threads.iter().enumerate() {
        println!(
            "  {:>3} threads: {:.2}x",
            t,
            geomean(speedups[i].iter().copied())
        );
    }
}
