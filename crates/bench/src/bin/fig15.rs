//! Figure 15: TrieJax energy-consumption distribution per query, averaged
//! over datasets (DRAM / LLC / L2 / L1 / PJR cache / core).
//!
//! The paper's headline: energy is completely dominated by the memory
//! system (74-90% across queries), DRAM first; the PJR cache peaks at
//! 7.8% on cycle4 and consumes nothing on cycle3/clique4, which have no
//! valid cache.

use triejax_bench::{paper, Harness, Table};
use triejax_memsim::EnergyBreakdown;

fn main() {
    let h = Harness::from_args();
    println!(
        "Figure 15: TrieJax energy distribution per query ({} scale)\n",
        h.scale.label()
    );

    let mut table = Table::new([
        "query",
        "DRAM",
        "LLC",
        "L2",
        "L1",
        "PJR",
        "core",
        "memory-total",
        "paper-mem",
    ]);
    for &p in &h.patterns {
        let mut sum = EnergyBreakdown::default();
        for &d in &h.datasets {
            let catalog = h.catalog(d);
            let r = h.run_triejax(p, &catalog);
            sum = sum.add(&r.energy);
        }
        let total = sum.total().max(1e-18);
        let pct = |x: f64| format!("{:.1}%", 100.0 * x / total);
        let paper_mem = paper::ENERGY_MEMORY_SHARE_PER_QUERY
            .iter()
            .find(|(q, _)| *q == p.label())
            .map_or("-".to_string(), |(_, f)| format!("{:.1}%", 100.0 * f));
        table.row([
            p.label().to_string(),
            pct(sum.dram),
            pct(sum.llc),
            pct(sum.l2),
            pct(sum.l1),
            pct(sum.pjr),
            pct(sum.core),
            format!("{:.1}%", 100.0 * sum.memory_fraction()),
            paper_mem,
        ]);
    }
    println!("{}", table.render());
    println!(
        "paper: memory system dominates every query ({}..{}% of total), \
         PJR peaks at {:.1}% (cycle4) and is zero on cycle3/clique4",
        paper::ENERGY_MEMORY_FRACTION.0 * 100.0,
        paper::ENERGY_MEMORY_FRACTION.1 * 100.0,
        paper::ENERGY_PJR_MAX_FRACTION * 100.0
    );
}
