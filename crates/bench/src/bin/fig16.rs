//! Figure 16: reduction in energy consumption obtained with TrieJax versus
//! the four baselines (log-scale bars in the paper; headline averages
//! 110x/59x/15x/179x for CTJ/EmptyHeaded/Graphicionado/Q100).

use triejax_bench::{fmt_ratio, geomean, paper, Harness, Table};

fn main() {
    let h = Harness::from_args();
    println!(
        "Figure 16: energy reduction of TrieJax vs baselines ({} scale)\n",
        h.scale.label()
    );

    let mut table = Table::new([
        "query",
        "dataset",
        "vs Q100",
        "vs Graphicionado",
        "vs EmptyHeaded",
        "vs CTJ",
    ]);
    let mut per_system: [Vec<f64>; 4] = [Vec::new(), Vec::new(), Vec::new(), Vec::new()];
    for &p in &h.patterns {
        for &d in &h.datasets {
            let cell = h.run_cell(p, d);
            let e = [
                cell.energy_reduction_over(&cell.q100),
                cell.energy_reduction_over(&cell.graphicionado),
                cell.energy_reduction_over(&cell.emptyheaded),
                cell.energy_reduction_over(&cell.ctj),
            ];
            for (acc, v) in per_system.iter_mut().zip(e) {
                acc.push(v);
            }
            table.row([
                p.label().to_string(),
                d.label().to_string(),
                fmt_ratio(e[0]),
                fmt_ratio(e[1]),
                fmt_ratio(e[2]),
                fmt_ratio(e[3]),
            ]);
        }
    }
    println!("{}", table.render());

    let systems = ["q100", "graphicionado", "emptyheaded", "ctj"];
    println!("averages vs paper:");
    for (i, sys) in systems.iter().enumerate() {
        let geo = geomean(per_system[i].iter().copied());
        let arith = per_system[i].iter().sum::<f64>() / per_system[i].len().max(1) as f64;
        let band = paper::band_for(sys).expect("known system");
        println!(
            "  {:14} ours geomean {:>7} / mean {:>7}   paper avg {:>6}",
            sys,
            fmt_ratio(geo),
            fmt_ratio(arith),
            fmt_ratio(band.energy_avg)
        );
    }
}
