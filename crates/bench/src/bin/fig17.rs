//! Figure 17 (Appendix B): number of main-memory accesses per system.
//!
//! Paper headline: CTJ generates 2.8x fewer accesses than EmptyHeaded,
//! 47x fewer than Graphicionado and 105x fewer than Q100 — the WCOJ
//! engines' bound on intermediate results is directly visible in traffic.

use triejax_bench::{fmt_count, fmt_ratio, geomean, paper, Harness, Table};

fn main() {
    let h = Harness::from_args();
    println!(
        "Figure 17: main-memory accesses per system ({} scale)\n",
        h.scale.label()
    );

    let mut table = Table::new([
        "query",
        "dataset",
        "Q100",
        "Graphicionado",
        "EmptyHeaded",
        "CTJ",
    ]);
    let mut ratios: [Vec<f64>; 3] = [Vec::new(), Vec::new(), Vec::new()];
    for &p in &h.patterns {
        for &d in &h.datasets {
            let cell = h.run_cell(p, d);
            let ctj = cell.ctj.memory_accesses.max(1);
            ratios[0].push(cell.q100.memory_accesses as f64 / ctj as f64);
            ratios[1].push(cell.graphicionado.memory_accesses as f64 / ctj as f64);
            ratios[2].push(cell.emptyheaded.memory_accesses as f64 / ctj as f64);
            table.row([
                p.label().to_string(),
                d.label().to_string(),
                fmt_count(cell.q100.memory_accesses),
                fmt_count(cell.graphicionado.memory_accesses),
                fmt_count(cell.emptyheaded.memory_accesses),
                fmt_count(cell.ctj.memory_accesses),
            ]);
        }
    }
    println!("{}", table.render());
    println!("access ratios over CTJ (geomean) vs paper:");
    println!(
        "  q100          {:>8}   paper {}x",
        fmt_ratio(geomean(ratios[0].iter().copied())),
        paper::ACCESS_RATIO_Q100_OVER_CTJ
    );
    println!(
        "  graphicionado {:>8}   paper {}x",
        fmt_ratio(geomean(ratios[1].iter().copied())),
        paper::ACCESS_RATIO_GRAPHICIONADO_OVER_CTJ
    );
    println!(
        "  emptyheaded   {:>8}   paper {}x",
        fmt_ratio(geomean(ratios[2].iter().copied())),
        paper::ACCESS_RATIO_EH_OVER_CTJ
    );
}
