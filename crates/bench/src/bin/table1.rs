//! Table 1: the graph pattern matching operations used to evaluate TrieJax
//! and their mapping to join queries (datalog format).

use triejax_bench::Table;
use triejax_query::{patterns::Pattern, CompiledQuery};

fn main() {
    println!("Table 1: evaluation queries (datalog format)\n");
    let mut table = Table::new(["name", "query", "cache structure"]);
    for p in Pattern::PAPER {
        let q = p.query();
        let plan = CompiledQuery::compile(&q).expect("compiles");
        table.row([p.label().to_string(), q.to_datalog(), plan.describe()]);
    }
    println!("{}", table.render());
    println!("extensions beyond the paper:");
    let mut ext = Table::new(["name", "query"]);
    for p in Pattern::ALL
        .into_iter()
        .filter(|p| !Pattern::PAPER.contains(p))
    {
        ext.row([p.label().to_string(), p.query().to_datalog()]);
    }
    println!("{}", ext.render());
}
