//! Table 2: dataset statistics — the paper's values next to the generated
//! synthetic stand-ins at the chosen scale.

use triejax_bench::{fmt_count, Harness, Table};

fn main() {
    let h = Harness::from_args();
    println!("Table 2: dataset statistics ({} scale)\n", h.scale.label());
    let mut table = Table::new([
        "dataset",
        "snap name",
        "category",
        "paper nodes",
        "paper edges",
        "gen nodes",
        "gen edges",
        "max outdeg",
        "avg deg",
    ]);
    for &d in &h.datasets {
        let p = d.profile();
        let g = d.generate(h.scale);
        table.row([
            p.name.to_string(),
            p.snap_name.to_string(),
            p.category.label().to_string(),
            fmt_count(p.nodes as u64),
            fmt_count(p.edges as u64),
            fmt_count(g.num_nodes() as u64),
            fmt_count(g.num_edges() as u64),
            g.max_out_degree().to_string(),
            format!("{:.2}", g.avg_degree()),
        ]);
    }
    println!("{}", table.render());
    println!("(at --full scale the generated counts equal the paper's exactly)");
}
