//! Table 3: experimental configuration for TrieJax and the software
//! baselines, as encoded by the `triejax-memsim` presets.

use triejax_bench::Table;
use triejax_memsim::MemConfig;

fn row_for(cfg: &MemConfig) -> Vec<String> {
    let gb = |b: u64| format!("{}", b >> 20);
    vec![
        format!("{:.2} GHz", cfg.freq_ghz),
        format!("{} KB {}-way", cfg.l1.capacity >> 10, cfg.l1.ways),
        format!("{} KB {}-way", cfg.l2.capacity >> 10, cfg.l2.ways),
        format!("{} MB {}-way", gb(cfg.llc.capacity), cfg.llc.ways),
        format!(
            "{} ch, {:.1} B/cyc peak",
            cfg.dram.channels,
            cfg.dram.channels as f64 * 64.0 / cfg.dram.burst_cycles as f64
        ),
        if cfg.write_bypass {
            "yes".into()
        } else {
            "no".into()
        },
    ]
}

fn main() {
    println!("Table 3: experimental configuration\n");
    let mut table = Table::new([
        "config",
        "clock",
        "L1",
        "L2",
        "LLC",
        "DRAM",
        "result-write bypass",
    ]);
    let tj = MemConfig::triejax();
    let cpu = MemConfig::cpu();
    let mut r = vec!["TrieJax".to_string()];
    r.extend(row_for(&tj));
    table.row(r);
    let mut r = vec!["Xeon (software)".to_string()];
    r.extend(row_for(&cpu));
    table.row(r);
    println!("{}", table.render());
    println!("TrieJax extras: 4 MB PJR cache in 4 banks, 32 threads, combined MT");
}
