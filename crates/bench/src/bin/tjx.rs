//! `tjx` — a small CLI over the whole stack: run any datalog query on any
//! dataset (built-in synthetic or a SNAP file) through any system.
//!
//! ```text
//! tjx --query 'tri(x,y,z) = G(x,y),G(y,z),G(z,x)' --dataset wiki --system all
//! tjx --pattern clique4 --snap my_graph.txt --system triejax --threads 8
//! tjx --pattern path4 --dataset facebook --scale mini --system triejax --aggregate
//! ```
//!
//! The graph relation is always registered under the name `G`; queries
//! over other relation names need the library API.

use std::process::exit;

use triejax::{TrieJax, TrieJaxConfig};
use triejax_baselines::{BaselineSystem, CtjSoftware, EmptyHeaded, Graphicionado, Q100};
use triejax_bench::fmt_count;
use triejax_graph::{snap, Dataset, Graph, Scale};
use triejax_join::Catalog;
use triejax_query::{optimize_order, parse_query, patterns::Pattern, CompiledQuery};

struct Args {
    query_text: Option<String>,
    pattern: Option<Pattern>,
    dataset: Dataset,
    snap_path: Option<String>,
    scale: Scale,
    system: String,
    threads: Option<usize>,
    aggregate: bool,
    optimize: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: tjx [--query DATALOG | --pattern NAME] [--dataset NAME | --snap FILE]\n\
         \x20          [--scale tiny|mini|full] [--system all|triejax|ctj|emptyheaded|q100|graphicionado]\n\
         \x20          [--threads N] [--aggregate] [--optimize-order]"
    );
    exit(2)
}

fn parse_args() -> Args {
    let mut args = Args {
        query_text: None,
        pattern: Some(Pattern::Cycle3),
        dataset: Dataset::GrQc,
        snap_path: None,
        scale: Scale::Tiny,
        system: "triejax".to_string(),
        threads: None,
        aggregate: false,
        optimize: false,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        let value = |i: &mut usize| -> String {
            *i += 1;
            argv.get(*i).cloned().unwrap_or_else(|| usage())
        };
        match argv[i].as_str() {
            "--query" => {
                args.query_text = Some(value(&mut i));
                args.pattern = None;
            }
            "--pattern" => {
                args.pattern = Some(Pattern::from_label(&value(&mut i)).unwrap_or_else(|| usage()));
            }
            "--dataset" => {
                args.dataset = Dataset::from_label(&value(&mut i)).unwrap_or_else(|| usage());
            }
            "--snap" => args.snap_path = Some(value(&mut i)),
            "--scale" => {
                args.scale = match value(&mut i).as_str() {
                    "tiny" => Scale::Tiny,
                    "mini" => Scale::Mini,
                    "full" => Scale::Full,
                    _ => usage(),
                }
            }
            "--system" => args.system = value(&mut i),
            "--threads" => {
                args.threads = Some(value(&mut i).parse().unwrap_or_else(|_| usage()));
            }
            "--aggregate" => args.aggregate = true,
            "--optimize-order" => args.optimize = true,
            "--help" | "-h" => usage(),
            _ => usage(),
        }
        i += 1;
    }
    args
}

fn main() {
    let args = parse_args();

    let graph: Graph = match &args.snap_path {
        Some(path) => {
            let file = std::fs::File::open(path).unwrap_or_else(|e| {
                eprintln!("cannot open {path}: {e}");
                exit(1)
            });
            snap::read_snap(file).unwrap_or_else(|e| {
                eprintln!("cannot parse {path}: {e}");
                exit(1)
            })
        }
        None => args.dataset.generate(args.scale),
    };
    println!(
        "graph: {} nodes, {} edges",
        graph.num_nodes(),
        fmt_count(graph.num_edges() as u64)
    );

    let mut catalog = Catalog::new();
    catalog.insert("G", graph.edge_relation());

    let query = match (&args.query_text, args.pattern) {
        (Some(text), _) => parse_query(text).unwrap_or_else(|e| {
            eprintln!("bad query: {e}");
            exit(1)
        }),
        (None, Some(p)) => p.query(),
        _ => usage(),
    };
    let plan = if args.optimize {
        CompiledQuery::compile_with_order(&query, optimize_order(&query))
    } else {
        CompiledQuery::compile(&query)
    }
    .unwrap_or_else(|e| {
        eprintln!("cannot compile: {e}");
        exit(1)
    });
    println!("query: {query}\nplan:  {}\n", plan.describe());

    let run_triejax = |threads: Option<usize>, aggregate: bool| {
        let mut cfg = TrieJaxConfig::default().with_aggregate(aggregate);
        if let Some(t) = threads {
            cfg = cfg.with_threads(t);
        }
        let r = TrieJax::new(cfg).run(&plan, &catalog).unwrap_or_else(|e| {
            eprintln!("run failed: {e}");
            exit(1)
        });
        println!(
            "triejax        {:>12} results  {:>12.3} ms  {:>10.2} uJ  (pjr hit rate {:.0}%)",
            fmt_count(r.results),
            r.runtime_s * 1e3,
            r.energy_j() * 1e6,
            r.pjr.hit_rate() * 100.0
        );
    };

    let mut baselines: Vec<Box<dyn BaselineSystem>> = Vec::new();
    match args.system.as_str() {
        "triejax" => run_triejax(args.threads, args.aggregate),
        "all" => {
            run_triejax(args.threads, args.aggregate);
            baselines = vec![
                Box::new(CtjSoftware::new()),
                Box::new(EmptyHeaded::new()),
                Box::new(Q100::new()),
                Box::new(Graphicionado::new()),
            ];
        }
        "ctj" => baselines = vec![Box::new(CtjSoftware::new())],
        "emptyheaded" => baselines = vec![Box::new(EmptyHeaded::new())],
        "q100" => baselines = vec![Box::new(Q100::new())],
        "graphicionado" => baselines = vec![Box::new(Graphicionado::new())],
        _ => usage(),
    }
    for mut s in baselines {
        let r = s.evaluate(&plan, &catalog).unwrap_or_else(|e| {
            eprintln!("run failed: {e}");
            exit(1)
        });
        println!(
            "{:14} {:>12} results  {:>12.3} ms  {:>10.2} uJ",
            r.system,
            fmt_count(r.results),
            r.time_s * 1e3,
            r.energy_j * 1e6
        );
    }
}
