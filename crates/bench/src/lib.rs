//! Experiment harness regenerating every table and figure of the TrieJax
//! paper.
//!
//! One binary per artifact (see `src/bin/`): `table1` … `table3`,
//! `fig13` … `fig18`, plus the `ablation_*` binaries for the paper's
//! in-text claims and `all_experiments` which runs the full set. Every
//! binary accepts:
//!
//! * `--tiny` (default) / `--mini` / `--full` — dataset scale,
//! * `--dataset <name>` / `--pattern <name>` — restrict the matrix,
//! * `--threads <n>` — override the TrieJax thread count.
//!
//! Absolute numbers are not expected to match the paper (synthetic
//! stand-in datasets, parameterized rather than RTL-derived constants);
//! the *shape* — who wins, by roughly what factor, where the crossovers
//! fall — is the reproduction target, and each binary prints the paper's
//! reported band next to the measured value.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod paper;

use triejax::{SimReport, TrieJax, TrieJaxConfig};
use triejax_baselines::{
    BaselineReport, BaselineSystem, CtjSoftware, EmptyHeaded, Graphicionado, Q100,
};
use triejax_graph::{Dataset, Scale};
use triejax_join::Catalog;
use triejax_query::{patterns::Pattern, CompiledQuery};

/// Which experiments to run, parsed from the command line.
#[derive(Debug, Clone)]
pub struct Harness {
    /// Dataset scale.
    pub scale: Scale,
    /// Datasets to evaluate (Table-2 order).
    pub datasets: Vec<Dataset>,
    /// Patterns to evaluate (Table-1 order).
    pub patterns: Vec<Pattern>,
    /// TrieJax configuration.
    pub config: TrieJaxConfig,
}

impl Default for Harness {
    fn default() -> Self {
        Harness {
            scale: Scale::Tiny,
            datasets: Dataset::ALL.to_vec(),
            patterns: Pattern::PAPER.to_vec(),
            config: TrieJaxConfig::default(),
        }
    }
}

impl Harness {
    /// Parses the standard harness flags from `std::env::args`.
    ///
    /// Unknown flags abort with a usage message.
    pub fn from_args() -> Harness {
        let mut h = Harness::default();
        let args: Vec<String> = std::env::args().skip(1).collect();
        let mut i = 0;
        while i < args.len() {
            match args[i].as_str() {
                "--tiny" => h.scale = Scale::Tiny,
                "--mini" => h.scale = Scale::Mini,
                "--full" => h.scale = Scale::Full,
                "--dataset" => {
                    i += 1;
                    let name = args.get(i).expect("--dataset needs a value");
                    let d = Dataset::from_label(name)
                        .unwrap_or_else(|| panic!("unknown dataset {name}"));
                    h.datasets = vec![d];
                }
                "--pattern" => {
                    i += 1;
                    let name = args.get(i).expect("--pattern needs a value");
                    let p = Pattern::from_label(name)
                        .unwrap_or_else(|| panic!("unknown pattern {name}"));
                    h.patterns = vec![p];
                }
                "--threads" => {
                    i += 1;
                    let n: usize = args
                        .get(i)
                        .expect("--threads needs a value")
                        .parse()
                        .expect("number");
                    h.config = h.config.clone().with_threads(n);
                }
                other => {
                    eprintln!(
                        "unknown flag {other}\nusage: [--tiny|--mini|--full] \
                         [--dataset NAME] [--pattern NAME] [--threads N]"
                    );
                    std::process::exit(2);
                }
            }
            i += 1;
        }
        h
    }

    /// Builds the catalog (single edge relation `G`) for a dataset.
    pub fn catalog(&self, dataset: Dataset) -> Catalog {
        let graph = dataset.generate(self.scale);
        let mut c = Catalog::new();
        c.insert("G", graph.edge_relation());
        c
    }

    /// Runs the TrieJax simulator on one cell.
    pub fn run_triejax(&self, pattern: Pattern, catalog: &Catalog) -> SimReport {
        let plan = CompiledQuery::compile(&pattern.query()).expect("patterns compile");
        TrieJax::new(self.config.clone())
            .run(&plan, catalog)
            .expect("catalog satisfies plan")
    }

    /// Runs every system on one cell.
    pub fn run_cell(&self, pattern: Pattern, dataset: Dataset) -> CellResult {
        let catalog = self.catalog(dataset);
        let plan = CompiledQuery::compile(&pattern.query()).expect("patterns compile");
        let triejax = TrieJax::new(self.config.clone())
            .run(&plan, &catalog)
            .expect("catalog satisfies plan");
        let run = |mut s: Box<dyn BaselineSystem>| -> BaselineReport {
            s.evaluate(&plan, &catalog).expect("catalog satisfies plan")
        };
        CellResult {
            pattern,
            dataset,
            triejax,
            ctj: run(Box::new(CtjSoftware::new())),
            emptyheaded: run(Box::new(EmptyHeaded::new())),
            q100: run(Box::new(Q100::new())),
            graphicionado: run(Box::new(Graphicionado::new())),
        }
    }
}

/// All five systems evaluated on one (pattern, dataset) cell.
#[derive(Debug, Clone)]
pub struct CellResult {
    /// The pattern query.
    pub pattern: Pattern,
    /// The dataset.
    pub dataset: Dataset,
    /// TrieJax simulation report.
    pub triejax: SimReport,
    /// Software Cached TrieJoin model.
    pub ctj: BaselineReport,
    /// EmptyHeaded model.
    pub emptyheaded: BaselineReport,
    /// Q100 model.
    pub q100: BaselineReport,
    /// Graphicionado model.
    pub graphicionado: BaselineReport,
}

impl CellResult {
    /// Speedup of TrieJax over a baseline report (time ratio).
    pub fn speedup_over(&self, baseline: &BaselineReport) -> f64 {
        baseline.time_s / self.triejax.runtime_s.max(1e-12)
    }

    /// Energy reduction of TrieJax versus a baseline report.
    pub fn energy_reduction_over(&self, baseline: &BaselineReport) -> f64 {
        baseline.energy_j / self.triejax.energy_j().max(1e-18)
    }

    /// Sanity: every system must return the same result count.
    pub fn assert_agreement(&self) {
        let t = self.triejax.results;
        assert_eq!(t, self.ctj.results, "{} {} ctj", self.pattern, self.dataset);
        assert_eq!(
            t, self.emptyheaded.results,
            "{} {} eh",
            self.pattern, self.dataset
        );
        assert_eq!(
            t, self.q100.results,
            "{} {} q100",
            self.pattern, self.dataset
        );
        assert_eq!(
            t, self.graphicionado.results,
            "{} {} graphicionado",
            self.pattern, self.dataset
        );
    }
}

/// Geometric mean of a sequence (1.0 for an empty sequence).
pub fn geomean(values: impl IntoIterator<Item = f64>) -> f64 {
    let mut log_sum = 0.0;
    let mut n = 0usize;
    for v in values {
        log_sum += v.max(1e-300).ln();
        n += 1;
    }
    if n == 0 {
        1.0
    } else {
        (log_sum / n as f64).exp()
    }
}

/// Formats a ratio as the paper writes them (e.g. `12.3x`).
pub fn fmt_ratio(r: f64) -> String {
    if r >= 100.0 {
        format!("{r:.0}x")
    } else if r >= 10.0 {
        format!("{r:.1}x")
    } else {
        format!("{r:.2}x")
    }
}

/// Formats a count with thousands separators.
pub fn fmt_count(n: u64) -> String {
    let s = n.to_string();
    let mut out = String::new();
    for (i, ch) in s.chars().enumerate() {
        if i > 0 && (s.len() - i).is_multiple_of(3) {
            out.push(',');
        }
        out.push(ch);
    }
    out
}

/// A simple fixed-width table printer for paper-style output.
#[derive(Debug, Default)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(headers: I) -> Table {
        Table {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row (must match the header count).
    pub fn row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, cells: I) {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.headers.len(), "row width mismatch");
        self.rows.push(row);
    }

    /// Renders with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for c in 0..cols {
                widths[c] = widths[c].max(row[c].len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (c, cell) in cells.iter().enumerate() {
                if c > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{:>width$}", cell, width = widths[c]));
            }
            line
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_basics() {
        assert!((geomean([4.0, 9.0]) - 6.0).abs() < 1e-12);
        assert_eq!(geomean(std::iter::empty()), 1.0);
    }

    #[test]
    fn ratio_formatting() {
        assert_eq!(fmt_ratio(539.4), "539x");
        assert_eq!(fmt_ratio(12.34), "12.3x");
        assert_eq!(fmt_ratio(1.25), "1.25x");
    }

    #[test]
    fn count_formatting() {
        assert_eq!(fmt_count(1234567), "1,234,567");
        assert_eq!(fmt_count(12), "12");
    }

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(["a", "bb"]);
        t.row(["1", "2"]);
        t.row(["333", "4"]);
        let s = t.render();
        assert!(s.contains("333"));
        assert_eq!(s.lines().count(), 4);
    }

    #[test]
    fn harness_cell_runs_all_systems() {
        let h = Harness::default();
        let cell = h.run_cell(Pattern::Cycle3, Dataset::GrQc);
        cell.assert_agreement();
        assert!(cell.speedup_over(&cell.ctj) > 0.0);
        assert!(cell.energy_reduction_over(&cell.q100) > 0.0);
    }
}
