//! The paper's reported numbers, for side-by-side printing.
//!
//! Sources: abstract, §4.2-§4.4 and Appendices A-B of "The TrieJax
//! Architecture: Accelerating Graph Operations Through Relational Joins".

/// One baseline's reported speedup/energy bands (averages and ranges).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReportedBand {
    /// System name as in the figures.
    pub system: &'static str,
    /// Average speedup of TrieJax over this system.
    pub speedup_avg: f64,
    /// Reported speedup range (min, max).
    pub speedup_range: (f64, f64),
    /// Average energy reduction.
    pub energy_avg: f64,
}

/// Figure 13 / Figure 16 headline bands.
pub const BANDS: [ReportedBand; 4] = [
    ReportedBand {
        system: "ctj",
        speedup_avg: 20.0,
        speedup_range: (5.5, 45.0),
        energy_avg: 110.0,
    },
    ReportedBand {
        system: "emptyheaded",
        speedup_avg: 9.0,
        speedup_range: (2.5, 44.0),
        energy_avg: 59.0,
    },
    ReportedBand {
        system: "graphicionado",
        speedup_avg: 7.0,
        speedup_range: (0.8, 32.0),
        energy_avg: 15.0,
    },
    ReportedBand {
        system: "q100",
        speedup_avg: 63.0,
        speedup_range: (0.9, 539.0),
        energy_avg: 179.0,
    },
];

/// Figure 14: multithreading speedup over a single thread.
pub const MT_SPEEDUP_8T: f64 = 5.8;
/// Figure 14: speedup at 32 threads (the shipped configuration).
pub const MT_SPEEDUP_32T: f64 = 10.8;

/// Figure 15: DRAM-dominated energy fraction band across queries.
pub const ENERGY_MEMORY_FRACTION: (f64, f64) = (0.74, 0.90);
/// Figure 15: maximum PJR-cache energy share (cycle4).
pub const ENERGY_PJR_MAX_FRACTION: f64 = 0.078;

/// Figure 15 caption values: memory-system share per query (%).
pub const ENERGY_MEMORY_SHARE_PER_QUERY: [(&str, f64); 5] = [
    ("Path3", 0.8926),
    ("Path4", 0.9041),
    ("Cycle3", 0.8021),
    ("Cycle4", 0.7380),
    ("Clique4", 0.8013),
];

/// Appendix A (Figure 18): CTJ generates this many times fewer
/// intermediates than pairwise on Path4 / Cycle4 (and none on Clique4).
pub const INTERMEDIATE_REDUCTION_PATH4: f64 = 18.0;
/// Appendix A: Cycle4 intermediate-result reduction.
pub const INTERMEDIATE_REDUCTION_CYCLE4: f64 = 36.0;

/// Appendix B (Figure 17): CTJ versus others, main-memory accesses.
pub const ACCESS_RATIO_EH_OVER_CTJ: f64 = 2.8;
/// Appendix B: Graphicionado / CTJ access ratio.
pub const ACCESS_RATIO_GRAPHICIONADO_OVER_CTJ: f64 = 47.0;
/// Appendix B: Q100 / CTJ access ratio.
pub const ACCESS_RATIO_Q100_OVER_CTJ: f64 = 105.0;

/// §3.1: result-write cache bypass is worth up to this much on path4.
pub const BYPASS_MAX_SPEEDUP: f64 = 2.5;

/// Returns the reported band for a system name, if any.
pub fn band_for(system: &str) -> Option<&'static ReportedBand> {
    BANDS.iter().find(|b| b.system == system)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bands_are_findable() {
        assert_eq!(band_for("q100").unwrap().speedup_avg, 63.0);
        assert!(band_for("nope").is_none());
    }

    #[test]
    fn shares_cover_the_five_queries() {
        assert_eq!(ENERGY_MEMORY_SHARE_PER_QUERY.len(), 5);
        for (_, f) in ENERGY_MEMORY_SHARE_PER_QUERY {
            assert!(f > 0.7 && f < 1.0);
        }
    }
}
