use triejax_memsim::{EnergyModel, MemConfig};

/// Multithreading scheme (paper §3.4, Figure 8).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum MtMode {
    /// Split the first join attribute statically across thread contexts.
    Static,
    /// Single seed thread; every match may spawn a sibling thread that
    /// takes over the remainder of the level.
    Dynamic,
    /// Static partitioning to start, dynamic spawning to re-balance — the
    /// configuration TrieJax ships with.
    #[default]
    Combined,
}

impl MtMode {
    /// Label for tables.
    pub fn label(self) -> &'static str {
        match self {
            MtMode::Static => "static",
            MtMode::Dynamic => "dynamic",
            MtMode::Combined => "combined",
        }
    }
}

/// Full accelerator configuration.
///
/// The default reproduces the paper's evaluated design point: 32 thread
/// contexts with combined multithreading, a 4 MB PJR cache with 4 banks,
/// result-write cache bypass on, and the Table-3 memory system at
/// 2.38 GHz.
#[derive(Debug, Clone, PartialEq)]
pub struct TrieJaxConfig {
    /// Hardware thread contexts (32 in the paper; Figure 14 sweeps this).
    pub threads: usize,
    /// Multithreading scheme.
    pub mt_mode: MtMode,
    /// PJR cache capacity in bytes (4 MB in the paper, §3.7).
    pub pjr_bytes: u64,
    /// PJR banks usable in parallel (4 in the paper, §3.7).
    pub pjr_banks: usize,
    /// PJR access latency per bank access, cycles.
    pub pjr_latency: u64,
    /// Maximum `(value, indexes)` pairs per PJR entry; larger fills are
    /// discarded (insertion-buffer overflow, §3.5).
    pub pjr_entry_values: usize,
    /// Disable the PJR cache entirely (ablation).
    pub pjr_enabled: bool,
    /// Result writes bypass the caches (§3.1); turning this off is the
    /// ablation the paper quotes as costing up to 2.5x on path4.
    pub write_bypass: bool,
    /// Aggregation mode (the paper's §5 future-work extension): results
    /// are counted in an on-chip accumulator instead of being materialized
    /// to memory — e.g. triangle *counting* rather than enumeration.
    pub aggregate: bool,
    /// Memory-system configuration.
    pub mem: MemConfig,
    /// Energy constants.
    pub energy: EnergyModel,
}

impl Default for TrieJaxConfig {
    fn default() -> Self {
        TrieJaxConfig {
            threads: 32,
            mt_mode: MtMode::Combined,
            pjr_bytes: 4 << 20,
            pjr_banks: 4,
            pjr_latency: 4,
            pjr_entry_values: 256,
            pjr_enabled: true,
            write_bypass: true,
            aggregate: false,
            mem: MemConfig::triejax(),
            energy: EnergyModel::default(),
        }
    }
}

impl TrieJaxConfig {
    /// The paper's design point (same as `Default`).
    pub fn paper() -> Self {
        Self::default()
    }

    /// Copy with a different thread count (Figure 14 sweeps).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Copy with a different multithreading scheme.
    pub fn with_mt_mode(mut self, mode: MtMode) -> Self {
        self.mt_mode = mode;
        self
    }

    /// Copy with the PJR cache disabled or enabled.
    pub fn with_pjr_enabled(mut self, enabled: bool) -> Self {
        self.pjr_enabled = enabled;
        self
    }

    /// Copy with a different PJR capacity.
    pub fn with_pjr_bytes(mut self, bytes: u64) -> Self {
        self.pjr_bytes = bytes;
        self
    }

    /// Copy with the result-write bypass toggled.
    pub fn with_write_bypass(mut self, bypass: bool) -> Self {
        self.write_bypass = bypass;
        self.mem.write_bypass = bypass;
        self
    }

    /// Copy with aggregation (count-only) mode toggled.
    pub fn with_aggregate(mut self, aggregate: bool) -> Self {
        self.aggregate = aggregate;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_the_paper_design_point() {
        let c = TrieJaxConfig::default();
        assert_eq!(c.threads, 32);
        assert_eq!(c.mt_mode, MtMode::Combined);
        assert_eq!(c.pjr_bytes, 4 << 20);
        assert_eq!(c.pjr_banks, 4);
        assert!(c.write_bypass);
        assert!((c.mem.freq_ghz - 2.38).abs() < 1e-12);
    }

    #[test]
    fn builders_adjust_fields() {
        let c = TrieJaxConfig::default()
            .with_threads(8)
            .with_mt_mode(MtMode::Static)
            .with_pjr_enabled(false)
            .with_write_bypass(false);
        assert_eq!(c.threads, 8);
        assert_eq!(c.mt_mode, MtMode::Static);
        assert!(!c.pjr_enabled);
        assert!(!c.write_bypass);
        assert!(!c.mem.write_bypass);
    }

    #[test]
    fn aggregate_mode_toggles() {
        assert!(!TrieJaxConfig::default().aggregate);
        assert!(TrieJaxConfig::default().with_aggregate(true).aggregate);
    }

    #[test]
    fn threads_clamped_to_one() {
        assert_eq!(TrieJaxConfig::default().with_threads(0).threads, 1);
    }

    #[test]
    fn labels() {
        assert_eq!(MtMode::Static.label(), "static");
        assert_eq!(MtMode::Combined.label(), "combined");
    }
}
