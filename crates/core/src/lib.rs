//! Cycle-level simulator of **TrieJax**, the on-die accelerator for
//! worst-case-optimal joins and graph pattern matching (Kalinsky,
//! Kimelfeld, Etsion — "The TrieJax Architecture: Accelerating Graph
//! Operations Through Relational Joins").
//!
//! The simulator models every micro-architectural component of paper §3:
//!
//! * **Cupid** — full-join control: binding variables, backtracking,
//!   result emission, thread management (Figure 12).
//! * **MatchMaker** — per-variable leapfrog alignment (Figure 10).
//! * **LUB** — lowest-upper-bound binary search with one memory probe per
//!   step (Figure 9); duplicated twice.
//! * **Midwife** — trie child-range expansion (Figure 11); duplicated.
//! * **PJR cache** — the 4 MB partial-join-result SRAM with its insertion
//!   buffer and overflow rules (§3.5).
//! * **Multithreading** — static first-attribute partitioning plus dynamic
//!   spawn-on-match, 32 thread contexts by default (§3.4).
//! * **Memory system** — read-only L1/L2, shared LLC, banked DDR3, and the
//!   result-write cache bypass (§3.1), via [`triejax_memsim`].
//!
//! The execution *semantics* are Cached TrieJoin; every run's result count
//! is validated against the software engines in `triejax-join` by the test
//! suite. The *timing* comes from a discrete-event simulation clocked at
//! 2.38 GHz.
//!
//! # Example
//!
//! ```
//! use triejax::{TrieJax, TrieJaxConfig};
//! use triejax_join::Catalog;
//! use triejax_query::{patterns, CompiledQuery};
//! use triejax_relation::Relation;
//!
//! let mut catalog = Catalog::new();
//! catalog.insert("G", Relation::from_pairs(vec![(0, 1), (1, 2), (2, 0)]));
//! let plan = CompiledQuery::compile(&patterns::cycle3())?;
//!
//! let accel = TrieJax::new(TrieJaxConfig::default());
//! let report = accel.run(&plan, &catalog)?;
//! assert_eq!(report.results, 3);
//! assert!(report.cycles > 0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod report;
mod sim;

pub use config::{MtMode, TrieJaxConfig};
pub use report::{ComponentOps, PjrStats, SimReport};
pub use sim::TrieJax;
