use triejax_memsim::{EnergyBreakdown, MemStats};

/// Operation counts per accelerator component (drives core energy).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ComponentOps {
    /// Cupid control steps (match handling, backtracking, emission).
    pub cupid: u64,
    /// MatchMaker leapfrog alignments.
    pub matchmaker: u64,
    /// LUB seek operations issued.
    pub lub_seeks: u64,
    /// Individual LUB binary-search probes (memory touches).
    pub lub_probes: u64,
    /// Midwife child-range expansions.
    pub midwife: u64,
}

impl ComponentOps {
    /// Total component operations (the core-energy op count).
    pub fn total(&self) -> u64 {
        self.cupid + self.matchmaker + self.lub_seeks + self.lub_probes + self.midwife
    }
}

/// PJR-cache behaviour over one run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PjrStats {
    /// Lookups that found a committed entry.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// Entries committed from the insertion buffer.
    pub insertions: u64,
    /// Entries discarded (capacity overflow, in-flight conflicts, or
    /// spawn-split recordings).
    pub discarded: u64,
    /// Entries evicted to make room.
    pub evictions: u64,
    /// Total SRAM bank accesses (lookups + entry-value reads + fills).
    pub accesses: u64,
    /// Cached values replayed instead of being recomputed.
    pub values_replayed: u64,
    /// Values written into committed entries (the CTJ "intermediate
    /// results" of paper Figure 18).
    pub values_stored: u64,
}

impl PjrStats {
    /// Hit rate in `[0, 1]` (0 when the cache was never consulted).
    pub fn hit_rate(&self) -> f64 {
        let n = self.hits + self.misses;
        if n == 0 {
            0.0
        } else {
            self.hits as f64 / n as f64
        }
    }
}

/// Everything measured in one simulated TrieJax run.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SimReport {
    /// Total cycles at the accelerator clock.
    pub cycles: u64,
    /// Wall-clock seconds at the configured frequency.
    pub runtime_s: f64,
    /// Result tuples produced.
    pub results: u64,
    /// Result cache lines streamed to DRAM.
    pub result_lines_written: u64,
    /// Per-component operation counts.
    pub ops: ComponentOps,
    /// PJR-cache statistics.
    pub pjr: PjrStats,
    /// Memory-hierarchy counters.
    pub mem: MemStats,
    /// Energy breakdown (paper Figure 15 axes).
    pub energy: EnergyBreakdown,
    /// Thread contexts that ever ran.
    pub threads_used: u64,
    /// Dynamic spawns performed.
    pub spawns: u64,
}

impl SimReport {
    /// Total joules.
    pub fn energy_j(&self) -> f64 {
        self.energy.total()
    }

    /// Main-memory accesses (64-byte DRAM bursts) — the Figure 17 metric
    /// for TrieJax.
    pub fn dram_accesses(&self) -> u64 {
        self.mem.dram.accesses()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn component_total_sums() {
        let ops = ComponentOps {
            cupid: 1,
            matchmaker: 2,
            lub_seeks: 3,
            lub_probes: 4,
            midwife: 5,
        };
        assert_eq!(ops.total(), 15);
    }

    #[test]
    fn pjr_hit_rate_safe_on_zero() {
        assert_eq!(PjrStats::default().hit_rate(), 0.0);
        let s = PjrStats {
            hits: 3,
            misses: 1,
            ..Default::default()
        };
        assert!((s.hit_rate() - 0.75).abs() < 1e-12);
    }
}
