//! Address-aware trie cursor for the cycle-level simulator.
//!
//! Unlike [`triejax_relation::TrieCursor`], this cursor exposes the *byte
//! address* of every word it touches so the simulator can charge each probe
//! to the memory hierarchy, and it separates state changes from memory
//! charging (the caller owns timing).

use triejax_relation::{Addr, Trie, Value};

/// One open level: sibling index range `[lo, hi)` and position.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Frame {
    pub lo: u32,
    pub hi: u32,
    pub pos: u32,
}

/// Cursor over one trie, identified externally (the simulator passes the
/// `&Trie` into every call to keep borrows local).
#[derive(Debug, Clone, Default)]
pub(crate) struct SimCursor {
    frames: Vec<Frame>,
}

impl SimCursor {
    #[allow(dead_code)] // kept for parity with TrieCursor's API
    pub fn depth(&self) -> usize {
        self.frames.len()
    }

    pub fn at_end(&self) -> bool {
        let f = self.frames.last().expect("cursor above root");
        f.pos >= f.hi
    }

    pub fn key(&self, trie: &Trie) -> Value {
        let f = self.frames.last().expect("cursor above root");
        trie.level(self.frames.len() - 1).values()[f.pos as usize]
    }

    pub fn pos(&self) -> u32 {
        self.frames.last().expect("cursor above root").pos
    }

    /// Address of the value word at `idx` on the current level.
    pub fn value_addr(&self, trie: &Trie, idx: u32) -> Addr {
        trie.level(self.frames.len() - 1)
            .values_span()
            .word(idx as usize)
    }

    /// Child range of the current node, with the two child-range word
    /// addresses the Midwife unit reads.
    pub fn child_range(&self, trie: &Trie) -> ((u32, u32), [Addr; 2]) {
        let depth = self.frames.len() - 1;
        let pos = self.pos() as usize;
        let (lo, hi) = trie.level(depth).child_range(pos);
        let span = trie.level(depth).child_span();
        ((lo as u32, hi as u32), [span.word(pos), span.word(pos + 1)])
    }

    /// Opens the root level (full range). Returns `false` on an empty trie.
    pub fn open_root(&mut self, trie: &Trie) -> bool {
        let n = trie.level(0).len() as u32;
        if n == 0 {
            return false;
        }
        self.frames.push(Frame {
            lo: 0,
            hi: n,
            pos: 0,
        });
        true
    }

    /// Opens a child level with an explicit range (from [`child_range`]).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty — trie nodes always have children.
    pub fn open_range(&mut self, lo: u32, hi: u32) {
        assert!(lo < hi, "trie child ranges are never empty");
        self.frames.push(Frame { lo, hi, pos: lo });
    }

    /// Opens a child level directly at a cached absolute index (PJR replay;
    /// no memory touched).
    pub fn open_at(&mut self, pos: u32) {
        self.frames.push(Frame {
            lo: pos,
            hi: pos + 1,
            pos,
        });
    }

    /// Constrains the current level to `[lo, hi)` — static multithreading's
    /// first-attribute partitioning.
    pub fn constrain(&mut self, lo: u32, hi: u32) {
        let f = self.frames.last_mut().expect("cursor above root");
        f.lo = f.lo.max(lo);
        f.hi = f.hi.min(hi);
        f.pos = f.pos.max(f.lo);
    }

    pub fn up(&mut self) {
        self.frames.pop().expect("cursor above root");
    }

    /// Advances one sibling; returns the address of the newly exposed value
    /// word, or `None` at level end.
    pub fn advance(&mut self, trie: &Trie) -> Option<Addr> {
        let depth = self.frames.len() - 1;
        let f = self.frames.last_mut().expect("cursor above root");
        f.pos += 1;
        if f.pos < f.hi {
            Some(trie.level(depth).values_span().word(f.pos as usize))
        } else {
            None
        }
    }

    /// Binary-search seek to the lowest upper bound of `v` among the
    /// remaining siblings (the LUB unit, paper Figure 9). The position is
    /// updated and every probed word address is appended to `probes`.
    /// Returns `false` when the level is exhausted.
    pub fn seek(&mut self, trie: &Trie, v: Value, probes: &mut Vec<Addr>) -> bool {
        let depth = self.frames.len() - 1;
        let level = trie.level(depth);
        let values = level.values();
        let span = level.values_span();
        let f = self.frames.last_mut().expect("cursor above root");
        let (mut lo, mut hi) = (f.pos, f.hi);
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            probes.push(span.word(mid as usize));
            if values[mid as usize] < v {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        f.pos = lo;
        f.pos < f.hi
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use triejax_relation::{AddressSpace, Relation};

    fn trie() -> Trie {
        let mut t = Trie::build(&Relation::from_pairs(vec![
            (1, 2),
            (1, 5),
            (3, 4),
            (7, 1),
            (7, 9),
        ]));
        t.assign_addresses(&mut AddressSpace::new());
        t
    }

    #[test]
    fn open_and_walk() {
        let t = trie();
        let mut c = SimCursor::default();
        assert!(c.open_root(&t));
        assert_eq!(c.key(&t), 1);
        assert!(c.advance(&t).is_some());
        assert_eq!(c.key(&t), 3);
    }

    #[test]
    fn seek_collects_probe_addresses() {
        let t = trie();
        let mut c = SimCursor::default();
        c.open_root(&t);
        let mut probes = Vec::new();
        assert!(c.seek(&t, 4, &mut probes));
        assert_eq!(c.key(&t), 7);
        assert!(!probes.is_empty());
        let span = t.level(0).values_span();
        for p in &probes {
            assert!(*p >= span.base && *p < span.base + span.bytes);
        }
    }

    #[test]
    fn child_range_returns_both_word_addresses() {
        let t = trie();
        let mut c = SimCursor::default();
        c.open_root(&t);
        let ((lo, hi), addrs) = c.child_range(&t);
        assert_eq!((lo, hi), (0, 2));
        assert_eq!(addrs[1] - addrs[0], 4);
        c.open_range(lo, hi);
        assert_eq!(c.key(&t), 2);
    }

    #[test]
    fn constrain_narrows_root() {
        let t = trie();
        let mut c = SimCursor::default();
        c.open_root(&t);
        c.constrain(1, 2);
        assert_eq!(c.key(&t), 3);
        assert!(c.advance(&t).is_none());
    }

    #[test]
    fn open_at_is_a_singleton() {
        let t = trie();
        let mut c = SimCursor::default();
        c.open_root(&t);
        c.advance(&t);
        c.open_at(2); // children of 3 start at index 2 in level 1
        assert_eq!(c.key(&t), 4);
        assert!(c.advance(&t).is_none());
        c.up();
        assert_eq!(c.key(&t), 3);
    }

    #[test]
    fn empty_trie_open_fails() {
        let t = Trie::build(&Relation::new(2).unwrap());
        let mut c = SimCursor::default();
        assert!(!c.open_root(&t));
    }
}
