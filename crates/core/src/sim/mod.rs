//! The discrete-event, cycle-level TrieJax simulator.
//!
//! Each hardware thread context executes the Cached TrieJoin control flow
//! of paper Figures 9-12 as a resumable state machine. One simulation
//! event advances one thread through one macro-operation (opening a level,
//! one leapfrog alignment, one match, one replayed cache value, one
//! backtrack step); the latencies inside an event are sequentially
//! dependent (binary-search probes, child-range reads), while memory-level
//! parallelism arises across threads, exactly as the paper's
//! multithreading intends (§3.4).

mod cursor;
mod pjr;
mod units;

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::rc::Rc;

use triejax_join::{Catalog, JoinError, ResultSink, TrieSet};
use triejax_memsim::{Cycle, MemorySystem};
use triejax_query::CompiledQuery;
use triejax_relation::{AddressSpace, Trie, Value};

use crate::report::{ComponentOps, SimReport};
use crate::{MtMode, TrieJaxConfig};

use cursor::SimCursor;
use pjr::{PjrCache, PjrEntry, PjrKey};
use units::Units;

/// The TrieJax accelerator: configure once, run compiled queries.
///
/// See the crate-level example. Every run executes the full Cached
/// TrieJoin and reports cycle-accurate timing, per-component operation
/// counts, memory-system behaviour and the energy breakdown.
#[derive(Debug, Clone)]
pub struct TrieJax {
    config: TrieJaxConfig,
}

impl TrieJax {
    /// Creates an accelerator instance with the given configuration.
    pub fn new(config: TrieJaxConfig) -> Self {
        TrieJax { config }
    }

    /// The active configuration.
    pub fn config(&self) -> &TrieJaxConfig {
        &self.config
    }

    /// Runs `plan` over `catalog`, counting results.
    ///
    /// # Errors
    ///
    /// Returns a [`JoinError`] if the catalog does not satisfy the plan.
    pub fn run(&self, plan: &CompiledQuery, catalog: &Catalog) -> Result<SimReport, JoinError> {
        self.run_inner(plan, catalog, &mut NullSink)
    }

    /// Runs `plan` over `catalog`, streaming every result into `sink`
    /// (head-variable order). Mainly for validation against the software
    /// engines.
    ///
    /// # Errors
    ///
    /// Returns a [`JoinError`] if the catalog does not satisfy the plan.
    pub fn run_with_sink(
        &self,
        plan: &CompiledQuery,
        catalog: &Catalog,
        sink: &mut dyn ResultSink,
    ) -> Result<SimReport, JoinError> {
        self.run_inner(plan, catalog, sink)
    }

    fn run_inner(
        &self,
        plan: &CompiledQuery,
        catalog: &Catalog,
        sink: &mut dyn ResultSink,
    ) -> Result<SimReport, JoinError> {
        let mut tries = TrieSet::build(plan, catalog)?;
        let mut asp = AddressSpace::new();
        tries.assign_addresses(&mut asp);
        let result_base = asp.alloc(64).base;

        // An empty atom relation annuls the join.
        if tries.tries().iter().any(|t| t.tuple_count() == 0) {
            return Ok(SimReport::default());
        }

        let mut sim = Simulator::new(&self.config, plan, &tries, result_base, sink);
        sim.launch();
        sim.run_to_completion();
        Ok(sim.into_report())
    }
}

/// Sink that discards results (counting happens in the simulator).
struct NullSink;

impl ResultSink for NullSink {
    fn push(&mut self, _tuple: &[Value]) {}
}

/// Per-level execution frame.
#[derive(Debug, Clone)]
struct LevelFrame {
    mode: FrameMode,
    /// The remainder of this level is owned by a spawned thread.
    detached: bool,
    recording: Option<RecordState>,
}

#[derive(Debug, Clone)]
enum FrameMode {
    /// Leapfrog over the participating cursors; `p` is the round-robin
    /// pointer of the classic algorithm.
    Normal { p: usize },
    /// Replaying a PJR entry.
    Replay {
        entry: PjrEntry,
        idx: usize,
        open: bool,
    },
}

#[derive(Debug, Clone)]
struct RecordState {
    key: PjrKey,
}

/// What the thread does at its next event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    StartLevel { depth: usize },
    Advance { depth: usize },
    ReplayNext { depth: usize },
    Backtrack { depth: usize },
    Idle,
}

#[derive(Debug, Clone)]
struct ThreadCtx {
    cursors: Vec<SimCursor>,
    binding: Vec<Value>,
    stack: Vec<LevelFrame>,
    phase: Phase,
    /// Words buffered in the result write buffer (flushed per cache line).
    wb_words: u64,
    /// Static-MT constraint on the first depth-0 participant.
    chunk: Option<(u32, u32)>,
}

impl ThreadCtx {
    fn new(num_atoms: usize, arity: usize) -> Self {
        ThreadCtx {
            cursors: vec![SimCursor::default(); num_atoms],
            binding: vec![0; arity],
            stack: Vec::with_capacity(arity),
            phase: Phase::Idle,
            wb_words: 0,
            chunk: None,
        }
    }
}

struct Simulator<'a> {
    cfg: &'a TrieJaxConfig,
    plan: &'a CompiledQuery,
    tries: &'a TrieSet,
    mem: MemorySystem,
    units: Units,
    pjr: PjrCache,
    threads: Vec<ThreadCtx>,
    free_ctx: Vec<usize>,
    events: BinaryHeap<Reverse<(Cycle, u64, usize)>>,
    seq: u64,
    now: Cycle,
    end_time: Cycle,
    ops: ComponentOps,
    results: u64,
    result_addr: u64,
    result_lines: u64,
    spawns: u64,
    threads_used: u64,
    slots: Vec<usize>,
    emit_buf: Vec<Value>,
    sink: &'a mut dyn ResultSink,
}

impl<'a> Simulator<'a> {
    fn new(
        cfg: &'a TrieJaxConfig,
        plan: &'a CompiledQuery,
        tries: &'a TrieSet,
        result_base: u64,
        sink: &'a mut dyn ResultSink,
    ) -> Self {
        let head = plan.query().head();
        let slots = plan
            .order()
            .iter()
            .map(|v| {
                head.iter()
                    .position(|h| h == v)
                    .expect("order vars in head")
            })
            .collect();
        let num_atoms = plan.atom_plans().len();
        let arity = plan.arity();
        Simulator {
            cfg,
            plan,
            tries,
            mem: MemorySystem::new(cfg.mem),
            units: Units::new(),
            pjr: PjrCache::new(
                cfg.pjr_enabled && !plan.cache_specs().is_empty(),
                cfg.pjr_bytes,
                cfg.pjr_banks,
                cfg.pjr_latency,
                cfg.pjr_entry_values,
            ),
            threads: (0..cfg.threads)
                .map(|_| ThreadCtx::new(num_atoms, arity))
                .collect(),
            free_ctx: Vec::new(),
            events: BinaryHeap::new(),
            seq: 0,
            now: 0,
            end_time: 0,
            ops: ComponentOps::default(),
            results: 0,
            result_addr: result_base,
            result_lines: 0,
            spawns: 0,
            threads_used: 0,
            slots,
            emit_buf: vec![0; arity],
            sink,
        }
    }

    fn trie_of(&self, atom: usize) -> &Trie {
        self.tries.for_atom(atom)
    }

    /// Queueing delay for one Cupid issue slot at the current event time.
    fn cupid_wait(&mut self) -> Cycle {
        let now = self.now;
        self.units.cupid.issue(now) - now
    }

    /// Queueing delay plus service time for one PJR bank access.
    fn pjr_wait(&mut self) -> Cycle {
        let now = self.now;
        self.pjr.access(now) - now
    }

    fn schedule(&mut self, t: Cycle, tid: usize) {
        self.seq += 1;
        self.end_time = self.end_time.max(t);
        self.events.push(Reverse((t, self.seq, tid)));
    }

    /// Seeds the initial threads per the MT scheme (§3.4).
    fn launch(&mut self) {
        let first_atom = self.plan.atoms_at(0)[0].0;
        let n0 = self.trie_of(first_atom).level(0).len() as u32;
        let num_static = match self.cfg.mt_mode {
            MtMode::Dynamic => 1,
            MtMode::Static | MtMode::Combined => (self.cfg.threads as u32).min(n0).max(1) as usize,
        };
        for i in 0..num_static {
            let lo = (i as u64 * n0 as u64 / num_static as u64) as u32;
            let hi = ((i as u64 + 1) * n0 as u64 / num_static as u64) as u32;
            if lo >= hi {
                continue;
            }
            self.threads[i].chunk = if num_static > 1 { Some((lo, hi)) } else { None };
            self.threads[i].phase = Phase::StartLevel { depth: 0 };
            self.threads_used += 1;
            self.schedule(0, i);
        }
        for i in (num_static..self.cfg.threads).rev() {
            self.free_ctx.push(i);
        }
    }

    fn run_to_completion(&mut self) {
        while let Some(Reverse((time, _, tid))) = self.events.pop() {
            self.now = time;
            self.step(tid);
        }
        // Drain partial write buffers.
        let t = self.end_time;
        for tid in 0..self.threads.len() {
            if self.threads[tid].wb_words > 0 {
                self.threads[tid].wb_words = 0;
                self.mem.write_result(self.result_addr, t);
                self.result_addr += 64;
                self.result_lines += 1;
            }
        }
    }

    fn into_report(self) -> SimReport {
        let cycles = self.end_time;
        let runtime_s = self.cfg.mem.cycles_to_seconds(cycles);
        let mem = self.mem.stats();
        let energy =
            self.cfg
                .energy
                .breakdown(&mem, self.pjr.stats.accesses, self.ops.total(), runtime_s);
        SimReport {
            cycles,
            runtime_s,
            results: self.results,
            result_lines_written: self.result_lines,
            ops: self.ops,
            pjr: self.pjr.stats,
            mem,
            energy,
            threads_used: self.threads_used,
            spawns: self.spawns,
        }
    }

    /// Executes one macro-operation of thread `tid`.
    fn step(&mut self, tid: usize) {
        match self.threads[tid].phase {
            Phase::StartLevel { depth } => self.start_level(tid, depth),
            Phase::Advance { depth } => self.advance(tid, depth),
            Phase::ReplayNext { depth } => self.replay_next(tid, depth),
            Phase::Backtrack { depth } => self.backtrack(tid, depth),
            Phase::Idle => {}
        }
    }

    // ----- phase handlers ---------------------------------------------

    fn start_level(&mut self, tid: usize, depth: usize) {
        let mut t = self.now;

        // PJR lookup happens before any trie work (paper §3.5).
        let mut recording = None;
        if self.pjr.enabled() {
            if let Some(spec) = self.plan.cache_spec_at(depth) {
                let key: PjrKey = (
                    depth,
                    spec.key_depths()
                        .iter()
                        .map(|&kd| self.threads[tid].binding[kd])
                        .collect(),
                );
                self.ops.cupid += 1;
                t += self.cupid_wait() + 1;
                t += self.pjr_wait();
                if let Some(entry) = self.pjr.lookup(&key) {
                    self.threads[tid].stack.push(LevelFrame {
                        mode: FrameMode::Replay {
                            entry,
                            idx: 0,
                            open: false,
                        },
                        detached: false,
                        recording: None,
                    });
                    self.threads[tid].phase = Phase::ReplayNext { depth };
                    self.schedule(t, tid);
                    return;
                }
                let path = &self.threads[tid].binding[..depth];
                if self.pjr.begin_fill(&key, path) {
                    recording = Some(RecordState { key });
                }
            }
        }

        t = self.open_level(tid, depth, t);
        self.threads[tid].stack.push(LevelFrame {
            mode: FrameMode::Normal { p: 0 },
            detached: false,
            recording,
        });
        match self.search(tid, depth, &mut t) {
            Some(v) => self.process_match(tid, depth, v, t),
            None => {
                self.threads[tid].phase = Phase::Backtrack { depth };
                self.schedule(t, tid);
            }
        }
    }

    fn advance(&mut self, tid: usize, depth: usize) {
        let mut t = self.now;
        t += self.cupid_wait() + 1;
        self.ops.cupid += 1;

        let p = match &self.threads[tid].stack.last().expect("frame").mode {
            FrameMode::Normal { p } => *p,
            FrameMode::Replay { .. } => unreachable!("advance only on normal frames"),
        };
        let parts = self.plan.atoms_at(depth);
        let atom = parts[p % parts.len()].0;
        let trie = self.tries.for_atom(atom);
        match self.threads[tid].cursors[atom].advance(trie) {
            Some(addr) => {
                t += self.mem.read(addr, t);
                match self.search(tid, depth, &mut t) {
                    Some(v) => self.process_match(tid, depth, v, t),
                    None => {
                        self.threads[tid].phase = Phase::Backtrack { depth };
                        self.schedule(t, tid);
                    }
                }
            }
            None => {
                self.threads[tid].phase = Phase::Backtrack { depth };
                self.schedule(t, tid);
            }
        }
    }

    fn replay_next(&mut self, tid: usize, depth: usize) {
        let mut t = self.now;
        let parts: &[(usize, usize)] = self.plan.atoms_at(depth);

        // Close the open_at frames from the previous replayed value.
        let (entry, idx) = {
            let frame = self.threads[tid].stack.last_mut().expect("frame");
            let FrameMode::Replay {
                entry: _,
                idx: _,
                open,
            } = &mut frame.mode
            else {
                unreachable!("replay_next only on replay frames")
            };
            if *open {
                *open = false;
                for &(a, _) in parts {
                    self.threads[tid].cursors[a].up();
                }
            }
            let frame = self.threads[tid].stack.last_mut().expect("frame");
            let FrameMode::Replay { entry, idx, .. } = &mut frame.mode else {
                unreachable!()
            };
            (Rc::clone(entry), *idx)
        };

        if idx >= entry.len() {
            self.threads[tid].phase = Phase::Backtrack { depth };
            self.schedule(t + 1, tid);
            return;
        }

        // Read the cached (value, indexes) pair from PJR SRAM.
        t += self.pjr_wait();
        self.pjr.stats.values_replayed += 1;
        self.ops.cupid += 1;
        t += self.cupid_wait() + 1;

        let (v, positions) = &entry[idx];
        self.threads[tid].binding[depth] = *v;
        {
            let frame = self.threads[tid].stack.last_mut().expect("frame");
            let FrameMode::Replay { idx, .. } = &mut frame.mode else {
                unreachable!()
            };
            *idx += 1;
        }

        if depth + 1 == self.plan.arity() {
            let t2 = self.emit(tid, t);
            self.threads[tid].phase = Phase::ReplayNext { depth };
            self.schedule(t2, tid);
        } else {
            for (i, &(a, _)) in parts.iter().enumerate() {
                self.threads[tid].cursors[a].open_at(positions[i]);
            }
            let frame = self.threads[tid].stack.last_mut().expect("frame");
            let FrameMode::Replay { open, .. } = &mut frame.mode else {
                unreachable!()
            };
            *open = true;
            self.threads[tid].phase = Phase::StartLevel { depth: depth + 1 };
            self.schedule(t, tid);
        }
    }

    fn backtrack(&mut self, tid: usize, depth: usize) {
        let mut t = self.now;
        self.ops.cupid += 1;
        t += self.cupid_wait() + 1;

        let frame = self.threads[tid]
            .stack
            .pop()
            .expect("backtrack needs a frame");
        let parts = self.plan.atoms_at(depth);
        match frame.mode {
            FrameMode::Normal { .. } => {
                for &(a, _) in parts {
                    self.threads[tid].cursors[a].up();
                }
                if let Some(rec) = frame.recording {
                    // This thread finished the level; the entry commits
                    // when every sibling has (§3.5).
                    self.pjr.release_fill(&rec.key);
                    t += self.pjr_wait();
                }
            }
            FrameMode::Replay { open, .. } => {
                if open {
                    for &(a, _) in parts {
                        self.threads[tid].cursors[a].up();
                    }
                }
            }
        }

        if self.threads[tid].stack.is_empty() {
            self.finish_thread(tid);
            return;
        }
        let parent_depth = depth - 1;
        let parent = self.threads[tid].stack.last().expect("non-empty");
        self.threads[tid].phase = if parent.detached {
            Phase::Backtrack {
                depth: parent_depth,
            }
        } else {
            match parent.mode {
                FrameMode::Normal { .. } => Phase::Advance {
                    depth: parent_depth,
                },
                FrameMode::Replay { .. } => Phase::ReplayNext {
                    depth: parent_depth,
                },
            }
        };
        self.schedule(t, tid);
    }

    // ----- building blocks --------------------------------------------

    /// Opens `depth` on every participating cursor, charging Midwife
    /// child-range reads and the first-value fetch.
    fn open_level(&mut self, tid: usize, depth: usize, mut t: Cycle) -> Cycle {
        let parts = self.plan.atoms_at(depth);
        for &(a, lvl) in parts {
            let trie = self.tries.for_atom(a);
            if lvl == 0 {
                let opened = self.threads[tid].cursors[a].open_root(trie);
                assert!(opened, "empty tries are rejected before simulation");
                if depth == 0 && a == parts[0].0 {
                    if let Some((lo, hi)) = self.threads[tid].chunk {
                        self.threads[tid].cursors[a].constrain(lo, hi);
                        if self.threads[tid].cursors[a].at_end() {
                            continue;
                        }
                    }
                }
            } else {
                self.ops.midwife += 1;
                let now = self.now;
                t += self.units.midwife.issue(now) - now + 1;
                let ((lo, hi), addrs) = self.threads[tid].cursors[a].child_range(trie);
                for addr in addrs {
                    t += self.mem.read(addr, t);
                }
                self.threads[tid].cursors[a].open_range(lo, hi);
            }
            // Fetch the first value of the newly opened range.
            if !self.threads[tid].cursors[a].at_end() {
                let pos = self.threads[tid].cursors[a].pos();
                let addr = self.threads[tid].cursors[a].value_addr(trie, pos);
                t += self.mem.read(addr, t);
            }
        }
        t
    }

    /// Leapfrog alignment at `depth` (MatchMaker + LUB, Figures 9-10).
    fn search(&mut self, tid: usize, depth: usize, t: &mut Cycle) -> Option<Value> {
        let parts = self.plan.atoms_at(depth);
        self.ops.matchmaker += 1;
        let now = self.now;
        *t += self.units.matchmaker.issue(now) - now + 1;

        let k = parts.len();
        if parts
            .iter()
            .any(|&(a, _)| self.threads[tid].cursors[a].at_end())
        {
            return None;
        }
        let mut max = 0;
        let mut argmax = 0;
        for (i, &(a, _)) in parts.iter().enumerate() {
            let key = self.threads[tid].cursors[a].key(self.tries.for_atom(a));
            if i == 0 || key > max {
                max = key;
                argmax = i;
            }
        }
        let mut agree = 1;
        let mut p = argmax;
        let mut probes = Vec::new();
        while agree < k {
            p = (p + 1) % k;
            let a = parts[p].0;
            let trie = self.tries.for_atom(a);
            let key = self.threads[tid].cursors[a].key(trie);
            if key == max {
                agree += 1;
                continue;
            }
            // LUB seek: sequential binary-search probes.
            self.ops.lub_seeks += 1;
            *t += self.units.lub.issue(now) - now + 1;
            probes.clear();
            let found = self.threads[tid].cursors[a].seek(trie, max, &mut probes);
            self.ops.lub_probes += probes.len() as u64;
            for &addr in &probes {
                *t += self.mem.read(addr, *t) + 1;
            }
            if !found {
                return None;
            }
            let key = self.threads[tid].cursors[a].key(trie);
            if key == max {
                agree += 1;
            } else {
                max = key;
                agree = 1;
            }
        }
        // Record the final pointer for `advance`.
        if let FrameMode::Normal { p: fp } =
            &mut self.threads[tid].stack.last_mut().expect("frame").mode
        {
            *fp = p;
        }
        Some(max)
    }

    /// Handles a confirmed match at `depth` (Cupid, Figure 12): record for
    /// the PJR fill, maybe spawn a sibling thread, then emit or descend.
    fn process_match(&mut self, tid: usize, depth: usize, v: Value, mut t: Cycle) {
        self.ops.cupid += 1;
        t += self.cupid_wait() + 2;
        self.threads[tid].binding[depth] = v;

        // Record into the pending PJR entry.
        let parts = self.plan.atoms_at(depth);
        let positions: Option<Vec<u32>> = {
            let frame = self.threads[tid].stack.last().expect("frame");
            frame.recording.as_ref().map(|_| {
                parts
                    .iter()
                    .map(|&(a, _)| self.threads[tid].cursors[a].pos())
                    .collect()
            })
        };
        if let Some(positions) = positions {
            let key = {
                let frame = self.threads[tid].stack.last().expect("frame");
                frame.recording.as_ref().expect("recording").key.clone()
            };
            if self.pjr.record(&key, v, positions) {
                t += self.pjr_wait(); // insertion-buffer write
            }
        }

        // Dynamic MT: hand the remainder of this level to a fresh context.
        let can_spawn = matches!(self.cfg.mt_mode, MtMode::Dynamic | MtMode::Combined)
            && !self.free_ctx.is_empty()
            && matches!(
                self.threads[tid].stack.last().expect("frame").mode,
                FrameMode::Normal { .. }
            )
            && !self.threads[tid].stack.last().expect("frame").detached;
        if can_spawn {
            t = self.spawn(tid, t);
        }

        if depth + 1 == self.plan.arity() {
            let t2 = self.emit(tid, t);
            let detached = self.threads[tid].stack.last().expect("frame").detached;
            self.threads[tid].phase = if detached {
                Phase::Backtrack { depth }
            } else {
                Phase::Advance { depth }
            };
            self.schedule(t2, tid);
        } else {
            self.threads[tid].phase = Phase::StartLevel { depth: depth + 1 };
            self.schedule(t, tid);
        }
    }

    /// Clones the current thread into a free context that takes over the
    /// remainder of the current level (paper Figure 8, dynamic MT).
    fn spawn(&mut self, tid: usize, mut t: Cycle) -> Cycle {
        let new_tid = self.free_ctx.pop().expect("checked by caller");
        self.ops.cupid += 1;
        t += self.cupid_wait() + 2;

        // The level's fill (if any) becomes shared: the spawned sibling
        // joins it and bumps the per-entry thread counter (§3.5).
        let depth = self.threads[tid].stack.len() - 1;
        let shared_recording = {
            let frame = self.threads[tid].stack.last_mut().expect("frame");
            frame.detached = true;
            frame.recording.as_ref().map(|r| r.key.clone())
        };
        if let Some(key) = &shared_recording {
            let path = self.threads[tid].binding[..depth].to_vec();
            let joined = self.pjr.join_fill(key, &path);
            debug_assert!(joined, "same-path sibling always joins its fill");
        }

        let src = &self.threads[tid];
        let mut clone = ThreadCtx {
            cursors: src.cursors.clone(),
            binding: src.binding.clone(),
            stack: src
                .stack
                .iter()
                .map(|f| LevelFrame {
                    mode: f.mode.clone(),
                    detached: true,
                    recording: None,
                })
                .collect(),
            phase: Phase::Advance { depth },
            wb_words: 0,
            chunk: None,
        };
        // The clone owns the remainder of the *top* level only, and keeps
        // recording into the shared fill.
        let top = clone.stack.last_mut().expect("frame");
        top.detached = false;
        top.recording = shared_recording.map(|key| RecordState { key });
        self.threads[new_tid] = clone;
        self.spawns += 1;
        self.threads_used += 1;
        self.schedule(t, new_tid);
        t
    }

    /// Emits the current binding as a result through the write buffer
    /// (flushing one cache line per 16 words, §3.3). In aggregation mode
    /// (the §5 future-work extension) the result only bumps an on-chip
    /// accumulator: no buffering, no memory traffic.
    fn emit(&mut self, tid: usize, mut t: Cycle) -> Cycle {
        self.ops.cupid += 1;
        t += self.cupid_wait() + 1;
        for d in 0..self.threads[tid].binding.len() {
            self.emit_buf[self.slots[d]] = self.threads[tid].binding[d];
        }
        self.sink.push(&self.emit_buf);
        self.results += 1;
        if self.cfg.aggregate {
            return t;
        }
        self.threads[tid].wb_words += self.plan.arity() as u64;
        if self.threads[tid].wb_words * 4 >= 64 {
            self.threads[tid].wb_words = 0;
            // Posted write: occupies a DRAM channel but does not stall the
            // thread (paper §3.1 result streaming).
            self.mem.write_result(self.result_addr, t);
            self.result_addr += 64;
            self.result_lines += 1;
        }
        t
    }

    fn finish_thread(&mut self, tid: usize) {
        self.threads[tid].phase = Phase::Idle;
        self.threads[tid].chunk = None;
        self.free_ctx.push(tid);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use triejax_join::{CollectSink, CountSink, Ctj, JoinEngine, Lftj};
    use triejax_query::patterns::{self, Pattern};
    use triejax_relation::Relation;

    fn catalog(edges: &[(u32, u32)]) -> Catalog {
        let mut c = Catalog::new();
        c.insert("G", Relation::from_pairs(edges.to_vec()));
        c
    }

    fn test_edges() -> Vec<(u32, u32)> {
        vec![
            (0, 1),
            (1, 2),
            (2, 0),
            (2, 3),
            (3, 1),
            (0, 2),
            (3, 0),
            (1, 3),
            (4, 1),
            (2, 4),
            (4, 0),
            (5, 1),
            (1, 5),
            (5, 2),
        ]
    }

    #[test]
    fn matches_software_ctj_on_every_pattern() {
        let c = catalog(&test_edges());
        let accel = TrieJax::new(TrieJaxConfig::default());
        for p in Pattern::ALL {
            let plan = CompiledQuery::compile(&p.query()).unwrap();
            let mut hw = CollectSink::new();
            let report = accel.run_with_sink(&plan, &c, &mut hw).unwrap();
            let mut sw = CollectSink::new();
            Ctj::new().execute(&plan, &c, &mut sw).unwrap();
            assert_eq!(report.results as usize, sw.len(), "{p} count");
            assert_eq!(hw.into_sorted(), sw.into_sorted(), "{p} tuples");
        }
    }

    #[test]
    fn result_count_is_thread_count_invariant() {
        let c = catalog(&test_edges());
        let plan = CompiledQuery::compile(&patterns::cycle4()).unwrap();
        let mut reference = CountSink::default();
        Lftj::new().execute(&plan, &c, &mut reference).unwrap();
        for threads in [1, 2, 4, 8, 32, 64] {
            let accel = TrieJax::new(TrieJaxConfig::default().with_threads(threads));
            let report = accel.run(&plan, &c).unwrap();
            assert_eq!(report.results, reference.count(), "{threads} threads");
        }
    }

    #[test]
    fn result_count_is_mt_mode_invariant() {
        let c = catalog(&test_edges());
        let plan = CompiledQuery::compile(&patterns::clique4()).unwrap();
        let mut reference = CountSink::default();
        Lftj::new().execute(&plan, &c, &mut reference).unwrap();
        for mode in [MtMode::Static, MtMode::Dynamic, MtMode::Combined] {
            let accel = TrieJax::new(TrieJaxConfig::default().with_mt_mode(mode));
            let report = accel.run(&plan, &c).unwrap();
            assert_eq!(report.results, reference.count(), "{mode:?}");
        }
    }

    #[test]
    fn more_threads_means_fewer_cycles() {
        // A graph with enough depth-0 fanout to parallelize.
        let mut edges = Vec::new();
        for i in 0..60u32 {
            edges.push((i, (i + 1) % 60));
            edges.push((i, (i + 7) % 60));
            edges.push((i, (i + 13) % 60));
        }
        let c = catalog(&edges);
        let plan = CompiledQuery::compile(&patterns::path4()).unwrap();
        let t1 = TrieJax::new(TrieJaxConfig::default().with_threads(1))
            .run(&plan, &c)
            .unwrap();
        let t8 = TrieJax::new(TrieJaxConfig::default().with_threads(8))
            .run(&plan, &c)
            .unwrap();
        assert_eq!(t1.results, t8.results);
        assert!(
            t8.cycles * 2 < t1.cycles,
            "8T {} should be well under 1T {}",
            t8.cycles,
            t1.cycles
        );
    }

    #[test]
    fn pjr_cache_hits_on_shared_keys() {
        let mut edges = Vec::new();
        for x in 0..10u32 {
            edges.push((x, 100));
        }
        for z in 101..110u32 {
            edges.push((100, z));
        }
        let c = catalog(&edges);
        let plan = CompiledQuery::compile(&patterns::path3()).unwrap();
        let accel = TrieJax::new(TrieJaxConfig::default().with_threads(1));
        let report = accel.run(&plan, &c).unwrap();
        assert!(report.pjr.hits > 0, "y=100 repeats across x values");
        assert!(report.pjr.values_replayed > 0);
    }

    #[test]
    fn pjr_disabled_still_correct_and_never_accessed() {
        let c = catalog(&test_edges());
        let plan = CompiledQuery::compile(&patterns::path4()).unwrap();
        let accel = TrieJax::new(TrieJaxConfig::default().with_pjr_enabled(false));
        let report = accel.run(&plan, &c).unwrap();
        let mut reference = CountSink::default();
        Lftj::new().execute(&plan, &c, &mut reference).unwrap();
        assert_eq!(report.results, reference.count());
        assert_eq!(report.pjr.accesses, 0);
        assert_eq!(report.energy.pjr, 0.0);
    }

    #[test]
    fn cycle3_never_uses_pjr() {
        let c = catalog(&test_edges());
        let plan = CompiledQuery::compile(&patterns::cycle3()).unwrap();
        let report = TrieJax::new(TrieJaxConfig::default())
            .run(&plan, &c)
            .unwrap();
        assert_eq!(report.pjr.accesses, 0, "no valid cache spec for cycle3");
    }

    #[test]
    fn empty_graph_is_an_empty_report() {
        let c = catalog(&[]);
        let plan = CompiledQuery::compile(&patterns::path3()).unwrap();
        let report = TrieJax::new(TrieJaxConfig::default())
            .run(&plan, &c)
            .unwrap();
        assert_eq!(report.results, 0);
        assert_eq!(report.cycles, 0);
    }

    #[test]
    fn missing_relation_is_an_error() {
        let plan = CompiledQuery::compile(&patterns::path3()).unwrap();
        assert!(TrieJax::new(TrieJaxConfig::default())
            .run(&plan, &Catalog::new())
            .is_err());
    }

    #[test]
    fn energy_is_dram_dominated() {
        let c = catalog(&test_edges());
        let plan = CompiledQuery::compile(&patterns::path4()).unwrap();
        let report = TrieJax::new(TrieJaxConfig::default())
            .run(&plan, &c)
            .unwrap();
        assert!(report.energy.total() > 0.0);
        assert!(
            report.energy.dram_fraction() > 0.5,
            "{}",
            report.energy.dram_fraction()
        );
    }

    #[test]
    fn dynamic_mode_spawns_threads() {
        let mut edges = Vec::new();
        for i in 0..40u32 {
            edges.push((i, (i + 1) % 40));
            edges.push((i, (i + 3) % 40));
        }
        let c = catalog(&edges);
        let plan = CompiledQuery::compile(&patterns::path3()).unwrap();
        let accel = TrieJax::new(TrieJaxConfig::default().with_mt_mode(MtMode::Dynamic));
        let report = accel.run(&plan, &c).unwrap();
        assert!(report.spawns > 0);
        assert!(report.threads_used > 1);
    }

    #[test]
    fn aggregate_mode_counts_without_memory_traffic() {
        // Dense enough that result-write bandwidth is the bottleneck.
        let mut edges = Vec::new();
        for i in 0..60u32 {
            for j in 1..12u32 {
                edges.push((i, (i + j) % 60));
            }
        }
        let c = catalog(&edges);
        let plan = CompiledQuery::compile(&patterns::path4()).unwrap();
        let full = TrieJax::new(TrieJaxConfig::default())
            .run(&plan, &c)
            .unwrap();
        let agg = TrieJax::new(TrieJaxConfig::default().with_aggregate(true))
            .run(&plan, &c)
            .unwrap();
        assert_eq!(agg.results, full.results, "same count either way");
        assert_eq!(agg.result_lines_written, 0, "no result lines in memory");
        assert_eq!(agg.mem.dram.writes, 0);
        assert!(
            agg.cycles < full.cycles,
            "counting {} should beat materializing {}",
            agg.cycles,
            full.cycles
        );
    }

    #[test]
    fn write_bypass_reduces_llc_traffic() {
        let mut edges = Vec::new();
        for i in 0..50u32 {
            for j in 1..6u32 {
                edges.push((i, (i + j) % 50));
            }
        }
        let c = catalog(&edges);
        let plan = CompiledQuery::compile(&patterns::path4()).unwrap();
        let with = TrieJax::new(TrieJaxConfig::default())
            .run(&plan, &c)
            .unwrap();
        let without = TrieJax::new(TrieJaxConfig::default().with_write_bypass(false))
            .run(&plan, &c)
            .unwrap();
        assert_eq!(with.results, without.results);
        assert!(with.mem.llc.accesses() < without.mem.llc.accesses());
    }
}
