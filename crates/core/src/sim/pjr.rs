//! The partial-join-result (PJR) cache and its insertion buffer
//! (paper §3.5, §3.7).
//!
//! A 4 MB, 4-banked SRAM holding, per `(cache spec, key bindings)` entry,
//! the list of matched `(value, per-atom index)` pairs at the cached depth.
//! Entries being filled live in the *insertion buffer* until every thread
//! working on the level deallocates (the per-entry thread counter of
//! §3.5), then commit atomically. The paper's two race rules are modeled
//! directly:
//!
//! * **write/write across paths** — a fill is tagged with the full partial
//!   join path that started it; a different path reaching the same key
//!   does not append (`join_fill` refuses).
//! * **split fills** — dynamically spawned siblings of the same path share
//!   the fill and bump its thread counter; commit happens when the counter
//!   drains to zero.

use std::collections::{HashMap, VecDeque};
use std::rc::Rc;

use triejax_memsim::Cycle;
use triejax_relation::Value;

use crate::report::PjrStats;

/// Cache key: (cached depth, bindings of the spec's key depths).
pub(crate) type PjrKey = (usize, Vec<Value>);
/// Committed entry: `(value, index-per-participating-atom)` list.
pub(crate) type PjrEntry = Rc<Vec<(Value, Vec<u32>)>>;

/// An in-flight insertion-buffer entry.
#[derive(Debug, Clone)]
struct FillState {
    /// Bindings of every depth before the cached one — "all the values
    /// leading to the key" (§3.5).
    path: Vec<Value>,
    values: Vec<(Value, Vec<u32>)>,
    /// Threads currently working on the level.
    threads: u32,
    /// Entry overflowed its capacity; discard on drain.
    aborted: bool,
}

#[derive(Debug, Clone)]
pub(crate) struct PjrCache {
    enabled: bool,
    capacity_bytes: u64,
    entry_cap: usize,
    latency: Cycle,
    banks: Vec<Cycle>,
    bytes_used: u64,
    entries: HashMap<PjrKey, PjrEntry>,
    fifo: VecDeque<PjrKey>,
    fills: HashMap<PjrKey, FillState>,
    pub stats: PjrStats,
}

impl PjrCache {
    pub fn new(
        enabled: bool,
        capacity_bytes: u64,
        banks: usize,
        latency: Cycle,
        entry_cap: usize,
    ) -> Self {
        PjrCache {
            enabled,
            capacity_bytes,
            entry_cap,
            latency,
            banks: vec![0; banks.max(1)],
            bytes_used: 0,
            entries: HashMap::new(),
            fifo: VecDeque::new(),
            fills: HashMap::new(),
            stats: PjrStats::default(),
        }
    }

    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// One SRAM bank access starting at-or-after `now`; returns completion
    /// time. Banks serve one access per `latency` window.
    pub fn access(&mut self, now: Cycle) -> Cycle {
        self.stats.accesses += 1;
        let (idx, &slot) = self
            .banks
            .iter()
            .enumerate()
            .min_by_key(|&(_, &t)| t)
            .expect("non-empty banks");
        let start = slot.max(now);
        self.banks[idx] = start + self.latency;
        start + self.latency
    }

    /// Looks up a committed entry.
    pub fn lookup(&mut self, key: &PjrKey) -> Option<PjrEntry> {
        match self.entries.get(key) {
            Some(e) => {
                self.stats.hits += 1;
                Some(Rc::clone(e))
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Starts a fill for `key` from `path`. Returns `false` (and records
    /// nothing) if another path is already filling this key.
    pub fn begin_fill(&mut self, key: &PjrKey, path: &[Value]) -> bool {
        if self.fills.contains_key(key) {
            return false;
        }
        self.fills.insert(
            key.clone(),
            FillState {
                path: path.to_vec(),
                values: Vec::new(),
                threads: 1,
                aborted: false,
            },
        );
        true
    }

    /// A spawned sibling of the same path joins an active fill, bumping
    /// its thread counter. Returns `false` if no matching fill exists.
    pub fn join_fill(&mut self, key: &PjrKey, path: &[Value]) -> bool {
        match self.fills.get_mut(key) {
            Some(f) if f.path == path => {
                f.threads += 1;
                true
            }
            _ => false,
        }
    }

    /// Appends one matched value to an active fill; aborts the fill on
    /// capacity overflow. Returns `true` if the value was stored (one
    /// insertion-buffer write).
    pub fn record(&mut self, key: &PjrKey, value: Value, positions: Vec<u32>) -> bool {
        let cap = self.entry_cap;
        let Some(f) = self.fills.get_mut(key) else {
            return false;
        };
        if f.aborted {
            return false;
        }
        if f.values.len() >= cap {
            f.aborted = true;
            f.values.clear();
            return false;
        }
        f.values.push((value, positions));
        true
    }

    /// One thread finished analyzing the level: decrement the counter;
    /// when it drains, commit or discard (§3.5).
    pub fn release_fill(&mut self, key: &PjrKey) {
        let Some(f) = self.fills.get_mut(key) else {
            return;
        };
        f.threads -= 1;
        if f.threads > 0 {
            return;
        }
        let mut fill = self.fills.remove(key).expect("present");
        if fill.aborted {
            self.stats.discarded += 1;
            return;
        }
        // Values may arrive out of order from sibling threads; commit in
        // value order so replays are deterministic.
        fill.values.sort_unstable();
        self.insert(key.clone(), fill.values);
    }

    /// Commits a completed entry, evicting FIFO victims if needed.
    fn insert(&mut self, key: PjrKey, values: Vec<(Value, Vec<u32>)>) {
        let bytes = Self::entry_bytes(&values);
        if bytes > self.capacity_bytes {
            self.stats.discarded += 1;
            return;
        }
        while self.bytes_used + bytes > self.capacity_bytes {
            let victim = self.fifo.pop_front().expect("used bytes imply entries");
            if let Some(old) = self.entries.remove(&victim) {
                self.bytes_used -= Self::entry_bytes(&old);
                self.stats.evictions += 1;
            }
        }
        self.bytes_used += bytes;
        self.stats.insertions += 1;
        self.stats.values_stored += values.len() as u64;
        self.fifo.push_back(key.clone());
        self.entries.insert(key, Rc::new(values));
    }

    /// Bytes one entry occupies: key/count metadata plus one word per value
    /// and per stored index.
    fn entry_bytes(values: &[(Value, Vec<u32>)]) -> u64 {
        let per_value: u64 = values
            .iter()
            .map(|(_, idxs)| 4 + 4 * idxs.len() as u64)
            .sum();
        16 + per_value
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cache() -> PjrCache {
        PjrCache::new(true, 256, 4, 4, 16)
    }

    #[test]
    fn fill_commit_then_hit() {
        let mut c = cache();
        let key = (2usize, vec![7u32]);
        assert!(c.lookup(&key).is_none());
        assert!(c.begin_fill(&key, &[1, 7]));
        assert!(c.record(&key, 10, vec![0, 0]));
        assert!(c.record(&key, 12, vec![1, 2]));
        c.release_fill(&key);
        let e = c.lookup(&key).expect("committed");
        assert_eq!(e.len(), 2);
        assert_eq!(c.stats.hits, 1);
        assert_eq!(c.stats.misses, 1);
        assert_eq!(c.stats.values_stored, 2);
    }

    #[test]
    fn different_path_cannot_fill_or_join() {
        let mut c = cache();
        let key = (1usize, vec![1u32]);
        assert!(c.begin_fill(&key, &[5, 1]));
        assert!(!c.begin_fill(&key, &[6, 1]), "second path refused");
        assert!(
            !c.join_fill(&key, &[6, 1]),
            "join from another path refused"
        );
        assert!(c.join_fill(&key, &[5, 1]), "same path joins");
    }

    #[test]
    fn thread_counter_delays_commit() {
        let mut c = cache();
        let key = (1usize, vec![3u32]);
        c.begin_fill(&key, &[3]);
        assert!(c.join_fill(&key, &[3]));
        c.record(&key, 9, vec![1]);
        c.release_fill(&key);
        assert!(c.lookup(&key).is_none(), "one thread still working");
        c.record(&key, 4, vec![0]);
        c.release_fill(&key);
        let e = c.lookup(&key).expect("now committed");
        assert_eq!(e[0].0, 4, "values sorted on commit");
        assert_eq!(e[1].0, 9);
    }

    #[test]
    fn overflow_aborts_fill() {
        let mut c = cache();
        let key = (0usize, vec![2u32]);
        c.begin_fill(&key, &[2]);
        for i in 0..20u32 {
            c.record(&key, i, vec![i]);
        }
        c.release_fill(&key);
        assert!(c.lookup(&key).is_none());
        assert_eq!(c.stats.discarded, 1);
    }

    #[test]
    fn fifo_eviction_respects_capacity() {
        let mut c = cache(); // 256 bytes; 3-value entries are 16+3*12 = 52.
        for i in 0..5u32 {
            let key = (0usize, vec![i]);
            c.begin_fill(&key, &[i]);
            for v in 0..3u32 {
                c.record(&key, v, vec![v, v]);
            }
            c.release_fill(&key);
        }
        assert_eq!(c.stats.evictions, 1);
        assert!(c.lookup(&(0, vec![0])).is_none());
        assert!(c.lookup(&(0, vec![4])).is_some());
    }

    #[test]
    fn bank_timing_serializes_within_a_bank() {
        let mut c = PjrCache::new(true, 256, 1, 4, 16);
        assert_eq!(c.access(0), 4);
        assert_eq!(c.access(0), 8);
        let mut c4 = PjrCache::new(true, 256, 4, 4, 16);
        assert_eq!(c4.access(0), 4);
        assert_eq!(c4.access(0), 4);
        assert_eq!(c4.stats.accesses, 2);
    }
}
