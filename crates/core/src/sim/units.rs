//! Functional-unit occupancy modeling.
//!
//! Each component (LUB, Midwife, MatchMaker, Cupid) is a pool of pipelined
//! units: a unit accepts one operation per cycle, and an operation's
//! latency is charged by the caller on top of the issue slot. Pool
//! contention is what bounds useful thread-level parallelism at high
//! thread counts (the Figure 14 saturation at 64 threads).

use triejax_memsim::Cycle;

/// A pool of `n` pipelined functional units.
#[derive(Debug, Clone)]
pub(crate) struct UnitPool {
    /// Next available issue slot per unit.
    free: Vec<Cycle>,
    /// Operations issued (for utilization reporting).
    issued: u64,
}

impl UnitPool {
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "unit pool needs at least one unit");
        UnitPool {
            free: vec![0; n],
            issued: 0,
        }
    }

    /// Claims the earliest issue slot at-or-after `now`; returns the issue
    /// time. The unit is busy for one cycle (pipelined).
    pub fn issue(&mut self, now: Cycle) -> Cycle {
        let (idx, &slot) = self
            .free
            .iter()
            .enumerate()
            .min_by_key(|&(_, &t)| t)
            .expect("non-empty pool");
        let start = slot.max(now);
        self.free[idx] = start + 1;
        self.issued += 1;
        start
    }

    #[cfg_attr(not(test), allow(dead_code))]
    pub fn issued(&self) -> u64 {
        self.issued
    }
}

/// The four component pools of the TrieJax core (paper Figure 7: LUB and
/// Midwife are duplicated; MatchMaker and Cupid are single but pipelined
/// and multithreaded via their thread stores).
#[derive(Debug, Clone)]
pub(crate) struct Units {
    pub lub: UnitPool,
    pub midwife: UnitPool,
    pub matchmaker: UnitPool,
    pub cupid: UnitPool,
}

impl Units {
    pub fn new() -> Self {
        Units {
            lub: UnitPool::new(2),
            midwife: UnitPool::new(2),
            matchmaker: UnitPool::new(1),
            cupid: UnitPool::new(1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_unit_serializes_issues() {
        let mut p = UnitPool::new(1);
        assert_eq!(p.issue(10), 10);
        assert_eq!(p.issue(10), 11);
        assert_eq!(p.issue(10), 12);
        assert_eq!(p.issued(), 3);
    }

    #[test]
    fn dual_units_issue_in_parallel() {
        let mut p = UnitPool::new(2);
        assert_eq!(p.issue(5), 5);
        assert_eq!(p.issue(5), 5);
        assert_eq!(p.issue(5), 6);
    }

    #[test]
    fn idle_units_issue_immediately() {
        let mut p = UnitPool::new(1);
        p.issue(0);
        assert_eq!(p.issue(100), 100);
    }

    #[test]
    #[should_panic(expected = "at least one unit")]
    fn empty_pool_panics() {
        let _ = UnitPool::new(0);
    }
}
