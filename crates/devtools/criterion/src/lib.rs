//! Offline stand-in for the subset of the `criterion` crate this workspace
//! uses.
//!
//! The build environment has no access to crates.io, so this crate provides
//! a dependency-free benchmark harness with the same API shape:
//! [`Criterion::benchmark_group`], `bench_function` / `bench_with_input`,
//! [`Bencher::iter`], [`BenchmarkId`], [`black_box`] and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Measurement is deliberately simple: each benchmark is warmed up, then
//! timed over `sample_size` samples of auto-scaled iteration batches, and
//! the median per-iteration time is printed as
//! `name/id ... median <t> (min <t>, max <t>)`. There are no HTML reports,
//! no statistical regression analysis, and no baseline comparisons — just
//! stable wall-clock numbers suitable for before/after comparisons.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Target measurement time per sample batch, in nanoseconds.
const TARGET_SAMPLE_NS: u128 = 20_000_000;
/// Warm-up budget per benchmark, in nanoseconds.
const WARMUP_NS: u128 = 50_000_000;

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Identifier from a function name plus a parameter.
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{name}/{parameter}"),
        }
    }

    /// Identifier from a parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Drives timed iterations of one benchmark body.
#[derive(Debug, Default)]
pub struct Bencher {
    samples: Vec<f64>,
    sample_size: usize,
}

impl Bencher {
    /// Times `body`, collecting per-iteration nanoseconds.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut body: F) {
        // Warm up and estimate a batch size that runs ~TARGET_SAMPLE_NS.
        let mut iters_per_batch = 1u64;
        let warm_start = Instant::now();
        loop {
            let t = Instant::now();
            for _ in 0..iters_per_batch {
                black_box(body());
            }
            let elapsed = t.elapsed().as_nanos().max(1);
            if warm_start.elapsed().as_nanos() > WARMUP_NS || elapsed > TARGET_SAMPLE_NS / 2 {
                let per_iter = elapsed / u128::from(iters_per_batch);
                iters_per_batch =
                    (TARGET_SAMPLE_NS / per_iter.max(1)).clamp(1, 1_000_000_000) as u64;
                break;
            }
            iters_per_batch = iters_per_batch.saturating_mul(2);
        }

        self.samples.clear();
        for _ in 0..self.sample_size {
            let t = Instant::now();
            for _ in 0..iters_per_batch {
                black_box(body());
            }
            let elapsed = t.elapsed().as_nanos() as f64;
            self.samples.push(elapsed / iters_per_batch as f64);
        }
    }

    fn summary(&self) -> Option<(f64, f64, f64)> {
        if self.samples.is_empty() {
            return None;
        }
        let mut sorted = self.samples.clone();
        sorted.sort_by(|a, b| a.total_cmp(b));
        let median = sorted[sorted.len() / 2];
        Some((median, sorted[0], sorted[sorted.len() - 1]))
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

fn run_one(label: &str, sample_size: usize, f: impl FnOnce(&mut Bencher)) {
    let mut b = Bencher {
        samples: Vec::new(),
        sample_size,
    };
    f(&mut b);
    match b.summary() {
        Some((median, min, max)) => println!(
            "{label:<40} median {} (min {}, max {})",
            fmt_ns(median),
            fmt_ns(min),
            fmt_ns(max)
        ),
        None => println!("{label:<40} (no measurement)"),
    }
}

/// A named collection of related benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Overrides the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: BenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut f = f;
        run_one(&format!("{}/{}", self.name, id), self.sample_size, |b| f(b));
        self
    }

    /// Runs one benchmark with an explicit input value.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let mut f = f;
        run_one(&format!("{}/{}", self.name, id), self.sample_size, |b| {
            f(b, input)
        });
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// The benchmark harness entry point.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 30 }
    }
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.sample_size;
        BenchmarkGroup {
            name: name.into(),
            sample_size,
            _criterion: self,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut f = f;
        run_one(name, self.sample_size, |b| f(b));
        self
    }

    /// Configures the measurement duration (accepted for API
    /// compatibility; the stand-in keys off sample counts instead).
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }
}

/// Declares a group-runner function invoking each benchmark target.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares `main` running each benchmark group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_format() {
        assert_eq!(BenchmarkId::from_parameter("lftj").to_string(), "lftj");
        assert_eq!(BenchmarkId::new("scan", 4).to_string(), "scan/4");
    }

    #[test]
    fn bencher_collects_samples() {
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: 3,
        };
        let mut x = 0u64;
        b.iter(|| {
            x = x.wrapping_add(1);
            x
        });
        assert_eq!(b.samples.len(), 3);
        let (median, min, max) = b.summary().unwrap();
        assert!(min <= median && median <= max);
    }
}
