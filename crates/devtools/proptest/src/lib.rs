//! Offline stand-in for the subset of the `proptest` crate this workspace
//! uses.
//!
//! The build environment has no access to crates.io, so this crate
//! reimplements the property-testing surface the test suites consume:
//! the [`proptest!`] macro, [`strategy::Strategy`] with the `prop_map` /
//! `prop_flat_map` / `prop_filter` / `prop_filter_map` combinators, range
//! and tuple strategies, [`collection::vec`] / [`collection::btree_set`],
//! [`sample::select`], [`arbitrary::any`] and the `prop_assert*` macros.
//!
//! Semantics are simplified relative to upstream: cases are generated from
//! a deterministic per-test seed, failures panic immediately (no
//! shrinking), and `prop_assume!` skips the current case. That preserves
//! the *checking* power of the suites while staying dependency-free.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod test_runner {
    //! Deterministic case generation and run configuration.

    /// Configuration for one `proptest!` block.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct ProptestConfig {
        /// Number of random cases to run per test.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Configuration running `cases` random cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// Deterministic split-mix generator seeded from the test's full path,
    /// so every test has a stable but distinct case stream.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds the generator from a test name.
        pub fn from_name(name: &str) -> Self {
            // FNV-1a over the name gives a stable per-test seed.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng { state: h }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform `u64` in `[0, bound)`.
        ///
        /// # Panics
        ///
        /// Panics if `bound == 0`.
        pub fn below(&mut self, bound: u64) -> u64 {
            assert!(bound > 0, "empty sampling bound");
            self.next_u64() % bound
        }
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and its combinators.

    use crate::test_runner::TestRng;

    /// How many times a filtering strategy retries before giving up.
    const FILTER_RETRIES: usize = 4096;

    /// A recipe for generating random values of one type.
    ///
    /// Unlike upstream proptest there is no value tree or shrinking: a
    /// strategy simply produces a value from a [`TestRng`].
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Generates a value, then generates from the strategy `f` returns.
        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { inner: self, f }
        }

        /// Discards generated values failing `f`, retrying with fresh ones.
        fn prop_filter<F>(self, reason: &'static str, f: F) -> Filter<Self, F>
        where
            Self: Sized,
            F: Fn(&Self::Value) -> bool,
        {
            Filter {
                inner: self,
                reason,
                f,
            }
        }

        /// Maps values through `f`, retrying whenever it returns `None`.
        fn prop_filter_map<O, F>(self, reason: &'static str, f: F) -> FilterMap<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> Option<O>,
        {
            FilterMap {
                inner: self,
                reason,
                f,
            }
        }
    }

    /// Strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    #[derive(Debug, Clone)]
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
        type Value = T::Value;
        fn generate(&self, rng: &mut TestRng) -> T::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    /// See [`Strategy::prop_filter`].
    #[derive(Debug, Clone)]
    pub struct Filter<S, F> {
        inner: S,
        reason: &'static str,
        f: F,
    }

    impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..FILTER_RETRIES {
                let v = self.inner.generate(rng);
                if (self.f)(&v) {
                    return v;
                }
            }
            panic!("prop_filter exhausted retries: {}", self.reason);
        }
    }

    /// See [`Strategy::prop_filter_map`].
    #[derive(Debug, Clone)]
    pub struct FilterMap<S, F> {
        inner: S,
        reason: &'static str,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> Option<O>> Strategy for FilterMap<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            for _ in 0..FILTER_RETRIES {
                if let Some(v) = (self.f)(self.inner.generate(rng)) {
                    return v;
                }
            }
            panic!("prop_filter_map exhausted retries: {}", self.reason);
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as u128).wrapping_sub(self.start as u128);
                    let v = u128::from(rng.next_u64()) % span;
                    self.start.wrapping_add(v as $t)
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start() <= self.end(), "empty range strategy");
                    let span = (*self.end() as u128)
                        .wrapping_sub(*self.start() as u128)
                        .wrapping_add(1);
                    let v = u128::from(rng.next_u64()) % span;
                    self.start().wrapping_add(v as $t)
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! tuple_strategy {
        ($(($($s:ident / $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (A/0, B/1)
        (A/0, B/1, C/2)
        (A/0, B/1, C/2, D/3)
        (A/0, B/1, C/2, D/3, E/4)
    }
}

pub mod collection {
    //! Strategies for collections.

    use std::collections::BTreeSet;

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// A size specification: an exact size or a size range.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        /// Inclusive upper bound.
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    impl SizeRange {
        fn pick(&self, rng: &mut TestRng) -> usize {
            self.min + rng.below((self.max - self.min + 1) as u64) as usize
        }
    }

    /// Strategy for `Vec`s with sizes drawn from a [`SizeRange`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates `Vec`s whose length lies in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.pick(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy for `BTreeSet`s with target sizes drawn from a
    /// [`SizeRange`]; the result may be smaller when the element domain
    /// saturates.
    #[derive(Debug, Clone)]
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates `BTreeSet`s whose size aims for `size`.
    pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let target = self.size.pick(rng);
            let mut out = BTreeSet::new();
            let mut attempts = 0usize;
            while out.len() < target && attempts < 64 + 16 * target {
                out.insert(self.element.generate(rng));
                attempts += 1;
            }
            out
        }
    }
}

pub mod sample {
    //! Strategies sampling from explicit value lists.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy returned by [`select`].
    #[derive(Debug, Clone)]
    pub struct Select<T: Clone> {
        options: Vec<T>,
    }

    /// Picks one of `options` uniformly.
    ///
    /// # Panics
    ///
    /// Panics at generation time if `options` is empty.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        Select { options }
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            assert!(!self.options.is_empty(), "select from empty list");
            self.options[rng.below(self.options.len() as u64) as usize].clone()
        }
    }
}

pub mod arbitrary {
    //! The [`any`] entry point and the [`Arbitrary`] trait.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary {
        /// Generates an arbitrary value of the type.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! int_arbitrary {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// Strategy returned by [`any`].
    #[derive(Debug, Clone, Copy, Default)]
    pub struct Any<A> {
        _marker: core::marker::PhantomData<A>,
    }

    /// The canonical strategy for `A`.
    pub fn any<A: Arbitrary>() -> Any<A> {
        Any {
            _marker: core::marker::PhantomData,
        }
    }

    impl<A: Arbitrary> Strategy for Any<A> {
        type Value = A;
        fn generate(&self, rng: &mut TestRng) -> A {
            A::arbitrary(rng)
        }
    }
}

/// Defines property tests.
///
/// Supports the upstream surface used in this workspace: an optional
/// `#![proptest_config(...)]` header and `fn name(pat in strategy, ...)`
/// items carrying arbitrary outer attributes (including `#[test]`).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            (<$crate::test_runner::ProptestConfig as ::core::default::Default>::default());
            $($rest)*
        }
    };
}

/// Internal expansion helper for [`proptest!`]; not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr); $($(#[$meta:meta])* fn $name:ident ( $($pat:pat in $strat:expr),+ $(,)? ) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::ProptestConfig = $cfg;
                let mut __rng = $crate::test_runner::TestRng::from_name(
                    concat!(module_path!(), "::", stringify!($name)),
                );
                for __case in 0..__config.cases {
                    $(let $pat = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
                    // The closure gives `prop_assume!`'s early `return`
                    // per-case (not per-test) scope.
                    #[allow(unused_mut)]
                    let mut __case_fn = move || $body;
                    __case_fn();
                }
            }
        )*
    };
}

/// Asserts a condition inside a property test, panicking with the case's
/// values on failure.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond);
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*);
    };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_eq!($a, $b, $($fmt)*);
    };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {
        assert_ne!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_ne!($a, $b, $($fmt)*);
    };
}

/// Skips the current case when its inputs don't satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return;
        }
    };
}

pub mod prelude {
    //! Single-import surface mirroring `proptest::prelude`.

    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};

    /// The `prop` module alias used as `prop::collection::vec` etc.
    pub mod prop {
        pub use crate::collection;
        pub use crate::sample;
        pub use crate::strategy;
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(50))]

        #[test]
        fn ranges_and_tuples((a, b) in (0u32..10, 5usize..9), c in 1u64..=3) {
            prop_assert!(a < 10);
            prop_assert!((5..9).contains(&b));
            prop_assert!((1..=3).contains(&c));
        }

        #[test]
        fn collections_respect_sizes(
            v in prop::collection::vec(0u32..100, 3..7),
            s in prop::collection::btree_set(0u32..1000, 2..10),
        ) {
            prop_assert!((3..7).contains(&v.len()));
            prop_assert!(s.len() < 10);
        }

        #[test]
        fn combinators_compose(
            x in (0u32..50).prop_map(|v| v * 2),
            y in (1usize..4).prop_flat_map(|n| prop::collection::vec(0u32..10, n)),
            z in (0i32..100).prop_filter("even only", |v| v % 2 == 0),
            w in (0u32..40).prop_filter_map("small doubles", |v| (v < 20).then_some(v * 2)),
        ) {
            prop_assert!(x % 2 == 0);
            prop_assert!(!y.is_empty() && y.len() < 4);
            prop_assert!(z % 2 == 0);
            prop_assert!(w % 2 == 0 && w < 40);
        }

        #[test]
        fn assume_skips(n in 0u32..10) {
            prop_assume!(n != 3);
            prop_assert_ne!(n, 3);
        }

        #[test]
        fn select_and_any(k in prop::sample::select(vec![2u64, 4, 8]), flag in any::<bool>()) {
            prop_assert!(k.is_power_of_two());
            let _ = flag;
        }
    }

    #[test]
    fn deterministic_streams() {
        use crate::strategy::Strategy;
        let mut a = crate::test_runner::TestRng::from_name("x");
        let mut b = crate::test_runner::TestRng::from_name("x");
        let s = 0u32..1000;
        let xs: Vec<u32> = (0..16).map(|_| s.generate(&mut a)).collect();
        let ys: Vec<u32> = (0..16).map(|_| s.generate(&mut b)).collect();
        assert_eq!(xs, ys);
    }
}
