//! Offline stand-in for the subset of the `rand` crate this workspace uses.
//!
//! The build environment has no access to crates.io, so this crate provides
//! an API-compatible deterministic PRNG covering exactly the surface the
//! workspace consumes: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`] and
//! [`Rng::gen_range`] over integer and float ranges.
//!
//! The generator is xoshiro256++ seeded through splitmix64 — high quality
//! for simulation workloads and fully reproducible from a `u64` seed, which
//! is the property the graph generators rely on. It is **not** the same
//! stream as the real `StdRng`, and it is not cryptographically secure.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::Range;

/// Low-level source of random words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// A random number generator constructible from a seed.
pub trait SeedableRng: Sized {
    /// Creates a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// High-level sampling methods, implemented for every [`RngCore`].
pub trait Rng: RngCore + Sized {
    /// Samples a value uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }
}

impl<T: RngCore + Sized> Rng for T {}

/// A range that knows how to sample values of type `T` from a generator.
///
/// The output type is a trait parameter (not an associated type) so that
/// integer-literal ranges unify with the inferred result type, exactly as
/// with the real `rand` crate.
pub trait SampleRange<T> {
    /// Draws one uniform sample.
    fn sample<R: RngCore>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                let v = (rng.next_u64() as u128) % span;
                self.start.wrapping_add(v as $t)
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample<R: RngCore>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        // 53 uniform mantissa bits in [0, 1).
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + (self.end - self.start) * unit
    }
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (stand-in for `rand`'s
    /// `StdRng`; the stream differs from upstream).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u32> = (0..32).map(|_| a.gen_range(0u32..1000)).collect();
        let ys: Vec<u32> = (0..32).map(|_| b.gen_range(0u32..1000)).collect();
        let zs: Vec<u32> = (0..32).map(|_| c.gen_range(0u32..1000)).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn ranges_are_respected() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(5u32..17);
            assert!((5..17).contains(&v));
            let f = rng.gen_range(0.0..3.5);
            assert!((0.0..3.5).contains(&f));
            let u = rng.gen_range(0usize..3);
            assert!(u < 3);
        }
    }

    #[test]
    fn covers_the_whole_range() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 8];
        for _ in 0..500 {
            seen[rng.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
