//! Query governance: cancellation, deadlines, and result/intermediate
//! budgets, cheaply pollable from every worker of a parallel run.
//!
//! A [`RunBudget`] is the shared governance state of one query run:
//! a sticky cancellation flag (first tripped reason wins), an optional
//! wall-clock deadline, an optional result-row quota, and an optional
//! intermediate-tuple budget. It is carried as an `Arc` through the pool,
//! the split controllers, and the merge drain, and polled at the natural
//! boundaries of every engine loop.
//!
//! Engines stay zero-cost when un-governed through the [`Budget`] trait:
//! a kernel generic over `B: Budget` monomorphizes with [`NoBudget`] into
//! exactly the code it had before budgets existed (every check is an
//! inlined constant), mirroring the `NoTally`/`NoSplit` pattern used for
//! instrumentation and splitting. Governed runs use a [`BudgetHandle`],
//! whose hot path is a single relaxed-ish atomic load with a periodic
//! deadline/external refresh.
//!
//! # Example
//!
//! ```
//! use triejax_exec::{Budget, BudgetHandle, CancelReason, RunBudget};
//! use std::sync::Arc;
//!
//! let budget = Arc::new(RunBudget::new().with_row_limit(2));
//! let mut handle = BudgetHandle::driving(budget.clone());
//! assert!(handle.charge_row()); // row 1
//! assert!(handle.charge_row()); // row 2: quota exhausted, flag trips
//! assert!(!handle.charge_row()); // row 3 is refused
//! assert_eq!(budget.cancelled(), Some(CancelReason::RowLimit));
//! ```

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Why a run was cancelled. Carried in the budget's sticky flag and
/// surfaced by the engines in their cancellation error.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum CancelReason {
    /// The caller cancelled through a [`CancelToken`].
    External,
    /// The wall-clock deadline passed.
    Deadline,
    /// The result-row quota was reached.
    RowLimit,
    /// The intermediate-tuple budget was exhausted.
    MemoryBudget,
}

impl std::fmt::Display for CancelReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            CancelReason::External => "cancelled by the caller",
            CancelReason::Deadline => "wall-clock deadline passed",
            CancelReason::RowLimit => "result-row limit reached",
            CancelReason::MemoryBudget => "intermediate-tuple budget exhausted",
        };
        f.write_str(s)
    }
}

/// Flag encoding: 0 = live, otherwise a [`CancelReason`].
const LIVE: u8 = 0;

fn encode(reason: CancelReason) -> u8 {
    match reason {
        CancelReason::External => 1,
        CancelReason::Deadline => 2,
        CancelReason::RowLimit => 3,
        CancelReason::MemoryBudget => 4,
    }
}

fn decode(flag: u8) -> Option<CancelReason> {
    match flag {
        LIVE => None,
        1 => Some(CancelReason::External),
        2 => Some(CancelReason::Deadline),
        3 => Some(CancelReason::RowLimit),
        _ => Some(CancelReason::MemoryBudget),
    }
}

/// A cloneable handle through which a caller cancels a running query from
/// another thread. Pass a clone to the engine builder
/// (`with_cancel_token`) and call [`cancel`](Self::cancel) at any time;
/// every worker observes the request at its next poll point.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    fired: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, un-fired token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests cancellation. Idempotent; never blocks.
    pub fn cancel(&self) {
        self.fired.store(true, Ordering::Release);
    }

    /// Whether [`cancel`](Self::cancel) has been called.
    pub fn is_cancelled(&self) -> bool {
        self.fired.load(Ordering::Acquire)
    }
}

/// Shared governance state of one query run: a sticky cancellation flag
/// plus the configured limits. Constructed by the engine from its builder
/// and environment knobs, shared as an `Arc` with every worker and the
/// foreground drain.
///
/// The flag is *first-wins*: once any limit trips (or the caller
/// cancels), later trips cannot overwrite the recorded reason.
#[derive(Debug, Default)]
pub struct RunBudget {
    flag: AtomicU8,
    deadline: Option<Instant>,
    row_limit: Option<u64>,
    produced: AtomicU64,
    intermediate_limit: Option<u64>,
    intermediates: AtomicU64,
    external: Option<CancelToken>,
}

impl RunBudget {
    /// An unrestricted budget (no deadline, no quotas, no token). Useful
    /// as a base for the `with_*` builders.
    pub fn new() -> Self {
        Self::default()
    }

    /// Trips the flag when `duration` has elapsed from now.
    #[must_use]
    pub fn with_deadline(mut self, duration: Duration) -> Self {
        self.deadline = Some(Instant::now() + duration);
        self
    }

    /// Caps delivered result rows at `limit`; the `limit`-th row trips
    /// the flag so the rest of the run winds down cooperatively.
    #[must_use]
    pub fn with_row_limit(mut self, limit: u64) -> Self {
        self.row_limit = Some(limit);
        self
    }

    /// Caps charged intermediate tuples (cache entry rows, materialized
    /// candidate sets) at `limit`.
    #[must_use]
    pub fn with_intermediate_limit(mut self, limit: u64) -> Self {
        self.intermediate_limit = Some(limit);
        self
    }

    /// Ties the budget to an external [`CancelToken`].
    #[must_use]
    pub fn with_cancel_token(mut self, token: CancelToken) -> Self {
        self.external = Some(token);
        self
    }

    /// The configured row quota, if any.
    pub fn row_limit(&self) -> Option<u64> {
        self.row_limit
    }

    /// The recorded cancellation reason, if the run has been cancelled.
    /// A single atomic load — cheap enough for per-batch checks.
    pub fn cancelled(&self) -> Option<CancelReason> {
        decode(self.flag.load(Ordering::Acquire))
    }

    /// Trips the flag with `reason`; the first recorded reason wins.
    pub fn cancel(&self, reason: CancelReason) {
        let _ =
            self.flag
                .compare_exchange(LIVE, encode(reason), Ordering::AcqRel, Ordering::Acquire);
    }

    /// Full poll: re-checks the external token and the wall-clock
    /// deadline (the two conditions a worker cannot observe through the
    /// flag alone), then reports the flag. Costs an `Instant::now()` when
    /// a deadline is set, so workers rate-limit it behind the flag-only
    /// fast path (see [`BudgetHandle`]).
    pub fn refresh(&self) -> Option<CancelReason> {
        if let Some(reason) = self.cancelled() {
            return Some(reason);
        }
        if self
            .external
            .as_ref()
            .is_some_and(CancelToken::is_cancelled)
        {
            self.cancel(CancelReason::External);
        } else if self.deadline.is_some_and(|d| Instant::now() >= d) {
            self.cancel(CancelReason::Deadline);
        }
        self.cancelled()
    }

    /// Charges `n` result rows against the quota and returns how many of
    /// them may actually be delivered (always `n` when no quota is set
    /// and the run is live). The charge that crosses the quota trips the
    /// flag with [`CancelReason::RowLimit`] — *after* granting the rows
    /// up to the limit, so a single consumer charging in stream order
    /// delivers exactly `limit` rows.
    pub fn charge_rows(&self, n: u64) -> u64 {
        if self
            .cancelled()
            .is_some_and(|r| r != CancelReason::RowLimit)
        {
            return 0;
        }
        let Some(limit) = self.row_limit else {
            return if self.cancelled().is_some() { 0 } else { n };
        };
        if n == 0 {
            return 0;
        }
        let prev = self.produced.fetch_add(n, Ordering::AcqRel);
        let allowed = limit.saturating_sub(prev).min(n);
        if prev + n >= limit {
            self.cancel(CancelReason::RowLimit);
        }
        allowed
    }

    /// Charges `n` intermediate tuples against the memory budget.
    /// Returns `false` (and trips the flag) once the budget is exceeded.
    pub fn charge_intermediates(&self, n: u64) -> bool {
        let Some(limit) = self.intermediate_limit else {
            return true;
        };
        let prev = self.intermediates.fetch_add(n, Ordering::AcqRel);
        if prev + n > limit {
            self.cancel(CancelReason::MemoryBudget);
            return false;
        }
        true
    }
}

/// Per-kernel budget interface. Join kernels are generic over it so that
/// un-governed runs ([`NoBudget`]) compile to exactly the unchecked code,
/// while governed runs ([`BudgetHandle`]) poll a shared [`RunBudget`].
pub trait Budget {
    /// `true` when this budget can ever trip (lets cold setup code skip
    /// governance bookkeeping entirely).
    const GOVERNED: bool;

    /// Polls for cancellation. Called at the root-loop boundaries of
    /// every kernel; must be cheap enough for a per-root-value check.
    fn poll(&mut self) -> Option<CancelReason>;

    /// Charges one result row; `false` means the row (and everything
    /// after it) must not be emitted.
    fn charge_row(&mut self) -> bool;

    /// Charges `n` intermediate tuples; `false` means the memory budget
    /// tripped and the kernel should stop.
    fn charge_intermediates(&mut self, n: u64) -> bool;
}

/// The zero-cost default: no checks, no state, nothing to trip. Kernels
/// monomorphized with `NoBudget` are byte-identical to pre-governance
/// builds.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoBudget;

impl Budget for NoBudget {
    const GOVERNED: bool = false;

    #[inline(always)]
    fn poll(&mut self) -> Option<CancelReason> {
        None
    }

    #[inline(always)]
    fn charge_row(&mut self) -> bool {
        true
    }

    #[inline(always)]
    fn charge_intermediates(&mut self, _n: u64) -> bool {
        true
    }
}

/// How often (in polls) a [`BudgetHandle`] pays for a full
/// [`RunBudget::refresh`] instead of the flag-only fast check.
const REFRESH_PERIOD: u32 = 64;

/// A worker's view of a shared [`RunBudget`]: polls are a single atomic
/// flag load, with a deadline/token refresh every `REFRESH_PERIOD`-th
/// call so `Instant::now()` stays off the hot path.
///
/// Two row-charging modes exist because the parallel engines enforce the
/// row quota at the ordered *drain* (the only place where "the first N
/// rows" is meaningful), while the sequential fast path enforces it at
/// the emit point:
///
/// * [`driving`](Self::driving) — emits straight into the caller's sink,
///   so [`charge_row`](Budget::charge_row) draws from the shared quota.
/// * [`worker`](Self::worker) — emits into a merge lane that the drain
///   will re-order and cap, so `charge_row` only checks the flag (the
///   drain owns the quota; a worker drawing from it out of stream order
///   would punch holes in the delivered prefix).
#[derive(Debug, Clone)]
pub struct BudgetHandle {
    budget: Arc<RunBudget>,
    countdown: u32,
    charges_quota: bool,
}

impl BudgetHandle {
    /// Handle for a kernel emitting directly into the final sink (the
    /// sequential path): rows drawn from the shared quota at emit time.
    pub fn driving(budget: Arc<RunBudget>) -> Self {
        BudgetHandle {
            budget,
            countdown: 0,
            charges_quota: true,
        }
    }

    /// Handle for a kernel emitting into an ordered-merge lane: the
    /// foreground drain enforces the quota, the worker only honours the
    /// flag.
    pub fn worker(budget: Arc<RunBudget>) -> Self {
        BudgetHandle {
            budget,
            countdown: 0,
            charges_quota: false,
        }
    }

    /// The shared budget behind this handle.
    pub fn shared(&self) -> &Arc<RunBudget> {
        &self.budget
    }
}

impl Budget for BudgetHandle {
    const GOVERNED: bool = true;

    #[inline]
    fn poll(&mut self) -> Option<CancelReason> {
        if let Some(reason) = self.budget.cancelled() {
            return Some(reason);
        }
        if self.countdown == 0 {
            self.countdown = REFRESH_PERIOD;
            return self.budget.refresh();
        }
        self.countdown -= 1;
        None
    }

    #[inline]
    fn charge_row(&mut self) -> bool {
        if self.charges_quota {
            self.budget.charge_rows(1) == 1
        } else {
            self.budget.cancelled().is_none()
        }
    }

    #[inline]
    fn charge_intermediates(&mut self, n: u64) -> bool {
        self.budget.charge_intermediates(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_budget_is_live_and_unlimited() {
        let b = RunBudget::new();
        assert_eq!(b.cancelled(), None);
        assert_eq!(b.charge_rows(1_000_000), 1_000_000);
        assert!(b.charge_intermediates(1_000_000));
        assert_eq!(b.refresh(), None);
    }

    #[test]
    fn first_cancellation_reason_wins() {
        let b = RunBudget::new();
        b.cancel(CancelReason::Deadline);
        b.cancel(CancelReason::External);
        assert_eq!(b.cancelled(), Some(CancelReason::Deadline));
    }

    #[test]
    fn row_quota_grants_exactly_the_limit_and_trips_at_the_crossing() {
        let b = RunBudget::new().with_row_limit(5);
        assert_eq!(b.charge_rows(3), 3);
        assert_eq!(b.cancelled(), None, "under quota: still live");
        assert_eq!(b.charge_rows(3), 2, "the crossing grants only the rest");
        assert_eq!(b.cancelled(), Some(CancelReason::RowLimit));
        assert_eq!(b.charge_rows(1), 0, "nothing after the quota");
    }

    #[test]
    fn row_quota_of_zero_delivers_nothing() {
        let b = RunBudget::new().with_row_limit(0);
        assert_eq!(b.charge_rows(4), 0);
        assert_eq!(b.cancelled(), Some(CancelReason::RowLimit));
    }

    #[test]
    fn non_row_cancellation_stops_row_grants() {
        let b = RunBudget::new().with_row_limit(10);
        b.cancel(CancelReason::External);
        assert_eq!(b.charge_rows(4), 0);
    }

    #[test]
    fn intermediate_budget_trips_once_exceeded() {
        let b = RunBudget::new().with_intermediate_limit(10);
        assert!(b.charge_intermediates(10), "exactly the budget is fine");
        assert_eq!(b.cancelled(), None);
        assert!(!b.charge_intermediates(1));
        assert_eq!(b.cancelled(), Some(CancelReason::MemoryBudget));
    }

    #[test]
    fn external_token_trips_on_refresh() {
        let token = CancelToken::new();
        let b = RunBudget::new().with_cancel_token(token.clone());
        assert_eq!(b.refresh(), None);
        token.cancel();
        assert!(token.is_cancelled());
        assert_eq!(b.refresh(), Some(CancelReason::External));
        assert_eq!(b.cancelled(), Some(CancelReason::External));
    }

    #[test]
    fn elapsed_deadline_trips_on_refresh() {
        let b = RunBudget::new().with_deadline(Duration::from_millis(0));
        // A zero deadline is already in the past by the time we poll.
        assert_eq!(b.refresh(), Some(CancelReason::Deadline));
    }

    #[test]
    fn handle_fast_path_sees_the_flag_immediately() {
        let shared = Arc::new(RunBudget::new());
        let mut h = BudgetHandle::worker(shared.clone());
        assert_eq!(h.poll(), None);
        shared.cancel(CancelReason::External);
        assert_eq!(h.poll(), Some(CancelReason::External));
        assert!(!h.charge_row(), "worker mode refuses rows once cancelled");
    }

    #[test]
    fn handle_refresh_notices_a_deadline_within_the_period() {
        let shared = Arc::new(RunBudget::new().with_deadline(Duration::from_millis(0)));
        let mut h = BudgetHandle::worker(shared);
        let mut tripped = None;
        for _ in 0..=(REFRESH_PERIOD * 2) {
            if let Some(r) = h.poll() {
                tripped = Some(r);
                break;
            }
        }
        assert_eq!(tripped, Some(CancelReason::Deadline));
    }

    #[test]
    fn driving_handle_draws_from_the_shared_quota() {
        let shared = Arc::new(RunBudget::new().with_row_limit(2));
        let mut a = BudgetHandle::driving(shared.clone());
        let mut b = BudgetHandle::driving(shared.clone());
        assert!(a.charge_row());
        assert!(b.charge_row());
        assert!(!a.charge_row());
        assert_eq!(shared.cancelled(), Some(CancelReason::RowLimit));
    }

    #[test]
    fn worker_handle_never_consumes_quota() {
        let shared = Arc::new(RunBudget::new().with_row_limit(3));
        let mut w = BudgetHandle::worker(shared.clone());
        for _ in 0..100 {
            assert!(w.charge_row(), "workers emit freely until the flag trips");
        }
        assert_eq!(shared.charge_rows(3), 3, "the drain still owns all 3 rows");
    }

    #[test]
    fn no_budget_is_inert() {
        let mut b = NoBudget;
        const { assert!(!NoBudget::GOVERNED) }
        assert_eq!(b.poll(), None);
        assert!(b.charge_row());
        assert!(b.charge_intermediates(u64::MAX));
    }

    #[test]
    fn reasons_display_distinctly() {
        let reasons = [
            CancelReason::External,
            CancelReason::Deadline,
            CancelReason::RowLimit,
            CancelReason::MemoryBudget,
        ];
        let rendered: std::collections::BTreeSet<String> =
            reasons.iter().map(ToString::to_string).collect();
        assert_eq!(rendered.len(), reasons.len());
    }
}
