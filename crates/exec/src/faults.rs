//! Deterministic fault injection for the parallel runtime.
//!
//! Compiled only under `cfg(test)` or the `faults` cargo feature, this
//! module lets tests force panics, delays, and failed split handoffs at
//! precise points of a pool run: an installed [`FaultPlan`] matches
//! runtime events by `(worker, event, ordinal)` and fires each matching
//! rule exactly once. Plans can be written out explicitly or derived from
//! a seed ([`FaultPlan::from_seed`]), so a failing schedule replays
//! exactly from its seed alone.
//!
//! The instrumented sites (see [`FaultEvent`]) call [`fire`] — or
//! [`on_event`] where the site needs to apply the action itself, such as
//! the split handoff, which must close its freshly opened merge lane
//! before panicking. With no plan installed every hook is a single
//! mutex-guarded `Option` check, and in non-test builds without the
//! `faults` feature the hooks do not exist at all.
//!
//! Installation is process-global and serialized: [`install`] holds a
//! static lock for the lifetime of the returned [`FaultGuard`], so
//! concurrently running tests cannot see each other's plans.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::time::Duration;

/// A runtime event at which a fault can be injected.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum FaultEvent {
    /// A worker begins executing a claimed task.
    TaskStart,
    /// A worker steals a task from a sibling's queue.
    Steal,
    /// A splitting task hands its range tail off: after the new merge
    /// lane is opened, before the tail task is spawned.
    SplitHandoff,
    /// A worker is about to publish a computed entry into a shared cache.
    CacheInsert,
    /// A producer is about to push a batch into an ordered merge lane.
    MergePush,
    /// A trie build is about to run (one per distinct `(relation, perm)`
    /// build of a `TrieSet`, fired before any partition task starts).
    TrieBuild,
    /// A session mutation batch is about to commit: fired after the new
    /// delta state is fully computed, before it is swapped in. A panic
    /// here must leave the session at its prior epoch (apply atomicity).
    DeltaApply,
}

/// What happens when a rule matches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum FaultAction {
    /// Panic at the event site (the payload contains
    /// `"injected fault"`).
    Panic,
    /// Sleep for the given number of milliseconds — widens race windows
    /// (e.g. an in-flight handoff) deterministically.
    Delay(u64),
    /// Abort a split handoff: the handoff site closes the lane it just
    /// opened, then panics. At non-handoff sites this acts like
    /// [`Panic`](Self::Panic).
    FailHandoff,
}

/// One injection rule: fire `action` on the `ordinal`-th occurrence
/// (0-based, counted per `(worker, event)`) of `event`, optionally
/// restricted to one worker. Each rule fires at most once per install.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultRule {
    /// Restrict to this worker id; `None` matches any worker.
    pub worker: Option<usize>,
    /// The event to intercept.
    pub event: FaultEvent,
    /// Which occurrence (0-based) of `event` on the matched worker fires
    /// the rule.
    pub ordinal: u64,
    /// The injected behaviour.
    pub action: FaultAction,
}

/// A set of [`FaultRule`]s to install for one test run.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    rules: Vec<FaultRule>,
}

impl FaultPlan {
    /// An empty plan.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one rule (builder-style).
    #[must_use]
    pub fn rule(mut self, rule: FaultRule) -> Self {
        self.rules.push(rule);
        self
    }

    /// Derives a small plan deterministically from `seed`: one to three
    /// rules drawn over `events`, early ordinals, and the given worker
    /// count (or any-worker). The same seed always yields the same plan,
    /// so a failure found by a seed sweep replays from the seed alone.
    pub fn from_seed(seed: u64, events: &[FaultEvent], workers: usize) -> Self {
        assert!(!events.is_empty(), "need at least one candidate event");
        let mut state = seed ^ 0x9e37_79b9_7f4a_7c15;
        let mut next = move || splitmix64(&mut state);
        let rules = 1 + (next() % 3) as usize;
        let mut plan = FaultPlan::new();
        for _ in 0..rules {
            let event = events[(next() % events.len() as u64) as usize];
            let worker = if workers > 0 && next() % 2 == 0 {
                Some((next() % workers as u64) as usize)
            } else {
                None
            };
            let action = match next() % 3 {
                0 => FaultAction::Panic,
                1 => FaultAction::Delay(1 + next() % 8),
                _ => FaultAction::FailHandoff,
            };
            plan = plan.rule(FaultRule {
                worker,
                event,
                ordinal: next() % 4,
                action,
            });
        }
        plan
    }

    /// The plan's rules.
    pub fn rules(&self) -> &[FaultRule] {
        &self.rules
    }
}

/// `splitmix64` step — the standard seed-expansion permutation.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The installed plan plus its runtime state: per-`(worker, event)`
/// occurrence counters and a once-latch per rule.
#[derive(Debug)]
struct Active {
    plan: FaultPlan,
    counts: Mutex<HashMap<(usize, FaultEvent), u64>>,
    fired: Vec<AtomicBool>,
}

static ACTIVE: Mutex<Option<Arc<Active>>> = Mutex::new(None);
static SERIAL: Mutex<()> = Mutex::new(());

std::thread_local! {
    /// The pool worker id of the current thread; [`NOT_A_WORKER`] on
    /// threads that never ran a pool task (e.g. the foreground drain).
    static WORKER: std::cell::Cell<usize> = const { std::cell::Cell::new(NOT_A_WORKER) };
}

/// Worker id reported for threads outside any pool run.
pub const NOT_A_WORKER: usize = usize::MAX;

/// Records the current thread's pool worker id for fault matching; the
/// pool calls this when a worker thread starts.
pub fn set_worker(id: usize) {
    WORKER.with(|w| w.set(id));
}

/// The current thread's recorded worker id.
pub fn current_worker() -> usize {
    WORKER.with(std::cell::Cell::get)
}

/// Keeps an installed [`FaultPlan`] active; dropping it uninstalls the
/// plan and releases the global serialization lock.
#[derive(Debug)]
pub struct FaultGuard {
    _serial: MutexGuard<'static, ()>,
}

impl Drop for FaultGuard {
    fn drop(&mut self) {
        *ACTIVE.lock().unwrap_or_else(PoisonError::into_inner) = None;
    }
}

/// Installs `plan` process-wide until the returned guard is dropped.
/// Blocks while another plan is installed (tests self-serialize).
pub fn install(plan: FaultPlan) -> FaultGuard {
    let serial = SERIAL.lock().unwrap_or_else(PoisonError::into_inner);
    let fired = plan.rules.iter().map(|_| AtomicBool::new(false)).collect();
    *ACTIVE.lock().unwrap_or_else(PoisonError::into_inner) = Some(Arc::new(Active {
        plan,
        counts: Mutex::new(HashMap::new()),
        fired,
    }));
    FaultGuard { _serial: serial }
}

/// Reports `event` on the current thread and returns the matched action,
/// if any, consuming the matching rule's once-latch. Sites that must
/// apply the action themselves (the split handoff) use this; everything
/// else goes through [`fire`].
pub fn on_event(event: FaultEvent) -> Option<FaultAction> {
    let active = ACTIVE
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .clone()?;
    let worker = current_worker();
    let seen = {
        let mut counts = active.counts.lock().unwrap_or_else(PoisonError::into_inner);
        let slot = counts.entry((worker, event)).or_insert(0);
        let seen = *slot;
        *slot += 1;
        seen
    };
    for (i, rule) in active.plan.rules.iter().enumerate() {
        if rule.event == event
            && rule.ordinal == seen
            && rule.worker.is_none_or(|w| w == worker)
            && !active.fired[i].swap(true, Ordering::SeqCst)
        {
            return Some(rule.action);
        }
    }
    None
}

/// Reports `event` and applies the matched action in place: `Panic` and
/// `FailHandoff` panic (payload contains `"injected fault"`), `Delay`
/// sleeps. The default hook for sites with no site-specific cleanup.
pub fn fire(event: FaultEvent) {
    match on_event(event) {
        Some(FaultAction::Panic | FaultAction::FailHandoff) => {
            panic!("injected fault: {event:?} on worker {}", current_worker());
        }
        Some(FaultAction::Delay(ms)) => std::thread::sleep(Duration::from_millis(ms)),
        None => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_plan_means_no_action() {
        let _guard = install(FaultPlan::new());
        assert_eq!(on_event(FaultEvent::TaskStart), None);
        fire(FaultEvent::MergePush); // must be a no-op, not a panic
    }

    #[test]
    fn ordinal_and_worker_matching_fires_exactly_once() {
        let _guard = install(FaultPlan::new().rule(FaultRule {
            worker: Some(3),
            event: FaultEvent::CacheInsert,
            ordinal: 1,
            action: FaultAction::Delay(0),
        }));
        set_worker(3);
        assert_eq!(on_event(FaultEvent::CacheInsert), None, "ordinal 0");
        assert_eq!(
            on_event(FaultEvent::CacheInsert),
            Some(FaultAction::Delay(0)),
            "ordinal 1 fires"
        );
        assert_eq!(on_event(FaultEvent::CacheInsert), None, "once-latch");
        set_worker(NOT_A_WORKER);
    }

    #[test]
    fn other_workers_do_not_match_a_pinned_rule() {
        let _guard = install(FaultPlan::new().rule(FaultRule {
            worker: Some(7),
            event: FaultEvent::Steal,
            ordinal: 0,
            action: FaultAction::Panic,
        }));
        set_worker(2);
        assert_eq!(on_event(FaultEvent::Steal), None);
        set_worker(NOT_A_WORKER);
    }

    #[test]
    fn fire_panics_with_a_recognizable_payload() {
        let _guard = install(FaultPlan::new().rule(FaultRule {
            worker: None,
            event: FaultEvent::TaskStart,
            ordinal: 0,
            action: FaultAction::Panic,
        }));
        let err = std::panic::catch_unwind(|| fire(FaultEvent::TaskStart))
            .expect_err("the rule must panic");
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("injected fault"), "got: {msg}");
    }

    #[test]
    fn seeded_plans_replay_exactly() {
        let events = [
            FaultEvent::TaskStart,
            FaultEvent::SplitHandoff,
            FaultEvent::MergePush,
        ];
        for seed in 0..50u64 {
            let a = FaultPlan::from_seed(seed, &events, 4);
            let b = FaultPlan::from_seed(seed, &events, 4);
            assert_eq!(a.rules(), b.rules(), "seed {seed} must replay");
            assert!(!a.rules().is_empty());
        }
    }

    #[test]
    fn dropping_the_guard_uninstalls_the_plan() {
        {
            let _guard = install(FaultPlan::new().rule(FaultRule {
                worker: None,
                event: FaultEvent::MergePush,
                ordinal: 0,
                action: FaultAction::Panic,
            }));
        }
        // Fresh guard: the old plan must be gone, not latent.
        let _guard = install(FaultPlan::new());
        assert_eq!(on_event(FaultEvent::MergePush), None);
    }
}
