//! Shared parallel execution runtime for the TrieJax reproduction.
//!
//! TrieJax gets its throughput from many concurrent join-processing units
//! that *dynamically* spawn work on cached sub-joins (paper §3.4) rather
//! than carving the input into static per-thread partitions: a unit that
//! finishes its share of the first-attribute domain immediately picks up
//! outstanding work from the shared pool, so a skewed value domain
//! rebalances instead of straggling. This crate is the software analogue
//! of that execution model, shared by every parallel join engine:
//!
//! * [`WorkerPool`] — a reusable, scoped worker pool. A query's root-value
//!   domain is split into contiguous *root ranges* (shards); each worker
//!   owns a shard queue and **steals** from its siblings once its own
//!   queue runs dry. On top of stealing, the pool's *dynamic* entry point
//!   ([`WorkerPool::run_spawning`]) hands every task a [`Spawner`]: a
//!   running task polls [`Spawner::should_split`] (relaxed loads of the
//!   idle-worker and pending-task counts) and, the moment a sibling
//!   parks idle with no handoff already waiting for it, carves off
//!   the unvisited tail of its range as a freshly spawned task — true
//!   spawn-on-match, not just static oversharding, so even a single
//!   pathological shard rebalances instead of straggling.
//! * [`OrderedMerge`] — an order-preserving merge of per-shard *batch*
//!   streams. Workers flush small batches as they are produced (instead of
//!   materializing each shard's full result), and a foreground drainer
//!   forwards them downstream in shard order as soon as every earlier
//!   shard has caught up. Memory is bounded by the out-of-order tail, not
//!   by the result set. Lanes can be opened mid-run
//!   ([`OrderedMerge::open_lane_after`]) so a split's tail streams out
//!   exactly where the parent shard would have emitted it.
//! * [`Striped`] — lock-striped shared state, the primitive behind
//!   runtime structures *shared by* all workers (TrieJax's on-chip PJR
//!   cache is shared by every lane; its software analogue, the shared
//!   partial-join-result cache of `triejax_join::ParCtj`, stripes its
//!   entries over these lanes). Stripe selection is hash-determined so
//!   every worker finds its siblings' entries; [`suggested_stripes`]
//!   overshards relative to the worker count to keep collisions rare.
//!
//! The pool is deliberately engine-agnostic — it schedules opaque tasks
//! and knows nothing about tries or tuples — so LFTJ, CTJ and any future
//! engine parallelize through the same runtime (see `triejax_join::ParLftj`
//! and `triejax_join::ParCtj`).
//!
//! The default worker count honours the `TRIEJAX_POOL` environment
//! variable, falling back to [`std::thread::available_parallelism`]; CI
//! exercises the multi-worker code paths with `TRIEJAX_POOL=2` even on
//! single-core runners.
//!
//! Two further layers make the runtime governable and testable:
//!
//! * [`RunBudget`] / [`Budget`] — cooperative cancellation and query
//!   budgets (deadline, row quota, intermediate-tuple budget). Kernels
//!   generic over [`Budget`] stay zero-cost when un-governed
//!   ([`NoBudget`]) and poll a shared flag when governed
//!   ([`BudgetHandle`]); a tripped budget winds the whole pool run down
//!   cooperatively instead of abandoning merge lanes.
//! * `faults` (tests / `--features faults` only) — a deterministic
//!   fault-injection harness that forces panics, delays, and failed
//!   split handoffs at precise `(worker, event, ordinal)` points, so the
//!   no-hang/no-lost-lane properties above are *tested*, not assumed.
//!
//! # Example
//!
//! ```
//! use triejax_exec::{OrderedMerge, WorkerPool};
//!
//! // Square numbers across a pool, draining batches in task order.
//! let pool = WorkerPool::with_workers(3);
//! let merge = OrderedMerge::new(8);
//! let tasks: Vec<u64> = (0..8).collect();
//! let mut drained = Vec::new();
//! let ((results, stats), ()) = pool.run_with_foreground(
//!     &tasks,
//!     |_ctx, lane, &n| {
//!         merge.push(lane, vec![n * n]);
//!         merge.finish(lane);
//!         n * n
//!     },
//!     || merge.drain(|batch| drained.extend(batch)),
//! );
//! assert_eq!(results, vec![0, 1, 4, 9, 16, 25, 36, 49]); // task order
//! assert_eq!(drained, results); // merge preserves lane order
//! assert_eq!(stats.tasks, 8);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod budget;
#[cfg(any(test, feature = "faults"))]
pub mod faults;
mod merge;
mod pool;
mod split;
mod striped;

pub use budget::{Budget, BudgetHandle, CancelReason, CancelToken, NoBudget, RunBudget};
pub use merge::OrderedMerge;
pub use pool::{PoolStats, WorkerCtx, WorkerPool};
pub use split::Spawner;
pub use striped::{suggested_stripes, Striped};
