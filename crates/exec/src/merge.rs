use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

/// An order-preserving merge of per-lane batch streams.
///
/// `lanes` producers (one per shard, addressed by the shard's submission
/// index) concurrently [`push`](Self::push) batches and eventually
/// [`finish`](Self::finish) their lane; a single consumer
/// [`drain`](Self::drain)s the batches *in lane order*. A batch from lane
/// `k` is handed to the consumer as soon as every lane `< k` has finished
/// and been drained — batches are forwarded while later shards are still
/// running, so the merge buffers only the out-of-order tail instead of
/// materializing every shard's full output.
///
/// The consumer runs on whatever thread calls `drain` (for the join
/// engines: the caller's thread, so the downstream sink needs no `Send`
/// bound).
///
/// # Example
///
/// ```
/// use triejax_exec::OrderedMerge;
///
/// let merge: OrderedMerge<Vec<u32>> = OrderedMerge::new(2);
/// // Lane 1 finishes first; its batch waits for lane 0.
/// merge.push(1, vec![3, 4]);
/// merge.finish(1);
/// merge.push(0, vec![1, 2]);
/// merge.finish(0);
/// let mut out = Vec::new();
/// merge.drain(|batch| out.extend(batch));
/// assert_eq!(out, vec![1, 2, 3, 4]);
/// ```
#[derive(Debug)]
pub struct OrderedMerge<B> {
    state: Mutex<MergeState<B>>,
    ready: Condvar,
}

#[derive(Debug)]
struct MergeState<B> {
    /// Per lane: batches pushed but not yet drained.
    pending: Vec<VecDeque<B>>,
    /// Per lane: no further pushes will arrive.
    finished: Vec<bool>,
    /// First lane not yet fully drained.
    next: usize,
}

impl<B> OrderedMerge<B> {
    /// Creates a merge over `lanes` producer lanes.
    pub fn new(lanes: usize) -> Self {
        OrderedMerge {
            state: Mutex::new(MergeState {
                pending: (0..lanes).map(|_| VecDeque::new()).collect(),
                finished: vec![false; lanes],
                next: 0,
            }),
            ready: Condvar::new(),
        }
    }

    /// Number of producer lanes.
    pub fn lanes(&self) -> usize {
        self.state.lock().expect("merge poisoned").pending.len()
    }

    /// Appends a batch to `lane`'s stream.
    ///
    /// # Panics
    ///
    /// Panics if `lane` is out of range or already finished.
    pub fn push(&self, lane: usize, batch: B) {
        let mut s = self.state.lock().expect("merge poisoned");
        assert!(!s.finished[lane], "push to a finished lane");
        s.pending[lane].push_back(batch);
        if lane == s.next {
            self.ready.notify_one();
        }
    }

    /// Marks `lane` complete: no further [`push`](Self::push)es.
    ///
    /// # Panics
    ///
    /// Panics if `lane` is out of range or already finished.
    pub fn finish(&self, lane: usize) {
        let mut s = self.state.lock().expect("merge poisoned");
        assert!(!s.finished[lane], "lane finished twice");
        s.finished[lane] = true;
        if lane == s.next {
            self.ready.notify_one();
        }
    }

    /// Consumes every batch in lane order, blocking until all lanes have
    /// finished and been drained.
    ///
    /// `consume` runs with the merge unlocked, so producers are never
    /// blocked by downstream work.
    pub fn drain(&self, mut consume: impl FnMut(B)) {
        let mut s = self.state.lock().expect("merge poisoned");
        loop {
            if s.next == s.pending.len() {
                return;
            }
            let lane = s.next;
            if let Some(batch) = s.pending[lane].pop_front() {
                drop(s);
                consume(batch);
                s = self.state.lock().expect("merge poisoned");
            } else if s.finished[lane] {
                s.next += 1;
            } else {
                s = self.ready.wait(s).expect("merge poisoned");
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::WorkerPool;

    #[test]
    fn zero_lanes_drains_immediately() {
        let merge: OrderedMerge<Vec<u32>> = OrderedMerge::new(0);
        let mut n = 0;
        merge.drain(|_| n += 1);
        assert_eq!(n, 0);
        assert_eq!(merge.lanes(), 0);
    }

    #[test]
    fn empty_lanes_are_skipped() {
        let merge: OrderedMerge<&'static str> = OrderedMerge::new(3);
        merge.finish(0);
        merge.push(1, "a");
        merge.finish(1);
        merge.finish(2);
        let mut out = Vec::new();
        merge.drain(|b| out.push(b));
        assert_eq!(out, vec!["a"]);
    }

    #[test]
    fn multiple_batches_per_lane_keep_their_order() {
        let merge: OrderedMerge<u32> = OrderedMerge::new(2);
        merge.push(1, 30);
        merge.push(0, 10);
        merge.push(0, 11);
        merge.push(1, 31);
        merge.finish(0);
        merge.finish(1);
        let mut out = Vec::new();
        merge.drain(|b| out.push(b));
        assert_eq!(out, vec![10, 11, 30, 31]);
    }

    #[test]
    #[should_panic(expected = "finished lane")]
    fn push_after_finish_panics() {
        let merge: OrderedMerge<u32> = OrderedMerge::new(1);
        merge.finish(0);
        merge.push(0, 1);
    }

    /// Concurrent producers + a blocking foreground drainer: the canonical
    /// engine topology. Every batch arrives downstream in lane order even
    /// though lanes complete in arbitrary order.
    #[test]
    fn pool_producers_stream_through_in_lane_order() {
        let pool = WorkerPool::with_workers(3);
        let merge: OrderedMerge<Vec<usize>> = OrderedMerge::new(20);
        let tasks: Vec<usize> = (0..20).collect();
        let mut drained: Vec<usize> = Vec::new();
        let (_, ()) = pool.run_with_foreground(
            &tasks,
            |_ctx, lane, &t| {
                merge.push(lane, vec![t * 2]);
                merge.push(lane, vec![t * 2 + 1]);
                merge.finish(lane);
            },
            || merge.drain(|batch| drained.extend(batch)),
        );
        assert_eq!(drained, (0..40).collect::<Vec<_>>());
    }
}
