use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

/// An order-preserving merge of per-lane batch streams.
///
/// `lanes` producers (one per shard, addressed by the shard's submission
/// index) concurrently [`push`](Self::push) batches and eventually
/// [`finish`](Self::finish) their lane; a single consumer
/// [`drain`](Self::drain)s the batches *in lane order*. A batch from lane
/// `k` is handed to the consumer as soon as every lane `< k` has finished
/// and been drained — batches are forwarded while later shards are still
/// running, so the merge buffers only the out-of-order tail instead of
/// materializing every shard's full output.
///
/// The consumer runs on whatever thread calls `drain` (for the join
/// engines: the caller's thread, so the downstream sink needs no `Send`
/// bound).
///
/// Lanes can also be created *mid-run*:
/// [`open_lane_after`](Self::open_lane_after) inserts a fresh lane
/// immediately after an
/// existing unfinished one in the drain order. This is the merge half of
/// the pool's dynamic split protocol — a task that carves off the tail of
/// its work range gives the tail a lane right after its own, so the
/// handed-off results stream out exactly where they would have appeared
/// had the task kept them.
///
/// # Example
///
/// ```
/// use triejax_exec::OrderedMerge;
///
/// let merge: OrderedMerge<Vec<u32>> = OrderedMerge::new(2);
/// // Lane 1 finishes first; its batch waits for lane 0.
/// merge.push(1, vec![3, 4]);
/// merge.finish(1);
/// merge.push(0, vec![1, 2]);
/// merge.finish(0);
/// let mut out = Vec::new();
/// merge.drain(|batch| out.extend(batch));
/// assert_eq!(out, vec![1, 2, 3, 4]);
/// ```
#[derive(Debug)]
pub struct OrderedMerge<B> {
    state: Mutex<MergeState<B>>,
    ready: Condvar,
}

#[derive(Debug)]
struct MergeState<B> {
    /// Per lane (indexed by lane id): batches pushed but not yet drained.
    pending: Vec<VecDeque<B>>,
    /// Per lane id: no further pushes will arrive.
    finished: Vec<bool>,
    /// Lane ids in drain order. Initially the identity; split lanes are
    /// inserted right after their parents.
    order: Vec<usize>,
    /// Position in `order` of the first lane not yet fully drained.
    next: usize,
}

impl<B> OrderedMerge<B> {
    /// Creates a merge over `lanes` producer lanes (drained in id order;
    /// more lanes can be added later with
    /// [`open_lane_after`](Self::open_lane_after)).
    pub fn new(lanes: usize) -> Self {
        OrderedMerge {
            state: Mutex::new(MergeState {
                pending: (0..lanes).map(|_| VecDeque::new()).collect(),
                finished: vec![false; lanes],
                order: (0..lanes).collect(),
                next: 0,
            }),
            ready: Condvar::new(),
        }
    }

    /// Number of producer lanes (including ones opened mid-run).
    pub fn lanes(&self) -> usize {
        self.state.lock().expect("merge poisoned").pending.len()
    }

    /// Opens a new lane positioned **immediately after** `parent` in the
    /// drain order, returning its id.
    ///
    /// This is what keeps dynamic splits order-exact: a task working the
    /// range `[a, s)` that hands off the tail `[b, s)` opens the tail's
    /// lane right behind its own, so the tail's results drain after every
    /// result the task itself will still push (all `< b`) and before the
    /// lane that used to follow it. A task that splits repeatedly creates
    /// its later (earlier-ranged) children closer to itself, which is
    /// exactly their range order; split-of-split nests the same way.
    ///
    /// The parent must be unfinished — which also guarantees the drain
    /// cannot have passed the insertion point yet.
    ///
    /// # Example
    ///
    /// ```
    /// use triejax_exec::OrderedMerge;
    ///
    /// let merge: OrderedMerge<&'static str> = OrderedMerge::new(2);
    /// let tail = merge.open_lane_after(0); // drains between 0 and 1
    /// merge.push(1, "last");
    /// merge.finish(1);
    /// merge.push(tail, "tail");
    /// merge.finish(tail);
    /// merge.push(0, "head");
    /// merge.finish(0);
    /// let mut out = Vec::new();
    /// merge.drain(|b| out.push(b));
    /// assert_eq!(out, vec!["head", "tail", "last"]);
    /// ```
    ///
    /// # Panics
    ///
    /// Panics if `parent` is out of range or already finished.
    pub fn open_lane_after(&self, parent: usize) -> usize {
        let mut s = self.state.lock().expect("merge poisoned");
        assert!(
            !s.finished[parent],
            "cannot open a lane after a finished lane"
        );
        let id = s.pending.len();
        s.pending.push(VecDeque::new());
        s.finished.push(false);
        let next = s.next;
        let pos = s.order[next..]
            .iter()
            .position(|&l| l == parent)
            .expect("an unfinished lane is ahead of the drain")
            + next;
        s.order.insert(pos + 1, id);
        id
    }

    /// Appends a batch to `lane`'s stream.
    ///
    /// # Panics
    ///
    /// Panics if `lane` is out of range or already finished.
    pub fn push(&self, lane: usize, batch: B) {
        // Fault hook before the lock: an injected panic here unwinds
        // with the merge state untouched and unpoisoned, so the
        // producer's RAII lane cleanup (and every other lane) proceeds.
        #[cfg(any(test, feature = "faults"))]
        crate::faults::fire(crate::faults::FaultEvent::MergePush);
        let mut s = self.state.lock().expect("merge poisoned");
        assert!(!s.finished[lane], "push to a finished lane");
        s.pending[lane].push_back(batch);
        if s.order.get(s.next) == Some(&lane) {
            self.ready.notify_one();
        }
    }

    /// Marks `lane` complete: no further [`push`](Self::push)es.
    ///
    /// # Panics
    ///
    /// Panics if `lane` is out of range or already finished.
    pub fn finish(&self, lane: usize) {
        let mut s = self.state.lock().expect("merge poisoned");
        assert!(!s.finished[lane], "lane finished twice");
        s.finished[lane] = true;
        if s.order.get(s.next) == Some(&lane) {
            self.ready.notify_one();
        }
    }

    /// Consumes every batch in lane order, blocking until all lanes have
    /// finished and been drained.
    ///
    /// `consume` runs with the merge unlocked, so producers are never
    /// blocked by downstream work. The drain also terminates correctly in
    /// the presence of mid-run lanes: a new lane can only be opened after
    /// an *unfinished* lane, so once every known lane has drained no
    /// further lane can appear.
    pub fn drain(&self, mut consume: impl FnMut(B)) {
        let mut s = self.state.lock().expect("merge poisoned");
        loop {
            if s.next == s.order.len() {
                return;
            }
            let lane = s.order[s.next];
            if let Some(batch) = s.pending[lane].pop_front() {
                drop(s);
                consume(batch);
                s = self.state.lock().expect("merge poisoned");
            } else if s.finished[lane] {
                s.next += 1;
            } else {
                s = self.ready.wait(s).expect("merge poisoned");
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::WorkerPool;

    #[test]
    fn zero_lanes_drains_immediately() {
        let merge: OrderedMerge<Vec<u32>> = OrderedMerge::new(0);
        let mut n = 0;
        merge.drain(|_| n += 1);
        assert_eq!(n, 0);
        assert_eq!(merge.lanes(), 0);
    }

    #[test]
    fn empty_lanes_are_skipped() {
        let merge: OrderedMerge<&'static str> = OrderedMerge::new(3);
        merge.finish(0);
        merge.push(1, "a");
        merge.finish(1);
        merge.finish(2);
        let mut out = Vec::new();
        merge.drain(|b| out.push(b));
        assert_eq!(out, vec!["a"]);
    }

    #[test]
    fn multiple_batches_per_lane_keep_their_order() {
        let merge: OrderedMerge<u32> = OrderedMerge::new(2);
        merge.push(1, 30);
        merge.push(0, 10);
        merge.push(0, 11);
        merge.push(1, 31);
        merge.finish(0);
        merge.finish(1);
        let mut out = Vec::new();
        merge.drain(|b| out.push(b));
        assert_eq!(out, vec![10, 11, 30, 31]);
    }

    #[test]
    #[should_panic(expected = "finished lane")]
    fn push_after_finish_panics() {
        let merge: OrderedMerge<u32> = OrderedMerge::new(1);
        merge.finish(0);
        merge.push(0, 1);
    }

    /// Repeated splits nest in range order: a parent that splits twice
    /// creates its second (earlier-ranged) child closer to itself, and a
    /// child's own split lands between the child and its successor.
    #[test]
    fn split_lanes_drain_in_insertion_order() {
        let merge: OrderedMerge<u32> = OrderedMerge::new(2);
        let c1 = merge.open_lane_after(0); // parent 0 hands off its far tail
        let c2 = merge.open_lane_after(0); // then a nearer tail: drains first
        let c21 = merge.open_lane_after(c2); // split of a split
                                             // Drain order must now be: 0, c2, c21, c1, 1.
        for (lane, v) in [(0, 10), (c2, 20), (c21, 30), (c1, 40), (1, 50)] {
            merge.push(lane, v);
            merge.finish(lane);
        }
        let mut out = Vec::new();
        merge.drain(|b| out.push(b));
        assert_eq!(out, vec![10, 20, 30, 40, 50]);
        assert_eq!(merge.lanes(), 5);
    }

    #[test]
    #[should_panic(expected = "finished lane")]
    fn opening_a_lane_after_a_finished_lane_panics() {
        let merge: OrderedMerge<u32> = OrderedMerge::new(1);
        merge.finish(0);
        let _ = merge.open_lane_after(0);
    }

    /// A lane opened while the drain is already blocked on its parent is
    /// still picked up — the consumer re-reads the order on every step.
    #[test]
    fn lane_opened_mid_drain_is_not_missed() {
        let merge: OrderedMerge<u32> = OrderedMerge::new(1);
        std::thread::scope(|scope| {
            scope.spawn(|| {
                merge.push(0, 1);
                let tail = merge.open_lane_after(0);
                merge.finish(0);
                merge.push(tail, 2);
                merge.finish(tail);
            });
            let mut out = Vec::new();
            merge.drain(|b| out.push(b));
            assert_eq!(out, vec![1, 2]);
        });
    }

    /// Concurrent producers + a blocking foreground drainer: the canonical
    /// engine topology. Every batch arrives downstream in lane order even
    /// though lanes complete in arbitrary order.
    #[test]
    fn pool_producers_stream_through_in_lane_order() {
        let pool = WorkerPool::with_workers(3);
        let merge: OrderedMerge<Vec<usize>> = OrderedMerge::new(20);
        let tasks: Vec<usize> = (0..20).collect();
        let mut drained: Vec<usize> = Vec::new();
        let (_, ()) = pool.run_with_foreground(
            &tasks,
            |_ctx, lane, &t| {
                merge.push(lane, vec![t * 2]);
                merge.push(lane, vec![t * 2 + 1]);
                merge.finish(lane);
            },
            || merge.drain(|batch| drained.extend(batch)),
        );
        assert_eq!(drained, (0..40).collect::<Vec<_>>());
    }
}
