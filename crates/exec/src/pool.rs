use std::collections::VecDeque;
use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use crate::split::{SpawnState, Spawner};

/// Name of the environment variable overriding the default worker count.
pub(crate) const POOL_ENV: &str = "TRIEJAX_POOL";

/// A reusable scoped worker pool with work-stealing shard queues.
///
/// Tasks are distributed round-robin across per-worker queues; a worker
/// pops from the front of its own queue and, once empty, steals from the
/// *back* of a sibling's queue. Because the parallel join engines submit
/// many more root-range shards than workers, stealing rebalances skewed
/// root domains dynamically — the software analogue of the paper's §3.4
/// spawn-on-match scheduling — instead of letting one statically assigned
/// thread straggle.
///
/// Threads are spawned inside [`std::thread::scope`], so task closures may
/// borrow from the caller's stack (plans, tries, merge state) without any
/// `'static` bound.
///
/// # Example
///
/// ```
/// use triejax_exec::WorkerPool;
///
/// let pool = WorkerPool::with_workers(2);
/// let tasks: Vec<u32> = (0..10).collect();
/// let (doubled, stats) = pool.run(&tasks, |_ctx, _lane, &t| t * 2);
/// assert_eq!(doubled[7], 14); // results come back in task order
/// assert_eq!(stats.tasks, 10);
/// assert!(stats.workers <= 2);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct WorkerPool {
    workers: NonZeroUsize,
}

impl Default for WorkerPool {
    fn default() -> Self {
        Self::new()
    }
}

impl WorkerPool {
    /// Pool with the default worker count: the `TRIEJAX_POOL` environment
    /// variable if set to a positive integer, otherwise
    /// [`std::thread::available_parallelism`].
    pub fn new() -> Self {
        WorkerPool {
            workers: default_workers(),
        }
    }

    /// Pool with an explicit worker count.
    ///
    /// # Panics
    ///
    /// Panics if `workers == 0`.
    pub fn with_workers(workers: usize) -> Self {
        WorkerPool {
            workers: NonZeroUsize::new(workers).expect("workers must be positive"),
        }
    }

    /// The configured worker count (an upper bound: a run never spawns
    /// more workers than it has tasks).
    pub fn workers(&self) -> usize {
        self.workers.get()
    }

    /// Runs every task across the pool; returns the task results in
    /// submission order plus scheduling statistics.
    ///
    /// `work` receives the worker's [`WorkerCtx`], the task's submission
    /// index (its *lane* for order-preserving merges) and the task itself.
    pub fn run<T, R, F>(&self, tasks: &[T], work: F) -> (Vec<R>, PoolStats)
    where
        T: Sync,
        R: Send,
        F: Fn(WorkerCtx, usize, &T) -> R + Sync,
    {
        let (out, ()) = self.run_with_foreground(tasks, work, || ());
        out
    }

    /// Like [`run`](Self::run), but additionally executes `foreground` on
    /// the *calling* thread while the workers run.
    ///
    /// This is how the join engines stream results without requiring
    /// `Send` sinks: workers push batches into an [`crate::OrderedMerge`]
    /// while the foreground closure drains it into the caller's sink.
    ///
    /// A panicking task does not kill its worker: the panic is caught,
    /// the remaining tasks still run (so RAII cleanup in every task —
    /// e.g. closing a merge lane — happens and a blocking foreground
    /// drainer can finish), and the first panic payload is re-thrown
    /// once workers and foreground have completed.
    pub fn run_with_foreground<T, R, F, M, O>(
        &self,
        tasks: &[T],
        work: F,
        foreground: M,
    ) -> ((Vec<R>, PoolStats), O)
    where
        T: Sync,
        R: Send,
        F: Fn(WorkerCtx, usize, &T) -> R + Sync,
        M: FnOnce() -> O,
    {
        let n = self.workers.get().min(tasks.len());
        if n == 0 {
            let o = foreground();
            return ((Vec::new(), PoolStats::default()), o);
        }

        // Round-robin seeding keeps early lanes spread across workers, so
        // an order-preserving drain rarely waits on one overloaded queue.
        let queues: Vec<Mutex<VecDeque<usize>>> =
            (0..n).map(|_| Mutex::new(VecDeque::new())).collect();
        for i in 0..tasks.len() {
            queues[i % n].lock().expect("queue poisoned").push_back(i);
        }
        let steals = AtomicU64::new(0);
        // First panic payload from any task; re-thrown after the scope so
        // a panicking task neither kills its worker (stranding queued
        // tasks and hanging a foreground drainer waiting on their lanes)
        // nor gets swallowed.
        let panicked: Mutex<Option<Box<dyn std::any::Any + Send>>> = Mutex::new(None);

        let (mut slots, o): (Vec<Option<R>>, O) = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..n)
                .map(|id| {
                    let queues = &queues;
                    let steals = &steals;
                    let work = &work;
                    let panicked = &panicked;
                    scope.spawn(move || {
                        #[cfg(any(test, feature = "faults"))]
                        crate::faults::set_worker(id);
                        let ctx = WorkerCtx {
                            worker: id,
                            workers: n,
                        };
                        let mut local: Vec<(usize, R)> = Vec::new();
                        loop {
                            // Own queue first (front), then sweep siblings
                            // (back) — the classic stealing discipline.
                            let mut task = queues[id].lock().expect("queue poisoned").pop_front();
                            if task.is_none() {
                                // Fault hook *before* any victim pop: a
                                // worker injected to die here has claimed
                                // nothing, so its siblings still complete
                                // every task and no merge lane is lost.
                                // Caught here so the dying worker retires
                                // with its finished results instead of
                                // taking the whole thread (and the real
                                // payload) down with it.
                                #[cfg(any(test, feature = "faults"))]
                                if let Err(payload) = std::panic::catch_unwind(|| {
                                    crate::faults::fire(crate::faults::FaultEvent::Steal);
                                }) {
                                    let mut first = panicked.lock().expect("panic slot poisoned");
                                    first.get_or_insert(payload);
                                    break;
                                }
                                for k in 1..n {
                                    let victim = (id + k) % n;
                                    let stolen =
                                        queues[victim].lock().expect("queue poisoned").pop_back();
                                    if stolen.is_some() {
                                        steals.fetch_add(1, Ordering::Relaxed);
                                        task = stolen;
                                        break;
                                    }
                                }
                            }
                            // No task anywhere: the run is complete (tasks
                            // are only enqueued before the scope starts).
                            let Some(i) = task else { break };
                            match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                                work(ctx, i, &tasks[i])
                            })) {
                                Ok(r) => local.push((i, r)),
                                Err(payload) => {
                                    let mut first = panicked.lock().expect("panic slot poisoned");
                                    first.get_or_insert(payload);
                                }
                            }
                        }
                        local
                    })
                })
                .collect();

            let o = foreground();

            let mut slots: Vec<Option<R>> = (0..tasks.len()).map(|_| None).collect();
            for h in handles {
                for (i, r) in h.join().expect("pool worker panicked") {
                    slots[i] = Some(r);
                }
            }
            (slots, o)
        });

        if let Some(payload) = panicked.into_inner().expect("panic slot poisoned") {
            std::panic::resume_unwind(payload);
        }
        let results: Vec<R> = slots
            .iter_mut()
            .map(|s| s.take().expect("every task produces a result"))
            .collect();
        (
            (
                results,
                PoolStats {
                    workers: n,
                    tasks: tasks.len(),
                    steals: steals.into_inner(),
                    spawned: 0,
                },
            ),
            o,
        )
    }

    /// Runs a dynamically growing task set: every task receives a
    /// [`Spawner`] through which it may submit *new* tasks to the same
    /// run — the pool's split protocol, the software analogue of the
    /// paper's §3.4 spawn-on-match scheduling. The run terminates once
    /// every task, seeded or spawned, has completed.
    ///
    /// Unlike [`run`](Self::run), the full configured worker count is
    /// spawned even when `seeds` has fewer entries: filling the spare
    /// workers is precisely what splitting is for (a single heavy seed
    /// carves off tails until every worker has work). Workers that find
    /// nothing to do park on a condvar; [`Spawner::should_split`] reports
    /// whether more siblings are parked than spawned tasks are already
    /// waiting for them, so a running task can poll for split
    /// opportunities with a pair of relaxed atomic loads.
    ///
    /// Task results are returned in **completion order** (splitting makes
    /// a stable submission order meaningless); callers that need ordered
    /// output should order it by data carried in `R`, or stream it
    /// through an [`crate::OrderedMerge`] whose lanes the tasks manage —
    /// see [`crate::OrderedMerge::open_lane_after`].
    ///
    /// `foreground` runs on the calling thread while the workers run,
    /// exactly as in [`run_with_foreground`](Self::run_with_foreground),
    /// and panicking tasks follow the same discipline: the panic is
    /// caught, every remaining task (including ones the panicking task
    /// spawned) still runs, and the first payload is re-thrown at the
    /// end.
    ///
    /// # Example
    ///
    /// ```
    /// use triejax_exec::WorkerPool;
    ///
    /// // One seed covering [0, 16) splits itself in half whenever a
    /// // sibling is idle, until the ranges are too small to split.
    /// let pool = WorkerPool::with_workers(4);
    /// let ((chunks, stats), ()) = pool.run_spawning(
    ///     vec![(0u32, 16u32)],
    ///     |_ctx, spawner, (lo, mut hi)| {
    ///         if spawner.should_split() && hi - lo >= 2 {
    ///             let mid = lo + (hi - lo) / 2;
    ///             spawner.spawn((mid, hi));
    ///             hi = mid;
    ///         }
    ///         (lo..hi).sum::<u32>()
    ///     },
    ///     || (),
    /// );
    /// assert_eq!(chunks.iter().sum::<u32>(), (0..16).sum());
    /// assert_eq!(stats.tasks as u64, 1 + stats.spawned);
    /// ```
    pub fn run_spawning<T, R, F, M, O>(
        &self,
        seeds: Vec<T>,
        work: F,
        foreground: M,
    ) -> ((Vec<R>, PoolStats), O)
    where
        T: Send,
        R: Send,
        F: Fn(WorkerCtx, &Spawner<'_, T>, T) -> R + Sync,
        M: FnOnce() -> O,
    {
        let seeded = seeds.len();
        if seeded == 0 {
            let o = foreground();
            return ((Vec::new(), PoolStats::default()), o);
        }
        let n = self.workers.get();
        let state = SpawnState::new(n, seeds);
        let panicked: Mutex<Option<Box<dyn std::any::Any + Send>>> = Mutex::new(None);

        let (results, o): (Vec<R>, O) = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..n)
                .map(|id| {
                    let state = &state;
                    let work = &work;
                    let panicked = &panicked;
                    scope.spawn(move || {
                        #[cfg(any(test, feature = "faults"))]
                        crate::faults::set_worker(id);
                        let ctx = WorkerCtx {
                            worker: id,
                            workers: n,
                        };
                        let spawner = Spawner::new(state, id);
                        let mut local: Vec<R> = Vec::new();
                        loop {
                            // The claim path hosts the steal-site fault
                            // hook; catch it so an injected death there
                            // retires the worker (which holds no task)
                            // instead of killing the thread and losing
                            // both its results and the panic payload.
                            #[cfg(any(test, feature = "faults"))]
                            let claimed =
                                match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                                    state.claim(id)
                                })) {
                                    Ok(t) => t,
                                    Err(payload) => {
                                        let mut first =
                                            panicked.lock().expect("panic slot poisoned");
                                        first.get_or_insert(payload);
                                        break;
                                    }
                                };
                            #[cfg(not(any(test, feature = "faults")))]
                            let claimed = state.claim(id);
                            let Some(task) = claimed else {
                                if state.wait_for_work() {
                                    continue;
                                }
                                break;
                            };
                            match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                                work(ctx, &spawner, task)
                            })) {
                                Ok(r) => local.push(r),
                                Err(payload) => {
                                    let mut first = panicked.lock().expect("panic slot poisoned");
                                    first.get_or_insert(payload);
                                }
                            }
                            state.complete();
                        }
                        local
                    })
                })
                .collect();

            let o = foreground();

            let mut results = Vec::new();
            for h in handles {
                results.extend(h.join().expect("pool worker panicked"));
            }
            (results, o)
        });

        if let Some(payload) = panicked.into_inner().expect("panic slot poisoned") {
            std::panic::resume_unwind(payload);
        }
        let spawned = state.spawned();
        (
            (
                results,
                PoolStats {
                    workers: n,
                    tasks: seeded + spawned as usize,
                    steals: state.steals(),
                    spawned,
                },
            ),
            o,
        )
    }
}

/// Per-worker context handed to every task invocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkerCtx {
    /// This worker's index in `0..workers`. Engines use it to address
    /// per-worker state (e.g. the per-worker PJR cache of `ParCtj`).
    pub worker: usize,
    /// Number of workers participating in this run.
    pub workers: usize,
}

/// Scheduling statistics of one pool run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PoolStats {
    /// Workers actually spawned (`min(configured, tasks)`).
    pub workers: usize,
    /// Tasks executed.
    pub tasks: usize,
    /// Tasks obtained by stealing from a sibling's queue rather than from
    /// the worker's own.
    pub steals: u64,
    /// Tasks submitted *during* the run through [`Spawner::spawn`]
    /// (dynamic splits); always zero for the fixed-task entry points.
    pub spawned: u64,
}

/// Resolves the default worker count (see [`WorkerPool::new`]).
///
/// # Panics
///
/// Panics when `TRIEJAX_POOL` is set to anything but a positive integer:
/// an explicitly configured pool size that silently fell back to the core
/// count would defeat the configuration's purpose (e.g. CI pinning the
/// pool to 2 to force the parallel code paths on a single-core runner).
fn default_workers() -> NonZeroUsize {
    if let Ok(v) = std::env::var(POOL_ENV) {
        return v
            .trim()
            .parse::<usize>()
            .ok()
            .and_then(NonZeroUsize::new)
            .unwrap_or_else(|| panic!("{POOL_ENV} must be a positive integer, got {v:?}"));
    }
    std::thread::available_parallelism().unwrap_or(NonZeroUsize::MIN)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc;

    #[test]
    fn results_come_back_in_task_order() {
        let pool = WorkerPool::with_workers(4);
        let tasks: Vec<usize> = (0..100).collect();
        let (results, stats) = pool.run(&tasks, |_ctx, lane, &t| {
            assert_eq!(lane, t);
            t * 3
        });
        assert_eq!(results, (0..100).map(|t| t * 3).collect::<Vec<_>>());
        assert_eq!(stats.tasks, 100);
        assert_eq!(stats.workers, 4);
    }

    #[test]
    fn no_tasks_is_fine() {
        let pool = WorkerPool::with_workers(3);
        let tasks: Vec<u32> = Vec::new();
        let (results, stats) = pool.run(&tasks, |_ctx, _lane, &t| t);
        assert!(results.is_empty());
        assert_eq!(stats.workers, 0);
    }

    #[test]
    fn never_spawns_more_workers_than_tasks() {
        let pool = WorkerPool::with_workers(16);
        let tasks = vec![1u32, 2];
        let (results, stats) = pool.run(&tasks, |ctx, _lane, &t| {
            assert!(ctx.worker < ctx.workers);
            t
        });
        assert_eq!(results, vec![1, 2]);
        assert_eq!(stats.workers, 2);
    }

    #[test]
    fn single_worker_pool_runs_everything() {
        let pool = WorkerPool::with_workers(1);
        let tasks: Vec<u64> = (0..10).collect();
        let (results, stats) = pool.run(&tasks, |ctx, _lane, &t| {
            assert_eq!(ctx.worker, 0);
            t + 1
        });
        assert_eq!(results, (1..=10).collect::<Vec<_>>());
        assert_eq!(stats.steals, 0);
    }

    /// A blocked worker's remaining queue is drained by its sibling: with
    /// two workers, task 0 (worker 0's queue) blocks until task 2 (also
    /// worker 0's queue) has run — which can only happen via a steal.
    #[test]
    fn blocked_queue_is_stolen_from() {
        let pool = WorkerPool::with_workers(2);
        let (tx, rx) = mpsc::channel::<()>();
        let tx = Mutex::new(tx);
        let rx = Mutex::new(rx);
        let tasks = vec![0usize, 1, 2];
        let (results, stats) = pool.run(&tasks, |_ctx, _lane, &t| {
            match t {
                0 => rx
                    .lock()
                    .expect("rx")
                    .recv()
                    .expect("task 2 signals before the run ends"),
                2 => tx.lock().expect("tx").send(()).expect("receiver alive"),
                _ => {}
            }
            t
        });
        assert_eq!(results, vec![0, 1, 2]);
        assert!(stats.steals >= 1, "task 2 must have been stolen");
    }

    #[test]
    fn foreground_runs_and_returns_a_value() {
        let pool = WorkerPool::with_workers(2);
        let tasks = vec![1u32, 2, 3];
        let ((results, _), fg) =
            pool.run_with_foreground(&tasks, |_ctx, _lane, &t| t, || "drained");
        assert_eq!(results, vec![1, 2, 3]);
        assert_eq!(fg, "drained");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_workers_panics() {
        let _ = WorkerPool::with_workers(0);
    }

    /// A panicking task must not strand the tasks queued behind it (which
    /// would hang a foreground drainer waiting on their lanes): the other
    /// tasks run to completion and the panic is re-thrown afterwards.
    #[test]
    fn task_panic_runs_remaining_tasks_then_propagates() {
        use crate::OrderedMerge;
        use std::panic::{catch_unwind, AssertUnwindSafe};
        use std::sync::atomic::AtomicUsize;

        let pool = WorkerPool::with_workers(1); // worst case: no sibling to recover
        let merge: OrderedMerge<usize> = OrderedMerge::new(6);
        let ran = AtomicUsize::new(0);
        let mut drained = Vec::new();
        let result = catch_unwind(AssertUnwindSafe(|| {
            let tasks: Vec<usize> = (0..6).collect();
            pool.run_with_foreground(
                &tasks,
                |_ctx, lane, &t| {
                    ran.fetch_add(1, Ordering::Relaxed);
                    struct CloseLane<'m>(&'m OrderedMerge<usize>, usize);
                    impl Drop for CloseLane<'_> {
                        fn drop(&mut self) {
                            self.0.finish(self.1);
                        }
                    }
                    let guard = CloseLane(&merge, lane);
                    assert!(t != 2, "task 2 exploded");
                    merge.push(lane, t);
                    drop(guard);
                },
                || merge.drain(|t| drained.push(t)),
            )
        }));
        let payload = result.expect_err("the task panic must propagate");
        let msg = payload
            .downcast_ref::<&str>()
            .map(|s| (*s).to_string())
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_default();
        assert!(msg.contains("task 2 exploded"), "got: {msg}");
        assert_eq!(ran.load(Ordering::Relaxed), 6, "all tasks still ran");
        assert_eq!(drained, vec![0, 1, 3, 4, 5], "drain completed in order");
    }

    #[test]
    fn spawned_tasks_run_and_are_counted() {
        let pool = WorkerPool::with_workers(3);
        let ((results, stats), ()) = pool.run_spawning(
            vec![10u32],
            |_ctx, spawner, t| {
                if t == 10 {
                    spawner.spawn(20);
                    spawner.spawn(21);
                }
                if t == 20 {
                    spawner.spawn(30); // a spawned task can spawn again
                }
                t
            },
            || (),
        );
        let mut sorted = results;
        sorted.sort_unstable();
        assert_eq!(sorted, vec![10, 20, 21, 30]);
        assert_eq!(stats.tasks, 4);
        assert_eq!(stats.spawned, 3);
        assert_eq!(stats.workers, 3);
    }

    #[test]
    fn single_worker_never_reports_an_idle_sibling() {
        let pool = WorkerPool::with_workers(1);
        let ((results, stats), ()) = pool.run_spawning(
            vec![0u32, 1, 2],
            |_ctx, spawner, t| {
                assert!(!spawner.should_split(), "the only worker is running");
                t
            },
            || (),
        );
        assert_eq!(results.len(), 3);
        assert_eq!(stats.spawned, 0);
    }

    /// The split signal fires: with a single seed on a two-worker pool,
    /// the second worker must eventually park, at which point the running
    /// task observes `should_split()` and hands work off to it.
    #[test]
    fn idle_sibling_raises_the_split_signal() {
        let pool = WorkerPool::with_workers(2);
        let ((results, stats), ()) = pool.run_spawning(
            vec![true],
            |ctx, spawner, heavy| {
                if heavy {
                    // Spin until the sibling parks (bounded by the test
                    // harness timeout; parking takes microseconds).
                    while !spawner.should_split() {
                        std::thread::yield_now();
                    }
                    spawner.spawn(false);
                    ctx.worker
                } else {
                    ctx.worker
                }
            },
            || (),
        );
        assert_eq!(results.len(), 2);
        assert_eq!(stats.spawned, 1);
    }

    #[test]
    fn empty_seed_set_runs_only_the_foreground() {
        let pool = WorkerPool::with_workers(4);
        let ((results, stats), fg) =
            pool.run_spawning(Vec::<u32>::new(), |_ctx, _spawner, t| t, || 7);
        assert!(results.is_empty());
        assert_eq!(stats.tasks, 0);
        assert_eq!(fg, 7);
    }

    /// A panicking task must not leak the tasks it already spawned or
    /// deadlock parked siblings: everything still runs, then the payload
    /// is re-thrown.
    #[test]
    fn panic_in_a_spawning_task_still_runs_its_children() {
        use std::panic::{catch_unwind, AssertUnwindSafe};
        use std::sync::atomic::AtomicUsize;

        let pool = WorkerPool::with_workers(2);
        let ran = AtomicUsize::new(0);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.run_spawning(
                vec![0u32],
                |_ctx, spawner, t| {
                    ran.fetch_add(1, Ordering::Relaxed);
                    if t == 0 {
                        spawner.spawn(1);
                        spawner.spawn(2);
                        panic!("seed exploded");
                    }
                },
                || (),
            )
        }));
        assert!(result.is_err(), "the panic must propagate");
        assert_eq!(ran.load(Ordering::Relaxed), 3, "children still ran");
    }
}
