use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};

/// Shared scheduling state of one [`crate::WorkerPool::run_spawning`]
/// invocation: per-worker queues plus the counters that make dynamic task
/// submission terminate correctly and splitting decisions cheap.
///
/// The counter protocol: a task is *pending* from submission until a
/// worker claims it and *running* from claim until completion. A claim
/// increments `running` **before** decrementing `pending`, and a spawn
/// increments `pending` **before** enqueueing, so `pending + running`
/// never transiently undercounts live work — which makes
/// "`pending == 0 && running == 0`" a sound termination test even while
/// tasks are being handed between queues and workers.
pub(crate) struct SpawnState<T> {
    /// Per-worker task queues: the owner pops from the front, siblings
    /// steal from the back.
    queues: Vec<Mutex<VecDeque<T>>>,
    /// Tasks submitted but not yet claimed by a worker.
    pending: AtomicUsize,
    /// Tasks claimed and currently executing.
    running: AtomicUsize,
    /// Workers currently parked waiting for work — the split signal.
    idle: AtomicUsize,
    /// Tasks submitted through [`Spawner::spawn`] (seeds excluded).
    spawned: AtomicU64,
    /// Tasks obtained by stealing from a sibling's queue.
    steals: AtomicU64,
    /// Parking lot for idle workers; `spawn` and the final completion
    /// notify through it. Checking the counters and entering the wait
    /// both happen under `gate`, so a wakeup can never be missed.
    gate: Mutex<()>,
    bell: Condvar,
}

impl<T> SpawnState<T> {
    /// State for `workers` workers, seeded round-robin with `seeds`.
    pub(crate) fn new(workers: usize, seeds: Vec<T>) -> Self {
        let queues: Vec<Mutex<VecDeque<T>>> =
            (0..workers).map(|_| Mutex::new(VecDeque::new())).collect();
        let pending = seeds.len();
        for (i, task) in seeds.into_iter().enumerate() {
            queues[i % workers]
                .lock()
                .expect("queue poisoned")
                .push_back(task);
        }
        SpawnState {
            queues,
            pending: AtomicUsize::new(pending),
            running: AtomicUsize::new(0),
            idle: AtomicUsize::new(0),
            spawned: AtomicU64::new(0),
            steals: AtomicU64::new(0),
            gate: Mutex::new(()),
            bell: Condvar::new(),
        }
    }

    /// Claims a task for `worker`: own queue front first, then sibling
    /// backs. On success the task is accounted as running.
    pub(crate) fn claim(&self, worker: usize) -> Option<T> {
        let n = self.queues.len();
        let mut task = self.queues[worker]
            .lock()
            .expect("queue poisoned")
            .pop_front();
        if task.is_none() {
            // Fault hook *before* any victim pop: a worker injected to
            // die here holds no task, so pending/running stay accurate
            // and the survivors drain every queue (no hang, no lost
            // lane).
            #[cfg(any(test, feature = "faults"))]
            crate::faults::fire(crate::faults::FaultEvent::Steal);
            for k in 1..n {
                let victim = (worker + k) % n;
                let stolen = self.queues[victim]
                    .lock()
                    .expect("queue poisoned")
                    .pop_back();
                if stolen.is_some() {
                    self.steals.fetch_add(1, Ordering::Relaxed);
                    task = stolen;
                    break;
                }
            }
        }
        let task = task?;
        // running before pending: `pending + running` must never dip
        // below the number of live tasks (see the struct docs).
        self.running.fetch_add(1, Ordering::SeqCst);
        self.pending.fetch_sub(1, Ordering::SeqCst);
        Some(task)
    }

    /// Marks a claimed task complete; wakes every parked worker when it
    /// was the last live task so they can observe termination.
    pub(crate) fn complete(&self) {
        if self.running.fetch_sub(1, Ordering::SeqCst) == 1
            && self.pending.load(Ordering::SeqCst) == 0
        {
            let _gate = self.gate.lock().expect("gate poisoned");
            self.bell.notify_all();
        }
    }

    /// Parks until work may be available again. Returns `false` when the
    /// run has terminated (no pending or running task anywhere).
    pub(crate) fn wait_for_work(&self) -> bool {
        let mut gate = self.gate.lock().expect("gate poisoned");
        loop {
            if self.pending.load(Ordering::SeqCst) > 0 {
                return true;
            }
            if self.running.load(Ordering::SeqCst) == 0 {
                return false;
            }
            self.idle.fetch_add(1, Ordering::SeqCst);
            gate = self.bell.wait(gate).expect("gate poisoned");
            self.idle.fetch_sub(1, Ordering::SeqCst);
        }
    }

    pub(crate) fn spawned(&self) -> u64 {
        self.spawned.load(Ordering::SeqCst)
    }

    pub(crate) fn steals(&self) -> u64 {
        self.steals.load(Ordering::SeqCst)
    }
}

/// Handle through which a running task submits new tasks to its own pool
/// run and polls for split opportunities — the software analogue of the
/// paper's §3.4 *spawn-on-match*: hardware join units spawn sub-join work
/// into a shared pool the moment a unit is free to take it.
///
/// Every task invoked by [`crate::WorkerPool::run_spawning`] receives a
/// `Spawner`. The intended discipline (followed by the parallel join
/// engines) is to poll [`should_split`](Self::should_split) at a cheap,
/// natural boundary of the task's own loop — a pair of relaxed atomic
/// loads — and only when it reports an unserved idle sibling, carve off
/// a piece of the remaining work and [`spawn`](Self::spawn) it.
pub struct Spawner<'s, T> {
    state: &'s SpawnState<T>,
    worker: usize,
}

impl<'s, T> Spawner<'s, T> {
    pub(crate) fn new(state: &'s SpawnState<T>, worker: usize) -> Self {
        Spawner { state, worker }
    }

    /// Submits a new task to this run. The task lands on the spawning
    /// worker's own queue, where an idle sibling steals it; a parked
    /// worker is woken.
    pub fn spawn(&self, task: T) {
        self.state.spawned.fetch_add(1, Ordering::Relaxed);
        // pending before enqueue: the task must be counted before it can
        // be claimed (see the SpawnState docs).
        self.state.pending.fetch_add(1, Ordering::SeqCst);
        self.state.queues[self.worker]
            .lock()
            .expect("queue poisoned")
            .push_back(task);
        let _gate = self.state.gate.lock().expect("gate poisoned");
        self.state.bell.notify_one();
    }

    /// Number of sibling workers currently parked with nothing to do.
    pub fn idle_workers(&self) -> usize {
        self.state.idle.load(Ordering::Relaxed)
    }

    /// Number of tasks submitted but not yet claimed by any worker.
    pub fn pending_tasks(&self) -> usize {
        self.state.pending.load(Ordering::Relaxed)
    }

    /// `true` when splitting off work would help right now: more sibling
    /// workers are parked idle than there are spawned-but-unclaimed
    /// tasks already waiting for them. Counting the pending tasks damps
    /// the signal during a woken worker's wake-up latency — without it,
    /// one parked sibling would keep the signal up for the whole
    /// latency and a polling task would burst out O(log range) splits
    /// when a single handoff balances the pool. Two relaxed atomic
    /// loads, cheap enough to poll on every iteration of a hot loop.
    pub fn should_split(&self) -> bool {
        self.idle_workers() > self.pending_tasks()
    }
}

impl<T> std::fmt::Debug for Spawner<'_, T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Spawner")
            .field("worker", &self.worker)
            .field("idle", &self.idle_workers())
            .field("pending", &self.pending_tasks())
            .finish()
    }
}
