use std::sync::{Mutex, MutexGuard, PoisonError, TryLockError};

/// Lock-striped shared state: one value of `T` per *stripe*, each behind
/// its own [`Mutex`], addressed by a caller-supplied hash.
///
/// This is the concurrency primitive behind shared runtime caches (most
/// prominently the shared partial-join-result cache of
/// `triejax_join::ParCtj`): instead of one global lock that every worker
/// serializes on, state is partitioned into many independent lanes, so two
/// workers collide only when their keys hash to the same stripe. The
/// stripe count is rounded up to a power of two so lane selection is a
/// mask, not a division.
///
/// Stripe selection is **hash-determined, never worker-determined**: a
/// worker must find the entries its siblings published, so the same key
/// has to map to the same stripe no matter which worker asks. Worker
/// identity matters only for sizing — [`suggested_stripes`] overshards
/// relative to the worker count so collisions stay rare — and for
/// attributing the contention that [`lock`](Striped::lock) reports.
///
/// # Example
///
/// ```
/// use triejax_exec::Striped;
///
/// let counters: Striped<u64> = Striped::with_stripes(4, || 0);
/// let (mut lane, contended) = counters.lock(0x9e3779b97f4a7c15);
/// *lane += 1;
/// assert!(!contended); // nobody else held the stripe
/// drop(lane);
/// assert_eq!(counters.stripes(), 4);
/// ```
#[derive(Debug)]
pub struct Striped<T> {
    lanes: Box<[Mutex<T>]>,
}

impl<T> Striped<T> {
    /// Creates a striped value with `stripes` lanes (rounded up to the
    /// next power of two, minimum 1), each initialized by `init`.
    pub fn with_stripes(stripes: usize, mut init: impl FnMut() -> T) -> Self {
        let n = stripes.max(1).next_power_of_two();
        Striped {
            lanes: (0..n).map(|_| Mutex::new(init())).collect(),
        }
    }

    /// Number of stripes (always a power of two).
    pub fn stripes(&self) -> usize {
        self.lanes.len()
    }

    /// The stripe index owning `hash`.
    pub fn lane(&self, hash: u64) -> usize {
        (hash & (self.lanes.len() as u64 - 1)) as usize
    }

    /// Locks the stripe owning `hash`; the boolean reports whether the
    /// lock was *contended* — another thread held it when we arrived, so
    /// the acquisition had to wait. Callers surface that as a contention
    /// counter (e.g. `EngineStats::cache_contention`).
    ///
    /// Poisoning is recovered from, not propagated: a sibling worker
    /// that panicked while holding a stripe must not cascade its failure
    /// into every survivor (the pool already captures and re-throws the
    /// original panic). Callers keep stripe values panic-consistent by
    /// ordering their mutations so any intermediate state is valid —
    /// see the shared PJR cache's publish path.
    pub fn lock(&self, hash: u64) -> (MutexGuard<'_, T>, bool) {
        let lane = &self.lanes[self.lane(hash)];
        match lane.try_lock() {
            Ok(guard) => (guard, false),
            Err(TryLockError::WouldBlock) => {
                (lane.lock().unwrap_or_else(PoisonError::into_inner), true)
            }
            Err(TryLockError::Poisoned(poisoned)) => (poisoned.into_inner(), false),
        }
    }

    /// Iterates over every stripe's value. Requires `&mut self`, which
    /// proves no worker still holds a lane — the teardown/inspection path
    /// once a parallel run has joined. Stripes poisoned by a panicked
    /// worker are recovered, matching [`lock`](Self::lock).
    pub fn iter_mut(&mut self) -> impl Iterator<Item = &mut T> {
        self.lanes
            .iter_mut()
            .map(|m| m.get_mut().unwrap_or_else(PoisonError::into_inner))
    }
}

/// Suggested stripe count for `workers` concurrent workers: 4x the worker
/// count (rounded up to a power of two, capped at 256) so that even with
/// every worker inside the structure at once, the probability of two of
/// them needing the same stripe stays low.
pub fn suggested_stripes(workers: usize) -> usize {
    workers
        .max(1)
        .saturating_mul(4)
        .next_power_of_two()
        .min(256)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stripe_count_rounds_up_to_a_power_of_two() {
        assert_eq!(Striped::with_stripes(1, || 0u32).stripes(), 1);
        assert_eq!(Striped::with_stripes(3, || 0u32).stripes(), 4);
        assert_eq!(Striped::with_stripes(8, || 0u32).stripes(), 8);
        assert_eq!(Striped::with_stripes(0, || 0u32).stripes(), 1);
    }

    #[test]
    fn lane_selection_is_stable_and_in_range() {
        let s: Striped<()> = Striped::with_stripes(8, || ());
        for h in [0u64, 1, 7, 8, u64::MAX, 0x9e37_79b9_7f4a_7c15] {
            let lane = s.lane(h);
            assert!(lane < s.stripes());
            assert_eq!(lane, s.lane(h), "same hash, same lane");
        }
        // With a power-of-two lane count the mask uses the low bits.
        assert_ne!(s.lane(0), s.lane(1));
    }

    #[test]
    fn uncontended_lock_reports_no_contention() {
        let s = Striped::with_stripes(2, || 41u32);
        let (mut g, contended) = s.lock(5);
        assert!(!contended);
        *g += 1;
        drop(g);
        let (g, _) = s.lock(5);
        assert_eq!(*g, 42);
    }

    #[test]
    fn contended_lock_is_detected() {
        let s = Striped::with_stripes(1, || 0u64);
        let hits = std::sync::atomic::AtomicU64::new(0);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for _ in 0..500 {
                        let (mut g, contended) = s.lock(0);
                        *g += 1;
                        if contended {
                            hits.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        }
                    }
                });
            }
        });
        let mut s = s;
        assert_eq!(s.iter_mut().map(|v| *v).sum::<u64>(), 2000);
        // Contention is scheduling-dependent; on a single hammered stripe
        // at least the total must be consistent (no assertion on > 0).
    }

    #[test]
    fn iter_mut_visits_every_stripe() {
        let mut s = Striped::with_stripes(4, || 1u32);
        for v in s.iter_mut() {
            *v += 1;
        }
        let total: u32 = s.iter_mut().map(|v| *v).sum();
        assert_eq!(total, 8);
    }

    #[test]
    fn suggested_stripes_overshards_and_caps() {
        assert_eq!(suggested_stripes(1), 4);
        assert_eq!(suggested_stripes(2), 8);
        assert_eq!(suggested_stripes(3), 16, "rounds 12 up to a power of two");
        assert_eq!(suggested_stripes(0), 4, "degenerate worker counts clamp");
        assert_eq!(suggested_stripes(1_000_000), 256, "capped");
    }
}
