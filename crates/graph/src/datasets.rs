//! The six evaluation datasets of paper Table 2, as deterministic
//! synthetic stand-ins.
//!
//! | name     | nodes  | edges   | category      |
//! |----------|--------|---------|---------------|
//! | grqc     | 5,242  | 14,496  | Collaboration |
//! | bitcoin  | 3,783  | 24,186  | Bitcoin       |
//! | gnu04    | 10,876 | 39,994  | P2P           |
//! | facebook | 4,039  | 88,234  | Social        |
//! | wiki     | 7,115  | 103,689 | Social        |
//! | gnu31    | 62,586 | 147,892 | P2P           |
//!
//! At [`Scale::Full`] the generated graphs match these counts exactly.
//! Smaller scales divide both counts, preserving density and topology class
//! while keeping simulation times short.

use crate::generators::{erdos_renyi, pad_or_trim, power_law_fixed, triangle_closure};
use crate::Graph;

/// Topology class, which selects the generator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Category {
    /// Co-authorship style: power-law plus strong triangle closure.
    Collaboration,
    /// Trust network: power-law, moderate closure.
    Bitcoin,
    /// Peer-to-peer overlay: near-uniform degrees, few triangles.
    P2p,
    /// Social network: dense power-law with heavy closure.
    Social,
}

impl Category {
    /// Label as printed in Table 2.
    pub fn label(self) -> &'static str {
        match self {
            Category::Collaboration => "Collabor.",
            Category::Bitcoin => "Bitcoin",
            Category::P2p => "P2P",
            Category::Social => "Social",
        }
    }
}

/// Static description of one Table-2 dataset.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DatasetProfile {
    /// Short name used in the paper's figures (e.g. `"wiki"`).
    pub name: &'static str,
    /// Full SNAP identifier (e.g. `"wiki-Vote"`).
    pub snap_name: &'static str,
    /// Node count at full scale.
    pub nodes: u32,
    /// Directed edge count at full scale.
    pub edges: usize,
    /// Topology class.
    pub category: Category,
}

/// Generation scale: full Table-2 size or a proportionally shrunk variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Scale {
    /// Exact Table-2 node and edge counts.
    Full,
    /// One eighth of the full size — the default for experiment binaries,
    /// keeping every (query, dataset, system) cell within seconds.
    #[default]
    Mini,
    /// One fortieth of the full size — for unit tests.
    Tiny,
}

impl Scale {
    /// The divisor applied to node and edge counts.
    pub fn divisor(self) -> u32 {
        match self {
            Scale::Full => 1,
            Scale::Mini => 8,
            Scale::Tiny => 40,
        }
    }

    /// Short label for table headers.
    pub fn label(self) -> &'static str {
        match self {
            Scale::Full => "full",
            Scale::Mini => "mini",
            Scale::Tiny => "tiny",
        }
    }
}

/// The six evaluation datasets (paper Table 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[non_exhaustive]
pub enum Dataset {
    /// ca-GrQc collaboration network.
    GrQc,
    /// soc-sign-bitcoin-alpha trust network.
    Bitcoin,
    /// p2p-Gnutella04 peer-to-peer snapshot.
    Gnutella04,
    /// ego-Facebook social circles.
    Facebook,
    /// wiki-Vote adminship votes.
    WikiVote,
    /// p2p-Gnutella31 peer-to-peer snapshot.
    Gnutella31,
}

impl Dataset {
    /// All six datasets in the paper's Table-2 order.
    pub const ALL: [Dataset; 6] = [
        Dataset::GrQc,
        Dataset::Bitcoin,
        Dataset::Gnutella04,
        Dataset::Facebook,
        Dataset::WikiVote,
        Dataset::Gnutella31,
    ];

    /// Static profile (Table-2 row).
    pub fn profile(self) -> DatasetProfile {
        match self {
            Dataset::GrQc => DatasetProfile {
                name: "grqc",
                snap_name: "ca-GrQc",
                nodes: 5_242,
                edges: 14_496,
                category: Category::Collaboration,
            },
            Dataset::Bitcoin => DatasetProfile {
                name: "bitcoin",
                snap_name: "soc-sign-bitcoin-alpha",
                nodes: 3_783,
                edges: 24_186,
                category: Category::Bitcoin,
            },
            Dataset::Gnutella04 => DatasetProfile {
                name: "gnu04",
                snap_name: "p2p-Gnutella04",
                nodes: 10_876,
                edges: 39_994,
                category: Category::P2p,
            },
            Dataset::Facebook => DatasetProfile {
                name: "facebook",
                snap_name: "ego-Facebook",
                nodes: 4_039,
                edges: 88_234,
                category: Category::Social,
            },
            Dataset::WikiVote => DatasetProfile {
                name: "wiki",
                snap_name: "wiki-Vote",
                nodes: 7_115,
                edges: 103_689,
                category: Category::Social,
            },
            Dataset::Gnutella31 => DatasetProfile {
                name: "gnu31",
                snap_name: "p2p-Gnutella31",
                nodes: 62_586,
                edges: 147_892,
                category: Category::P2p,
            },
        }
    }

    /// Short figure label (e.g. `"wiki"`).
    pub fn label(self) -> &'static str {
        self.profile().name
    }

    /// Finds a dataset by its short name, case-insensitively.
    pub fn from_label(label: &str) -> Option<Dataset> {
        Dataset::ALL
            .into_iter()
            .find(|d| d.label().eq_ignore_ascii_case(label))
    }

    /// Deterministically generates the synthetic stand-in at `scale`.
    ///
    /// Node and edge counts equal the profile's counts divided by
    /// [`Scale::divisor`] (exactly; the generator pads or trims to the
    /// target edge count).
    pub fn generate(self, scale: Scale) -> Graph {
        let p = self.profile();
        let div = scale.divisor();
        let n = (p.nodes / div).max(16);
        let m = (p.edges / div as usize).max(32);
        let seed = 0x7249_0000 + self as u64;
        let g = match p.category {
            Category::Collaboration => {
                // Power-law with strong clustering: collaborations are
                // triangle-dense.
                let base = power_law_fixed(n, m * 7 / 10, 2.4, seed);
                triangle_closure(&base, m / 2, seed ^ 0xAB)
            }
            Category::Bitcoin => {
                let base = power_law_fixed(n, m * 4 / 5, 2.1, seed);
                triangle_closure(&base, m / 4, seed ^ 0xAB)
            }
            Category::P2p => {
                // Gnutella overlays are engineered: near-uniform degree,
                // almost no clustering.
                erdos_renyi(n, m, seed)
            }
            Category::Social => {
                let base = power_law_fixed(n, m * 3 / 4, 2.0, seed);
                triangle_closure(&base, m / 2, seed ^ 0xAB)
            }
        };
        pad_or_trim(&g, m, seed ^ 0xCD)
    }
}

impl std::fmt::Display for Dataset {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_scale_matches_divided_counts() {
        for d in Dataset::ALL {
            let p = d.profile();
            let g = d.generate(Scale::Tiny);
            let want_edges = (p.edges / 40).max(32);
            assert_eq!(g.num_edges(), want_edges, "{d}");
            assert_eq!(g.num_nodes(), (p.nodes / 40).max(16), "{d}");
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = Dataset::WikiVote.generate(Scale::Tiny);
        let b = Dataset::WikiVote.generate(Scale::Tiny);
        assert_eq!(a, b);
    }

    #[test]
    fn social_graphs_have_hubs_p2p_does_not() {
        let fb = Dataset::Facebook.generate(Scale::Mini);
        let gnu = Dataset::Gnutella04.generate(Scale::Mini);
        let fb_skew = fb.max_out_degree() as f64 / fb.avg_degree();
        let gnu_skew = gnu.max_out_degree() as f64 / gnu.avg_degree();
        assert!(
            fb_skew > 2.0 * gnu_skew,
            "facebook skew {fb_skew:.1} should exceed gnutella {gnu_skew:.1}"
        );
    }

    #[test]
    fn labels_round_trip() {
        for d in Dataset::ALL {
            assert_eq!(Dataset::from_label(d.label()), Some(d));
        }
        assert_eq!(Dataset::from_label("WIKI"), Some(Dataset::WikiVote));
        assert_eq!(Dataset::from_label("nope"), None);
    }

    #[test]
    fn profiles_match_table2() {
        assert_eq!(Dataset::GrQc.profile().nodes, 5242);
        assert_eq!(Dataset::GrQc.profile().edges, 14496);
        assert_eq!(Dataset::Gnutella31.profile().nodes, 62586);
        assert_eq!(Dataset::Gnutella31.profile().edges, 147892);
        assert_eq!(Dataset::Facebook.profile().category.label(), "Social");
    }

    #[test]
    fn full_scale_grqc_matches_exactly() {
        // One full-scale generation to pin the exact-count contract
        // (the others are exercised at tiny scale for speed).
        let g = Dataset::GrQc.generate(Scale::Full);
        assert_eq!(g.num_edges(), 14496);
        assert_eq!(g.num_nodes(), 5242);
    }
}
