//! Deterministic synthetic graph generators.
//!
//! All generators take an explicit seed and use [`rand::rngs::StdRng`], so a
//! `(generator, parameters, seed)` triple always produces the same graph —
//! a requirement for reproducible experiments.

use std::collections::HashSet;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::Graph;

/// Uniform random directed graph with exactly `m` distinct edges
/// (Erdős–Rényi G(n, m)). P2P networks such as the Gnutella snapshots have
/// near-flat degree distributions that this models well.
///
/// # Panics
///
/// Panics if `m` exceeds the number of possible loop-free edges.
pub fn erdos_renyi(n: u32, m: usize, seed: u64) -> Graph {
    assert!(n >= 2 || m == 0, "need at least two nodes for edges");
    let possible = n as u64 * (n as u64 - 1);
    assert!(m as u64 <= possible, "too many edges requested");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut set: HashSet<(u32, u32)> = HashSet::with_capacity(m);
    while set.len() < m {
        let a = rng.gen_range(0..n);
        let b = rng.gen_range(0..n);
        if a != b {
            set.insert((a, b));
        }
    }
    Graph::from_edges(n, set)
}

/// Barabási–Albert preferential attachment: each new vertex attaches to
/// `m_per_node` existing vertices chosen proportionally to degree,
/// producing the power-law hubs typical of social and collaboration
/// networks.
///
/// # Panics
///
/// Panics if `m_per_node == 0` or `n <= m_per_node`.
pub fn barabasi_albert(n: u32, m_per_node: usize, seed: u64) -> Graph {
    assert!(m_per_node > 0, "m_per_node must be positive");
    assert!(n as usize > m_per_node, "need more nodes than attachments");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut edges: Vec<(u32, u32)> = Vec::new();
    // `targets` holds one entry per edge endpoint: sampling uniformly from
    // it is degree-proportional sampling.
    let mut targets: Vec<u32> = (0..m_per_node as u32).collect();
    for v in m_per_node as u32..n {
        let mut chosen: HashSet<u32> = HashSet::with_capacity(m_per_node);
        while chosen.len() < m_per_node {
            let t = targets[rng.gen_range(0..targets.len())];
            if t != v {
                chosen.insert(t);
            }
        }
        for &t in &chosen {
            edges.push((v, t));
            targets.push(v);
            targets.push(t);
        }
    }
    Graph::from_edges(n, edges)
}

/// Power-law graph with exactly `m` edges: endpoints are drawn from a
/// Zipf-like distribution with exponent `gamma` on both sides, giving
/// heavy in- and out-hubs (the degree skew that drives the paper's Path4
/// blowups on wiki/facebook).
///
/// # Panics
///
/// Panics if `m` exceeds the number of possible loop-free edges or
/// `gamma <= 1.0`.
pub fn power_law_fixed(n: u32, m: usize, gamma: f64, seed: u64) -> Graph {
    assert!(gamma > 1.0, "gamma must exceed 1");
    let possible = n as u64 * (n as u64 - 1);
    assert!(m as u64 <= possible, "too many edges requested");
    let mut rng = StdRng::seed_from_u64(seed);
    // Cumulative Zipf weights over nodes.
    let alpha = 1.0 / (gamma - 1.0);
    let mut cum: Vec<f64> = Vec::with_capacity(n as usize);
    let mut acc = 0.0;
    for i in 0..n {
        acc += (f64::from(i) + 1.0).powf(-alpha);
        cum.push(acc);
    }
    let total = acc;
    let sample = |rng: &mut StdRng| -> u32 {
        let x = rng.gen_range(0.0..total);
        cum.partition_point(|&c| c < x) as u32
    };
    let mut set: HashSet<(u32, u32)> = HashSet::with_capacity(m);
    let mut stale = 0usize;
    while set.len() < m {
        let a = sample(&mut rng);
        let b = sample(&mut rng);
        if a != b && set.insert((a, b)) {
            stale = 0;
        } else {
            stale += 1;
            // Hubs saturate eventually; fall back to uniform pairs so the
            // generator always terminates with exactly m edges.
            if stale > 64 {
                let a = rng.gen_range(0..n);
                let b = rng.gen_range(0..n);
                if a != b {
                    set.insert((a, b));
                }
            }
        }
    }
    Graph::from_edges(n, set)
}

/// Adds up to `count` wedge-closing edges (`u -> v`, `u -> w` gains
/// `v -> w`), raising the triangle/clique density to collaboration-network
/// levels. The result may have fewer than `count` new edges if closures
/// collide with existing ones.
pub fn triangle_closure(graph: &Graph, count: usize, seed: u64) -> Graph {
    let mut rng = StdRng::seed_from_u64(seed);
    let edges = graph.edges();
    if edges.is_empty() {
        return graph.clone();
    }
    let mut new_edges: Vec<(u32, u32)> = edges.to_vec();
    // Group edges by source for neighbour sampling.
    let mut by_src: Vec<(usize, usize)> = Vec::new(); // (start, end) runs
    let mut i = 0;
    while i < edges.len() {
        let mut j = i;
        while j < edges.len() && edges[j].0 == edges[i].0 {
            j += 1;
        }
        if j - i >= 2 {
            by_src.push((i, j));
        }
        i = j;
    }
    if by_src.is_empty() {
        return graph.clone();
    }
    for _ in 0..count {
        let (s, e) = by_src[rng.gen_range(0..by_src.len())];
        let v = edges[rng.gen_range(s..e)].1;
        let w = edges[rng.gen_range(s..e)].1;
        if v != w {
            new_edges.push((v, w));
        }
    }
    Graph::from_edges(graph.num_nodes(), new_edges)
}

/// Pads with uniform random edges or trims random edges so the graph has
/// exactly `m` edges (used by the dataset registry to hit Table-2 counts).
pub(crate) fn pad_or_trim(graph: &Graph, m: usize, seed: u64) -> Graph {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = graph.num_nodes();
    let mut set: HashSet<(u32, u32)> = graph.edges().iter().copied().collect();
    while set.len() < m {
        let a = rng.gen_range(0..n);
        let b = rng.gen_range(0..n);
        if a != b {
            set.insert((a, b));
        }
    }
    if set.len() > m {
        let mut all: Vec<(u32, u32)> = set.into_iter().collect();
        all.sort_unstable();
        // Deterministic subsample.
        while all.len() > m {
            let i = rng.gen_range(0..all.len());
            all.swap_remove(i);
        }
        return Graph::from_edges(n, all);
    }
    Graph::from_edges(n, set)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn erdos_renyi_hits_exact_count_and_is_deterministic() {
        let a = erdos_renyi(100, 500, 7);
        let b = erdos_renyi(100, 500, 7);
        let c = erdos_renyi(100, 500, 8);
        assert_eq!(a.num_edges(), 500);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn barabasi_albert_grows_hubs() {
        let g = barabasi_albert(500, 3, 42);
        assert!(g.num_edges() >= 3 * (500 - 3));
        // Power-law: the max degree should far exceed the mean.
        let und = g.undirected();
        assert!(und.max_out_degree() as f64 > 4.0 * und.avg_degree());
    }

    #[test]
    fn power_law_fixed_hits_exact_count() {
        let g = power_law_fixed(300, 2000, 2.2, 1);
        assert_eq!(g.num_edges(), 2000);
        assert!(g.max_out_degree() as f64 > 3.0 * g.avg_degree());
    }

    #[test]
    fn triangle_closure_adds_triangles() {
        let base = erdos_renyi(120, 500, 3);
        let closed = triangle_closure(&base, 300, 4);
        assert!(closed.num_edges() > base.num_edges());
        assert_eq!(closed.num_nodes(), base.num_nodes());
    }

    #[test]
    fn pad_or_trim_is_exact() {
        let g = erdos_renyi(50, 100, 5);
        assert_eq!(pad_or_trim(&g, 150, 6).num_edges(), 150);
        assert_eq!(pad_or_trim(&g, 60, 6).num_edges(), 60);
        assert_eq!(pad_or_trim(&g, 100, 6).num_edges(), 100);
    }

    #[test]
    fn generators_are_loop_free() {
        for g in [
            erdos_renyi(60, 300, 11),
            barabasi_albert(60, 2, 11),
            power_law_fixed(60, 300, 2.5, 11),
        ] {
            assert!(g.edges().iter().all(|&(a, b)| a != b));
        }
    }
}
