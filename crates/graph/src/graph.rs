use std::collections::HashSet;

use triejax_relation::Relation;

/// A directed graph stored as a deduplicated edge list.
///
/// Vertices are dense `u32` identifiers in `0..num_nodes`. Self-loops are
/// rejected at construction: the paper's pattern queries treat the graph as
/// an adjacency relation, and SNAP's versions of these datasets are
/// loop-free.
///
/// # Example
///
/// ```
/// use triejax_graph::Graph;
///
/// let g = Graph::from_edges(4, vec![(0, 1), (1, 2), (0, 1), (2, 0)]);
/// assert_eq!(g.num_edges(), 3); // duplicate removed
/// assert_eq!(g.num_nodes(), 4);
/// assert_eq!(g.out_degree(0), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Graph {
    num_nodes: u32,
    edges: Vec<(u32, u32)>,
}

impl Graph {
    /// Builds a graph from an edge list, deduplicating and dropping
    /// self-loops. Node ids must be below `num_nodes`.
    ///
    /// # Panics
    ///
    /// Panics if an endpoint is `>= num_nodes`.
    pub fn from_edges<I>(num_nodes: u32, edges: I) -> Graph
    where
        I: IntoIterator<Item = (u32, u32)>,
    {
        let mut set: HashSet<(u32, u32)> = HashSet::new();
        for (a, b) in edges {
            assert!(a < num_nodes && b < num_nodes, "edge endpoint out of range");
            if a != b {
                set.insert((a, b));
            }
        }
        let mut edges: Vec<(u32, u32)> = set.into_iter().collect();
        edges.sort_unstable();
        Graph { num_nodes, edges }
    }

    /// Declared vertex-count (some ids may have no incident edge).
    pub fn num_nodes(&self) -> u32 {
        self.num_nodes
    }

    /// Number of directed edges.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// The sorted, deduplicated edge list.
    pub fn edges(&self) -> &[(u32, u32)] {
        &self.edges
    }

    /// Out-degree of vertex `v`.
    pub fn out_degree(&self, v: u32) -> usize {
        let lo = self.edges.partition_point(|&(a, _)| a < v);
        let hi = self.edges.partition_point(|&(a, _)| a <= v);
        hi - lo
    }

    /// Maximum out-degree over all vertices.
    pub fn max_out_degree(&self) -> usize {
        let mut best = 0;
        let mut i = 0;
        while i < self.edges.len() {
            let v = self.edges[i].0;
            let mut j = i;
            while j < self.edges.len() && self.edges[j].0 == v {
                j += 1;
            }
            best = best.max(j - i);
            i = j;
        }
        best
    }

    /// Mean out-degree over *declared* vertices.
    pub fn avg_degree(&self) -> f64 {
        if self.num_nodes == 0 {
            0.0
        } else {
            self.edges.len() as f64 / self.num_nodes as f64
        }
    }

    /// Number of vertices with at least one incident edge.
    pub fn touched_nodes(&self) -> usize {
        let mut seen: HashSet<u32> = HashSet::new();
        for &(a, b) in &self.edges {
            seen.insert(a);
            seen.insert(b);
        }
        seen.len()
    }

    /// The adjacency relation `G(src, dst)` used by every pattern query.
    pub fn edge_relation(&self) -> Relation {
        Relation::from_pairs(self.edges.iter().copied())
    }

    /// The symmetrized graph: every edge also present reversed.
    pub fn undirected(&self) -> Graph {
        let mut edges = self.edges.clone();
        edges.extend(self.edges.iter().map(|&(a, b)| (b, a)));
        Graph::from_edges(self.num_nodes, edges)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dedup_and_no_self_loops() {
        let g = Graph::from_edges(3, vec![(0, 1), (0, 1), (1, 1), (2, 0)]);
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.edges(), &[(0, 1), (2, 0)]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_panics() {
        let _ = Graph::from_edges(2, vec![(0, 2)]);
    }

    #[test]
    fn degrees() {
        let g = Graph::from_edges(5, vec![(0, 1), (0, 2), (0, 3), (1, 2)]);
        assert_eq!(g.out_degree(0), 3);
        assert_eq!(g.out_degree(1), 1);
        assert_eq!(g.out_degree(4), 0);
        assert_eq!(g.max_out_degree(), 3);
        assert!((g.avg_degree() - 0.8).abs() < 1e-12);
        assert_eq!(g.touched_nodes(), 4);
    }

    #[test]
    fn edge_relation_round_trips() {
        let g = Graph::from_edges(4, vec![(3, 1), (0, 2)]);
        let rel = g.edge_relation();
        let back: Vec<(u32, u32)> = rel.iter().map(|t| (t[0], t[1])).collect();
        assert_eq!(back, vec![(0, 2), (3, 1)]);
    }

    #[test]
    fn undirected_symmetrizes() {
        let g = Graph::from_edges(3, vec![(0, 1), (1, 2)]).undirected();
        assert_eq!(g.num_edges(), 4);
        assert!(g.edges().contains(&(1, 0)));
        assert!(g.edges().contains(&(2, 1)));
    }

    #[test]
    fn empty_graph() {
        let g = Graph::from_edges(0, Vec::new());
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.avg_degree(), 0.0);
        assert_eq!(g.max_out_degree(), 0);
    }
}
