//! Graph substrate for the TrieJax reproduction: graph representation,
//! SNAP text IO, synthetic generators, and the Table-2 dataset registry.
//!
//! The paper evaluates on six SNAP graphs (paper Table 2). Real SNAP files
//! are not redistributable inside this repository, so [`Dataset`] provides
//! deterministic synthetic stand-ins that match each dataset's node count,
//! edge count, and category-appropriate topology (power-law degree skew and
//! triangle closure for social/collaboration graphs; flatter random wiring
//! for the P2P graphs). The [`snap`] module reads the original files if you
//! drop them in.
//!
//! # Example
//!
//! ```
//! use triejax_graph::{Dataset, Scale};
//!
//! let g = Dataset::Facebook.generate(Scale::Tiny);
//! assert!(g.num_edges() > 0);
//! let rel = g.edge_relation();
//! assert_eq!(rel.len(), g.num_edges());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod datasets;
mod generators;
mod graph;
pub mod snap;
pub mod stats;

pub use datasets::{Dataset, DatasetProfile, Scale};
pub use generators::{barabasi_albert, erdos_renyi, power_law_fixed, triangle_closure};
pub use graph::Graph;
pub use stats::GraphStats;
