//! Reader/writer for the SNAP edge-list text format.
//!
//! SNAP files are whitespace-separated `src dst` pairs with `#` comment
//! lines. Node ids are arbitrary (sparse) integers; the reader densifies
//! them to `0..n` in first-appearance order, which preserves every pattern
//! count.
//!
//! Use this to run the harness on the *real* Table-2 datasets: download the
//! files from <https://snap.stanford.edu/data> and load them with
//! [`read_snap`].

use std::collections::HashMap;
use std::error::Error;
use std::fmt;
use std::io::{BufRead, BufReader, Read, Write};

use crate::Graph;

/// Errors produced while parsing a SNAP edge list.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SnapError {
    /// A data line did not contain exactly two integers (a third
    /// whitespace-separated token is tolerated only when it opens an
    /// inline `#` comment).
    BadLine {
        /// 1-based line number.
        line: usize,
    },
    /// The input names more than `u32::MAX` distinct nodes, which the
    /// densified id space cannot represent. Truncating instead would
    /// silently alias unrelated nodes and corrupt every pattern count.
    TooManyNodes {
        /// 1-based line number of the edge that overflowed the id space.
        line: usize,
    },
    /// The underlying reader failed.
    Io {
        /// Stringified IO error (kept string-typed so the error is `Clone`).
        message: String,
    },
}

impl fmt::Display for SnapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapError::BadLine { line } => write!(f, "malformed edge at line {line}"),
            SnapError::TooManyNodes { line } => write!(
                f,
                "more distinct nodes than the u32 id space can hold (line {line})"
            ),
            SnapError::Io { message } => write!(f, "io error: {message}"),
        }
    }
}

impl Error for SnapError {}

/// Reads a SNAP edge list, densifying node identifiers.
///
/// A mutable reference to any [`Read`] can be passed.
///
/// # Errors
///
/// Returns [`SnapError::BadLine`] on malformed input or [`SnapError::Io`]
/// if reading fails.
///
/// # Example
///
/// ```
/// use triejax_graph::snap::read_snap;
///
/// let text = "# comment\n10 20\n20 30\n";
/// let g = read_snap(text.as_bytes())?;
/// assert_eq!(g.num_edges(), 2);
/// assert_eq!(g.num_nodes(), 3); // ids densified to 0..3
/// # Ok::<(), triejax_graph::snap::SnapError>(())
/// ```
pub fn read_snap<R: Read>(reader: R) -> Result<Graph, SnapError> {
    let reader = BufReader::new(reader);
    let mut ids: HashMap<u64, u32> = HashMap::new();
    let mut edges: Vec<(u32, u32)> = Vec::new();
    let densify = |raw: u64, ids: &mut HashMap<u64, u32>| -> Option<u32> {
        if let Some(&id) = ids.get(&raw) {
            return Some(id);
        }
        let next = u32::try_from(ids.len()).ok()?;
        ids.insert(raw, next);
        Some(next)
    };
    for (i, line) in reader.lines().enumerate() {
        let line = line.map_err(|e| SnapError::Io {
            message: e.to_string(),
        })?;
        // Strip a UTF-8 byte-order mark: editors on some platforms add
        // one, and it would otherwise glue itself onto the first token.
        let line = if i == 0 {
            line.trim_start_matches('\u{feff}')
        } else {
            line.as_str()
        };
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let bad = || SnapError::BadLine { line: i + 1 };
        let mut it = line.split_whitespace();
        let (a, b) = match (it.next(), it.next()) {
            (Some(a), Some(b)) => (a, b),
            _ => return Err(bad()),
        };
        // Trailing tokens are corruption (a truncated line glued to the
        // next, a weight column this format does not model) unless they
        // open an inline comment. Accepting them silently would load a
        // different graph than the file describes.
        if it.next().is_some_and(|rest| !rest.starts_with('#')) {
            return Err(bad());
        }
        let a: u64 = a.parse().map_err(|_| bad())?;
        let b: u64 = b.parse().map_err(|_| bad())?;
        let a = densify(a, &mut ids).ok_or(SnapError::TooManyNodes { line: i + 1 })?;
        let b = densify(b, &mut ids).ok_or(SnapError::TooManyNodes { line: i + 1 })?;
        edges.push((a, b));
    }
    Ok(Graph::from_edges(ids.len() as u32, edges))
}

/// Writes a graph in SNAP format (one `src\tdst` line per edge, with a
/// header comment).
///
/// # Errors
///
/// Returns [`SnapError::Io`] if writing fails.
pub fn write_snap<W: Write>(graph: &Graph, mut writer: W) -> Result<(), SnapError> {
    let io = |e: std::io::Error| SnapError::Io {
        message: e.to_string(),
    };
    writeln!(
        writer,
        "# Nodes: {} Edges: {}",
        graph.num_nodes(),
        graph.num_edges()
    )
    .map_err(io)?;
    for &(a, b) in graph.edges() {
        writeln!(writer, "{a}\t{b}").map_err(io)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_comments_and_whitespace() {
        let text = "# header\n# more\n1 2\n3\t4\n  5   6  \n";
        let g = read_snap(text.as_bytes()).unwrap();
        assert_eq!(g.num_edges(), 3);
    }

    #[test]
    fn densifies_sparse_ids() {
        let g = read_snap("1000000 5\n5 1000000\n".as_bytes()).unwrap();
        assert_eq!(g.num_nodes(), 2);
        assert_eq!(g.edges(), &[(0, 1), (1, 0)]);
    }

    #[test]
    fn rejects_malformed_lines() {
        assert_eq!(
            read_snap("1\n".as_bytes()).unwrap_err(),
            SnapError::BadLine { line: 1 }
        );
        assert_eq!(
            read_snap("1 2\nx y\n".as_bytes()).unwrap_err(),
            SnapError::BadLine { line: 2 }
        );
    }

    #[test]
    fn round_trips_through_write() {
        let g = crate::erdos_renyi(30, 100, 3);
        let mut buf = Vec::new();
        write_snap(&g, &mut buf).unwrap();
        let back = read_snap(buf.as_slice()).unwrap();
        assert_eq!(back.num_edges(), g.num_edges());
        // Ids are densified in file order, so compare canonicalized forms.
        assert_eq!(back.touched_nodes(), g.touched_nodes());
    }

    #[test]
    fn empty_input_is_an_empty_graph() {
        let g = read_snap("# nothing\n".as_bytes()).unwrap();
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.num_nodes(), 0);
    }

    #[test]
    fn rejects_trailing_garbage_but_allows_inline_comments() {
        assert_eq!(
            read_snap("1 2 3\n".as_bytes()).unwrap_err(),
            SnapError::BadLine { line: 1 },
            "a third integer column is corruption, not an edge"
        );
        assert_eq!(
            read_snap("1 2\n3 4 junk\n".as_bytes()).unwrap_err(),
            SnapError::BadLine { line: 2 }
        );
        let g = read_snap("1 2 # weight omitted\n".as_bytes()).unwrap();
        assert_eq!(g.num_edges(), 1);
    }

    #[test]
    fn strips_a_leading_byte_order_mark() {
        let g = read_snap("\u{feff}1 2\n2 3\n".as_bytes()).unwrap();
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.num_nodes(), 3);
    }

    #[test]
    fn crlf_line_endings_parse() {
        let g = read_snap("# header\r\n1 2\r\n2 3\r\n".as_bytes()).unwrap();
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    fn negative_and_overflowing_ids_are_malformed() {
        assert_eq!(
            read_snap("-1 2\n".as_bytes()).unwrap_err(),
            SnapError::BadLine { line: 1 }
        );
        // One digit past u64::MAX.
        assert_eq!(
            read_snap("18446744073709551616 2\n".as_bytes()).unwrap_err(),
            SnapError::BadLine { line: 1 }
        );
    }

    #[test]
    fn io_failures_surface_as_io_errors() {
        struct Failing;
        impl std::io::Read for Failing {
            fn read(&mut self, _buf: &mut [u8]) -> std::io::Result<usize> {
                Err(std::io::Error::other("disk on fire"))
            }
        }
        match read_snap(Failing).unwrap_err() {
            SnapError::Io { message } => assert!(message.contains("disk on fire")),
            other => panic!("expected Io, got {other:?}"),
        }
    }

    #[test]
    fn error_displays_are_informative() {
        assert!(SnapError::BadLine { line: 7 }.to_string().contains('7'));
        assert!(SnapError::TooManyNodes { line: 9 }
            .to_string()
            .contains("u32"));
    }
}
