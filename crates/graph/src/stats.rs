//! Graph statistics: degree distributions, reciprocity, clustering, and
//! walk counts — the structural properties that drive every evaluation
//! figure (degree skew powers the Path4 blowups; triangle density powers
//! the cyclic-query counts).

use std::collections::HashSet;

use crate::Graph;

/// Summary statistics of one graph.
#[derive(Debug, Clone, PartialEq)]
pub struct GraphStats {
    /// Declared vertex count.
    pub nodes: u32,
    /// Directed edge count.
    pub edges: usize,
    /// Maximum out-degree.
    pub max_out_degree: usize,
    /// Mean out-degree over declared vertices.
    pub avg_degree: f64,
    /// Degree skew: max out-degree over mean (1.0 = perfectly uniform).
    pub skew: f64,
    /// Fraction of edges whose reverse also exists.
    pub reciprocity: f64,
    /// Global clustering coefficient of the symmetrized graph:
    /// `3 * triangles / wedges`.
    pub clustering: f64,
    /// Directed walk counts of lengths 1..=4 (floating point: these grow
    /// beyond `u64` on full-size social graphs).
    pub walks: [f64; 4],
}

impl GraphStats {
    /// Computes all statistics for `graph`.
    ///
    /// Cost is `O(E * avg_degree)` for the clustering term; fine for the
    /// bundled dataset sizes.
    pub fn compute(graph: &Graph) -> GraphStats {
        let n = graph.num_nodes() as usize;
        let edges = graph.edges();
        let edge_set: HashSet<(u32, u32)> = edges.iter().copied().collect();

        let reciprocity = if edges.is_empty() {
            0.0
        } else {
            edges
                .iter()
                .filter(|&&(a, b)| edge_set.contains(&(b, a)))
                .count() as f64
                / edges.len() as f64
        };

        // Symmetrized adjacency for clustering.
        let und = graph.undirected();
        let mut adj: Vec<Vec<u32>> = vec![Vec::new(); n];
        for &(a, b) in und.edges() {
            adj[a as usize].push(b);
        }
        let und_set: HashSet<(u32, u32)> = und.edges().iter().copied().collect();
        let mut wedges = 0u64;
        let mut closed = 0u64;
        for nbrs in &adj {
            let d = nbrs.len() as u64;
            wedges += d.saturating_sub(1) * d / 2;
            for i in 0..nbrs.len() {
                for j in i + 1..nbrs.len() {
                    if und_set.contains(&(nbrs[i], nbrs[j])) {
                        closed += 1;
                    }
                }
            }
        }
        let clustering = if wedges == 0 {
            0.0
        } else {
            closed as f64 / wedges as f64
        };

        GraphStats {
            nodes: graph.num_nodes(),
            edges: graph.num_edges(),
            max_out_degree: graph.max_out_degree(),
            avg_degree: graph.avg_degree(),
            skew: if graph.avg_degree() > 0.0 {
                graph.max_out_degree() as f64 / graph.avg_degree()
            } else {
                0.0
            },
            reciprocity,
            clustering,
            walks: walk_counts(graph),
        }
    }
}

impl std::fmt::Display for GraphStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} nodes, {} edges, max deg {}, avg deg {:.2}, skew {:.1}, \
             reciprocity {:.2}, clustering {:.3}",
            self.nodes,
            self.edges,
            self.max_out_degree,
            self.avg_degree,
            self.skew,
            self.reciprocity,
            self.clustering
        )
    }
}

/// Exact number of directed walks of lengths 1..=4, by dynamic
/// programming over the adjacency (each entry `k` counts the sequences
/// `v0 -> v1 -> ... -> vk`).
///
/// These predict the unfiltered expansion cost of vertex-programming
/// pattern matching and upper-bound the path-query result counts.
pub fn walk_counts(graph: &Graph) -> [f64; 4] {
    let n = graph.num_nodes() as usize;
    let mut ending_at = vec![1.0f64; n];
    let mut counts = [0.0; 4];
    for c in &mut counts {
        let mut next = vec![0.0f64; n];
        let mut total = 0.0;
        for &(a, b) in graph.edges() {
            next[b as usize] += ending_at[a as usize];
            total += ending_at[a as usize];
        }
        *c = total;
        ending_at = next;
    }
    counts
}

/// Out-degree histogram: `histogram[d]` = number of vertices with
/// out-degree `d` (the last bucket aggregates the tail).
pub fn degree_histogram(graph: &Graph, buckets: usize) -> Vec<usize> {
    let mut hist = vec![0usize; buckets.max(1)];
    let mut per_node = vec![0usize; graph.num_nodes() as usize];
    for &(a, _) in graph.edges() {
        per_node[a as usize] += 1;
    }
    for d in per_node {
        let b = d.min(hist.len() - 1);
        hist[b] += 1;
    }
    hist
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Dataset, Scale};

    fn triangle() -> Graph {
        Graph::from_edges(3, vec![(0, 1), (1, 2), (2, 0)])
    }

    #[test]
    fn walk_counts_on_a_cycle_are_constant() {
        let w = walk_counts(&triangle());
        assert_eq!(w, [3.0, 3.0, 3.0, 3.0]);
    }

    #[test]
    fn walk_counts_on_a_chain_shrink() {
        let g = Graph::from_edges(4, vec![(0, 1), (1, 2), (2, 3)]);
        assert_eq!(walk_counts(&g), [3.0, 2.0, 1.0, 0.0]);
    }

    #[test]
    fn triangle_is_fully_clustered_and_reciprocal_free() {
        let s = GraphStats::compute(&triangle());
        assert_eq!(s.reciprocity, 0.0);
        assert!((s.clustering - 1.0).abs() < 1e-12);
        assert_eq!(s.edges, 3);
    }

    #[test]
    fn mutual_edges_are_reciprocal() {
        let g = Graph::from_edges(2, vec![(0, 1), (1, 0)]);
        assert_eq!(GraphStats::compute(&g).reciprocity, 1.0);
    }

    #[test]
    fn social_graphs_cluster_more_than_p2p() {
        let fb = GraphStats::compute(&Dataset::Facebook.generate(Scale::Tiny));
        let gnu = GraphStats::compute(&Dataset::Gnutella04.generate(Scale::Tiny));
        assert!(
            fb.clustering > 2.0 * gnu.clustering,
            "facebook {:.3} vs gnutella {:.3}",
            fb.clustering,
            gnu.clustering
        );
    }

    #[test]
    fn degree_histogram_sums_to_node_count() {
        let g = Dataset::GrQc.generate(Scale::Tiny);
        let hist = degree_histogram(&g, 16);
        assert_eq!(hist.iter().sum::<usize>(), g.num_nodes() as usize);
    }

    #[test]
    fn display_is_informative() {
        let s = GraphStats::compute(&triangle()).to_string();
        assert!(s.contains("3 nodes"));
        assert!(s.contains("clustering"));
    }

    #[test]
    fn empty_graph_stats_are_zeroed() {
        let s = GraphStats::compute(&Graph::from_edges(0, Vec::new()));
        assert_eq!(s.reciprocity, 0.0);
        assert_eq!(s.clustering, 0.0);
        assert_eq!(s.walks, [0.0; 4]);
    }
}
