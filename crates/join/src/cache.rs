//! Partial-join-result (PJR) cache stores for the CTJ engines.
//!
//! The CTJ driver is generic over a [`PjrStore`], which owns both the
//! entry storage *and* the hit/miss accounting policy:
//!
//! * [`LocalPjr`] — the single-threaded store used by sequential
//!   [`crate::Ctj`] (and by `ParCtj`'s one-shard fast path): a plain
//!   `HashMap`, misses counted at lookup, insertions *dropped* once
//!   `max_entries` live entries exist.
//! * [`SharedPjrCache`] — the concurrent store shared by every
//!   [`crate::ParCtj`] worker, mirroring the paper's on-chip PJR cache
//!   that all TrieJax lanes share (§3.5). Entries are striped over
//!   [`triejax_exec::Striped`] lock lanes by key hash (hash-determined so
//!   every worker finds its siblings' entries), `Arc`-shared, bounded by a
//!   configurable total capacity with per-stripe FIFO **eviction** (a
//!   long-running shared cache must churn, not clog), and insert races are
//!   resolved **first-writer-wins**: the losing worker discards its
//!   duplicate build and the published entry serves all future replays.
//!
//! ## Accounting
//!
//! Cache counters flow through each worker's own [`EngineStats`] (no
//! shared atomics) and are summed at shard join, so the store must keep
//! the sums meaningful:
//!
//! * a lookup ticks exactly one of `cache_hits`/`cache_misses`;
//! * when a publish loses an insert race, the store *reclassifies* the
//!   worker's earlier miss as a late hit (`cache_misses -= 1`,
//!   `cache_hits += 1`) and ticks `cache_races` — so summed
//!   `cache_misses` equals the number of **unique entry builds**, never
//!   double-counting an entry two workers raced to build;
//! * `intermediates` (the Figure 18 metric) is likewise counted only for
//!   the winning, stored build;
//! * evictions tick `cache_evictions`; waiting on a stripe lock another
//!   worker holds ticks `cache_contention`.
//!
//! ## Adaptive demotion
//!
//! With [`CtjConfig::adaptive`] set, both stores watch the observed hit
//! rate per cached depth: a depth whose first [`DEMOTE_LOOKUPS`] lookups
//! all missed is *demoted* — [`PjrStore::depth_enabled`] flips to `false`,
//! the driver stops probing (and recording) there, and the worker that
//! flipped it ticks `cache_demotions` once. The shared store demotes
//! globally (relaxed atomics; a racing hit can at worst lose the depth one
//! probation window late), the local store per driver. Demotion never
//! changes results — a disabled depth simply recomputes like plain LFTJ.

use std::collections::hash_map::DefaultHasher;
use std::collections::{HashMap, VecDeque};
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::Arc;

use triejax_exec::{suggested_stripes, Striped};
use triejax_relation::{AccessKind, Tally, Value, WORD_BYTES};

use crate::{CtjConfig, EngineStats};

/// A committed cache entry: matched values and their per-participant trie
/// indexes (atoms in `atoms_at(depth)` order). `Arc` (not `Rc`) so entries
/// can be shared across pool workers.
pub(crate) type Entry = Arc<Vec<(Value, Vec<u32>)>>;

/// A full cache key: the cached depth plus the bindings of the cache
/// spec's key depths.
type Key = (usize, Vec<Value>);

/// Outcome of a cache probe; a miss hands the key back so the driver can
/// publish the computed entry without re-building (or cloning) it, plus a
/// store-specific token ([`SharedPjrCache`]'s stripe hash; zero for the
/// local store) so the publish need not rehash the key.
pub(crate) enum Looked {
    /// The entry was present; replay it.
    Hit(Entry),
    /// Not present; compute, then [`PjrStore::publish`] under this key
    /// and token.
    Miss(Vec<Value>, u64),
}

/// Probation window of the adaptive policy: a cached depth whose first
/// this-many lookups all missed is demoted for the rest of the run.
pub(crate) const DEMOTE_LOOKUPS: u32 = 64;

/// Per-depth probation state of the adaptive policy (worker-local form).
#[derive(Clone, Copy, Default)]
struct DepthProbe {
    lookups: u32,
    hits: u32,
    demoted: bool,
}

impl DepthProbe {
    /// Accounts one lookup; returns `true` when this lookup demoted the
    /// depth (zero hits through the whole probation window).
    fn observe(&mut self, hit: bool) -> bool {
        self.lookups += 1;
        self.hits += u32::from(hit);
        if !self.demoted && self.hits == 0 && self.lookups >= DEMOTE_LOOKUPS {
            self.demoted = true;
            return true;
        }
        false
    }
}

/// Storage + accounting policy for CTJ's partial-join-result cache.
pub(crate) trait PjrStore {
    /// Probes for `(depth, key)`, ticking `cache_hits` or `cache_misses`.
    fn lookup<T: Tally>(
        &mut self,
        depth: usize,
        key: Vec<Value>,
        stats: &mut EngineStats<T>,
    ) -> Looked;

    /// Commits a fully-computed match list for `(depth, key)` after a
    /// miss (`token` is the one the miss handed back). Implementations
    /// may drop it (capacity), evict for it, or discover a sibling
    /// already published it (insert race).
    fn publish<T: Tally>(
        &mut self,
        depth: usize,
        key: Vec<Value>,
        token: u64,
        rows: Vec<(Value, Vec<u32>)>,
        stats: &mut EngineStats<T>,
    );

    /// Whether the adaptive policy still allows caching at `depth`.
    /// Always `true` for non-adaptive stores; an adaptive store returns
    /// `false` once the depth is demoted, and the driver then skips the
    /// lookup (and the recording) entirely at that depth.
    fn depth_enabled(&self, _depth: usize) -> bool {
        true
    }
}

/// Records the storage cost of a newly stored entry (the Figure 18
/// intermediate-results accounting), shared by both stores.
fn record_stored<T: Tally>(rows: &[(Value, Vec<u32>)], stats: &mut EngineStats<T>) {
    let words: u64 = rows.iter().map(|(_, pos)| (1 + pos.len()) as u64).sum();
    stats.intermediates += rows.len() as u64;
    stats
        .access
        .record(AccessKind::Intermediate, words * WORD_BYTES);
}

/// The worker-local PJR store of sequential [`crate::Ctj`].
///
/// Capacity semantics match CTJ's software description: once
/// [`CtjConfig::max_entries`] live entries exist, further insertions are
/// dropped (counted as `cache_overflows`) — the single-query sequential
/// engine has no churn to survive, so it never evicts.
pub(crate) struct LocalPjr {
    map: HashMap<Key, Entry>,
    max_entries: Option<usize>,
    /// Per-depth probation state; empty when the adaptive policy is off.
    probes: Vec<DepthProbe>,
}

impl LocalPjr {
    pub(crate) fn new(config: CtjConfig) -> Self {
        LocalPjr {
            map: HashMap::new(),
            max_entries: config.max_entries,
            probes: Vec::new(),
        }
    }

    /// Enables run-time demotion for cached depths up to `depths`.
    pub(crate) fn with_adaptive(config: CtjConfig, depths: usize) -> Self {
        let mut store = Self::new(config);
        if config.adaptive {
            store.probes = vec![DepthProbe::default(); depths];
        }
        store
    }
}

impl PjrStore for LocalPjr {
    fn lookup<T: Tally>(
        &mut self,
        depth: usize,
        key: Vec<Value>,
        stats: &mut EngineStats<T>,
    ) -> Looked {
        let probe = (depth, key);
        let hit = self.map.get(&probe).map(Arc::clone);
        if let Some(p) = self.probes.get_mut(depth) {
            if p.observe(hit.is_some()) {
                stats.cache_demotions += 1;
            }
        }
        if let Some(entry) = hit {
            stats.cache_hits += 1;
            return Looked::Hit(entry);
        }
        stats.cache_misses += 1;
        Looked::Miss(probe.1, 0)
    }

    fn depth_enabled(&self, depth: usize) -> bool {
        self.probes.get(depth).is_none_or(|p| !p.demoted)
    }

    fn publish<T: Tally>(
        &mut self,
        depth: usize,
        key: Vec<Value>,
        _token: u64,
        rows: Vec<(Value, Vec<u32>)>,
        stats: &mut EngineStats<T>,
    ) {
        if self.max_entries.is_some_and(|max| self.map.len() >= max) {
            stats.cache_overflows += 1;
            return;
        }
        record_stored(&rows, stats);
        self.map.insert((depth, key), Arc::new(rows));
    }
}

/// One lock stripe of the shared cache: entry storage plus the FIFO
/// insertion order that drives eviction. Eviction is the only removal, so
/// every key in `fifo` is live in `map`.
struct PjrStripe {
    map: HashMap<Key, Entry>,
    fifo: VecDeque<Key>,
}

/// The concurrent PJR cache shared by every [`crate::ParCtj`] worker.
///
/// Entries are binding-keyed and order-independent (a valid
/// [`triejax_query::CacheSpec`] guarantees the match list depends on
/// nothing but the key bindings), so an entry built while one worker
/// explored one root range is sound for every other worker and range —
/// exactly why sharing beats the per-worker caches it replaced, whose hit
/// counts were structurally capped below sequential CTJ's.
///
/// Not exposed outside the crate: entries are only meaningful for the
/// `(plan, catalog)` pair that built them, so sharing a cache *across
/// queries* would be unsound. [`crate::ParCtj`] builds one per run.
pub(crate) struct SharedPjrCache {
    stripes: Striped<PjrStripe>,
    /// Per-lane live-entry bounds as `(base, extra)`: lane `l` holds at
    /// most `base + 1` entries when `l < extra`, else `base` — so the
    /// lane bounds sum to *exactly* the configured total capacity.
    /// `None` = unbounded; a zero lane bound disables storing there.
    per_lane_cap: Option<(usize, usize)>,
    /// Per-depth probation state shared by every worker; empty when the
    /// adaptive policy is off. Relaxed atomics: a demotion racing a hit
    /// can at worst fire one probation window late, never affects
    /// results.
    probes: Vec<SharedDepthProbe>,
}

/// Per-depth probation state of the adaptive policy (shared form).
#[derive(Default)]
struct SharedDepthProbe {
    lookups: AtomicU32,
    hits: AtomicU32,
    demoted: AtomicBool,
}

impl SharedDepthProbe {
    /// Accounts one lookup; returns `true` for exactly the one worker
    /// whose lookup demoted the depth.
    fn observe(&self, hit: bool) -> bool {
        if hit {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return false;
        }
        let seen = self.lookups.fetch_add(1, Ordering::Relaxed) + 1;
        seen >= DEMOTE_LOOKUPS
            && self.hits.load(Ordering::Relaxed) == 0
            && !self.demoted.swap(true, Ordering::Relaxed)
    }
}

/// A plan-side entries hint larger than this is a blown-up upper bound
/// (key-domain products multiply whole relation cardinalities), not a
/// credible working-set size — don't reserve memory for it.
const CREDIBLE_HINT_MAX: usize = 1 << 20;

impl SharedPjrCache {
    /// Builds a cache for `workers` concurrent workers with a total
    /// `capacity` (entries; `None` = unbounded) and an optional expected
    /// entry-count hint (from [`triejax_query::CompiledQuery`]'s
    /// cache-capacity estimate) used to pre-size the stripe tables.
    ///
    /// The stripe count is [`suggested_stripes`] for the worker count,
    /// reduced so a small capacity is never spread thinner than one entry
    /// per stripe. The capacity divides across the stripes with the
    /// remainder spread one-per-lane, so the per-lane bounds sum to
    /// exactly `capacity` — the total of live entries never exceeds it,
    /// and the full configured budget is usable.
    pub(crate) fn new(
        workers: usize,
        capacity: Option<usize>,
        entries_hint: Option<usize>,
    ) -> Self {
        let mut stripes = suggested_stripes(workers);
        if let Some(cap) = capacity {
            stripes = stripes.min(prev_power_of_two(cap.max(1)));
        }
        let per_lane_cap = capacity.map(|cap| (cap / stripes, cap % stripes));
        // Pre-size each stripe toward its expected share of the entries —
        // but only when the upper-bound hint is small enough to be a
        // credible working-set estimate.
        let mut seed = entries_hint
            .filter(|&h| h <= CREDIBLE_HINT_MAX)
            .map_or(0, |h| h / stripes);
        if let Some((base, extra)) = per_lane_cap {
            seed = seed.min(base + usize::from(extra > 0));
        }
        SharedPjrCache {
            stripes: Striped::with_stripes(stripes, || PjrStripe {
                map: HashMap::with_capacity(seed),
                fifo: VecDeque::new(),
            }),
            per_lane_cap,
            probes: Vec::new(),
        }
    }

    /// Enables run-time demotion for cached depths up to `depths`. Every
    /// worker handle observes and honors the shared demotion state, so a
    /// depth dead for one worker is dead for all of them.
    pub(crate) fn with_adaptive(mut self, depths: usize) -> Self {
        self.probes = (0..depths).map(|_| SharedDepthProbe::default()).collect();
        self
    }

    /// Number of lock stripes (for tests/diagnostics).
    #[cfg(test)]
    pub(crate) fn stripes(&self) -> usize {
        self.stripes.stripes()
    }

    /// A handle for one worker; each pool worker drives its own
    /// [`crate::ctj::CtjDriver`] through its own handle.
    pub(crate) fn handle(&self) -> SharedPjrHandle<'_> {
        SharedPjrHandle { cache: self }
    }

    /// Total live entries across all stripes (requires exclusive access;
    /// used by tests after a run has joined).
    #[cfg(test)]
    pub(crate) fn len(&mut self) -> usize {
        self.stripes.iter_mut().map(|s| s.map.len()).sum()
    }
}

/// Stable stripe hash. [`DefaultHasher::new`] is fixed-key SipHash, so
/// every worker maps a key to the same stripe — required for cross-worker
/// entry reuse.
fn stripe_hash(depth: usize, key: &[Value]) -> u64 {
    let mut h = DefaultHasher::new();
    depth.hash(&mut h);
    key.hash(&mut h);
    h.finish()
}

/// Largest power of two `<= x` (callers guarantee `x >= 1`).
fn prev_power_of_two(x: usize) -> usize {
    1 << (usize::BITS - 1 - x.leading_zeros())
}

/// One worker's view of a [`SharedPjrCache`].
pub(crate) struct SharedPjrHandle<'c> {
    cache: &'c SharedPjrCache,
}

impl PjrStore for SharedPjrHandle<'_> {
    fn lookup<T: Tally>(
        &mut self,
        depth: usize,
        key: Vec<Value>,
        stats: &mut EngineStats<T>,
    ) -> Looked {
        let hash = stripe_hash(depth, &key);
        let (stripe, contended) = self.cache.stripes.lock(hash);
        if contended {
            stats.cache_contention += 1;
        }
        let probe = (depth, key);
        let hit = stripe.map.get(&probe).map(Arc::clone);
        // Clone the Arc out so the stripe lock is released before the
        // (potentially deep) replay and the probation accounting.
        drop(stripe);
        if let Some(p) = self.cache.probes.get(depth) {
            if p.observe(hit.is_some()) {
                stats.cache_demotions += 1;
            }
        }
        if let Some(entry) = hit {
            stats.cache_hits += 1;
            return Looked::Hit(entry);
        }
        stats.cache_misses += 1;
        // Hand the stripe hash back so the publish need not rehash.
        Looked::Miss(probe.1, hash)
    }

    fn depth_enabled(&self, depth: usize) -> bool {
        self.cache
            .probes
            .get(depth)
            .is_none_or(|p| !p.demoted.load(Ordering::Relaxed))
    }

    fn publish<T: Tally>(
        &mut self,
        depth: usize,
        key: Vec<Value>,
        hash: u64,
        rows: Vec<(Value, Vec<u32>)>,
        stats: &mut EngineStats<T>,
    ) {
        // Fault hook *before* the stripe lock: an injected panic here
        // models a worker dying between its miss and its insert — the
        // entry is simply never published (first-writer-wins means a
        // sibling rebuilds it), and no stripe is left poisoned with a
        // half-inserted entry.
        #[cfg(feature = "faults")]
        triejax_exec::faults::fire(triejax_exec::faults::FaultEvent::CacheInsert);
        let (mut stripe, contended) = self.cache.stripes.lock(hash);
        if contended {
            stats.cache_contention += 1;
        }
        let full_key = (depth, key);
        if stripe.map.contains_key(&full_key) {
            // Insert race lost: a sibling published this entry between our
            // miss and now. First writer wins — drop the duplicate build,
            // reclassify our earlier miss as a late hit so summed misses
            // count unique entry builds, and record the wasted work.
            stats.cache_misses -= 1;
            stats.cache_hits += 1;
            stats.cache_races += 1;
            return;
        }
        let lane_cap = self
            .cache
            .per_lane_cap
            .map(|(base, extra)| base + usize::from(self.cache.stripes.lane(hash) < extra));
        match lane_cap {
            Some(0) => {
                // Capacity 0 disables caching entirely.
                stats.cache_overflows += 1;
            }
            Some(cap) => {
                while stripe.map.len() >= cap {
                    let oldest = stripe
                        .fifo
                        .pop_front()
                        .expect("every live entry is FIFO-tracked");
                    stripe.map.remove(&oldest);
                    stats.cache_evictions += 1;
                }
                record_stored(&rows, stats);
                stripe.fifo.push_back(full_key.clone());
                stripe.map.insert(full_key, Arc::new(rows));
            }
            None => {
                record_stored(&rows, stats);
                stripe.map.insert(full_key, Arc::new(rows));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use triejax_relation::Counting;

    fn rows(vals: &[Value]) -> Vec<(Value, Vec<u32>)> {
        vals.iter().map(|&v| (v, vec![0, 1])).collect()
    }

    fn miss_key<S: PjrStore>(
        store: &mut S,
        d: usize,
        k: &[Value],
        s: &mut EngineStats,
    ) -> (Vec<Value>, u64) {
        match store.lookup(d, k.to_vec(), s) {
            Looked::Miss(key, token) => (key, token),
            Looked::Hit(_) => panic!("expected a miss"),
        }
    }

    #[test]
    fn local_counts_misses_at_lookup_and_drops_when_full() {
        let mut store = LocalPjr::new(CtjConfig {
            entry_capacity: None,
            max_entries: Some(1),
            adaptive: false,
        });
        let mut stats = EngineStats::<Counting>::new();
        let (k, t) = miss_key(&mut store, 1, &[7], &mut stats);
        assert_eq!(stats.cache_misses, 1);
        store.publish(1, k, t, rows(&[1, 2]), &mut stats);
        assert_eq!(stats.intermediates, 2);
        // Second distinct key: the full map drops the insertion.
        let (k, t) = miss_key(&mut store, 1, &[8], &mut stats);
        store.publish(1, k, t, rows(&[3]), &mut stats);
        assert_eq!(stats.cache_overflows, 1);
        assert_eq!(stats.cache_evictions, 0, "local never evicts");
        // The first entry is still live and hits.
        assert!(matches!(
            store.lookup(1, vec![7], &mut stats),
            Looked::Hit(_)
        ));
        assert_eq!(stats.cache_hits, 1);
    }

    /// The dedupe fix: when two workers race to build the same entry, the
    /// summed stats count ONE miss (unique entry builds), not two — the
    /// loser's miss is reclassified as a late hit plus a race.
    #[test]
    fn insert_race_dedupes_the_shared_miss_count() {
        let cache = SharedPjrCache::new(2, None, None);
        let mut w0 = cache.handle();
        let mut w1 = cache.handle();
        let mut s0 = EngineStats::<Counting>::new();
        let mut s1 = EngineStats::<Counting>::new();

        // Both workers probe the same key before either has published —
        // the interleaving that double-counted misses under naive
        // at-lookup accounting.
        let (k0, t0) = miss_key(&mut w0, 2, &[5, 9], &mut s0);
        let (k1, t1) = miss_key(&mut w1, 2, &[5, 9], &mut s1);
        w0.publish(2, k0, t0, rows(&[1, 2, 3]), &mut s0);
        w1.publish(2, k1, t1, rows(&[1, 2, 3]), &mut s1);

        let mut merged = EngineStats::<Counting>::new();
        merged.merge(&s0);
        merged.merge(&s1);
        assert_eq!(merged.cache_misses, 1, "one unique entry build");
        assert_eq!(merged.cache_hits, 1, "the loser's probe became a late hit");
        assert_eq!(merged.cache_races, 1);
        assert_eq!(
            merged.intermediates, 3,
            "the duplicate build must not double-count intermediates"
        );
        // The published entry serves both workers from now on.
        assert!(matches!(w0.lookup(2, vec![5, 9], &mut s0), Looked::Hit(_)));
        assert!(matches!(w1.lookup(2, vec![5, 9], &mut s1), Looked::Hit(_)));
    }

    #[test]
    fn entries_published_by_one_handle_hit_on_another() {
        let cache = SharedPjrCache::new(4, None, None);
        let mut s = EngineStats::<Counting>::new();
        let mut w0 = cache.handle();
        let (k, t) = miss_key(&mut w0, 1, &[3], &mut s);
        w0.publish(1, k, t, rows(&[10, 11]), &mut s);
        let mut w1 = cache.handle();
        match w1.lookup(1, vec![3], &mut s) {
            Looked::Hit(entry) => assert_eq!(entry.len(), 2),
            Looked::Miss(..) => panic!("sibling's entry must be visible"),
        }
        assert_eq!(s.cache_hits, 1);
        assert_eq!(s.cache_misses, 1);
    }

    #[test]
    fn tiny_capacity_evicts_fifo_per_stripe() {
        // Capacity 1 collapses to a single stripe holding one entry.
        let mut cache = SharedPjrCache::new(4, Some(1), None);
        assert_eq!(cache.stripes(), 1);
        let mut s = EngineStats::<Counting>::new();
        let mut w = cache.handle();
        for v in 0..5u32 {
            let (k, t) = miss_key(&mut w, 1, &[v], &mut s);
            w.publish(1, k, t, rows(&[v]), &mut s);
        }
        assert_eq!(s.cache_evictions, 4, "each insert after the first evicts");
        assert_eq!(cache.len(), 1, "never more live entries than capacity");
        // Only the newest key survives.
        let mut w = cache.handle();
        assert!(matches!(w.lookup(1, vec![4], &mut s), Looked::Hit(_)));
        assert!(matches!(w.lookup(1, vec![0], &mut s), Looked::Miss(..)));
    }

    #[test]
    fn capacity_zero_disables_caching() {
        let mut cache = SharedPjrCache::new(2, Some(0), None);
        let mut s = EngineStats::<Counting>::new();
        let mut w = cache.handle();
        let (k, t) = miss_key(&mut w, 1, &[9], &mut s);
        w.publish(1, k, t, rows(&[1]), &mut s);
        assert_eq!(s.cache_overflows, 1);
        assert!(matches!(w.lookup(1, vec![9], &mut s), Looked::Miss(..)));
        assert_eq!(cache.len(), 0);
    }

    #[test]
    fn local_demotes_a_depth_after_a_zero_hit_window() {
        let mut store = LocalPjr::with_adaptive(
            CtjConfig {
                entry_capacity: None,
                max_entries: None,
                adaptive: true,
            },
            3,
        );
        let mut s = EngineStats::<Counting>::new();
        // Every key distinct: the probation window closes with zero hits.
        for v in 0..DEMOTE_LOOKUPS {
            assert!(store.depth_enabled(1), "demotion only fires at the window");
            miss_key(&mut store, 1, &[v], &mut s);
        }
        assert!(!store.depth_enabled(1), "zero-reuse depth is demoted");
        assert_eq!(s.cache_demotions, 1);
        // Other depths keep their own probation; a demoted depth is
        // counted once even if the driver races in another lookup.
        assert!(store.depth_enabled(2));
        miss_key(&mut store, 1, &[u32::MAX], &mut s);
        assert_eq!(s.cache_demotions, 1, "demotion is counted once");
    }

    #[test]
    fn a_single_hit_inside_the_window_keeps_the_depth() {
        let mut store = LocalPjr::with_adaptive(
            CtjConfig {
                entry_capacity: None,
                max_entries: None,
                adaptive: true,
            },
            3,
        );
        let mut s = EngineStats::<Counting>::new();
        let (k, t) = miss_key(&mut store, 1, &[0], &mut s);
        store.publish(1, k, t, rows(&[1]), &mut s);
        for v in 0..2 * DEMOTE_LOOKUPS {
            // Re-probing key 0 every few lookups keeps the hit count
            // above zero, so the window never closes against the depth.
            let key = if v % 8 == 0 { 0 } else { v + 1 };
            store.lookup(1, vec![key], &mut s);
        }
        assert!(store.depth_enabled(1), "reused depth must keep its spec");
        assert_eq!(s.cache_demotions, 0);
    }

    #[test]
    fn non_adaptive_stores_never_demote() {
        let mut store = LocalPjr::new(CtjConfig {
            entry_capacity: None,
            max_entries: None,
            adaptive: false,
        });
        let mut s = EngineStats::<Counting>::new();
        for v in 0..2 * DEMOTE_LOOKUPS {
            miss_key(&mut store, 1, &[v], &mut s);
        }
        assert!(store.depth_enabled(1));
        assert_eq!(s.cache_demotions, 0);
    }

    #[test]
    fn shared_demotion_is_global_across_handles() {
        let cache = SharedPjrCache::new(2, None, None).with_adaptive(3);
        let mut s0 = EngineStats::<Counting>::new();
        let mut s1 = EngineStats::<Counting>::new();
        let mut w0 = cache.handle();
        let mut w1 = cache.handle();
        // Split the zero-hit probation window across two workers: the one
        // whose lookup crosses the threshold books the demotion, and the
        // flag flips for every handle of the store.
        for v in 0..DEMOTE_LOOKUPS {
            if v % 2 == 0 {
                miss_key(&mut w0, 2, &[v, v], &mut s0);
            } else {
                miss_key(&mut w1, 2, &[v, v], &mut s1);
            }
        }
        assert!(!w0.depth_enabled(2) && !w1.depth_enabled(2));
        assert_eq!(
            s0.cache_demotions + s1.cache_demotions,
            1,
            "exactly one worker books the shared demotion"
        );
        assert!(w0.depth_enabled(1), "other depths unaffected");
    }

    #[test]
    fn total_capacity_is_honored_exactly_across_stripes() {
        // 10 does not divide evenly over the stripes: the remainder must
        // be spread so the whole configured budget is usable — no more,
        // no less.
        let mut cache = SharedPjrCache::new(4, Some(10), None);
        let stripes = cache.stripes();
        assert!(stripes <= 8, "stripe count shrinks to fit the capacity");
        let mut s = EngineStats::<Counting>::new();
        let mut w = cache.handle();
        for v in 0..200u32 {
            let (k, t) = miss_key(&mut w, 1, &[v], &mut s);
            w.publish(1, k, t, rows(&[v]), &mut s);
        }
        assert_eq!(
            cache.len(),
            10,
            "every stripe saturated: live entries must equal the capacity"
        );
        assert!(s.cache_evictions > 0);
    }

    #[test]
    fn huge_entries_hint_does_not_reserve_memory() {
        // An upper-bound estimate like |G|^2 is not a credible working
        // set; the stripe tables must start small.
        let cache = SharedPjrCache::new(4, None, Some(200_000_000));
        let (stripe, _) = cache.stripes.lock(0);
        assert_eq!(stripe.map.capacity(), 0, "blown-up hint must be ignored");
        drop(stripe);
        // A credible hint does pre-size.
        let cache = SharedPjrCache::new(4, None, Some(16_000));
        let (stripe, _) = cache.stripes.lock(0);
        assert!(stripe.map.capacity() >= 16_000 / 16);
    }

    /// Hammer one shared cache from several threads; the merged counters
    /// must balance: every lookup is a hit or a miss, misses equal stored
    /// builds (unbounded, so no eviction/overflow re-builds).
    #[test]
    fn concurrent_accounting_balances() {
        let cache = SharedPjrCache::new(4, None, None);
        let stats: Vec<EngineStats> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..4)
                .map(|t| {
                    let cache = &cache;
                    scope.spawn(move || {
                        let mut s = EngineStats::<Counting>::new();
                        let mut w = cache.handle();
                        for i in 0..400u32 {
                            let key = vec![(i * 7 + t) % 97];
                            if let Looked::Miss(k, t) = w.lookup(1, key, &mut s) {
                                let v = k[0];
                                w.publish(1, k, t, rows(&[v]), &mut s);
                            }
                        }
                        s
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        let mut merged = EngineStats::<Counting>::new();
        for s in &stats {
            merged.merge(s);
        }
        assert_eq!(merged.cache_hits + merged.cache_misses, 4 * 400);
        assert_eq!(merged.cache_misses, 97, "misses == unique entry builds");
        let mut cache = cache;
        assert_eq!(cache.len(), 97);
    }
}
