use std::collections::HashMap;
use std::sync::Arc;

use triejax_exec::WorkerPool;
use triejax_query::CompiledQuery;
use triejax_relation::{AddressSpace, Relation, Trie};

use crate::triecache::TrieCache;
use crate::JoinError;

/// A named collection of base relations (the "database").
///
/// Graph pattern queries typically register a single edge relation `G`, and
/// every atom of a query self-joins it.
///
/// # Example
///
/// ```
/// use triejax_join::Catalog;
/// use triejax_relation::Relation;
///
/// let mut catalog = Catalog::new();
/// catalog.insert("G", Relation::from_pairs(vec![(1, 2), (2, 3)]));
/// assert!(catalog.get("G").is_some());
/// assert_eq!(catalog.len(), 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Catalog {
    relations: HashMap<String, Relation>,
}

impl Catalog {
    /// Creates an empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers (or replaces) a relation under `name`.
    pub fn insert(&mut self, name: impl Into<String>, relation: Relation) {
        self.relations.insert(name.into(), relation);
    }

    /// Looks up a relation by name.
    pub fn get(&self, name: &str) -> Option<&Relation> {
        self.relations.get(name)
    }

    /// Iterates over `(name, relation)` pairs in unspecified order
    /// (snapshotting into a persistent store, listing, diagnostics).
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Relation)> + '_ {
        self.relations.iter().map(|(n, r)| (n.as_str(), r))
    }

    /// Number of registered relations.
    pub fn len(&self) -> usize {
        self.relations.len()
    }

    /// Returns `true` when no relations are registered.
    pub fn is_empty(&self) -> bool {
        self.relations.is_empty()
    }
}

/// The tries required by one compiled query, deduplicated by
/// `(relation name, column permutation)`.
///
/// Distinct atoms over the same relation and attribute order share one trie
/// (e.g. all three atoms of `cycle3` over `G` use just the `(0,1)`-order and
/// `(1,0)`-order tries). [`TrieSet::for_atom`] maps an atom-plan index to
/// its trie.
#[derive(Debug, Clone)]
pub struct TrieSet {
    /// Shared so the cross-query [`TrieCache`] and every concurrent query
    /// can hold the same built trie without copying it.
    tries: Vec<Arc<Trie>>,
    atom_trie: Vec<usize>,
}

/// One deduplicated trie the plan needs but the cache could not serve.
struct PendingBuild<'a> {
    /// Index into `TrieSet::tries` this build fills.
    slot: usize,
    rel: &'a Relation,
    name: &'a str,
    perm: &'a [usize],
    /// Base-relation fingerprint, present when the built trie should be
    /// published to the cache afterwards.
    fingerprint: Option<u64>,
}

impl TrieSet {
    /// Builds (or reuses) every trie the plan needs from `catalog`,
    /// sequentially on the caller's thread.
    ///
    /// # Errors
    ///
    /// Returns [`JoinError::MissingRelation`] or [`JoinError::ArityMismatch`]
    /// when the catalog does not satisfy the query's schema.
    pub fn build(plan: &CompiledQuery, catalog: &Catalog) -> Result<TrieSet, JoinError> {
        let mut keys: HashMap<(String, Vec<usize>), usize> = HashMap::new();
        let mut tries = Vec::new();
        let mut atom_trie = Vec::with_capacity(plan.atom_plans().len());
        for ap in plan.atom_plans() {
            let rel = resolve(catalog, ap.relation(), ap.arity())?;
            let key = (ap.relation().to_owned(), ap.perm().to_vec());
            let idx = match keys.get(&key) {
                Some(&i) => i,
                None => {
                    let permuted = rel.permute(ap.perm());
                    tries.push(Arc::new(Trie::build(&permuted)));
                    keys.insert(key, tries.len() - 1);
                    tries.len() - 1
                }
            };
            atom_trie.push(idx);
        }
        Ok(TrieSet { tries, atom_trie })
    }

    /// Builds every trie the plan needs with the cold work scheduled on
    /// `pool`, consulting (and filling) the cross-query `cache` when one
    /// is given. Returns the trie set, the number of tries served from
    /// the cache, and the nanoseconds spent on cold builds — exactly `0`
    /// when every trie was served (the "zero trie builds" acceptance
    /// signal for store-backed serving).
    ///
    /// Each distinct `(relation, perm)` that misses the cache is one unit
    /// of cold work: when several miss, they run as independent pool tasks
    /// (inter-trie parallelism); a single miss instead runs on the caller
    /// with the chunk-parallel permute ([`Relation::permute_on`]) and
    /// partitioned build ([`Trie::par_build`]) so the pool is never idle
    /// either way. Both paths produce tries byte-identical to
    /// [`TrieSet::build`]'s, and cache publication is first-writer-wins:
    /// on a race the sibling's [`Arc`] is adopted and the duplicate build
    /// discarded.
    ///
    /// # Errors
    ///
    /// Returns [`JoinError::MissingRelation`] or [`JoinError::ArityMismatch`]
    /// when the catalog does not satisfy the query's schema.
    pub fn build_on(
        plan: &CompiledQuery,
        catalog: &Catalog,
        pool: &WorkerPool,
        cache: Option<&TrieCache>,
    ) -> Result<(TrieSet, u64, u64), JoinError> {
        let mut keys: HashMap<(String, Vec<usize>), usize> = HashMap::new();
        let mut slots: Vec<Option<Arc<Trie>>> = Vec::new();
        let mut pending: Vec<PendingBuild<'_>> = Vec::new();
        let mut atom_trie = Vec::with_capacity(plan.atom_plans().len());
        let mut fingerprints: HashMap<&str, u64> = HashMap::new();
        let mut cache_hits = 0u64;
        for ap in plan.atom_plans() {
            let rel = resolve(catalog, ap.relation(), ap.arity())?;
            let key = (ap.relation().to_owned(), ap.perm().to_vec());
            let idx = match keys.get(&key) {
                Some(&i) => i,
                None => {
                    let i = slots.len();
                    let mut served = None;
                    let mut fingerprint = None;
                    if let Some(c) = cache {
                        let fp = *fingerprints
                            .entry(ap.relation())
                            .or_insert_with(|| TrieCache::fingerprint(rel));
                        match c.lookup(ap.relation(), fp, ap.perm()) {
                            Some(t) => {
                                cache_hits += 1;
                                served = Some(t);
                            }
                            None => fingerprint = Some(fp),
                        }
                    }
                    if served.is_none() {
                        pending.push(PendingBuild {
                            slot: i,
                            rel,
                            name: ap.relation(),
                            perm: ap.perm(),
                            fingerprint,
                        });
                    }
                    slots.push(served);
                    keys.insert(key, i);
                    i
                }
            };
            atom_trie.push(idx);
        }
        // Cold builds: many misses become independent pool tasks; a lone
        // miss parallelizes *within* the build instead. Only this section
        // is timed, so a fully-served query reports build_ns == 0.
        let build_t0 = (!pending.is_empty()).then(std::time::Instant::now);
        let built: Vec<Trie> = if pending.len() == 1 {
            vec![build_one(pending[0].rel, pending[0].perm, Some(pool))]
        } else if !pending.is_empty() {
            let (tries, _stats) =
                pool.run(&pending, |_ctx, _lane, pb| build_one(pb.rel, pb.perm, None));
            tries
        } else {
            Vec::new()
        };
        let build_ns = build_t0.map_or(0, |t0| t0.elapsed().as_nanos() as u64);
        for (pb, trie) in pending.iter().zip(built) {
            let trie = Arc::new(trie);
            let published = match (cache, pb.fingerprint) {
                (Some(c), Some(fp)) => c.insert(pb.name, fp, pb.perm, trie),
                _ => trie,
            };
            slots[pb.slot] = Some(published);
        }
        let tries = slots
            .into_iter()
            .map(|s| s.expect("every slot is served or built"))
            .collect();
        Ok((TrieSet { tries, atom_trie }, cache_hits, build_ns))
    }

    /// The trie backing atom-plan `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn for_atom(&self, i: usize) -> &Trie {
        self.tries[self.atom_trie[i]].as_ref()
    }

    /// The deduplicated tries.
    pub fn tries(&self) -> &[Arc<Trie>] {
        &self.tries
    }

    /// Index into [`tries`](Self::tries) used by each atom plan.
    pub fn atom_trie_indices(&self) -> &[usize] {
        &self.atom_trie
    }

    /// Assigns simulated addresses to every trie (for cycle-level
    /// simulation); returns the total index footprint in bytes.
    ///
    /// Tries shared with a cache (or another query) are copied on write
    /// first, so simulated placement never mutates a cached trie.
    pub fn assign_addresses(&mut self, asp: &mut AddressSpace) -> u64 {
        let mut total = 0;
        for t in &mut self.tries {
            Arc::make_mut(t).assign_addresses(asp);
            total += t.bytes();
        }
        total
    }
}

/// Looks up `name` in the catalog and checks its arity against the atom's.
pub(crate) fn resolve<'a>(
    catalog: &'a Catalog,
    name: &str,
    arity: usize,
) -> Result<&'a Relation, JoinError> {
    let rel = catalog
        .get(name)
        .ok_or_else(|| JoinError::MissingRelation {
            name: name.to_owned(),
        })?;
    if rel.arity() != arity {
        return Err(JoinError::ArityMismatch {
            name: name.to_owned(),
            atom_arity: arity,
            relation_arity: rel.arity(),
        });
    }
    Ok(rel)
}

/// One cold trie build: permute into the atom's attribute order, then
/// build. With a pool the permute chunk-sorts and the build partitions by
/// root key; without one both run sequentially (the per-task body when
/// many builds already share the pool).
pub(crate) fn build_one(rel: &Relation, perm: &[usize], pool: Option<&WorkerPool>) -> Trie {
    #[cfg(feature = "faults")]
    triejax_exec::faults::fire(triejax_exec::faults::FaultEvent::TrieBuild);
    match pool {
        Some(p) => Trie::par_build(&rel.permute_on(perm, p), p),
        None => Trie::build(&rel.permute(perm)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use triejax_query::patterns;

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.insert("G", Relation::from_pairs(vec![(1, 2), (2, 3), (3, 1)]));
        c
    }

    #[test]
    fn tries_are_deduplicated_across_atoms() {
        let plan = CompiledQuery::compile(&patterns::cycle3()).unwrap();
        let ts = TrieSet::build(&plan, &catalog()).unwrap();
        // G(x,y) and G(y,z) share the identity-order trie; G(z,x) needs the
        // swapped order: two distinct tries for three atoms.
        assert_eq!(ts.tries().len(), 2);
        assert_eq!(ts.atom_trie_indices(), &[0, 0, 1]);
        assert!(std::ptr::eq(ts.for_atom(0), ts.for_atom(1)));
    }

    #[test]
    fn missing_relation_errors() {
        let plan = CompiledQuery::compile(&patterns::path3()).unwrap();
        let err = TrieSet::build(&plan, &Catalog::new()).unwrap_err();
        assert!(matches!(err, JoinError::MissingRelation { .. }));
    }

    #[test]
    fn arity_mismatch_errors() {
        let plan = CompiledQuery::compile(&patterns::path3()).unwrap();
        let mut c = Catalog::new();
        c.insert(
            "G",
            Relation::from_tuples(3, vec![vec![1u32, 2, 3]]).unwrap(),
        );
        let err = TrieSet::build(&plan, &c).unwrap_err();
        assert!(matches!(err, JoinError::ArityMismatch { .. }));
    }

    #[test]
    fn swapped_trie_indexes_reverse_columns() {
        let plan = CompiledQuery::compile(&patterns::cycle3()).unwrap();
        let ts = TrieSet::build(&plan, &catalog()).unwrap();
        // The swapped trie stores (x, z) pairs of G(z, x): reversed edges.
        let rev = ts.for_atom(2);
        assert_eq!(rev.level(0).values(), &[1, 2, 3]);
        assert_eq!(rev.enumerate(), vec![vec![1, 3], vec![2, 1], vec![3, 2]]);
    }

    #[test]
    fn build_on_matches_sequential_build() {
        let pool = WorkerPool::with_workers(4);
        for p in [patterns::cycle3(), patterns::path4(), patterns::clique4()] {
            let plan = CompiledQuery::compile(&p).unwrap();
            let seq = TrieSet::build(&plan, &catalog()).unwrap();
            let (par, hits, build_ns) = TrieSet::build_on(&plan, &catalog(), &pool, None).unwrap();
            assert_eq!(hits, 0, "no cache, no hits");
            assert!(build_ns > 0, "cold builds report nonzero build time");
            assert_eq!(par.atom_trie_indices(), seq.atom_trie_indices());
            assert_eq!(par.tries().len(), seq.tries().len());
            for (a, b) in par.tries().iter().zip(seq.tries()) {
                assert_eq!(a, b, "parallel build must be byte-identical");
            }
        }
    }

    #[test]
    fn build_on_serves_and_fills_the_cache() {
        let pool = WorkerPool::with_workers(2);
        let cache = TrieCache::unbounded();
        let plan = CompiledQuery::compile(&patterns::cycle3()).unwrap();
        let (cold, hits, _) = TrieSet::build_on(&plan, &catalog(), &pool, Some(&cache)).unwrap();
        assert_eq!(hits, 0);
        assert_eq!(cache.insertions(), 2, "both distinct tries published");
        let (warm, hits, build_ns) =
            TrieSet::build_on(&plan, &catalog(), &pool, Some(&cache)).unwrap();
        assert_eq!(hits, 2, "warm build is all lookups");
        assert_eq!(build_ns, 0, "a fully-served query does zero build work");
        for (a, b) in warm.tries().iter().zip(cold.tries()) {
            assert!(Arc::ptr_eq(a, b), "warm query adopts the cached Arc");
        }
        // A changed relation under the same name misses by fingerprint.
        let mut changed = Catalog::new();
        changed.insert("G", Relation::from_pairs(vec![(9, 8), (8, 7), (7, 9)]));
        let (_, hits, _) = TrieSet::build_on(&plan, &changed, &pool, Some(&cache)).unwrap();
        assert_eq!(hits, 0, "stale tries are unreachable by fingerprint");
    }

    #[test]
    fn build_on_propagates_schema_errors() {
        let pool = WorkerPool::with_workers(2);
        let plan = CompiledQuery::compile(&patterns::path3()).unwrap();
        let err = TrieSet::build_on(&plan, &Catalog::new(), &pool, None).unwrap_err();
        assert!(matches!(err, JoinError::MissingRelation { .. }));
    }

    #[test]
    fn assign_addresses_returns_footprint() {
        let plan = CompiledQuery::compile(&patterns::path3()).unwrap();
        let mut ts = TrieSet::build(&plan, &catalog()).unwrap();
        let mut asp = AddressSpace::new();
        let bytes = ts.assign_addresses(&mut asp);
        assert_eq!(bytes, ts.tries().iter().map(|t| t.bytes()).sum::<u64>());
        assert!(asp.used() > 0x1000);
    }
}
