use std::collections::HashMap;

use triejax_query::CompiledQuery;
use triejax_relation::{AddressSpace, Relation, Trie};

use crate::JoinError;

/// A named collection of base relations (the "database").
///
/// Graph pattern queries typically register a single edge relation `G`, and
/// every atom of a query self-joins it.
///
/// # Example
///
/// ```
/// use triejax_join::Catalog;
/// use triejax_relation::Relation;
///
/// let mut catalog = Catalog::new();
/// catalog.insert("G", Relation::from_pairs(vec![(1, 2), (2, 3)]));
/// assert!(catalog.get("G").is_some());
/// assert_eq!(catalog.len(), 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Catalog {
    relations: HashMap<String, Relation>,
}

impl Catalog {
    /// Creates an empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers (or replaces) a relation under `name`.
    pub fn insert(&mut self, name: impl Into<String>, relation: Relation) {
        self.relations.insert(name.into(), relation);
    }

    /// Looks up a relation by name.
    pub fn get(&self, name: &str) -> Option<&Relation> {
        self.relations.get(name)
    }

    /// Number of registered relations.
    pub fn len(&self) -> usize {
        self.relations.len()
    }

    /// Returns `true` when no relations are registered.
    pub fn is_empty(&self) -> bool {
        self.relations.is_empty()
    }
}

/// The tries required by one compiled query, deduplicated by
/// `(relation name, column permutation)`.
///
/// Distinct atoms over the same relation and attribute order share one trie
/// (e.g. all three atoms of `cycle3` over `G` use just the `(0,1)`-order and
/// `(1,0)`-order tries). [`TrieSet::for_atom`] maps an atom-plan index to
/// its trie.
#[derive(Debug, Clone)]
pub struct TrieSet {
    tries: Vec<Trie>,
    atom_trie: Vec<usize>,
}

impl TrieSet {
    /// Builds (or reuses) every trie the plan needs from `catalog`.
    ///
    /// # Errors
    ///
    /// Returns [`JoinError::MissingRelation`] or [`JoinError::ArityMismatch`]
    /// when the catalog does not satisfy the query's schema.
    pub fn build(plan: &CompiledQuery, catalog: &Catalog) -> Result<TrieSet, JoinError> {
        let mut keys: HashMap<(String, Vec<usize>), usize> = HashMap::new();
        let mut tries = Vec::new();
        let mut atom_trie = Vec::with_capacity(plan.atom_plans().len());
        for ap in plan.atom_plans() {
            let rel = catalog
                .get(ap.relation())
                .ok_or_else(|| JoinError::MissingRelation {
                    name: ap.relation().to_owned(),
                })?;
            if rel.arity() != ap.arity() {
                return Err(JoinError::ArityMismatch {
                    name: ap.relation().to_owned(),
                    atom_arity: ap.arity(),
                    relation_arity: rel.arity(),
                });
            }
            let key = (ap.relation().to_owned(), ap.perm().to_vec());
            let idx = match keys.get(&key) {
                Some(&i) => i,
                None => {
                    let permuted = rel.permute(ap.perm());
                    tries.push(Trie::build(&permuted));
                    keys.insert(key, tries.len() - 1);
                    tries.len() - 1
                }
            };
            atom_trie.push(idx);
        }
        Ok(TrieSet { tries, atom_trie })
    }

    /// The trie backing atom-plan `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn for_atom(&self, i: usize) -> &Trie {
        &self.tries[self.atom_trie[i]]
    }

    /// The deduplicated tries.
    pub fn tries(&self) -> &[Trie] {
        &self.tries
    }

    /// Index into [`tries`](Self::tries) used by each atom plan.
    pub fn atom_trie_indices(&self) -> &[usize] {
        &self.atom_trie
    }

    /// Assigns simulated addresses to every trie (for cycle-level
    /// simulation); returns the total index footprint in bytes.
    pub fn assign_addresses(&mut self, asp: &mut AddressSpace) -> u64 {
        let mut total = 0;
        for t in &mut self.tries {
            t.assign_addresses(asp);
            total += t.bytes();
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use triejax_query::patterns;

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.insert("G", Relation::from_pairs(vec![(1, 2), (2, 3), (3, 1)]));
        c
    }

    #[test]
    fn tries_are_deduplicated_across_atoms() {
        let plan = CompiledQuery::compile(&patterns::cycle3()).unwrap();
        let ts = TrieSet::build(&plan, &catalog()).unwrap();
        // G(x,y) and G(y,z) share the identity-order trie; G(z,x) needs the
        // swapped order: two distinct tries for three atoms.
        assert_eq!(ts.tries().len(), 2);
        assert_eq!(ts.atom_trie_indices(), &[0, 0, 1]);
        assert!(std::ptr::eq(ts.for_atom(0), ts.for_atom(1)));
    }

    #[test]
    fn missing_relation_errors() {
        let plan = CompiledQuery::compile(&patterns::path3()).unwrap();
        let err = TrieSet::build(&plan, &Catalog::new()).unwrap_err();
        assert!(matches!(err, JoinError::MissingRelation { .. }));
    }

    #[test]
    fn arity_mismatch_errors() {
        let plan = CompiledQuery::compile(&patterns::path3()).unwrap();
        let mut c = Catalog::new();
        c.insert(
            "G",
            Relation::from_tuples(3, vec![vec![1u32, 2, 3]]).unwrap(),
        );
        let err = TrieSet::build(&plan, &c).unwrap_err();
        assert!(matches!(err, JoinError::ArityMismatch { .. }));
    }

    #[test]
    fn swapped_trie_indexes_reverse_columns() {
        let plan = CompiledQuery::compile(&patterns::cycle3()).unwrap();
        let ts = TrieSet::build(&plan, &catalog()).unwrap();
        // The swapped trie stores (x, z) pairs of G(z, x): reversed edges.
        let rev = ts.for_atom(2);
        assert_eq!(rev.level(0).values(), &[1, 2, 3]);
        assert_eq!(rev.enumerate(), vec![vec![1, 3], vec![2, 1], vec![3, 2]]);
    }

    #[test]
    fn assign_addresses_returns_footprint() {
        let plan = CompiledQuery::compile(&patterns::path3()).unwrap();
        let mut ts = TrieSet::build(&plan, &catalog()).unwrap();
        let mut asp = AddressSpace::new();
        let bytes = ts.assign_addresses(&mut asp);
        assert_eq!(bytes, ts.tries().iter().map(|t| t.bytes()).sum::<u64>());
        assert!(asp.used() > 0x1000);
    }
}
