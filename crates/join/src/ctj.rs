use triejax_exec::{Budget, NoBudget};
use triejax_query::CompiledQuery;
use triejax_relation::{AccessKind, Counting, JoinCursor, Tally, TrieCursor, Value, WORD_BYTES};

use crate::cache::{LocalPjr, Looked, PjrStore};
use crate::engine::head_slots;
use crate::shard::{try_split_at, NoSplit, SplitSpawn};
use crate::sink::BatchEmitter;
use crate::viewset::{plan_touches_delta, CursorSet, MergeSet};
use crate::{Catalog, DeltaMap, EngineStats, JoinEngine, JoinError, Leapfrog, ResultSink, TrieSet};

/// Configuration of the software partial-join-result cache.
///
/// Both limits default to unbounded, matching CTJ's use of "the available
/// system memory" (paper §2.2); the hardware PJR cache in `triejax` has its
/// own fixed SRAM geometry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CtjConfig {
    /// Maximum `(value, indexes)` pairs per cache entry; an entry exceeding
    /// this while being filled is discarded, mirroring the hardware
    /// insertion-buffer overflow rule (paper §3.5).
    pub entry_capacity: Option<usize>,
    /// Maximum number of live cache entries. For sequential [`Ctj`] this
    /// bounds the worker-local store, which *drops* further insertions;
    /// for [`crate::ParCtj`] it is the total capacity of the shared
    /// sharded cache, which *evicts* (FIFO per stripe) to stay within it.
    pub max_entries: Option<usize>,
    /// Cost-based adaptive cache-spec selection (default off, env default
    /// `TRIEJAX_CACHE_ADAPT` for the parallel engine). At plan time a
    /// spec whose estimated per-entry reuse
    /// ([`triejax_query::CompiledQuery::cache_reuse_estimate`]) is below
    /// 2 is dropped — every visit would build a fresh entry. At run time
    /// a surviving depth whose whole probation window of lookups never
    /// hit is demoted (see [`crate::EngineStats::cache_demotions`]).
    /// Either way the depth simply recomputes like plain LFTJ; results
    /// never change.
    pub adaptive: bool,
}

/// Cached TrieJoin (Kalinsky, Etsion, Kimelfeld — EDBT'17): LeapFrog
/// TrieJoin extended with a partial-join-result cache, the algorithm
/// TrieJax implements in hardware (paper Figure 4).
///
/// At every depth with a valid [`triejax_query::CacheSpec`], the engine
/// keys the list of matching `(value, index)` pairs by the bindings of the
/// spec's key depths. A later visit with the same key bindings replays the
/// list instead of recomputing the leapfrog intersection.
///
/// # Example
///
/// ```
/// use triejax_join::{Catalog, CountSink, Ctj, JoinEngine};
/// use triejax_query::{patterns, CompiledQuery};
/// use triejax_relation::Relation;
///
/// // Two x-parents (0 and 3) share y=1, so the z-list of y=1 is cached
/// // once and replayed once.
/// let mut catalog = Catalog::new();
/// catalog.insert("G", Relation::from_pairs(vec![(0, 1), (3, 1), (1, 5), (1, 6)]));
/// let plan = CompiledQuery::compile(&patterns::path3())?;
/// let mut sink = CountSink::default();
/// let stats = Ctj::default().execute(&plan, &catalog, &mut sink)?;
/// assert_eq!(sink.count(), 4);
/// assert_eq!(stats.cache_hits, 1);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct Ctj {
    config: CtjConfig,
}

impl Ctj {
    /// Engine with unbounded cache; identical to `Default::default()`.
    pub fn new() -> Self {
        Self::default()
    }

    /// Engine with an explicit cache configuration.
    pub fn with_config(config: CtjConfig) -> Self {
        Ctj { config }
    }

    /// The active configuration.
    pub fn config(&self) -> CtjConfig {
        self.config
    }

    /// Runs the query with an explicit [`Tally`] choice; see
    /// [`crate::Lftj::run_tallied`] for the counting/fast trade-off.
    ///
    /// # Errors
    ///
    /// Returns a [`JoinError`] when the catalog is missing a relation or a
    /// relation's arity mismatches its atom.
    pub fn run_tallied<T: Tally>(
        &mut self,
        plan: &CompiledQuery,
        catalog: &Catalog,
        sink: &mut dyn ResultSink,
    ) -> Result<EngineStats<T>, JoinError> {
        let tries = TrieSet::build(plan, catalog)?;
        let store = LocalPjr::with_adaptive(self.config, plan.arity());
        let mut driver = CtjDriver::with_store(plan, &tries, self.config, store)?;
        if self.config.adaptive {
            driver.set_cache_mask(plan_cache_mask(plan, catalog));
        }
        driver.run(sink);
        Ok(driver.stats)
    }

    /// Runs the query with the pending mutations in `deltas` folded in;
    /// see [`crate::Lftj::run_tallied_with`] for the merge semantics and
    /// the frozen fast path. Partial-join-result caching works unchanged
    /// on merged views: entries are keyed by bindings alone, and the
    /// merged relation is just another (virtual) relation instance.
    ///
    /// # Errors
    ///
    /// As [`run_tallied`](Self::run_tallied), plus an arity mismatch
    /// between a delta and its atom.
    pub fn run_tallied_with<T: Tally>(
        &mut self,
        plan: &CompiledQuery,
        catalog: &Catalog,
        deltas: &DeltaMap,
        sink: &mut dyn ResultSink,
    ) -> Result<EngineStats<T>, JoinError> {
        if !plan_touches_delta(plan, deltas) {
            return self.run_tallied(plan, catalog, sink);
        }
        let set = MergeSet::build(plan, catalog, deltas)?;
        let store = LocalPjr::with_adaptive(self.config, plan.arity());
        let mut driver =
            CtjDriver::<T, LocalPjr, NoBudget, _>::with_store(plan, &set, self.config, store)?;
        if self.config.adaptive {
            driver.set_cache_mask(plan_cache_mask(plan, catalog));
        }
        driver.run(sink);
        Ok(driver.stats)
    }
}

/// Plan-time side of the adaptive cache policy: one flag per depth,
/// `false` where the spec's estimated per-entry reuse is provably below 2
/// — the product of the non-key prefix domains bounds how many visits
/// could ever share an entry, so an estimate of 1 means pure overhead.
/// Depths without a spec (and depths whose estimate is unknown) stay
/// enabled; the run-time demotion policy handles what the estimate
/// cannot see.
pub(crate) fn plan_cache_mask(plan: &CompiledQuery, catalog: &Catalog) -> Vec<bool> {
    let card = |name: &str| catalog.get(name).map(|r| r.len());
    (0..plan.arity())
        .map(|d| plan.cache_reuse_estimate(d, card).is_none_or(|r| r >= 2))
        .collect()
}

impl JoinEngine for Ctj {
    fn name(&self) -> &'static str {
        "ctj"
    }

    fn execute(
        &mut self,
        plan: &CompiledQuery,
        catalog: &Catalog,
        sink: &mut dyn ResultSink,
    ) -> Result<EngineStats, JoinError> {
        self.run_tallied::<Counting>(plan, catalog, sink)
    }
}

/// The CTJ backtracking driver, shared by the sequential [`Ctj`] engine
/// and the per-worker drivers of [`crate::ParCtj`], generic over the
/// [`PjrStore`] that holds (and accounts for) the partial-join-result
/// cache: sequential CTJ owns a [`LocalPjr`], while every `ParCtj` worker
/// drives a handle onto one [`crate::cache::SharedPjrCache`].
///
/// Cache entries are keyed by `(depth, key bindings)` only — never by the
/// root range or the executing worker — which is sound because a valid
/// [`triejax_query::CacheSpec`] guarantees the memoized match list depends
/// on nothing but the key bindings. Partial-join results therefore replay
/// *across root ranges* (and, with the shared store, across workers).
///
/// Like the LFTJ driver, the CTJ driver is generic over a [`Budget`]:
/// [`NoBudget`] (the default) compiles every governance check away, a
/// [`triejax_exec::BudgetHandle`] polls at root advances, charges rows at
/// emit/replay points, and charges every recorded cache-entry tuple
/// against the intermediate budget. A budget-stopped level never
/// publishes its partially recorded entry.
pub(crate) struct CtjDriver<
    'a,
    T: Tally,
    C: PjrStore = LocalPjr,
    B: Budget = NoBudget,
    Cur: JoinCursor = TrieCursor<'a>,
> {
    plan: &'a CompiledQuery,
    config: CtjConfig,
    cursors: Vec<Cur>,
    binding: Vec<Value>,
    emit: Vec<Value>,
    slots: Vec<usize>,
    emitter: BatchEmitter,
    /// Per depth: participating cursor indices, preallocated once so the
    /// recursive driver never allocates per node.
    members_at: Vec<Vec<usize>>,
    cache: C,
    /// Plan-time adaptive mask: `false` at depths whose cache spec was
    /// dropped by the cost model (all `true` when adaptation is off).
    cache_mask: Vec<bool>,
    /// Level the `[range_min, range_sup)` restriction applies to: 0 for
    /// seeded shards, the donated level for sub-root split donees.
    range_depth: usize,
    range_min: Value,
    range_sup: Option<Value>,
    /// Per level: the upper bound committed splits have clamped it to.
    sup_at: Vec<Option<Value>>,
    budget: B,
    pub(crate) stats: EngineStats<T>,
}

#[cfg(test)]
impl<'a, T: Tally, Cur: JoinCursor> CtjDriver<'a, T, LocalPjr, NoBudget, Cur> {
    /// Driver with a worker-local store (sequential CTJ semantics);
    /// test-only — the engines wire the adaptive store explicitly.
    pub(crate) fn new<S: CursorSet<'a, Cur = Cur>>(
        plan: &'a CompiledQuery,
        set: &'a S,
        config: CtjConfig,
    ) -> Result<Self, JoinError> {
        Self::with_store(plan, set, config, LocalPjr::new(config))
    }
}

impl<'a, T: Tally, C: PjrStore, Cur: JoinCursor> CtjDriver<'a, T, C, NoBudget, Cur> {
    /// Driver emitting into `cache` — any [`PjrStore`], in particular one
    /// worker's handle onto the shared sharded cache.
    pub(crate) fn with_store<S: CursorSet<'a, Cur = Cur>>(
        plan: &'a CompiledQuery,
        set: &'a S,
        config: CtjConfig,
        cache: C,
    ) -> Result<Self, JoinError> {
        Self::with_store_budget(plan, set, config, cache, NoBudget)
    }
}

impl<'a, T: Tally, C: PjrStore, B: Budget, Cur: JoinCursor> CtjDriver<'a, T, C, B, Cur> {
    /// Driver over an explicit store *and* budget (see the type docs).
    pub(crate) fn with_store_budget<S: CursorSet<'a, Cur = Cur>>(
        plan: &'a CompiledQuery,
        set: &'a S,
        config: CtjConfig,
        cache: C,
        budget: B,
    ) -> Result<Self, JoinError> {
        let cursors = (0..plan.atom_plans().len())
            .map(|i| set.cursor(i))
            .collect();
        let n = plan.arity();
        let members_at = (0..n)
            .map(|d| plan.atoms_at(d).iter().map(|&(a, _)| a).collect())
            .collect();
        Ok(CtjDriver {
            plan,
            config,
            cursors,
            binding: vec![0; n],
            emit: vec![0; n],
            slots: head_slots(plan)?,
            emitter: BatchEmitter::new(n),
            members_at,
            cache,
            cache_mask: vec![true; n],
            range_depth: 0,
            range_min: 0,
            range_sup: None,
            sup_at: vec![None; n],
            budget,
            stats: EngineStats::default(),
        })
    }

    /// Installs the plan-time adaptive mask (see [`plan_cache_mask`]).
    pub(crate) fn set_cache_mask(&mut self, mask: Vec<bool>) {
        debug_assert_eq!(mask.len(), self.plan.arity());
        self.cache_mask = mask;
    }

    /// Emits tuples straight through to the sink instead of batching —
    /// for sinks that batch themselves (the parallel engines' per-shard
    /// [`crate::ShardSink`]s).
    pub(crate) fn emit_passthrough(&mut self) {
        self.emitter.passthrough();
    }

    /// Runs the full join.
    pub(crate) fn run(&mut self, sink: &mut dyn ResultSink) {
        self.run_range(0, None, sink);
    }

    /// Runs one root-range shard `[root_min, root_sup)`, keeping the cache
    /// (and accumulated stats) across calls.
    pub(crate) fn run_range(
        &mut self,
        root_min: Value,
        root_sup: Option<Value>,
        sink: &mut dyn ResultSink,
    ) {
        self.run_range_split(root_min, root_sup, sink, &mut NoSplit);
    }

    /// Like [`run_range`](Self::run_range), with a split controller
    /// polled at the match points of every non-cached level up to the
    /// controller's depth cap (see [`crate::shard::try_split_at`]);
    /// [`NoSplit`] monomorphizes the polling away for the sequential
    /// paths.
    pub(crate) fn run_range_split<S: SplitSpawn>(
        &mut self,
        root_min: Value,
        root_sup: Option<Value>,
        sink: &mut dyn ResultSink,
        ctl: &mut S,
    ) {
        self.run_split_at(0, &[], root_min, root_sup, sink, ctl);
    }

    /// Runs a sub-root split task: binds the donated `prefix`, joins the
    /// donated level restricted to `[min, sup)` and everything below it,
    /// then unwinds the prefix so the pooled driver can run more tasks.
    /// See `Driver::run_split_at` in `lftj.rs` for the protocol; the CTJ
    /// variant keeps its cache across tasks (entries are keyed by
    /// bindings alone, so both halves of a split keep hitting it).
    pub(crate) fn run_split_at<S: SplitSpawn>(
        &mut self,
        depth: usize,
        prefix: &[Value],
        min: Value,
        sup: Option<Value>,
        sink: &mut dyn ResultSink,
        ctl: &mut S,
    ) {
        assert_eq!(
            prefix.len(),
            depth,
            "split prefix binds every level above the donated one"
        );
        self.range_depth = depth;
        self.range_min = min;
        self.range_sup = sup;
        for (q, &v) in prefix.iter().enumerate() {
            for &(a, lvl) in self.plan.atoms_at(q) {
                if lvl > 0 {
                    self.stats.expand_ops += 1;
                }
                let opened = self.cursors[a].open(&mut self.stats.access);
                assert!(opened, "split prefix level must be non-empty");
                let found = self.cursors[a].seek(v, &mut self.stats.access);
                assert!(
                    found && self.cursors[a].key() == v,
                    "split prefix value must exist in every participant"
                );
            }
            self.binding[q] = v;
        }
        self.level(depth, sink, ctl);
        self.emitter.flush(sink);
        for q in (0..depth).rev() {
            for &(a, _) in self.plan.atoms_at(q) {
                self.cursors[a].up();
            }
        }
        self.range_depth = 0;
        self.range_min = 0;
        self.range_sup = None;
    }

    /// Emits the current binding; returns `false` when the budget refused
    /// the row and the driver must stop.
    fn emit_result(&mut self, sink: &mut dyn ResultSink) -> bool {
        if B::GOVERNED && !self.budget.charge_row() {
            return false;
        }
        for d in 0..self.binding.len() {
            self.emit[self.slots[d]] = self.binding[d];
        }
        self.emitter.push(&self.emit, sink);
        self.stats.results += 1;
        self.stats
            .access
            .record(AccessKind::ResultWrite, self.emit.len() as u64 * WORD_BYTES);
        true
    }

    /// Returns `false` when the budget stopped the run at this level or
    /// below; cursors are unwound normally either way.
    fn level<S: SplitSpawn>(&mut self, d: usize, sink: &mut dyn ResultSink, ctl: &mut S) -> bool {
        // Entering a fresh subtree invalidates any split vetoes recorded
        // for this depth and below — they referred to sibling subtrees.
        ctl.level_entered(d);
        let spec = self
            .plan
            .cache_spec_at(d)
            .filter(|_| self.cache_mask[d] && self.cache.depth_enabled(d));
        let record_key = match spec {
            Some(spec) => {
                let key: Vec<Value> = spec
                    .key_depths()
                    .iter()
                    .map(|&kd| self.binding[kd])
                    .collect();
                // Cache lookup: hash probe over the key words. The store
                // accounts the hit/miss and, on a miss, hands the key
                // back for the publish once the level completes.
                self.stats
                    .access
                    .record(AccessKind::Intermediate, key.len() as u64 * WORD_BYTES);
                match self.cache.lookup(d, key, &mut self.stats) {
                    Looked::Hit(entry) => {
                        return self.replay(d, &entry, sink, ctl);
                    }
                    Looked::Miss(key, token) => Some((key, token)),
                }
            }
            None => None,
        };
        self.compute(d, record_key, sink, ctl)
    }

    /// Cache hit: iterate the stored `(value, index)` list, re-opening each
    /// participating cursor directly at the stored index (paper Fig. 3,
    /// step 5: "read next z from cache").
    fn replay<S: SplitSpawn>(
        &mut self,
        d: usize,
        entry: &[(Value, Vec<u32>)],
        sink: &mut dyn ResultSink,
        ctl: &mut S,
    ) -> bool {
        let last = d + 1 == self.plan.arity();
        let parts = self.plan.atoms_at(d);
        for (v, positions) in entry {
            self.stats.access.record(
                AccessKind::Intermediate,
                (1 + positions.len()) as u64 * WORD_BYTES,
            );
            self.binding[d] = *v;
            if last {
                if !self.emit_result(sink) {
                    return false;
                }
            } else {
                for (i, &(a, _)) in parts.iter().enumerate() {
                    self.cursors[a].reopen_at(positions[i], *v, &mut self.stats.access);
                }
                let live = self.level(d + 1, sink, ctl);
                for &(a, _) in parts {
                    self.cursors[a].up();
                }
                if !live {
                    return false;
                }
            }
        }
        true
    }

    /// Standard leapfrog execution at depth `d`, optionally recording the
    /// matches for insertion into the cache once the level completes.
    fn compute<S: SplitSpawn>(
        &mut self,
        d: usize,
        record_key: Option<(Vec<Value>, u64)>,
        sink: &mut dyn ResultSink,
        ctl: &mut S,
    ) -> bool {
        // Open level d on every participant (clamped to the task's range
        // at its ranged depth, so shards never leapfrog outside their
        // slice).
        self.sup_at[d] = if d == self.range_depth {
            self.range_sup
        } else {
            None
        };
        let parts = self.plan.atoms_at(d);
        let ranged = d == self.range_depth && (self.range_min > 0 || self.range_sup.is_some());
        for (i, &(a, lvl)) in parts.iter().enumerate() {
            if lvl > 0 {
                self.stats.expand_ops += 1;
            }
            let opened = if ranged {
                self.cursors[a].open_range(self.range_min, self.range_sup, &mut self.stats.access)
            } else {
                self.cursors[a].open(&mut self.stats.access)
            };
            if !opened {
                for &(b, _) in &parts[..i] {
                    self.cursors[b].up();
                }
                return true;
            }
        }

        // A recorded level must observe every one of its matches —
        // donating its tail would publish a truncated entry whose
        // replays silently drop rows — so split polls are suppressed
        // while recording. (A demoted or mask-dropped spec computes like
        // plain LFTJ and splits freely.)
        let can_split = record_key.is_none();
        let mut live = true;
        let mut pending: Option<Vec<(Value, Vec<u32>)>> = record_key.as_ref().map(|_| Vec::new());
        // Recycle this depth's member vector (no per-node allocation).
        let mut lf = Leapfrog::new(std::mem::take(&mut self.members_at[d]));
        let mut m = lf.search(&mut self.cursors, &mut self.stats);
        while let Some(v) = m {
            self.binding[d] = v;
            if d == self.range_depth && B::GOVERNED && self.budget.poll().is_some() {
                // Polling at the task's top level before the (possibly
                // expensive) subtree visit bounds the overshoot past a
                // deadline by one value there.
                live = false;
                break;
            }
            if can_split && d <= ctl.depth_cap() {
                // Match-point split poll (paper §3.4 spawn-on-match): the
                // current value v stays with this shard. Only reachable
                // outside a cache replay, and a split never moves the
                // cache: entries are keyed by bindings alone, so both
                // halves keep hitting it.
                let (prefix, _) = self.binding.split_at(d);
                try_split_at(
                    self.plan,
                    &mut self.cursors,
                    &mut self.sup_at[d],
                    d,
                    prefix,
                    ctl,
                    &mut self.stats,
                );
            }
            if let Some(p) = pending.as_mut() {
                if self.config.entry_capacity.is_some_and(|cap| p.len() >= cap) {
                    // Insertion-buffer overflow: drop the partial entry.
                    self.stats.cache_overflows += 1;
                    pending = None;
                } else if B::GOVERNED && !self.budget.charge_intermediates(1) {
                    // Memory budget exhausted: the flag is tripped; drop
                    // the partial entry and wind down.
                    pending = None;
                    live = false;
                    break;
                } else {
                    let positions: Vec<u32> = parts
                        .iter()
                        .map(|&(a, _)| self.cursors[a].cache_pos())
                        .collect();
                    p.push((v, positions));
                }
            }
            let descended = if d + 1 == self.plan.arity() {
                self.emit_result(sink)
            } else {
                self.level(d + 1, sink, ctl)
            };
            if !descended {
                live = false;
                break;
            }
            m = lf.next(&mut self.cursors, &mut self.stats);
        }
        self.members_at[d] = lf.into_members();
        for &(a, _) in parts {
            self.cursors[a].up();
        }

        // The level is fully analyzed: commit the entry (paper §3.5). The
        // store applies its capacity policy (drop / evict / lose an
        // insert race) and the matching accounting. A budget-stopped
        // level never publishes: its match list is truncated and a replay
        // of it would silently drop rows from an un-cancelled rerun.
        if live {
            if let (Some((key, token)), Some(p)) = (record_key, pending) {
                self.cache.publish(d, key, token, p, &mut self.stats);
            }
        }
        // A split at this depth opened a continuation lane for the
        // donor's output *after* this subtree; adopt it now so that the
        // stream stays tuple-for-tuple sequential around the handoff.
        if let Some(lane) = ctl.take_switch(d) {
            sink.redirect_lane(lane);
        }
        live
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CollectSink, CountSink, Lftj};
    use triejax_query::patterns::{self, Pattern};
    use triejax_relation::Relation;

    fn catalog(edges: &[(u32, u32)]) -> Catalog {
        let mut c = Catalog::new();
        c.insert("G", Relation::from_pairs(edges.to_vec()));
        c
    }

    /// A small dense-ish graph exercising shared sub-joins.
    fn test_edges() -> Vec<(u32, u32)> {
        vec![
            (0, 1),
            (1, 2),
            (2, 0),
            (2, 3),
            (3, 1),
            (0, 2),
            (3, 0),
            (1, 3),
            (4, 1),
            (2, 4),
        ]
    }

    #[test]
    fn agrees_with_lftj_on_every_paper_pattern() {
        let c = catalog(&test_edges());
        for p in Pattern::PAPER {
            let plan = CompiledQuery::compile(&p.query()).unwrap();
            let mut a = CollectSink::new();
            let mut b = CollectSink::new();
            Lftj::new().execute(&plan, &c, &mut a).unwrap();
            Ctj::new().execute(&plan, &c, &mut b).unwrap();
            assert_eq!(a.into_sorted(), b.into_sorted(), "{p}");
        }
    }

    #[test]
    fn path3_cache_hits_when_y_is_shared() {
        // x-parents 0 and 3 both reach y=1.
        let c = catalog(&[(0, 1), (3, 1), (1, 5), (1, 6)]);
        let plan = CompiledQuery::compile(&patterns::path3()).unwrap();
        let mut sink = CountSink::default();
        let stats = Ctj::new().execute(&plan, &c, &mut sink).unwrap();
        assert_eq!(sink.count(), 4);
        assert_eq!(stats.cache_hits, 1);
        assert_eq!(stats.cache_misses, 1);
        // Two z-values cached for y=1.
        assert_eq!(stats.intermediates, 2);
    }

    #[test]
    fn cycle3_never_touches_the_cache() {
        let c = catalog(&test_edges());
        let plan = CompiledQuery::compile(&patterns::cycle3()).unwrap();
        let mut sink = CountSink::default();
        let stats = Ctj::new().execute(&plan, &c, &mut sink).unwrap();
        assert_eq!(stats.cache_hits + stats.cache_misses, 0);
        assert_eq!(stats.intermediates, 0);
    }

    #[test]
    fn clique4_never_touches_the_cache() {
        let c = catalog(&test_edges());
        let plan = CompiledQuery::compile(&patterns::clique4()).unwrap();
        let mut sink = CountSink::default();
        let stats = Ctj::new().execute(&plan, &c, &mut sink).unwrap();
        assert_eq!(stats.cache_hits + stats.cache_misses, 0);
    }

    #[test]
    fn entry_capacity_overflow_discards_but_stays_correct() {
        let c = catalog(&test_edges());
        let plan = CompiledQuery::compile(&patterns::path4()).unwrap();
        let mut unbounded = CollectSink::new();
        let s1 = Ctj::new().execute(&plan, &c, &mut unbounded).unwrap();
        let mut tiny = CollectSink::new();
        let cfg = CtjConfig {
            entry_capacity: Some(1),
            max_entries: None,
            adaptive: false,
        };
        let s2 = Ctj::with_config(cfg).execute(&plan, &c, &mut tiny).unwrap();
        assert_eq!(unbounded.into_sorted(), tiny.into_sorted());
        assert!(s2.cache_overflows > 0);
        assert!(s2.intermediates <= s1.intermediates);
    }

    #[test]
    fn max_entries_zero_disables_caching() {
        let c = catalog(&test_edges());
        let plan = CompiledQuery::compile(&patterns::path3()).unwrap();
        let cfg = CtjConfig {
            entry_capacity: None,
            max_entries: Some(0),
            adaptive: false,
        };
        let mut sink = CountSink::default();
        let stats = Ctj::with_config(cfg).execute(&plan, &c, &mut sink).unwrap();
        assert_eq!(stats.cache_hits, 0);
        let mut reference = CountSink::default();
        Lftj::new().execute(&plan, &c, &mut reference).unwrap();
        assert_eq!(sink.count(), reference.count());
    }

    #[test]
    fn ctj_does_fewer_lub_ops_than_lftj_when_cache_helps() {
        // Heavily shared y values make caching pay off.
        let mut edges = Vec::new();
        for x in 0..20u32 {
            edges.push((x, 100));
        }
        for z in 200..220u32 {
            edges.push((100, z));
        }
        let c = catalog(&edges);
        let plan = CompiledQuery::compile(&patterns::path3()).unwrap();
        let mut s1 = CountSink::default();
        let lftj = Lftj::new().execute(&plan, &c, &mut s1).unwrap();
        let mut s2 = CountSink::default();
        let ctj = Ctj::new().execute(&plan, &c, &mut s2).unwrap();
        assert_eq!(s1.count(), s2.count());
        assert!(ctj.cache_hits == 19);
        assert!(
            ctj.match_ops < lftj.match_ops,
            "ctj {} vs lftj {}",
            ctj.match_ops,
            lftj.match_ops
        );
    }

    #[test]
    fn budgeted_ctj_row_limit_is_an_exact_prefix() {
        use std::sync::Arc;
        use triejax_exec::{BudgetHandle, CancelReason, RunBudget};

        let c = catalog(&test_edges());
        let plan = CompiledQuery::compile(&patterns::path3()).unwrap();
        let tries = TrieSet::build(&plan, &c).unwrap();

        let mut full = CollectSink::new();
        CtjDriver::<Counting>::new(&plan, &tries, CtjConfig::default())
            .unwrap()
            .run(&mut full);
        assert!(full.tuples().len() > 3);

        let shared = Arc::new(RunBudget::new().with_row_limit(3));
        let mut capped = CollectSink::new();
        let mut driver = CtjDriver::<Counting, LocalPjr, BudgetHandle>::with_store_budget(
            &plan,
            &tries,
            CtjConfig::default(),
            LocalPjr::new(CtjConfig::default()),
            BudgetHandle::driving(Arc::clone(&shared)),
        )
        .unwrap();
        driver.run(&mut capped);
        assert_eq!(capped.tuples(), &full.tuples()[..3]);
        assert_eq!(driver.stats.results, 3);
        assert_eq!(shared.cancelled(), Some(CancelReason::RowLimit));
    }

    #[test]
    fn intermediate_budget_stops_ctj_with_a_prefix() {
        use std::sync::Arc;
        use triejax_exec::{BudgetHandle, CancelReason, RunBudget};

        // Heavily shared y values: lots of cached intermediate tuples.
        let mut edges = Vec::new();
        for x in 0..20u32 {
            edges.push((x, 100));
        }
        for z in 200..220u32 {
            edges.push((100, z));
        }
        let c = catalog(&edges);
        let plan = CompiledQuery::compile(&patterns::path3()).unwrap();
        let tries = TrieSet::build(&plan, &c).unwrap();

        let mut full = CollectSink::new();
        CtjDriver::<Counting>::new(&plan, &tries, CtjConfig::default())
            .unwrap()
            .run(&mut full);

        let shared = Arc::new(RunBudget::new().with_intermediate_limit(5));
        let mut capped = CollectSink::new();
        let mut driver = CtjDriver::<Counting, LocalPjr, BudgetHandle>::with_store_budget(
            &plan,
            &tries,
            CtjConfig::default(),
            LocalPjr::new(CtjConfig::default()),
            BudgetHandle::driving(Arc::clone(&shared)),
        )
        .unwrap();
        driver.run(&mut capped);
        assert_eq!(shared.cancelled(), Some(CancelReason::MemoryBudget));
        assert!(
            full.tuples().starts_with(capped.tuples()),
            "delivered rows must be a prefix"
        );
        assert!(capped.tuples().len() < full.tuples().len());
    }

    #[test]
    fn path4_uses_both_cache_specs() {
        let c = catalog(&test_edges());
        let plan = CompiledQuery::compile(&patterns::path4()).unwrap();
        let mut sink = CountSink::default();
        let stats = Ctj::new().execute(&plan, &c, &mut sink).unwrap();
        assert!(stats.cache_hits > 0, "expected hits on z and w caches");
    }
}
