use triejax_exec::{Budget, NoBudget};
use triejax_query::CompiledQuery;
use triejax_relation::{AccessKind, Counting, JoinCursor, Tally, TrieCursor, Value, WORD_BYTES};

use crate::cache::{LocalPjr, Looked, PjrStore};
use crate::engine::head_slots;
use crate::shard::{try_split_root, NoSplit, SplitSpawn};
use crate::sink::BatchEmitter;
use crate::viewset::{plan_touches_delta, CursorSet, MergeSet};
use crate::{Catalog, DeltaMap, EngineStats, JoinEngine, JoinError, Leapfrog, ResultSink, TrieSet};

/// Configuration of the software partial-join-result cache.
///
/// Both limits default to unbounded, matching CTJ's use of "the available
/// system memory" (paper §2.2); the hardware PJR cache in `triejax` has its
/// own fixed SRAM geometry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CtjConfig {
    /// Maximum `(value, indexes)` pairs per cache entry; an entry exceeding
    /// this while being filled is discarded, mirroring the hardware
    /// insertion-buffer overflow rule (paper §3.5).
    pub entry_capacity: Option<usize>,
    /// Maximum number of live cache entries. For sequential [`Ctj`] this
    /// bounds the worker-local store, which *drops* further insertions;
    /// for [`crate::ParCtj`] it is the total capacity of the shared
    /// sharded cache, which *evicts* (FIFO per stripe) to stay within it.
    pub max_entries: Option<usize>,
}

/// Cached TrieJoin (Kalinsky, Etsion, Kimelfeld — EDBT'17): LeapFrog
/// TrieJoin extended with a partial-join-result cache, the algorithm
/// TrieJax implements in hardware (paper Figure 4).
///
/// At every depth with a valid [`triejax_query::CacheSpec`], the engine
/// keys the list of matching `(value, index)` pairs by the bindings of the
/// spec's key depths. A later visit with the same key bindings replays the
/// list instead of recomputing the leapfrog intersection.
///
/// # Example
///
/// ```
/// use triejax_join::{Catalog, CountSink, Ctj, JoinEngine};
/// use triejax_query::{patterns, CompiledQuery};
/// use triejax_relation::Relation;
///
/// // Two x-parents (0 and 3) share y=1, so the z-list of y=1 is cached
/// // once and replayed once.
/// let mut catalog = Catalog::new();
/// catalog.insert("G", Relation::from_pairs(vec![(0, 1), (3, 1), (1, 5), (1, 6)]));
/// let plan = CompiledQuery::compile(&patterns::path3())?;
/// let mut sink = CountSink::default();
/// let stats = Ctj::default().execute(&plan, &catalog, &mut sink)?;
/// assert_eq!(sink.count(), 4);
/// assert_eq!(stats.cache_hits, 1);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct Ctj {
    config: CtjConfig,
}

impl Ctj {
    /// Engine with unbounded cache; identical to `Default::default()`.
    pub fn new() -> Self {
        Self::default()
    }

    /// Engine with an explicit cache configuration.
    pub fn with_config(config: CtjConfig) -> Self {
        Ctj { config }
    }

    /// The active configuration.
    pub fn config(&self) -> CtjConfig {
        self.config
    }

    /// Runs the query with an explicit [`Tally`] choice; see
    /// [`crate::Lftj::run_tallied`] for the counting/fast trade-off.
    ///
    /// # Errors
    ///
    /// Returns a [`JoinError`] when the catalog is missing a relation or a
    /// relation's arity mismatches its atom.
    pub fn run_tallied<T: Tally>(
        &mut self,
        plan: &CompiledQuery,
        catalog: &Catalog,
        sink: &mut dyn ResultSink,
    ) -> Result<EngineStats<T>, JoinError> {
        let tries = TrieSet::build(plan, catalog)?;
        let mut driver = CtjDriver::new(plan, &tries, self.config)?;
        driver.run(sink);
        Ok(driver.stats)
    }

    /// Runs the query with the pending mutations in `deltas` folded in;
    /// see [`crate::Lftj::run_tallied_with`] for the merge semantics and
    /// the frozen fast path. Partial-join-result caching works unchanged
    /// on merged views: entries are keyed by bindings alone, and the
    /// merged relation is just another (virtual) relation instance.
    ///
    /// # Errors
    ///
    /// As [`run_tallied`](Self::run_tallied), plus an arity mismatch
    /// between a delta and its atom.
    pub fn run_tallied_with<T: Tally>(
        &mut self,
        plan: &CompiledQuery,
        catalog: &Catalog,
        deltas: &DeltaMap,
        sink: &mut dyn ResultSink,
    ) -> Result<EngineStats<T>, JoinError> {
        if !plan_touches_delta(plan, deltas) {
            return self.run_tallied(plan, catalog, sink);
        }
        let set = MergeSet::build(plan, catalog, deltas)?;
        let mut driver = CtjDriver::<T, LocalPjr, NoBudget, _>::new(plan, &set, self.config)?;
        driver.run(sink);
        Ok(driver.stats)
    }
}

impl JoinEngine for Ctj {
    fn name(&self) -> &'static str {
        "ctj"
    }

    fn execute(
        &mut self,
        plan: &CompiledQuery,
        catalog: &Catalog,
        sink: &mut dyn ResultSink,
    ) -> Result<EngineStats, JoinError> {
        self.run_tallied::<Counting>(plan, catalog, sink)
    }
}

/// The CTJ backtracking driver, shared by the sequential [`Ctj`] engine
/// and the per-worker drivers of [`crate::ParCtj`], generic over the
/// [`PjrStore`] that holds (and accounts for) the partial-join-result
/// cache: sequential CTJ owns a [`LocalPjr`], while every `ParCtj` worker
/// drives a handle onto one [`crate::cache::SharedPjrCache`].
///
/// Cache entries are keyed by `(depth, key bindings)` only — never by the
/// root range or the executing worker — which is sound because a valid
/// [`triejax_query::CacheSpec`] guarantees the memoized match list depends
/// on nothing but the key bindings. Partial-join results therefore replay
/// *across root ranges* (and, with the shared store, across workers).
///
/// Like the LFTJ driver, the CTJ driver is generic over a [`Budget`]:
/// [`NoBudget`] (the default) compiles every governance check away, a
/// [`triejax_exec::BudgetHandle`] polls at root advances, charges rows at
/// emit/replay points, and charges every recorded cache-entry tuple
/// against the intermediate budget. A budget-stopped level never
/// publishes its partially recorded entry.
pub(crate) struct CtjDriver<
    'a,
    T: Tally,
    C: PjrStore = LocalPjr,
    B: Budget = NoBudget,
    Cur: JoinCursor = TrieCursor<'a>,
> {
    plan: &'a CompiledQuery,
    config: CtjConfig,
    cursors: Vec<Cur>,
    binding: Vec<Value>,
    emit: Vec<Value>,
    slots: Vec<usize>,
    emitter: BatchEmitter,
    /// Per depth: participating cursor indices, preallocated once so the
    /// recursive driver never allocates per node.
    members_at: Vec<Vec<usize>>,
    cache: C,
    root_min: Value,
    root_sup: Option<Value>,
    budget: B,
    pub(crate) stats: EngineStats<T>,
}

impl<'a, T: Tally, Cur: JoinCursor> CtjDriver<'a, T, LocalPjr, NoBudget, Cur> {
    /// Driver with a worker-local store (sequential CTJ semantics).
    pub(crate) fn new<S: CursorSet<'a, Cur = Cur>>(
        plan: &'a CompiledQuery,
        set: &'a S,
        config: CtjConfig,
    ) -> Result<Self, JoinError> {
        Self::with_store(plan, set, config, LocalPjr::new(config))
    }
}

impl<'a, T: Tally, C: PjrStore, Cur: JoinCursor> CtjDriver<'a, T, C, NoBudget, Cur> {
    /// Driver emitting into `cache` — any [`PjrStore`], in particular one
    /// worker's handle onto the shared sharded cache.
    pub(crate) fn with_store<S: CursorSet<'a, Cur = Cur>>(
        plan: &'a CompiledQuery,
        set: &'a S,
        config: CtjConfig,
        cache: C,
    ) -> Result<Self, JoinError> {
        Self::with_store_budget(plan, set, config, cache, NoBudget)
    }
}

impl<'a, T: Tally, C: PjrStore, B: Budget, Cur: JoinCursor> CtjDriver<'a, T, C, B, Cur> {
    /// Driver over an explicit store *and* budget (see the type docs).
    pub(crate) fn with_store_budget<S: CursorSet<'a, Cur = Cur>>(
        plan: &'a CompiledQuery,
        set: &'a S,
        config: CtjConfig,
        cache: C,
        budget: B,
    ) -> Result<Self, JoinError> {
        let cursors = (0..plan.atom_plans().len())
            .map(|i| set.cursor(i))
            .collect();
        let n = plan.arity();
        let members_at = (0..n)
            .map(|d| plan.atoms_at(d).iter().map(|&(a, _)| a).collect())
            .collect();
        Ok(CtjDriver {
            plan,
            config,
            cursors,
            binding: vec![0; n],
            emit: vec![0; n],
            slots: head_slots(plan)?,
            emitter: BatchEmitter::new(n),
            members_at,
            cache,
            root_min: 0,
            root_sup: None,
            budget,
            stats: EngineStats::default(),
        })
    }

    /// Emits tuples straight through to the sink instead of batching —
    /// for sinks that batch themselves (the parallel engines' per-shard
    /// [`crate::ShardSink`]s).
    pub(crate) fn emit_passthrough(&mut self) {
        self.emitter.passthrough();
    }

    /// Runs the full join.
    pub(crate) fn run(&mut self, sink: &mut dyn ResultSink) {
        self.run_range(0, None, sink);
    }

    /// Runs one root-range shard `[root_min, root_sup)`, keeping the cache
    /// (and accumulated stats) across calls.
    pub(crate) fn run_range(
        &mut self,
        root_min: Value,
        root_sup: Option<Value>,
        sink: &mut dyn ResultSink,
    ) {
        self.run_range_split(root_min, root_sup, sink, &mut NoSplit);
    }

    /// Like [`run_range`](Self::run_range), with a split controller
    /// polled at every root-level advance (see
    /// [`crate::shard::try_split_root`]); [`NoSplit`] monomorphizes the
    /// polling away for the sequential paths.
    pub(crate) fn run_range_split<S: SplitSpawn>(
        &mut self,
        root_min: Value,
        root_sup: Option<Value>,
        sink: &mut dyn ResultSink,
        ctl: &mut S,
    ) {
        self.root_min = root_min;
        self.root_sup = root_sup;
        self.level(0, sink, ctl);
        self.emitter.flush(sink);
    }

    /// Emits the current binding; returns `false` when the budget refused
    /// the row and the driver must stop.
    fn emit_result(&mut self, sink: &mut dyn ResultSink) -> bool {
        if B::GOVERNED && !self.budget.charge_row() {
            return false;
        }
        for d in 0..self.binding.len() {
            self.emit[self.slots[d]] = self.binding[d];
        }
        self.emitter.push(&self.emit, sink);
        self.stats.results += 1;
        self.stats
            .access
            .record(AccessKind::ResultWrite, self.emit.len() as u64 * WORD_BYTES);
        true
    }

    /// Returns `false` when the budget stopped the run at this level or
    /// below; cursors are unwound normally either way.
    fn level<S: SplitSpawn>(&mut self, d: usize, sink: &mut dyn ResultSink, ctl: &mut S) -> bool {
        let record_key = match self.plan.cache_spec_at(d) {
            Some(spec) => {
                let key: Vec<Value> = spec
                    .key_depths()
                    .iter()
                    .map(|&kd| self.binding[kd])
                    .collect();
                // Cache lookup: hash probe over the key words. The store
                // accounts the hit/miss and, on a miss, hands the key
                // back for the publish once the level completes.
                self.stats
                    .access
                    .record(AccessKind::Intermediate, key.len() as u64 * WORD_BYTES);
                match self.cache.lookup(d, key, &mut self.stats) {
                    Looked::Hit(entry) => {
                        return self.replay(d, &entry, sink, ctl);
                    }
                    Looked::Miss(key, token) => Some((key, token)),
                }
            }
            None => None,
        };
        self.compute(d, record_key, sink, ctl)
    }

    /// Cache hit: iterate the stored `(value, index)` list, re-opening each
    /// participating cursor directly at the stored index (paper Fig. 3,
    /// step 5: "read next z from cache").
    fn replay<S: SplitSpawn>(
        &mut self,
        d: usize,
        entry: &[(Value, Vec<u32>)],
        sink: &mut dyn ResultSink,
        ctl: &mut S,
    ) -> bool {
        let last = d + 1 == self.plan.arity();
        let parts = self.plan.atoms_at(d);
        for (v, positions) in entry {
            self.stats.access.record(
                AccessKind::Intermediate,
                (1 + positions.len()) as u64 * WORD_BYTES,
            );
            self.binding[d] = *v;
            if last {
                if !self.emit_result(sink) {
                    return false;
                }
            } else {
                for (i, &(a, _)) in parts.iter().enumerate() {
                    self.cursors[a].reopen_at(positions[i], *v, &mut self.stats.access);
                }
                let live = self.level(d + 1, sink, ctl);
                for &(a, _) in parts {
                    self.cursors[a].up();
                }
                if !live {
                    return false;
                }
            }
        }
        true
    }

    /// Standard leapfrog execution at depth `d`, optionally recording the
    /// matches for insertion into the cache once the level completes.
    fn compute<S: SplitSpawn>(
        &mut self,
        d: usize,
        record_key: Option<(Vec<Value>, u64)>,
        sink: &mut dyn ResultSink,
        ctl: &mut S,
    ) -> bool {
        // Open level d on every participant (clamped to the root range at
        // depth 0, so shards never leapfrog outside their slice).
        let parts = self.plan.atoms_at(d);
        let ranged_root = d == 0 && (self.root_min > 0 || self.root_sup.is_some());
        for (i, &(a, lvl)) in parts.iter().enumerate() {
            if lvl > 0 {
                self.stats.expand_ops += 1;
            }
            let opened = if ranged_root {
                self.cursors[a].open_root_range(
                    self.root_min,
                    self.root_sup,
                    &mut self.stats.access,
                )
            } else {
                self.cursors[a].open(&mut self.stats.access)
            };
            if !opened {
                for &(b, _) in &parts[..i] {
                    self.cursors[b].up();
                }
                return true;
            }
        }

        let mut live = true;
        let mut pending: Option<Vec<(Value, Vec<u32>)>> = record_key.as_ref().map(|_| Vec::new());
        // Recycle this depth's member vector (no per-node allocation).
        let mut lf = Leapfrog::new(std::mem::take(&mut self.members_at[d]));
        let mut m = lf.search(&mut self.cursors, &mut self.stats);
        while let Some(v) = m {
            self.binding[d] = v;
            if d == 0 {
                // Root-level advance: the budget poll and split points
                // (the current value v stays with this shard). Only
                // reachable outside a cache replay — a cacheable depth is
                // never depth 0, and a split never moves the cache:
                // entries are keyed by bindings alone, so both halves
                // keep hitting it.
                if B::GOVERNED && self.budget.poll().is_some() {
                    live = false;
                    break;
                }
                try_split_root(
                    self.plan,
                    &mut self.cursors,
                    &mut self.root_sup,
                    ctl,
                    &mut self.stats,
                );
            }
            if let Some(p) = pending.as_mut() {
                if self.config.entry_capacity.is_some_and(|cap| p.len() >= cap) {
                    // Insertion-buffer overflow: drop the partial entry.
                    self.stats.cache_overflows += 1;
                    pending = None;
                } else if B::GOVERNED && !self.budget.charge_intermediates(1) {
                    // Memory budget exhausted: the flag is tripped; drop
                    // the partial entry and wind down.
                    pending = None;
                    live = false;
                    break;
                } else {
                    let positions: Vec<u32> = parts
                        .iter()
                        .map(|&(a, _)| self.cursors[a].cache_pos())
                        .collect();
                    p.push((v, positions));
                }
            }
            let descended = if d + 1 == self.plan.arity() {
                self.emit_result(sink)
            } else {
                self.level(d + 1, sink, ctl)
            };
            if !descended {
                live = false;
                break;
            }
            m = lf.next(&mut self.cursors, &mut self.stats);
        }
        self.members_at[d] = lf.into_members();
        for &(a, _) in parts {
            self.cursors[a].up();
        }

        // The level is fully analyzed: commit the entry (paper §3.5). The
        // store applies its capacity policy (drop / evict / lose an
        // insert race) and the matching accounting. A budget-stopped
        // level never publishes: its match list is truncated and a replay
        // of it would silently drop rows from an un-cancelled rerun.
        if live {
            if let (Some((key, token)), Some(p)) = (record_key, pending) {
                self.cache.publish(d, key, token, p, &mut self.stats);
            }
        }
        live
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CollectSink, CountSink, Lftj};
    use triejax_query::patterns::{self, Pattern};
    use triejax_relation::Relation;

    fn catalog(edges: &[(u32, u32)]) -> Catalog {
        let mut c = Catalog::new();
        c.insert("G", Relation::from_pairs(edges.to_vec()));
        c
    }

    /// A small dense-ish graph exercising shared sub-joins.
    fn test_edges() -> Vec<(u32, u32)> {
        vec![
            (0, 1),
            (1, 2),
            (2, 0),
            (2, 3),
            (3, 1),
            (0, 2),
            (3, 0),
            (1, 3),
            (4, 1),
            (2, 4),
        ]
    }

    #[test]
    fn agrees_with_lftj_on_every_paper_pattern() {
        let c = catalog(&test_edges());
        for p in Pattern::PAPER {
            let plan = CompiledQuery::compile(&p.query()).unwrap();
            let mut a = CollectSink::new();
            let mut b = CollectSink::new();
            Lftj::new().execute(&plan, &c, &mut a).unwrap();
            Ctj::new().execute(&plan, &c, &mut b).unwrap();
            assert_eq!(a.into_sorted(), b.into_sorted(), "{p}");
        }
    }

    #[test]
    fn path3_cache_hits_when_y_is_shared() {
        // x-parents 0 and 3 both reach y=1.
        let c = catalog(&[(0, 1), (3, 1), (1, 5), (1, 6)]);
        let plan = CompiledQuery::compile(&patterns::path3()).unwrap();
        let mut sink = CountSink::default();
        let stats = Ctj::new().execute(&plan, &c, &mut sink).unwrap();
        assert_eq!(sink.count(), 4);
        assert_eq!(stats.cache_hits, 1);
        assert_eq!(stats.cache_misses, 1);
        // Two z-values cached for y=1.
        assert_eq!(stats.intermediates, 2);
    }

    #[test]
    fn cycle3_never_touches_the_cache() {
        let c = catalog(&test_edges());
        let plan = CompiledQuery::compile(&patterns::cycle3()).unwrap();
        let mut sink = CountSink::default();
        let stats = Ctj::new().execute(&plan, &c, &mut sink).unwrap();
        assert_eq!(stats.cache_hits + stats.cache_misses, 0);
        assert_eq!(stats.intermediates, 0);
    }

    #[test]
    fn clique4_never_touches_the_cache() {
        let c = catalog(&test_edges());
        let plan = CompiledQuery::compile(&patterns::clique4()).unwrap();
        let mut sink = CountSink::default();
        let stats = Ctj::new().execute(&plan, &c, &mut sink).unwrap();
        assert_eq!(stats.cache_hits + stats.cache_misses, 0);
    }

    #[test]
    fn entry_capacity_overflow_discards_but_stays_correct() {
        let c = catalog(&test_edges());
        let plan = CompiledQuery::compile(&patterns::path4()).unwrap();
        let mut unbounded = CollectSink::new();
        let s1 = Ctj::new().execute(&plan, &c, &mut unbounded).unwrap();
        let mut tiny = CollectSink::new();
        let cfg = CtjConfig {
            entry_capacity: Some(1),
            max_entries: None,
        };
        let s2 = Ctj::with_config(cfg).execute(&plan, &c, &mut tiny).unwrap();
        assert_eq!(unbounded.into_sorted(), tiny.into_sorted());
        assert!(s2.cache_overflows > 0);
        assert!(s2.intermediates <= s1.intermediates);
    }

    #[test]
    fn max_entries_zero_disables_caching() {
        let c = catalog(&test_edges());
        let plan = CompiledQuery::compile(&patterns::path3()).unwrap();
        let cfg = CtjConfig {
            entry_capacity: None,
            max_entries: Some(0),
        };
        let mut sink = CountSink::default();
        let stats = Ctj::with_config(cfg).execute(&plan, &c, &mut sink).unwrap();
        assert_eq!(stats.cache_hits, 0);
        let mut reference = CountSink::default();
        Lftj::new().execute(&plan, &c, &mut reference).unwrap();
        assert_eq!(sink.count(), reference.count());
    }

    #[test]
    fn ctj_does_fewer_lub_ops_than_lftj_when_cache_helps() {
        // Heavily shared y values make caching pay off.
        let mut edges = Vec::new();
        for x in 0..20u32 {
            edges.push((x, 100));
        }
        for z in 200..220u32 {
            edges.push((100, z));
        }
        let c = catalog(&edges);
        let plan = CompiledQuery::compile(&patterns::path3()).unwrap();
        let mut s1 = CountSink::default();
        let lftj = Lftj::new().execute(&plan, &c, &mut s1).unwrap();
        let mut s2 = CountSink::default();
        let ctj = Ctj::new().execute(&plan, &c, &mut s2).unwrap();
        assert_eq!(s1.count(), s2.count());
        assert!(ctj.cache_hits == 19);
        assert!(
            ctj.match_ops < lftj.match_ops,
            "ctj {} vs lftj {}",
            ctj.match_ops,
            lftj.match_ops
        );
    }

    #[test]
    fn budgeted_ctj_row_limit_is_an_exact_prefix() {
        use std::sync::Arc;
        use triejax_exec::{BudgetHandle, CancelReason, RunBudget};

        let c = catalog(&test_edges());
        let plan = CompiledQuery::compile(&patterns::path3()).unwrap();
        let tries = TrieSet::build(&plan, &c).unwrap();

        let mut full = CollectSink::new();
        CtjDriver::<Counting>::new(&plan, &tries, CtjConfig::default())
            .unwrap()
            .run(&mut full);
        assert!(full.tuples().len() > 3);

        let shared = Arc::new(RunBudget::new().with_row_limit(3));
        let mut capped = CollectSink::new();
        let mut driver = CtjDriver::<Counting, LocalPjr, BudgetHandle>::with_store_budget(
            &plan,
            &tries,
            CtjConfig::default(),
            LocalPjr::new(CtjConfig::default()),
            BudgetHandle::driving(Arc::clone(&shared)),
        )
        .unwrap();
        driver.run(&mut capped);
        assert_eq!(capped.tuples(), &full.tuples()[..3]);
        assert_eq!(driver.stats.results, 3);
        assert_eq!(shared.cancelled(), Some(CancelReason::RowLimit));
    }

    #[test]
    fn intermediate_budget_stops_ctj_with_a_prefix() {
        use std::sync::Arc;
        use triejax_exec::{BudgetHandle, CancelReason, RunBudget};

        // Heavily shared y values: lots of cached intermediate tuples.
        let mut edges = Vec::new();
        for x in 0..20u32 {
            edges.push((x, 100));
        }
        for z in 200..220u32 {
            edges.push((100, z));
        }
        let c = catalog(&edges);
        let plan = CompiledQuery::compile(&patterns::path3()).unwrap();
        let tries = TrieSet::build(&plan, &c).unwrap();

        let mut full = CollectSink::new();
        CtjDriver::<Counting>::new(&plan, &tries, CtjConfig::default())
            .unwrap()
            .run(&mut full);

        let shared = Arc::new(RunBudget::new().with_intermediate_limit(5));
        let mut capped = CollectSink::new();
        let mut driver = CtjDriver::<Counting, LocalPjr, BudgetHandle>::with_store_budget(
            &plan,
            &tries,
            CtjConfig::default(),
            LocalPjr::new(CtjConfig::default()),
            BudgetHandle::driving(Arc::clone(&shared)),
        )
        .unwrap();
        driver.run(&mut capped);
        assert_eq!(shared.cancelled(), Some(CancelReason::MemoryBudget));
        assert!(
            full.tuples().starts_with(capped.tuples()),
            "delivered rows must be a prefix"
        );
        assert!(capped.tuples().len() < full.tuples().len());
    }

    #[test]
    fn path4_uses_both_cache_specs() {
        let c = catalog(&test_edges());
        let plan = CompiledQuery::compile(&patterns::path4()).unwrap();
        let mut sink = CountSink::default();
        let stats = Ctj::new().execute(&plan, &c, &mut sink).unwrap();
        assert!(stats.cache_hits > 0, "expected hits on z and w caches");
    }
}
