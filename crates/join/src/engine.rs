use triejax_query::CompiledQuery;

use crate::{Catalog, EngineStats, JoinError, ResultSink};

/// A join engine: executes a compiled query against a catalog, streaming
/// result tuples (in head-variable order) into a sink and reporting its
/// work in [`EngineStats`].
///
/// Every engine in this crate implements the trait, so harness code can
/// swap algorithms behind one interface:
///
/// ```
/// use triejax_join::{Catalog, CountSink, GenericJoin, JoinEngine, Lftj, PairwiseHash};
/// use triejax_query::{patterns, CompiledQuery};
/// use triejax_relation::Relation;
///
/// let mut catalog = Catalog::new();
/// catalog.insert("G", Relation::from_pairs(vec![(0, 1), (1, 2), (2, 0)]));
/// let plan = CompiledQuery::compile(&patterns::cycle3())?;
///
/// let engines: Vec<Box<dyn JoinEngine>> = vec![
///     Box::new(Lftj::default()),
///     Box::new(GenericJoin::default()),
///     Box::new(PairwiseHash::default()),
/// ];
/// for mut e in engines {
///     let mut sink = CountSink::default();
///     e.execute(&plan, &catalog, &mut sink)?;
///     assert_eq!(sink.count(), 3); // the one triangle, three rotations
/// }
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub trait JoinEngine {
    /// Short stable identifier, e.g. `"lftj"` or `"ctj"`.
    fn name(&self) -> &'static str;

    /// Runs the query to completion.
    ///
    /// # Errors
    ///
    /// Returns a [`JoinError`] when the catalog is missing a relation or a
    /// relation's arity mismatches its atom.
    fn execute(
        &mut self,
        plan: &CompiledQuery,
        catalog: &Catalog,
        sink: &mut dyn ResultSink,
    ) -> Result<EngineStats, JoinError>;
}

/// Maps evaluation depth to the head slot each bound value belongs to.
///
/// # Errors
///
/// Returns [`JoinError::Plan`] when some order variable has no head slot —
/// a projected query (see `triejax_query::QueryBuilder::build_projected`),
/// which the full-join engines cannot emit.
pub(crate) fn head_slots(plan: &CompiledQuery) -> Result<Vec<usize>, JoinError> {
    let head = plan.query().head();
    plan.order()
        .iter()
        .map(|v| {
            head.iter()
                .position(|h| h == v)
                .ok_or_else(|| JoinError::Plan {
                    detail: format!(
                        "variable {} is projected away from the head; \
                         this engine only emits full joins",
                        plan.query().var_name(*v)
                    ),
                })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use triejax_query::patterns;

    #[test]
    fn head_slots_invert_the_order() {
        let q = patterns::path3();
        let plan = CompiledQuery::compile_with_order(&q, vec![2, 0, 1]).unwrap();
        // depth 0 binds z (head slot 2), depth 1 binds x (slot 0), ...
        assert_eq!(head_slots(&plan).unwrap(), vec![2, 0, 1]);
    }

    #[test]
    fn projected_plans_are_a_plan_error_not_a_panic() {
        let q = triejax_query::Query::builder("pairs")
            .head(["x", "z"])
            .atom("G", ["x", "y"])
            .atom("G", ["y", "z"])
            .build_projected()
            .unwrap();
        let plan = CompiledQuery::compile(&q).unwrap();
        let err = head_slots(&plan).unwrap_err();
        assert!(matches!(err, JoinError::Plan { .. }));
        assert!(err.to_string().contains('y'), "{err}");
    }
}
