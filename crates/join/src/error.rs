use std::error::Error;
use std::fmt;

/// Errors raised while executing a join.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum JoinError {
    /// The catalog holds no relation with this name.
    MissingRelation {
        /// Name requested by the query atom.
        name: String,
    },
    /// A catalog relation's arity differs from its atom's arity.
    ArityMismatch {
        /// Relation name.
        name: String,
        /// Arity declared by the atom.
        atom_arity: usize,
        /// Arity of the stored relation.
        relation_arity: usize,
    },
    /// The compiled plan asks for something this engine cannot execute
    /// (e.g. a projected head, which the full-join engines do not emit).
    Plan {
        /// What the engine cannot do.
        detail: String,
    },
}

impl fmt::Display for JoinError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JoinError::MissingRelation { name } => {
                write!(f, "catalog has no relation named {name}")
            }
            JoinError::ArityMismatch {
                name,
                atom_arity,
                relation_arity,
            } => write!(
                f,
                "relation {name} has arity {relation_arity} but the atom expects {atom_arity}"
            ),
            JoinError::Plan { detail } => write!(f, "plan not executable: {detail}"),
        }
    }
}

impl Error for JoinError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = JoinError::MissingRelation { name: "G".into() };
        assert!(e.to_string().contains('G'));
        let e = JoinError::ArityMismatch {
            name: "G".into(),
            atom_arity: 2,
            relation_arity: 3,
        };
        assert!(e.to_string().contains('2') && e.to_string().contains('3'));
        let e = JoinError::Plan {
            detail: "projected head".into(),
        };
        assert!(e.to_string().contains("projected head"));
    }
}
