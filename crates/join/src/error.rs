use std::error::Error;
use std::fmt;

use triejax_exec::CancelReason;

use crate::stats::EngineStats;

/// Errors raised while executing a join.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum JoinError {
    /// The catalog holds no relation with this name.
    MissingRelation {
        /// Name requested by the query atom.
        name: String,
    },
    /// A catalog relation's arity differs from its atom's arity.
    ArityMismatch {
        /// Relation name.
        name: String,
        /// Arity declared by the atom.
        atom_arity: usize,
        /// Arity of the stored relation.
        relation_arity: usize,
    },
    /// The compiled plan asks for something this engine cannot execute
    /// (e.g. a projected head, which the full-join engines do not emit).
    Plan {
        /// What the engine cannot do.
        detail: String,
    },
    /// The run was cancelled before completing — a configured budget
    /// tripped (deadline, row limit, intermediate-result limit) or an
    /// external [`triejax_exec::CancelToken`] fired. The rows delivered
    /// to the sink before cancellation are an exact prefix of the full
    /// result stream; for a [`CancelReason::RowLimit`] trip the prefix is
    /// exactly `min(total, limit)` rows long.
    Cancelled {
        /// Which budget tripped (first trip wins).
        reason: CancelReason,
        /// Work accounted up to the cancellation point, with the access
        /// tally snapshotted to the concrete counting representation
        /// (boxed: stats are much larger than the other variants).
        /// `results` counts rows *emitted by workers*, which can exceed
        /// the rows actually delivered once the budget cut the stream.
        partial: Box<EngineStats>,
    },
}

impl fmt::Display for JoinError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JoinError::MissingRelation { name } => {
                write!(f, "catalog has no relation named {name}")
            }
            JoinError::ArityMismatch {
                name,
                atom_arity,
                relation_arity,
            } => write!(
                f,
                "relation {name} has arity {relation_arity} but the atom expects {atom_arity}"
            ),
            JoinError::Plan { detail } => write!(f, "plan not executable: {detail}"),
            JoinError::Cancelled { reason, .. } => {
                write!(f, "query cancelled: {reason}")
            }
        }
    }
}

impl Error for JoinError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = JoinError::MissingRelation { name: "G".into() };
        assert!(e.to_string().contains('G'));
        let e = JoinError::ArityMismatch {
            name: "G".into(),
            atom_arity: 2,
            relation_arity: 3,
        };
        assert!(e.to_string().contains('2') && e.to_string().contains('3'));
        let e = JoinError::Plan {
            detail: "projected head".into(),
        };
        assert!(e.to_string().contains("projected head"));
        let mut partial = EngineStats::new();
        partial.results = 42;
        let e = JoinError::Cancelled {
            reason: CancelReason::Deadline,
            partial: Box::new(partial),
        };
        assert!(e.to_string().contains("cancelled"));
        assert!(e.to_string().contains("deadline"));
    }

    #[test]
    fn cancelled_carries_partial_stats() {
        let mut partial = EngineStats::new();
        partial.results = 7;
        partial.shards = 3;
        let e = JoinError::Cancelled {
            reason: CancelReason::RowLimit,
            partial: Box::new(partial),
        };
        match e {
            JoinError::Cancelled { reason, partial } => {
                assert_eq!(reason, CancelReason::RowLimit);
                assert_eq!(partial.results, 7);
                assert_eq!(partial.shards, 3);
            }
            other => panic!("wrong variant: {other:?}"),
        }
    }
}
