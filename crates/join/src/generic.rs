use triejax_exec::{Budget, NoBudget};
use triejax_query::CompiledQuery;
use triejax_relation::{AccessKind, Counting, Tally, Trie, Value, WORD_BYTES};

use crate::engine::head_slots;
use crate::intersect::intersect_sorted;
use crate::sink::BatchEmitter;
use crate::viewset::{merged_catalog, plan_touches_delta};
use crate::{Catalog, DeltaMap, EngineStats, JoinEngine, JoinError, ResultSink, TrieSet};

/// Generic Join in the EmptyHeaded style (Aberger et al., SIGMOD'16): a
/// worst-case-optimal join that materializes, per variable, the
/// intersection of all participating candidate sets before descending.
///
/// EmptyHeaded vectorizes these intersections with SIMD; the software model
/// here uses galloping intersections and counts each materialized candidate
/// as an intermediate value (the buffers EmptyHeaded allocates per level).
/// Its memory-access totals therefore land *between* CTJ and the pairwise
/// engines, as in paper Figure 17.
///
/// Candidate buffers are allocated once per depth and reused across every
/// visit, so the kernel does no per-node allocation; with
/// [`triejax_relation::NoTally`] (via [`GenericJoin::run_tallied`]) the
/// access instrumentation also compiles away.
///
/// # Example
///
/// ```
/// use triejax_join::{Catalog, CountSink, GenericJoin, JoinEngine};
/// use triejax_query::{patterns, CompiledQuery};
/// use triejax_relation::Relation;
///
/// let mut catalog = Catalog::new();
/// catalog.insert("G", Relation::from_pairs(vec![(0, 1), (1, 2), (2, 0)]));
/// let plan = CompiledQuery::compile(&patterns::cycle3())?;
/// let mut sink = CountSink::default();
/// GenericJoin::default().execute(&plan, &catalog, &mut sink)?;
/// assert_eq!(sink.count(), 3);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct GenericJoin {
    _private: (),
}

impl GenericJoin {
    /// Creates the engine; identical to `Default::default()`.
    pub fn new() -> Self {
        Self::default()
    }

    /// Runs the query with an explicit [`Tally`] choice; see
    /// [`crate::Lftj::run_tallied`] for the counting/fast trade-off.
    ///
    /// # Errors
    ///
    /// Returns a [`JoinError`] when the catalog is missing a relation or a
    /// relation's arity mismatches its atom.
    pub fn run_tallied<T: Tally>(
        &mut self,
        plan: &CompiledQuery,
        catalog: &Catalog,
        sink: &mut dyn ResultSink,
    ) -> Result<EngineStats<T>, JoinError> {
        let tries = TrieSet::build(plan, catalog)?;
        let mut driver = GjDriver::budgeted(plan, &tries, NoBudget)?;
        driver.level(0, sink);
        driver.emitter.flush(sink);
        Ok(driver.stats)
    }

    /// Runs the query with the pending mutations in `deltas` folded in.
    /// Generic Join reads raw trie level slices rather than cursors, so a
    /// delta-touching plan materializes each mutated relation's merged
    /// view (`base ∪ inserts − tombstones`) and builds fresh tries over
    /// it — correct but not incremental, the documented trade-off of this
    /// engine. When no atom of the plan touches a non-empty delta this is
    /// exactly [`run_tallied`](Self::run_tallied).
    ///
    /// # Errors
    ///
    /// As [`run_tallied`](Self::run_tallied), plus an arity mismatch
    /// between a delta and its atom (`merge_into` panics on mismatched
    /// arity, so the mismatch is reported before merging).
    pub fn run_tallied_with<T: Tally>(
        &mut self,
        plan: &CompiledQuery,
        catalog: &Catalog,
        deltas: &DeltaMap,
        sink: &mut dyn ResultSink,
    ) -> Result<EngineStats<T>, JoinError> {
        if !plan_touches_delta(plan, deltas) {
            return self.run_tallied(plan, catalog, sink);
        }
        // Same validation the MergeSet engines perform per atom, so the
        // two delta paths fail identically on malformed input.
        for ap in plan.atom_plans() {
            if let Some(d) = deltas.get(ap.relation()).filter(|d| !d.is_empty()) {
                if d.arity() != ap.arity() {
                    return Err(JoinError::ArityMismatch {
                        name: ap.relation().to_owned(),
                        atom_arity: ap.arity(),
                        relation_arity: d.arity(),
                    });
                }
            }
        }
        let merged = merged_catalog(catalog, deltas);
        self.run_tallied(plan, &merged, sink)
    }
}

impl JoinEngine for GenericJoin {
    fn name(&self) -> &'static str {
        "generic-join"
    }

    fn execute(
        &mut self,
        plan: &CompiledQuery,
        catalog: &Catalog,
        sink: &mut dyn ResultSink,
    ) -> Result<EngineStats, JoinError> {
        self.run_tallied::<Counting>(plan, catalog, sink)
    }
}

/// The Generic Join backtracking driver, generic over a [`Budget`] like
/// the LFTJ/CTJ drivers: [`NoBudget`] compiles governance away; a
/// [`triejax_exec::BudgetHandle`] polls the root loop, charges rows at
/// emission, and charges every materialized candidate buffer against the
/// intermediate budget.
struct GjDriver<'a, T: Tally, B: Budget = NoBudget> {
    plan: &'a CompiledQuery,
    tries: &'a TrieSet,
    /// Per atom: stack of open ranges, one per bound trie level.
    ranges: Vec<Vec<(usize, usize)>>,
    /// Per depth: reusable candidate buffer (the EmptyHeaded per-level
    /// intersection output), allocated once and recycled across visits.
    candidates: Vec<Vec<Value>>,
    /// Per depth: reusable scratch buffer the multiway intersection
    /// ping-pongs with.
    scratch: Vec<Vec<Value>>,
    /// Per depth: reusable participant-ordering scratch.
    order: Vec<Vec<usize>>,
    /// Per depth: reusable list of atoms whose child range was pushed.
    pushed: Vec<Vec<usize>>,
    /// Per depth: last hit position per participant, the galloping-search
    /// start point (candidates ascend within a level visit, so each
    /// participant's matches are found at monotonically increasing
    /// positions).
    hints: Vec<Vec<usize>>,
    binding: Vec<Value>,
    emit: Vec<Value>,
    slots: Vec<usize>,
    emitter: BatchEmitter,
    budget: B,
    stats: EngineStats<T>,
}

impl<'a, T: Tally, B: Budget> GjDriver<'a, T, B> {
    fn budgeted(plan: &'a CompiledQuery, tries: &'a TrieSet, budget: B) -> Result<Self, JoinError> {
        Ok(GjDriver {
            plan,
            tries,
            ranges: vec![Vec::new(); plan.atom_plans().len()],
            candidates: vec![Vec::new(); plan.arity()],
            scratch: vec![Vec::new(); plan.arity()],
            order: vec![Vec::new(); plan.arity()],
            pushed: vec![Vec::new(); plan.arity()],
            hints: vec![Vec::new(); plan.arity()],
            binding: vec![0; plan.arity()],
            emit: vec![0; plan.arity()],
            slots: head_slots(plan)?,
            emitter: BatchEmitter::new(plan.arity()),
            budget,
            stats: EngineStats::default(),
        })
    }

    /// Current candidate slice of atom `a` at trie level `lvl`.
    fn slice(&self, a: usize, lvl: usize) -> &'a [Value] {
        let trie: &'a Trie = self.tries.for_atom(a);
        let level = trie.level(lvl);
        let (lo, hi) = if lvl == 0 {
            (0, level.len())
        } else {
            *self.ranges[a].last().expect("parent level must be open")
        };
        &level.values()[lo..hi]
    }

    /// Emits the current binding; returns `false` when the budget refused
    /// the row and the driver must stop.
    fn emit_result(&mut self, sink: &mut dyn ResultSink) -> bool {
        if B::GOVERNED && !self.budget.charge_row() {
            return false;
        }
        for d in 0..self.binding.len() {
            self.emit[self.slots[d]] = self.binding[d];
        }
        self.emitter.push(&self.emit, sink);
        self.stats.results += 1;
        self.stats
            .access
            .record(AccessKind::ResultWrite, self.emit.len() as u64 * WORD_BYTES);
        true
    }

    /// Returns `false` when the budget stopped the run at this level or
    /// below; range stacks are unwound normally either way.
    fn level(&mut self, d: usize, sink: &mut dyn ResultSink) -> bool {
        let parts: &'a [(usize, usize)] = self.plan.atoms_at(d);
        self.stats.match_ops += 1;

        // Candidate set: k-way intersection, smallest slice first, built
        // into this depth's reusable buffer.
        let mut acc = std::mem::take(&mut self.candidates[d]);
        let mut tmp = std::mem::take(&mut self.scratch[d]);
        let mut order = std::mem::take(&mut self.order[d]);
        order.clear();
        order.extend(0..parts.len());
        order.sort_by_key(|&i| self.slice(parts[i].0, parts[i].1).len());
        acc.clear();
        acc.extend_from_slice(self.slice(parts[order[0]].0, parts[order[0]].1));
        self.stats
            .access
            .record(AccessKind::IndexRead, acc.len() as u64 * WORD_BYTES);
        if parts.len() > 1 {
            for &i in &order[1..] {
                let next = self.slice(parts[i].0, parts[i].1);
                intersect_sorted(&acc, next, &mut tmp, &mut self.stats);
                std::mem::swap(&mut acc, &mut tmp);
                if acc.is_empty() {
                    break;
                }
            }
            // EmptyHeaded materializes the per-level candidate buffer.
            self.stats.intermediates += acc.len() as u64;
            self.stats
                .access
                .record(AccessKind::Intermediate, acc.len() as u64 * WORD_BYTES);
        }

        let mut live = true;
        if B::GOVERNED && parts.len() > 1 && !self.budget.charge_intermediates(acc.len() as u64) {
            // Memory budget exhausted by this candidate buffer: wind down
            // without descending into it.
            live = false;
        }
        let last = d + 1 == self.plan.arity();
        let mut pushed = std::mem::take(&mut self.pushed[d]);
        let mut hints = std::mem::take(&mut self.hints[d]);
        hints.clear();
        hints.resize(parts.len(), 0);
        if live {
            for &v in &acc {
                self.binding[d] = v;
                if d == 0 && B::GOVERNED && self.budget.poll().is_some() {
                    // Root-level advance: the budget poll point.
                    live = false;
                    break;
                }
                if last {
                    if !self.emit_result(sink) {
                        live = false;
                        break;
                    }
                    continue;
                }
                // Descend: locate v in every continuing participant and
                // push its child range.
                pushed.clear();
                for (pi, &(a, lvl)) in parts.iter().enumerate() {
                    if !self.plan.atom_plans()[a].continues_below(lvl) {
                        continue;
                    }
                    let level = self.tries.for_atom(a).level(lvl);
                    let (lo, hi) = if lvl == 0 {
                        (0, level.len())
                    } else {
                        *self.ranges[a].last().expect("parent level must be open")
                    };
                    let values = &level.values()[lo..hi];
                    let rel = gallop_search(values, hints[pi], v, &mut self.stats);
                    hints[pi] = rel;
                    let pos = lo + rel;
                    // Midwife-equivalent: read the child range pair.
                    self.stats.expand_ops += 1;
                    self.stats
                        .access
                        .record(AccessKind::IndexRead, 2 * WORD_BYTES);
                    self.ranges[a].push(level.child_range(pos));
                    pushed.push(a);
                }
                let descended = self.level(d + 1, sink);
                for &a in &pushed {
                    self.ranges[a].pop();
                }
                if !descended {
                    live = false;
                    break;
                }
            }
        }
        // Return the buffers (with their grown capacity) for the next
        // visit of this depth.
        self.candidates[d] = acc;
        self.scratch[d] = tmp;
        self.order[d] = order;
        self.pushed[d] = pushed;
        self.hints[d] = hints;
        live
    }
}

/// Galloping (exponential) search for an existing value, starting from a
/// previous hit position rather than restarting at 0: the candidates at one
/// depth ascend, so each participant's matches land at monotonically
/// increasing positions, usually close together. One `lub_op` per search;
/// every probed word is tallied so Counting-mode figures stay honest.
fn gallop_search<T: Tally>(
    values: &[Value],
    hint: usize,
    v: Value,
    stats: &mut EngineStats<T>,
) -> usize {
    stats.lub_ops += 1;
    stats.access.record(AccessKind::IndexRead, WORD_BYTES);
    if values[hint] >= v {
        debug_assert!(values[hint] == v, "value must exist");
        return hint;
    }
    // Invariant: values[lo] < v. Gallop to bracket the target, then binary
    // search the bracketed gap.
    let (mut lo, mut hi) = (hint, values.len());
    let mut step = 1usize;
    while lo + step < values.len() {
        stats.access.record(AccessKind::IndexRead, WORD_BYTES);
        if values[lo + step] < v {
            lo += step;
            step <<= 1;
        } else {
            hi = lo + step;
            break;
        }
    }
    let (mut l, mut h) = (lo + 1, hi);
    while l < h {
        let mid = l + (h - l) / 2;
        stats.access.record(AccessKind::IndexRead, WORD_BYTES);
        if values[mid] < v {
            l = mid + 1;
        } else {
            h = mid;
        }
    }
    debug_assert!(l < values.len() && values[l] == v, "value must exist");
    l
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CollectSink, CountSink, Lftj};
    use triejax_query::patterns::{self, Pattern};
    use triejax_relation::{NoTally, Relation};

    fn catalog(edges: &[(u32, u32)]) -> Catalog {
        let mut c = Catalog::new();
        c.insert("G", Relation::from_pairs(edges.to_vec()));
        c
    }

    fn test_edges() -> Vec<(u32, u32)> {
        vec![
            (0, 1),
            (1, 2),
            (2, 0),
            (2, 3),
            (3, 1),
            (0, 2),
            (3, 0),
            (1, 3),
            (4, 1),
            (2, 4),
            (4, 0),
        ]
    }

    #[test]
    fn agrees_with_lftj_on_every_pattern() {
        let c = catalog(&test_edges());
        for p in Pattern::ALL {
            let plan = CompiledQuery::compile(&p.query()).unwrap();
            let mut a = CollectSink::new();
            let mut b = CollectSink::new();
            Lftj::new().execute(&plan, &c, &mut a).unwrap();
            GenericJoin::new().execute(&plan, &c, &mut b).unwrap();
            assert_eq!(a.into_sorted(), b.into_sorted(), "{p}");
        }
    }

    #[test]
    fn multiway_intersections_materialize_candidates() {
        let c = catalog(&test_edges());
        let plan = CompiledQuery::compile(&patterns::cycle3()).unwrap();
        let mut sink = CountSink::default();
        let stats = GenericJoin::new().execute(&plan, &c, &mut sink).unwrap();
        assert!(stats.intermediates > 0);
        assert!(stats.match_ops > 0);
    }

    #[test]
    fn empty_graph_is_fine() {
        let c = catalog(&[]);
        let plan = CompiledQuery::compile(&patterns::path4()).unwrap();
        let mut sink = CountSink::default();
        let stats = GenericJoin::new().execute(&plan, &c, &mut sink).unwrap();
        assert_eq!(stats.results, 0);
    }

    #[test]
    fn budgeted_driver_delivers_an_exact_row_limited_prefix() {
        use std::sync::Arc;
        use triejax_exec::{BudgetHandle, CancelReason, RunBudget};

        let c = catalog(&test_edges());
        let plan = CompiledQuery::compile(&patterns::cycle3()).unwrap();
        let mut full = CollectSink::new();
        GenericJoin::new().execute(&plan, &c, &mut full).unwrap();
        assert!(full.tuples().len() > 2);

        let tries = TrieSet::build(&plan, &c).unwrap();
        let shared = Arc::new(RunBudget::new().with_row_limit(2));
        let mut capped = CollectSink::new();
        let mut driver = GjDriver::<Counting, BudgetHandle>::budgeted(
            &plan,
            &tries,
            BudgetHandle::driving(Arc::clone(&shared)),
        )
        .unwrap();
        driver.level(0, &mut capped);
        driver.emitter.flush(&mut capped);
        assert_eq!(capped.tuples(), &full.tuples()[..2]);
        assert_eq!(driver.stats.results, 2);
        assert_eq!(shared.cancelled(), Some(CancelReason::RowLimit));
    }

    #[test]
    fn gallop_search_counts_every_probe() {
        // 0..16 so probe sequences are hand-checkable.
        let values: Vec<Value> = (0..16).collect();
        // Hint is the target: the initial probe answers it.
        let mut stats = EngineStats::<Counting>::default();
        assert_eq!(gallop_search(&values, 0, 0, &mut stats), 0);
        assert_eq!((stats.lub_ops, stats.access.index_reads), (1, 1));
        // Cold search for 5: initial probe at 0, gallop probes at 1, 3, 7,
        // binary probes at 5 and 4 — exactly 6 tallied reads.
        let mut stats = EngineStats::<Counting>::default();
        assert_eq!(gallop_search(&values, 0, 5, &mut stats), 5);
        assert_eq!((stats.lub_ops, stats.access.index_reads), (1, 6));
        // Adjacent hint: probes at 5 and 6 only — a restart-from-0 binary
        // search would have paid log2(16).
        let mut stats = EngineStats::<Counting>::default();
        assert_eq!(gallop_search(&values, 5, 6, &mut stats), 6);
        assert_eq!((stats.lub_ops, stats.access.index_reads), (1, 2));
    }

    #[test]
    fn untallied_run_matches_counting_run() {
        let c = catalog(&test_edges());
        for p in [Pattern::Cycle3, Pattern::Path4, Pattern::Clique4] {
            let plan = CompiledQuery::compile(&p.query()).unwrap();
            let mut counting = CollectSink::new();
            let cs = GenericJoin::new()
                .run_tallied::<Counting>(&plan, &c, &mut counting)
                .unwrap();
            let mut fast = CollectSink::new();
            let fs = GenericJoin::new()
                .run_tallied::<NoTally>(&plan, &c, &mut fast)
                .unwrap();
            assert_eq!(counting.tuples(), fast.tuples(), "{p}");
            assert_eq!(cs.intermediates, fs.intermediates, "{p}");
            assert_eq!(cs.lub_ops, fs.lub_ops, "{p}");
            assert_eq!(fs.memory_accesses(), 0);
        }
    }
}
