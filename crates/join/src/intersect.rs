use triejax_relation::{AccessKind, Tally, Value, WORD_BYTES};

use crate::EngineStats;

/// Galloping intersection of two sorted, duplicate-free slices — the
/// set-intersection primitive of Generic Join / EmptyHeaded.
///
/// The intersection is written into `out`, which is cleared (not
/// reallocated) first, so a caller looping over many intersections reuses
/// one buffer instead of allocating per call.
///
/// With a [`triejax_relation::Counting`] tally every element read is
/// counted as an index read in `stats` and each gallop counts one LUB
/// operation, keeping engine-level access totals comparable with the
/// trie-cursor engines; with [`triejax_relation::NoTally`] the
/// instrumentation compiles away.
///
/// # Example
///
/// ```
/// use triejax_join::{intersect_sorted, Counting, EngineStats};
///
/// let mut stats = EngineStats::<Counting>::default();
/// let mut out = Vec::new();
/// intersect_sorted(&[1, 3, 5, 7], &[2, 3, 4, 7, 9], &mut out, &mut stats);
/// assert_eq!(out, vec![3, 7]);
/// assert!(stats.lub_ops > 0);
/// ```
#[inline]
pub fn intersect_sorted<T: Tally>(
    a: &[Value],
    b: &[Value],
    out: &mut Vec<Value>,
    stats: &mut EngineStats<T>,
) {
    // Probe with the smaller side, gallop in the larger.
    let (small, large) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    out.clear();
    out.reserve(small.len());
    let mut base = 0usize;
    for &x in small {
        stats.access.record(AccessKind::IndexRead, WORD_BYTES);
        if base >= large.len() {
            break;
        }
        // Gallop: find a bracket [base + step/2, base + step] containing x.
        stats.lub_ops += 1;
        let mut step = 1usize;
        while base + step < large.len() && large[base + step] < x {
            stats.access.record(AccessKind::IndexRead, WORD_BYTES);
            step *= 2;
        }
        let mut lo = base + step / 2;
        let mut hi = (base + step + 1).min(large.len());
        // Binary search within the bracket.
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            stats.access.record(AccessKind::IndexRead, WORD_BYTES);
            if large[mid] < x {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        base = lo;
        if base < large.len() && large[base] == x {
            out.push(x);
            base += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use triejax_relation::{Counting, NoTally};

    fn intersect(a: &[Value], b: &[Value]) -> Vec<Value> {
        let mut stats = EngineStats::<Counting>::default();
        let mut out = Vec::new();
        intersect_sorted(a, b, &mut out, &mut stats);
        out
    }

    #[test]
    fn basic_overlap() {
        assert_eq!(intersect(&[1, 2, 3], &[2, 3, 4]), vec![2, 3]);
    }

    #[test]
    fn empty_inputs() {
        assert_eq!(intersect(&[], &[1, 2]), Vec::<Value>::new());
        assert_eq!(intersect(&[1, 2], &[]), Vec::<Value>::new());
    }

    #[test]
    fn disjoint() {
        assert_eq!(intersect(&[1, 3, 5], &[0, 2, 4, 6]), Vec::<Value>::new());
    }

    #[test]
    fn identical() {
        assert_eq!(intersect(&[4, 8, 15], &[4, 8, 15]), vec![4, 8, 15]);
    }

    #[test]
    fn asymmetric_sizes_gallop_correctly() {
        let big: Vec<Value> = (0..1000).map(|i| i * 3).collect();
        assert_eq!(intersect(&[9, 300, 2997, 5000], &big), vec![9, 300, 2997]);
        assert_eq!(intersect(&big, &[9, 300, 2997, 5000]), vec![9, 300, 2997]);
    }

    #[test]
    fn subset_results() {
        let big: Vec<Value> = (0..100).collect();
        let small = [7, 42, 99];
        assert_eq!(intersect(&small, &big), vec![7, 42, 99]);
    }

    #[test]
    fn counts_reads() {
        let mut stats = EngineStats::<Counting>::default();
        let mut out = Vec::new();
        intersect_sorted(
            &[1, 5, 9],
            &(0..64).collect::<Vec<_>>(),
            &mut out,
            &mut stats,
        );
        assert!(stats.access.index_reads >= 3);
        assert_eq!(
            stats.access.index_bytes,
            stats.access.index_reads * WORD_BYTES
        );
    }

    #[test]
    fn output_buffer_is_reused_and_cleared() {
        let mut stats = EngineStats::<Counting>::default();
        let mut out = vec![99, 98, 97];
        intersect_sorted(&[1, 2], &[2, 3], &mut out, &mut stats);
        assert_eq!(out, vec![2]);
        let cap = out.capacity();
        intersect_sorted(&[1], &[1], &mut out, &mut stats);
        assert_eq!(out, vec![1]);
        assert!(out.capacity() >= cap.min(1));
    }

    #[test]
    fn untallied_matches_counting() {
        let a: Vec<Value> = (0..200).filter(|v| v % 3 == 0).collect();
        let b: Vec<Value> = (0..200).filter(|v| v % 5 == 0).collect();
        let mut counting = EngineStats::<Counting>::default();
        let mut fast: EngineStats<NoTally> = EngineStats::new();
        let mut out_a = Vec::new();
        let mut out_b = Vec::new();
        intersect_sorted(&a, &b, &mut out_a, &mut counting);
        intersect_sorted(&a, &b, &mut out_b, &mut fast);
        assert_eq!(out_a, out_b);
        assert_eq!(counting.lub_ops, fast.lub_ops);
        assert_eq!(fast.memory_accesses(), 0);
        assert!(counting.memory_accesses() > 0);
    }
}
