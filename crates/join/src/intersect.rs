use triejax_relation::{AccessKind, Value, WORD_BYTES};

use crate::EngineStats;

/// Galloping intersection of two sorted, duplicate-free slices — the
/// set-intersection primitive of Generic Join / EmptyHeaded.
///
/// Every element read is counted as an index read in `stats`, and each
/// gallop counts one LUB operation, so engine-level access totals remain
/// comparable with the trie-cursor engines.
///
/// # Example
///
/// ```
/// use triejax_join::{intersect_sorted, EngineStats};
///
/// let mut stats = EngineStats::default();
/// let out = intersect_sorted(&[1, 3, 5, 7], &[2, 3, 4, 7, 9], &mut stats);
/// assert_eq!(out, vec![3, 7]);
/// assert!(stats.lub_ops > 0);
/// ```
pub fn intersect_sorted(a: &[Value], b: &[Value], stats: &mut EngineStats) -> Vec<Value> {
    // Probe with the smaller side, gallop in the larger.
    let (small, large) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    let mut out = Vec::new();
    let mut base = 0usize;
    for &x in small {
        stats.access.record(AccessKind::IndexRead, WORD_BYTES);
        if base >= large.len() {
            break;
        }
        // Gallop: find a bracket [base + step/2, base + step] containing x.
        stats.lub_ops += 1;
        let mut step = 1usize;
        while base + step < large.len() && large[base + step] < x {
            stats.access.record(AccessKind::IndexRead, WORD_BYTES);
            step *= 2;
        }
        let mut lo = base + step / 2;
        let mut hi = (base + step + 1).min(large.len());
        // Binary search within the bracket.
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            stats.access.record(AccessKind::IndexRead, WORD_BYTES);
            if large[mid] < x {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        base = lo;
        if base < large.len() && large[base] == x {
            out.push(x);
            base += 1;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn intersect(a: &[Value], b: &[Value]) -> Vec<Value> {
        let mut stats = EngineStats::default();
        intersect_sorted(a, b, &mut stats)
    }

    #[test]
    fn basic_overlap() {
        assert_eq!(intersect(&[1, 2, 3], &[2, 3, 4]), vec![2, 3]);
    }

    #[test]
    fn empty_inputs() {
        assert_eq!(intersect(&[], &[1, 2]), Vec::<Value>::new());
        assert_eq!(intersect(&[1, 2], &[]), Vec::<Value>::new());
    }

    #[test]
    fn disjoint() {
        assert_eq!(intersect(&[1, 3, 5], &[0, 2, 4, 6]), Vec::<Value>::new());
    }

    #[test]
    fn identical() {
        assert_eq!(intersect(&[4, 8, 15], &[4, 8, 15]), vec![4, 8, 15]);
    }

    #[test]
    fn asymmetric_sizes_gallop_correctly() {
        let big: Vec<Value> = (0..1000).map(|i| i * 3).collect();
        assert_eq!(intersect(&[9, 300, 2997, 5000], &big), vec![9, 300, 2997]);
        assert_eq!(intersect(&big, &[9, 300, 2997, 5000]), vec![9, 300, 2997]);
    }

    #[test]
    fn subset_results() {
        let big: Vec<Value> = (0..100).collect();
        let small = [7, 42, 99];
        assert_eq!(intersect(&small, &big), vec![7, 42, 99]);
    }

    #[test]
    fn counts_reads() {
        let mut stats = EngineStats::default();
        let _ = intersect_sorted(&[1, 5, 9], &(0..64).collect::<Vec<_>>(), &mut stats);
        assert!(stats.access.index_reads >= 3);
        assert_eq!(stats.access.index_bytes, stats.access.index_reads * WORD_BYTES);
    }
}
