use triejax_relation::{JoinCursor, Tally, Value};

use crate::EngineStats;

/// One multi-way leapfrog join over a set of open cursors — the
/// "MatchMaker + LUB" logic of the paper, for a single join variable.
///
/// The member cursors must all be positioned at the start of a level
/// binding the same variable. [`search`](Self::search) aligns them on the
/// smallest common value at-or-after their current positions;
/// [`next`](Self::next) advances past the current match and realigns.
///
/// Work accounting: each alignment attempt counts one `match_op`, each
/// lowest-upper-bound search one `lub_op` (plus its memory probes through
/// the stats' access counter).
#[derive(Debug)]
pub struct Leapfrog {
    /// Indices into the engine's cursor table.
    members: Vec<usize>,
    /// Round-robin pointer for the classic leapfrog loop.
    p: usize,
}

impl Leapfrog {
    /// Creates a leapfrog over the given cursor indices.
    ///
    /// # Panics
    ///
    /// Panics if `members` is empty.
    pub fn new(members: Vec<usize>) -> Self {
        assert!(!members.is_empty(), "leapfrog needs at least one member");
        Leapfrog { members, p: 0 }
    }

    /// The member cursor indices.
    pub fn members(&self) -> &[usize] {
        &self.members
    }

    /// Consumes the leapfrog, returning its member vector so drivers can
    /// recycle the allocation across level visits.
    pub fn into_members(self) -> Vec<usize> {
        self.members
    }

    /// Aligns all members on the smallest common value at-or-after their
    /// positions. Returns the matched value, or `None` if any member is
    /// exhausted first. Cursors are left positioned on the match.
    ///
    /// Generic over the [`JoinCursor`] implementation, so the same loop
    /// drives plain [`triejax_relation::TrieCursor`]s and the
    /// [`triejax_relation::MergeCursor`]s of mutated relations.
    pub fn search<Cur: JoinCursor, T: Tally>(
        &mut self,
        cursors: &mut [Cur],
        stats: &mut EngineStats<T>,
    ) -> Option<Value> {
        stats.match_ops += 1;
        if self.members.iter().any(|&m| cursors[m].at_end()) {
            return None;
        }
        let k = self.members.len();
        // Start from the largest current key.
        let mut max = cursors[self.members[0]].key();
        let mut argmax = 0;
        for i in 1..k {
            let key = cursors[self.members[i]].key();
            if key > max {
                max = key;
                argmax = i;
            }
        }
        // `agree` counts consecutive cursors known to sit on `max`; a match
        // is confirmed only once all k agree.
        let mut agree = 1;
        self.p = argmax;
        while agree < k {
            self.p = (self.p + 1) % k;
            let cur = &mut cursors[self.members[self.p]];
            if cur.key() == max {
                agree += 1;
                continue;
            }
            stats.lub_ops += 1;
            if !cur.seek(max, &mut stats.access) {
                return None;
            }
            let key = cur.key();
            if key == max {
                agree += 1;
            } else {
                max = key;
                agree = 1;
            }
        }
        Some(max)
    }

    /// Advances past the current match and realigns on the next one.
    pub fn next<Cur: JoinCursor, T: Tally>(
        &mut self,
        cursors: &mut [Cur],
        stats: &mut EngineStats<T>,
    ) -> Option<Value> {
        let first = self.members[self.p];
        if !cursors[first].next(&mut stats.access) {
            return None;
        }
        self.search(cursors, stats)
    }

    /// Fast-forwards to the first match at-or-after `v`.
    ///
    /// Seeks the round-robin cursor to `v` and realigns; used by the
    /// root-partitioned parallel engine to enter its shard's value range
    /// without walking the values before it. Like every leapfrog motion
    /// this is forward-only.
    pub fn seek<Cur: JoinCursor, T: Tally>(
        &mut self,
        cursors: &mut [Cur],
        v: Value,
        stats: &mut EngineStats<T>,
    ) -> Option<Value> {
        let first = self.members[self.p];
        if cursors[first].at_end() {
            return None;
        }
        stats.lub_ops += 1;
        if !cursors[first].seek(v, &mut stats.access) {
            return None;
        }
        self.search(cursors, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use triejax_relation::{AccessCounter, Counting, Relation, Trie, TrieCursor};

    fn unary(vals: &[Value]) -> Trie {
        Trie::build(
            &Relation::from_tuples(1, vals.iter().map(|&v| vec![v]).collect::<Vec<_>>()).unwrap(),
        )
    }

    fn run_leapfrog(sets: &[&[Value]]) -> Vec<Value> {
        let tries: Vec<Trie> = sets.iter().map(|s| unary(s)).collect();
        let mut cursors: Vec<TrieCursor> = tries.iter().map(TrieCursor::new).collect();
        let mut opens = AccessCounter::default();
        let mut stats = EngineStats::<Counting>::default();
        for c in &mut cursors {
            assert!(c.open(&mut opens));
        }
        let mut lf = Leapfrog::new((0..sets.len()).collect());
        let mut out = Vec::new();
        let mut m = lf.search(&mut cursors, &mut stats);
        while let Some(v) = m {
            out.push(v);
            m = lf.next(&mut cursors, &mut stats);
        }
        out
    }

    #[test]
    fn intersects_like_the_lftj_paper_example() {
        // The classic LFTJ example: three sets with sparse overlap.
        let a = [0, 1, 3, 4, 5, 6, 7, 8, 9, 11];
        let b = [0, 2, 6, 7, 8, 9];
        let c = [2, 4, 5, 8, 10];
        assert_eq!(run_leapfrog(&[&a, &b, &c]), vec![8]);
    }

    #[test]
    fn single_member_enumerates_everything() {
        assert_eq!(run_leapfrog(&[&[1, 5, 9]]), vec![1, 5, 9]);
    }

    #[test]
    fn disjoint_sets_yield_nothing() {
        assert_eq!(run_leapfrog(&[&[1, 3, 5], &[2, 4, 6]]), Vec::<Value>::new());
    }

    #[test]
    fn identical_sets_yield_all() {
        assert_eq!(run_leapfrog(&[&[2, 4, 6], &[2, 4, 6]]), vec![2, 4, 6]);
    }

    #[test]
    fn overlapping_sets_yield_intersection() {
        assert_eq!(
            run_leapfrog(&[&[1, 2, 3, 7, 9], &[2, 7, 10], &[2, 3, 7]]),
            vec![2, 7]
        );
    }

    #[test]
    fn counts_lub_and_match_ops() {
        let tries = [unary(&[1, 2, 3]), unary(&[3])];
        let mut cursors: Vec<TrieCursor> = tries.iter().map(TrieCursor::new).collect();
        let mut opens = AccessCounter::default();
        let mut stats = EngineStats::<Counting>::default();
        for c in &mut cursors {
            c.open(&mut opens);
        }
        let mut lf = Leapfrog::new(vec![0, 1]);
        assert_eq!(lf.search(&mut cursors, &mut stats), Some(3));
        assert!(stats.match_ops >= 1);
        assert!(stats.lub_ops >= 1);
        assert!(stats.access.index_reads > 0);
    }

    #[test]
    #[should_panic(expected = "at least one member")]
    fn empty_members_panics() {
        let _ = Leapfrog::new(Vec::new());
    }
}
