use triejax_exec::{Budget, NoBudget};
use triejax_query::CompiledQuery;
use triejax_relation::{AccessKind, Counting, JoinCursor, Tally, TrieCursor, Value, WORD_BYTES};

use crate::engine::head_slots;
use crate::shard::{try_split_at, NoSplit, SplitSpawn};
use crate::sink::BatchEmitter;
use crate::viewset::{plan_touches_delta, CursorSet, MergeSet};
use crate::{Catalog, DeltaMap, EngineStats, JoinEngine, JoinError, Leapfrog, ResultSink, TrieSet};

/// LeapFrog TrieJoin (Veldhuizen, ICDT'14): the worst-case-optimal join
/// that backtracks over trie indexes, materializing *no* intermediate
/// results at the cost of recomputing recurring partial joins (paper §2.2).
///
/// [`JoinEngine::execute`] runs the instrumented kernel (every memory
/// touch counted, as the paper figures require); [`Lftj::run_tallied`]
/// exposes the same kernel generic over a [`Tally`], so
/// `run_tallied::<NoTally>` runs with all instrumentation compiled away.
///
/// # Example
///
/// ```
/// use triejax_join::{Catalog, CountSink, JoinEngine, Lftj};
/// use triejax_query::{patterns, CompiledQuery};
/// use triejax_relation::Relation;
///
/// let mut catalog = Catalog::new();
/// catalog.insert("G", Relation::from_pairs(vec![(0, 1), (1, 2), (2, 0)]));
/// let plan = CompiledQuery::compile(&patterns::path3())?;
/// let mut sink = CountSink::default();
/// let stats = Lftj::default().execute(&plan, &catalog, &mut sink)?;
/// assert_eq!(sink.count(), 3);
/// assert_eq!(stats.intermediates, 0); // LFTJ never materializes
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct Lftj {
    _private: (),
}

impl Lftj {
    /// Creates the engine; identical to `Default::default()`.
    pub fn new() -> Self {
        Self::default()
    }

    /// Runs the query with an explicit [`Tally`] choice.
    ///
    /// `run_tallied::<Counting>` is what [`JoinEngine::execute`] calls;
    /// `run_tallied::<triejax_relation::NoTally>` is the zero-overhead
    /// fast path (identical results, no access accounting).
    ///
    /// # Errors
    ///
    /// Returns a [`JoinError`] when the catalog is missing a relation or a
    /// relation's arity mismatches its atom.
    pub fn run_tallied<T: Tally>(
        &mut self,
        plan: &CompiledQuery,
        catalog: &Catalog,
        sink: &mut dyn ResultSink,
    ) -> Result<EngineStats<T>, JoinError> {
        let tries = TrieSet::build(plan, catalog)?;
        let mut driver = Driver::new(plan, &tries)?;
        driver.run(sink);
        Ok(driver.stats)
    }

    /// Runs the query over `catalog` with the pending mutations in
    /// `deltas` folded in: every atom over a mutated relation walks a
    /// [`triejax_relation::MergeCursor`] presenting
    /// `base ∪ inserts − tombstones`, without rebuilding the base trie.
    /// When no atom of the plan touches a non-empty delta this is exactly
    /// [`run_tallied`](Self::run_tallied) — the frozen fast path,
    /// monomorphized to plain trie cursors.
    ///
    /// # Errors
    ///
    /// As [`run_tallied`](Self::run_tallied), plus an arity mismatch
    /// between a delta and its atom.
    pub fn run_tallied_with<T: Tally>(
        &mut self,
        plan: &CompiledQuery,
        catalog: &Catalog,
        deltas: &DeltaMap,
        sink: &mut dyn ResultSink,
    ) -> Result<EngineStats<T>, JoinError> {
        if !plan_touches_delta(plan, deltas) {
            return self.run_tallied(plan, catalog, sink);
        }
        let set = MergeSet::build(plan, catalog, deltas)?;
        let mut driver = Driver::<T, NoBudget, _>::new(plan, &set)?;
        driver.run(sink);
        Ok(driver.stats)
    }
}

impl JoinEngine for Lftj {
    fn name(&self) -> &'static str {
        "lftj"
    }

    fn execute(
        &mut self,
        plan: &CompiledQuery,
        catalog: &Catalog,
        sink: &mut dyn ResultSink,
    ) -> Result<EngineStats, JoinError> {
        self.run_tallied::<Counting>(plan, catalog, sink)
    }
}

/// Shared recursive backtracking driver (also the skeleton CTJ extends and
/// the per-shard worker of the parallel engine).
///
/// The driver optionally restricts one level — `range_depth` — to the
/// value range `[range_min, range_sup)`: the parallel engine gives each
/// seeded shard a contiguous slice of the first join variable's domain
/// (`range_depth` 0), and a sub-root split donee a slice of an inner
/// level under a bound prefix ([`Driver::run_split_at`]), which keeps
/// every shard's emission order identical to the sequential engine's.
/// Shard entry clamps that level of every participating cursor to the
/// range ([`JoinCursor::open_range`]), so the leapfrog never probes
/// outside the shard.
///
/// The driver is additionally generic over a [`Budget`]: the default
/// [`NoBudget`] monomorphizes every cancellation check away, while a
/// [`triejax_exec::BudgetHandle`] makes the root loop poll for
/// deadline/token trips and every emission charge the row quota. A
/// governed driver stops early — `run`/`run_split` still flush whatever
/// the emitter buffered, so the delivered rows stay an exact stream
/// prefix.
///
/// Finally, the driver is generic over the [`JoinCursor`] implementation
/// its [`CursorSet`] hands out: plain [`TrieCursor`]s for frozen
/// relations (the default, monomorphizing to the original code) or
/// [`triejax_relation::MergeCursor`]s when a query runs over mutated
/// relations (`base ∪ delta − tombstones`).
pub(crate) struct Driver<'a, T: Tally, B: Budget = NoBudget, Cur: JoinCursor = TrieCursor<'a>> {
    plan: &'a CompiledQuery,
    cursors: Vec<Cur>,
    binding: Vec<Value>,
    emit: Vec<Value>,
    slots: Vec<usize>,
    emitter: BatchEmitter,
    /// Per depth: participating cursor indices, preallocated once so the
    /// recursive driver never allocates per node.
    members_at: Vec<Vec<usize>>,
    /// Level the `[range_min, range_sup)` restriction applies to: 0 for
    /// seeded shards (and sequential runs, where the range is unbounded),
    /// the donated level for sub-root split donees.
    range_depth: usize,
    range_min: Value,
    range_sup: Option<Value>,
    /// Per level: the upper bound committed splits have clamped it to
    /// (`None` until a split donates a tail there). Reset on level entry.
    sup_at: Vec<Option<Value>>,
    budget: B,
    pub stats: EngineStats<T>,
}

impl<'a, T: Tally, Cur: JoinCursor> Driver<'a, T, NoBudget, Cur> {
    pub(crate) fn new<S: CursorSet<'a, Cur = Cur>>(
        plan: &'a CompiledQuery,
        set: &'a S,
    ) -> Result<Self, JoinError> {
        Self::with_root_range(plan, set, 0, None)
    }

    /// Driver restricted to root-variable values in `[root_min, root_sup)`
    /// (`None` = unbounded above).
    pub(crate) fn with_root_range<S: CursorSet<'a, Cur = Cur>>(
        plan: &'a CompiledQuery,
        set: &'a S,
        root_min: Value,
        root_sup: Option<Value>,
    ) -> Result<Self, JoinError> {
        Self::budgeted(plan, set, root_min, root_sup, NoBudget)
    }
}

impl<'a, T: Tally, B: Budget, Cur: JoinCursor> Driver<'a, T, B, Cur> {
    /// Root-ranged driver governed by `budget` (see the type docs).
    pub(crate) fn budgeted<S: CursorSet<'a, Cur = Cur>>(
        plan: &'a CompiledQuery,
        set: &'a S,
        root_min: Value,
        root_sup: Option<Value>,
        budget: B,
    ) -> Result<Self, JoinError> {
        let cursors = (0..plan.atom_plans().len())
            .map(|i| set.cursor(i))
            .collect();
        let n = plan.arity();
        let members_at = (0..n)
            .map(|d| plan.atoms_at(d).iter().map(|&(a, _)| a).collect())
            .collect();
        Ok(Driver {
            plan,
            cursors,
            binding: vec![0; n],
            emit: vec![0; n],
            slots: head_slots(plan)?,
            emitter: BatchEmitter::new(n),
            members_at,
            range_depth: 0,
            range_min: root_min,
            range_sup: root_sup,
            sup_at: vec![None; n],
            budget,
            stats: EngineStats::default(),
        })
    }

    /// Emits tuples straight through to the sink instead of batching —
    /// for sinks that batch themselves (the parallel engines' per-shard
    /// [`crate::ShardSink`]s).
    pub(crate) fn emit_passthrough(&mut self) {
        self.emitter.passthrough();
    }

    /// Runs the full backtracking join.
    pub(crate) fn run(&mut self, sink: &mut dyn ResultSink) {
        self.run_split(sink, &mut NoSplit);
    }

    /// Runs the join with a split controller polled at every match point
    /// up to the controller's depth cap: when it reports an idle sibling
    /// worker, the unvisited tail of the current level is carved off into
    /// a new task (see [`try_split_at`]). Sequential callers pass
    /// [`NoSplit`], which monomorphizes the polling away entirely.
    ///
    /// A governed driver (see [`Driver::budgeted`]) may stop early; the
    /// rows already allowed through are flushed either way, so the sink
    /// always holds an exact prefix of the driver's emission order.
    pub(crate) fn run_split<C: SplitSpawn>(&mut self, sink: &mut dyn ResultSink, ctl: &mut C) {
        self.level(0, sink, ctl);
        self.emitter.flush(sink);
    }

    /// Runs a sub-root split task: binds the donated `prefix` (the values
    /// the donor had matched above the split level), then joins the
    /// donated level restricted to `[min, sup)` and everything below it.
    ///
    /// The donor held exactly these prefix values open at every
    /// participating cursor when it handed the tail off, so each rebind
    /// seek lands on its value by construction. The prefix levels are
    /// unwound before returning so a pooled driver can run further tasks.
    pub(crate) fn run_split_at<C: SplitSpawn>(
        &mut self,
        depth: usize,
        prefix: &[Value],
        min: Value,
        sup: Option<Value>,
        sink: &mut dyn ResultSink,
        ctl: &mut C,
    ) {
        assert_eq!(
            prefix.len(),
            depth,
            "split prefix binds every level above the donated one"
        );
        self.range_depth = depth;
        self.range_min = min;
        self.range_sup = sup;
        for (q, &v) in prefix.iter().enumerate() {
            for &(a, lvl) in self.plan.atoms_at(q) {
                if lvl > 0 {
                    self.stats.expand_ops += 1;
                }
                let opened = self.cursors[a].open(&mut self.stats.access);
                assert!(opened, "split prefix level must be non-empty");
                let found = self.cursors[a].seek(v, &mut self.stats.access);
                assert!(
                    found && self.cursors[a].key() == v,
                    "split prefix value must exist in every participant"
                );
            }
            self.binding[q] = v;
        }
        self.level(depth, sink, ctl);
        self.emitter.flush(sink);
        for q in (0..depth).rev() {
            for &(a, _) in self.plan.atoms_at(q) {
                self.cursors[a].up();
            }
        }
        self.range_depth = 0;
        self.range_min = 0;
        self.range_sup = None;
    }

    /// Opens level `d` on every participating cursor (clamped to
    /// `[range_min, range_sup)` at the ranged depth); on an empty open
    /// closes what was opened and returns `false`.
    fn open_level(&mut self, d: usize) -> bool {
        let parts = self.plan.atoms_at(d);
        let ranged = d == self.range_depth && (self.range_min > 0 || self.range_sup.is_some());
        for (i, &(a, lvl)) in parts.iter().enumerate() {
            if lvl > 0 {
                self.stats.expand_ops += 1;
            }
            let opened = if ranged {
                self.cursors[a].open_range(self.range_min, self.range_sup, &mut self.stats.access)
            } else {
                self.cursors[a].open(&mut self.stats.access)
            };
            if !opened {
                for &(b, _) in &parts[..i] {
                    self.cursors[b].up();
                }
                return false;
            }
        }
        true
    }

    fn close_level(&mut self, d: usize) {
        for &(a, _) in self.plan.atoms_at(d) {
            self.cursors[a].up();
        }
    }

    /// Emits the current binding; returns `false` when the budget refused
    /// the row (quota exhausted or run cancelled) and the driver must stop.
    fn emit_result(&mut self, sink: &mut dyn ResultSink) -> bool {
        if B::GOVERNED && !self.budget.charge_row() {
            return false;
        }
        for d in 0..self.binding.len() {
            self.emit[self.slots[d]] = self.binding[d];
        }
        self.emitter.push(&self.emit, sink);
        self.stats.results += 1;
        self.stats
            .access
            .record(AccessKind::ResultWrite, self.emit.len() as u64 * WORD_BYTES);
        true
    }

    /// Returns `false` when the budget stopped the run at this level or
    /// below; cursors are unwound normally either way.
    fn level<C: SplitSpawn>(&mut self, d: usize, sink: &mut dyn ResultSink, ctl: &mut C) -> bool {
        // Entering a fresh subtree invalidates any split vetoes recorded
        // for this depth and below — they referred to sibling subtrees.
        ctl.level_entered(d);
        self.sup_at[d] = if d == self.range_depth {
            self.range_sup
        } else {
            None
        };
        if !self.open_level(d) {
            return true;
        }
        let mut live = true;
        // Recycle this depth's member vector: the recursion must not
        // allocate per visited node. The ranged level needs no range
        // checks here — `open_level` already clamped the cursors.
        let mut lf = Leapfrog::new(std::mem::take(&mut self.members_at[d]));
        let mut m = lf.search(&mut self.cursors, &mut self.stats);
        while let Some(v) = m {
            self.binding[d] = v;
            if d == self.range_depth && B::GOVERNED && self.budget.poll().is_some() {
                // Polling at the task's top level before the (possibly
                // expensive) subtree visit bounds the overshoot past a
                // deadline by one value there.
                live = false;
                break;
            }
            if d <= ctl.depth_cap() {
                // Match-point split poll (paper §3.4 spawn-on-match): the
                // current value v stays with this shard; only values
                // beyond the boundary are handed off.
                let (prefix, _) = self.binding.split_at(d);
                try_split_at(
                    self.plan,
                    &mut self.cursors,
                    &mut self.sup_at[d],
                    d,
                    prefix,
                    ctl,
                    &mut self.stats,
                );
            }
            let descended = if d + 1 == self.plan.arity() {
                self.emit_result(sink)
            } else {
                self.level(d + 1, sink, ctl)
            };
            if !descended {
                live = false;
                break;
            }
            m = lf.next(&mut self.cursors, &mut self.stats);
        }
        self.members_at[d] = lf.into_members();
        self.close_level(d);
        // A split at this depth opened a continuation lane for the
        // donor's output *after* this subtree; adopt it now so that the
        // stream stays tuple-for-tuple sequential around the handoff.
        if let Some(lane) = ctl.take_switch(d) {
            sink.redirect_lane(lane);
        }
        live
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CollectSink, CountSink};
    use triejax_query::patterns;
    use triejax_relation::{NoTally, Relation};

    fn catalog(edges: &[(u32, u32)]) -> Catalog {
        let mut c = Catalog::new();
        c.insert("G", Relation::from_pairs(edges.to_vec()));
        c
    }

    #[test]
    fn path3_on_a_line() {
        // 0 -> 1 -> 2 -> 3: paths of length 2 are (0,1,2) and (1,2,3).
        let c = catalog(&[(0, 1), (1, 2), (2, 3)]);
        let plan = CompiledQuery::compile(&patterns::path3()).unwrap();
        let mut sink = CollectSink::new();
        Lftj::new().execute(&plan, &c, &mut sink).unwrap();
        assert_eq!(sink.into_sorted(), vec![vec![0, 1, 2], vec![1, 2, 3]]);
    }

    #[test]
    fn cycle3_finds_each_rotation() {
        let c = catalog(&[(0, 1), (1, 2), (2, 0)]);
        let plan = CompiledQuery::compile(&patterns::cycle3()).unwrap();
        let mut sink = CollectSink::new();
        Lftj::new().execute(&plan, &c, &mut sink).unwrap();
        assert_eq!(
            sink.into_sorted(),
            vec![vec![0, 1, 2], vec![1, 2, 0], vec![2, 0, 1]]
        );
    }

    #[test]
    fn clique4_on_k4() {
        // Complete directed graph on 4 vertices: every ordered 4-tuple of
        // distinct vertices forms a clique4 match: 4! = 24.
        let mut edges = Vec::new();
        for a in 0..4u32 {
            for b in 0..4u32 {
                if a != b {
                    edges.push((a, b));
                }
            }
        }
        let c = catalog(&edges);
        let plan = CompiledQuery::compile(&patterns::clique4()).unwrap();
        let mut sink = CountSink::default();
        Lftj::new().execute(&plan, &c, &mut sink).unwrap();
        assert_eq!(sink.count(), 24);
    }

    #[test]
    fn empty_graph_yields_nothing() {
        let c = catalog(&[]);
        let plan = CompiledQuery::compile(&patterns::cycle4()).unwrap();
        let mut sink = CountSink::default();
        let stats = Lftj::new().execute(&plan, &c, &mut sink).unwrap();
        assert_eq!(sink.count(), 0);
        assert_eq!(stats.results, 0);
    }

    #[test]
    fn results_are_emitted_in_head_order_for_any_evaluation_order() {
        let c = catalog(&[(0, 1), (1, 2), (2, 3)]);
        let q = patterns::path3();
        let forward = CompiledQuery::compile(&q).unwrap();
        let backward = CompiledQuery::compile_with_order(&q, vec![2, 1, 0]).unwrap();
        let mut s1 = CollectSink::new();
        let mut s2 = CollectSink::new();
        Lftj::new().execute(&forward, &c, &mut s1).unwrap();
        Lftj::new().execute(&backward, &c, &mut s2).unwrap();
        assert_eq!(s1.into_sorted(), s2.into_sorted());
    }

    #[test]
    fn stats_count_work_and_results() {
        let c = catalog(&[(0, 1), (1, 2), (2, 0), (1, 0)]);
        let plan = CompiledQuery::compile(&patterns::path3()).unwrap();
        let mut sink = CountSink::default();
        let stats = Lftj::new().execute(&plan, &c, &mut sink).unwrap();
        assert_eq!(stats.results, sink.count());
        assert!(stats.match_ops > 0);
        assert!(stats.access.index_reads > 0);
        assert_eq!(stats.intermediates, 0);
        assert_eq!(stats.access.result_bytes, stats.results * 12);
    }

    #[test]
    fn missing_relation_is_an_error() {
        let plan = CompiledQuery::compile(&patterns::path3()).unwrap();
        let mut sink = CountSink::default();
        let err = Lftj::new().execute(&plan, &Catalog::new(), &mut sink);
        assert!(err.is_err());
    }

    #[test]
    fn untallied_run_matches_counting_run() {
        let c = catalog(&[(0, 1), (1, 2), (2, 0), (2, 3), (3, 1), (0, 2), (1, 3)]);
        for q in [patterns::path3(), patterns::cycle3(), patterns::clique4()] {
            let plan = CompiledQuery::compile(&q).unwrap();
            let mut counting = CollectSink::new();
            let cs = Lftj::new()
                .run_tallied::<Counting>(&plan, &c, &mut counting)
                .unwrap();
            let mut fast = CollectSink::new();
            let fs = Lftj::new()
                .run_tallied::<NoTally>(&plan, &c, &mut fast)
                .unwrap();
            // Tuple-for-tuple identical, including emission order.
            assert_eq!(counting.tuples(), fast.tuples(), "{}", q.name());
            // Same discrete work, no access accounting.
            assert_eq!(cs.lub_ops, fs.lub_ops);
            assert_eq!(cs.match_ops, fs.match_ops);
            assert_eq!(cs.results, fs.results);
            assert!(cs.memory_accesses() > 0);
            assert_eq!(fs.memory_accesses(), 0);
        }
    }

    #[test]
    fn budgeted_driver_delivers_an_exact_row_limited_prefix() {
        use std::sync::Arc;
        use triejax_exec::{BudgetHandle, CancelReason, RunBudget};

        let c = catalog(&[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)]);
        let plan = CompiledQuery::compile(&patterns::path3()).unwrap();
        let tries = TrieSet::build(&plan, &c).unwrap();

        let mut full = CollectSink::new();
        Driver::<Counting>::new(&plan, &tries)
            .unwrap()
            .run(&mut full);
        assert!(full.tuples().len() > 2);

        let shared = Arc::new(RunBudget::new().with_row_limit(2));
        let mut capped = CollectSink::new();
        let mut driver = Driver::<Counting, BudgetHandle>::budgeted(
            &plan,
            &tries,
            0,
            None,
            BudgetHandle::driving(Arc::clone(&shared)),
        )
        .unwrap();
        driver.run(&mut capped);
        assert_eq!(capped.tuples(), &full.tuples()[..2]);
        assert_eq!(driver.stats.results, 2);
        assert_eq!(shared.cancelled(), Some(CancelReason::RowLimit));
    }

    #[test]
    fn cancelled_token_stops_a_budgeted_driver_before_any_row() {
        use std::sync::Arc;
        use triejax_exec::{BudgetHandle, CancelToken, RunBudget};

        let c = catalog(&[(0, 1), (1, 2), (2, 3)]);
        let plan = CompiledQuery::compile(&patterns::path3()).unwrap();
        let tries = TrieSet::build(&plan, &c).unwrap();

        let token = CancelToken::new();
        token.cancel();
        let shared = Arc::new(RunBudget::new().with_cancel_token(token));
        let mut sink = CollectSink::new();
        let mut driver = Driver::<Counting, BudgetHandle>::budgeted(
            &plan,
            &tries,
            0,
            None,
            BudgetHandle::driving(Arc::clone(&shared)),
        )
        .unwrap();
        driver.run(&mut sink);
        assert!(sink.tuples().is_empty(), "poll at the first root advance");
        assert_eq!(driver.stats.results, 0);
    }

    #[test]
    fn root_range_driver_partitions_the_result_stream() {
        let c = catalog(&[(0, 1), (1, 2), (2, 3), (3, 4), (5, 6), (6, 7)]);
        let plan = CompiledQuery::compile(&patterns::path3()).unwrap();
        let tries = TrieSet::build(&plan, &c).unwrap();

        let mut full = CollectSink::new();
        let mut driver = Driver::<Counting>::new(&plan, &tries).unwrap();
        driver.run(&mut full);

        let mut lo = CollectSink::new();
        Driver::<Counting>::with_root_range(&plan, &tries, 0, Some(3))
            .unwrap()
            .run(&mut lo);
        let mut hi = CollectSink::new();
        Driver::<Counting>::with_root_range(&plan, &tries, 3, None)
            .unwrap()
            .run(&mut hi);

        let mut stitched = lo.tuples().to_vec();
        stitched.extend_from_slice(hi.tuples());
        assert_eq!(stitched, full.tuples());
    }
}
