use triejax_query::CompiledQuery;
use triejax_relation::{AccessKind, TrieCursor, Value, WORD_BYTES};

use crate::engine::head_slots;
use crate::{Catalog, EngineStats, JoinError, JoinEngine, Leapfrog, ResultSink, TrieSet};

/// LeapFrog TrieJoin (Veldhuizen, ICDT'14): the worst-case-optimal join
/// that backtracks over trie indexes, materializing *no* intermediate
/// results at the cost of recomputing recurring partial joins (paper §2.2).
///
/// # Example
///
/// ```
/// use triejax_join::{Catalog, CountSink, JoinEngine, Lftj};
/// use triejax_query::{patterns, CompiledQuery};
/// use triejax_relation::Relation;
///
/// let mut catalog = Catalog::new();
/// catalog.insert("G", Relation::from_pairs(vec![(0, 1), (1, 2), (2, 0)]));
/// let plan = CompiledQuery::compile(&patterns::path3())?;
/// let mut sink = CountSink::default();
/// let stats = Lftj::default().execute(&plan, &catalog, &mut sink)?;
/// assert_eq!(sink.count(), 3);
/// assert_eq!(stats.intermediates, 0); // LFTJ never materializes
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct Lftj {
    _private: (),
}

impl Lftj {
    /// Creates the engine; identical to `Default::default()`.
    pub fn new() -> Self {
        Self::default()
    }
}

impl JoinEngine for Lftj {
    fn name(&self) -> &'static str {
        "lftj"
    }

    fn execute(
        &mut self,
        plan: &CompiledQuery,
        catalog: &Catalog,
        sink: &mut dyn ResultSink,
    ) -> Result<EngineStats, JoinError> {
        let tries = TrieSet::build(plan, catalog)?;
        let mut driver = Driver::new(plan, &tries);
        driver.level(0, sink);
        Ok(driver.stats)
    }
}

/// Shared recursive backtracking driver (also the skeleton CTJ extends).
struct Driver<'a> {
    plan: &'a CompiledQuery,
    cursors: Vec<TrieCursor<'a>>,
    binding: Vec<Value>,
    emit: Vec<Value>,
    slots: Vec<usize>,
    pub stats: EngineStats,
}

impl<'a> Driver<'a> {
    fn new(plan: &'a CompiledQuery, tries: &'a TrieSet) -> Self {
        let cursors = (0..plan.atom_plans().len())
            .map(|i| TrieCursor::new(tries.for_atom(i)))
            .collect();
        let n = plan.arity();
        Driver {
            plan,
            cursors,
            binding: vec![0; n],
            emit: vec![0; n],
            slots: head_slots(plan),
            stats: EngineStats::default(),
        }
    }

    /// Opens level `d` on every participating cursor; on an empty open
    /// (possible only for an empty relation at the root) closes what was
    /// opened and returns `false`.
    fn open_level(&mut self, d: usize) -> bool {
        let parts = self.plan.atoms_at(d);
        for (i, &(a, lvl)) in parts.iter().enumerate() {
            if lvl > 0 {
                self.stats.expand_ops += 1;
            }
            if !self.cursors[a].open(&mut self.stats.access) {
                for &(b, _) in &parts[..i] {
                    self.cursors[b].up();
                }
                return false;
            }
        }
        true
    }

    fn close_level(&mut self, d: usize) {
        for &(a, _) in self.plan.atoms_at(d) {
            self.cursors[a].up();
        }
    }

    fn emit_result(&mut self, sink: &mut dyn ResultSink) {
        for d in 0..self.binding.len() {
            self.emit[self.slots[d]] = self.binding[d];
        }
        sink.push(&self.emit);
        self.stats.results += 1;
        self.stats
            .access
            .record(AccessKind::ResultWrite, self.emit.len() as u64 * WORD_BYTES);
    }

    fn level(&mut self, d: usize, sink: &mut dyn ResultSink) {
        if !self.open_level(d) {
            return;
        }
        let members: Vec<usize> = self.plan.atoms_at(d).iter().map(|&(a, _)| a).collect();
        let mut lf = Leapfrog::new(members);
        let mut m = lf.search(&mut self.cursors, &mut self.stats);
        while let Some(v) = m {
            self.binding[d] = v;
            if d + 1 == self.plan.arity() {
                self.emit_result(sink);
            } else {
                self.level(d + 1, sink);
            }
            m = lf.next(&mut self.cursors, &mut self.stats);
        }
        self.close_level(d);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CollectSink, CountSink};
    use triejax_query::patterns;
    use triejax_relation::Relation;

    fn catalog(edges: &[(u32, u32)]) -> Catalog {
        let mut c = Catalog::new();
        c.insert("G", Relation::from_pairs(edges.to_vec()));
        c
    }

    #[test]
    fn path3_on_a_line() {
        // 0 -> 1 -> 2 -> 3: paths of length 2 are (0,1,2) and (1,2,3).
        let c = catalog(&[(0, 1), (1, 2), (2, 3)]);
        let plan = CompiledQuery::compile(&patterns::path3()).unwrap();
        let mut sink = CollectSink::new();
        Lftj::new().execute(&plan, &c, &mut sink).unwrap();
        assert_eq!(sink.into_sorted(), vec![vec![0, 1, 2], vec![1, 2, 3]]);
    }

    #[test]
    fn cycle3_finds_each_rotation() {
        let c = catalog(&[(0, 1), (1, 2), (2, 0)]);
        let plan = CompiledQuery::compile(&patterns::cycle3()).unwrap();
        let mut sink = CollectSink::new();
        Lftj::new().execute(&plan, &c, &mut sink).unwrap();
        assert_eq!(
            sink.into_sorted(),
            vec![vec![0, 1, 2], vec![1, 2, 0], vec![2, 0, 1]]
        );
    }

    #[test]
    fn clique4_on_k4() {
        // Complete directed graph on 4 vertices: every ordered 4-tuple of
        // distinct vertices forms a clique4 match: 4! = 24.
        let mut edges = Vec::new();
        for a in 0..4u32 {
            for b in 0..4u32 {
                if a != b {
                    edges.push((a, b));
                }
            }
        }
        let c = catalog(&edges);
        let plan = CompiledQuery::compile(&patterns::clique4()).unwrap();
        let mut sink = CountSink::default();
        Lftj::new().execute(&plan, &c, &mut sink).unwrap();
        assert_eq!(sink.count(), 24);
    }

    #[test]
    fn empty_graph_yields_nothing() {
        let c = catalog(&[]);
        let plan = CompiledQuery::compile(&patterns::cycle4()).unwrap();
        let mut sink = CountSink::default();
        let stats = Lftj::new().execute(&plan, &c, &mut sink).unwrap();
        assert_eq!(sink.count(), 0);
        assert_eq!(stats.results, 0);
    }

    #[test]
    fn results_are_emitted_in_head_order_for_any_evaluation_order() {
        let c = catalog(&[(0, 1), (1, 2), (2, 3)]);
        let q = patterns::path3();
        let forward = CompiledQuery::compile(&q).unwrap();
        let backward = CompiledQuery::compile_with_order(&q, vec![2, 1, 0]).unwrap();
        let mut s1 = CollectSink::new();
        let mut s2 = CollectSink::new();
        Lftj::new().execute(&forward, &c, &mut s1).unwrap();
        Lftj::new().execute(&backward, &c, &mut s2).unwrap();
        assert_eq!(s1.into_sorted(), s2.into_sorted());
    }

    #[test]
    fn stats_count_work_and_results() {
        let c = catalog(&[(0, 1), (1, 2), (2, 0), (1, 0)]);
        let plan = CompiledQuery::compile(&patterns::path3()).unwrap();
        let mut sink = CountSink::default();
        let stats = Lftj::new().execute(&plan, &c, &mut sink).unwrap();
        assert_eq!(stats.results, sink.count());
        assert!(stats.match_ops > 0);
        assert!(stats.access.index_reads > 0);
        assert_eq!(stats.intermediates, 0);
        assert_eq!(stats.access.result_bytes, stats.results * 12);
    }

    #[test]
    fn missing_relation_is_an_error() {
        let plan = CompiledQuery::compile(&patterns::path3()).unwrap();
        let mut sink = CountSink::default();
        let err = Lftj::new().execute(&plan, &Catalog::new(), &mut sink);
        assert!(err.is_err());
    }
}
