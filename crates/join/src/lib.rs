//! Software join engines for the TrieJax reproduction.
//!
//! Six engines share one interface ([`JoinEngine`]) and one plan format
//! ([`triejax_query::CompiledQuery`]):
//!
//! * [`Lftj`] — LeapFrog TrieJoin (Veldhuizen, ICDT'14): the WCOJ backbone,
//!   zero intermediate results, recomputes recurring partial joins.
//! * [`Ctj`] — Cached TrieJoin (Kalinsky et al., EDBT'17): LFTJ plus a
//!   partial-join-result cache, the algorithm TrieJax implements in
//!   hardware (paper §2.2).
//! * [`GenericJoin`] — the set-intersection WCOJ formulation used by
//!   EmptyHeaded (Aberger et al., SIGMOD'16).
//! * [`PairwiseHash`] / [`PairwiseSortMerge`] — traditional left-deep
//!   binary join plans (hash and Q100's sort-merge operators), the
//!   algorithm class of Q100 and Graphicionado's pattern expansion; both
//!   materialize every intermediate relation.
//! * [`ParLftj`] / [`ParCtj`] — LFTJ and CTJ parallelized on the shared
//!   `triejax-exec` runtime: the first join variable's domain is split
//!   into many contiguous root ranges, scheduled on a work-stealing
//!   worker pool (the software analogue of TrieJax's dynamic
//!   spawn-on-match multithreading, paper §3.4), and emitted through
//!   batched [`ShardSink`]s into an order-preserving merge. `ParCtj`
//!   shares **one sharded partial-join-result cache across all workers**
//!   (lock-striped, bounded with per-stripe FIFO eviction,
//!   first-writer-wins insert races) — the software analogue of the
//!   on-chip PJR cache every TrieJax lane shares, and the reason its hit
//!   counts match sequential CTJ's instead of being capped below them.
//!
//! Engines count their work in [`EngineStats`] (operation counts, memory
//! touches, intermediate results, cache hits, shard/steal scheduling
//! counters), which the harness uses to regenerate the paper's Figures 17
//! and 18 and to drive the baseline performance models.
//!
//! Instrumentation is a compile-time choice through the [`Tally`] trait:
//! [`JoinEngine::execute`] always runs the [`Counting`] kernels (the
//! paper-figure mode), while each engine's `run_tallied::<NoTally>` runs
//! the *same* kernel with every access-accounting call compiled away —
//! the zero-overhead mode for throughput benchmarking.
//!
//! # Example
//!
//! ```
//! use triejax_join::{Catalog, CountSink, Ctj, JoinEngine, Lftj};
//! use triejax_query::{patterns, CompiledQuery};
//! use triejax_relation::Relation;
//!
//! let mut catalog = Catalog::new();
//! catalog.insert("G", Relation::from_pairs(vec![(0, 1), (1, 2), (2, 0), (0, 2)]));
//! let plan = CompiledQuery::compile(&patterns::cycle3())?;
//!
//! let mut count = CountSink::default();
//! Lftj::default().execute(&plan, &catalog, &mut count)?;
//! let mut count2 = CountSink::default();
//! Ctj::default().execute(&plan, &catalog, &mut count2)?;
//! assert_eq!(count.count(), count2.count()); // engines agree
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cache;
mod catalog;
mod ctj;
mod engine;
mod error;
mod generic;
mod intersect;
mod leapfrog;
mod lftj;
mod pairwise;
mod parctj;
mod parlftj;
mod session;
mod shard;
mod sink;
mod sortmerge;
mod stats;
mod triecache;
mod viewset;

pub use catalog::{Catalog, TrieSet};
pub use ctj::{Ctj, CtjConfig};
pub use engine::JoinEngine;
pub use error::JoinError;
pub use generic::GenericJoin;
pub use intersect::intersect_sorted;
pub use leapfrog::Leapfrog;
pub use lftj::Lftj;
pub use pairwise::PairwiseHash;
pub use parctj::ParCtj;
pub use parlftj::ParLftj;
pub use session::{
    QueryHandle, ResultStream, Session, WatchStream, WatchUpdate, COMPACT_RATIO_ENV,
};
pub use sink::{CollectSink, CountSink, ResultSink, ShardSink};
pub use sortmerge::PairwiseSortMerge;
pub use stats::EngineStats;
pub use triecache::{TrieCache, STORE_ENV, TRIE_CACHE_ENV};
pub use triejax_exec::{CancelReason, CancelToken, RunBudget};
pub use triejax_relation::{Counting, NoTally, RelationDelta, Tally};
pub use triejax_store::{StoreError, StoredCatalog, StoredTrie};
pub use viewset::DeltaMap;

/// Deterministic fault-injection harness for the parallel runtime,
/// re-exported for integration tests driving the engines through the
/// public API; see [`triejax_exec::faults`]. Compiled only with the
/// `faults` feature.
#[cfg(feature = "faults")]
pub use triejax_exec::faults;
