use std::collections::HashMap;

use triejax_query::{CompiledQuery, VarId};
use triejax_relation::{AccessKind, Counting, Tally, Value, WORD_BYTES};

use crate::sink::BatchEmitter;
use crate::{Catalog, EngineStats, JoinEngine, JoinError, ResultSink};

/// Traditional left-deep binary hash-join plan — the join-algorithm class
/// of Q100 and of Graphicionado's message-passing pattern expansion
/// (paper §2.1).
///
/// Atoms are joined in query order; each binary join materializes a full
/// intermediate relation, which is exactly the intermediate-result
/// explosion the AGM bound exposes (paper Figure 18 and Appendix A). All
/// intermediate tuples are counted in [`EngineStats::intermediates`] and
/// their reads/writes in the access counter.
///
/// # Example
///
/// ```
/// use triejax_join::{Catalog, CountSink, JoinEngine, PairwiseHash};
/// use triejax_query::{patterns, CompiledQuery};
/// use triejax_relation::Relation;
///
/// let mut catalog = Catalog::new();
/// catalog.insert("G", Relation::from_pairs(vec![(0, 1), (1, 2), (2, 0)]));
/// let plan = CompiledQuery::compile(&patterns::path4())?;
/// let mut sink = CountSink::default();
/// let stats = PairwiseHash::default().execute(&plan, &catalog, &mut sink)?;
/// assert!(stats.intermediates > 0); // pairwise always materializes
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct PairwiseHash {
    _private: (),
}

impl PairwiseHash {
    /// Creates the engine; identical to `Default::default()`.
    pub fn new() -> Self {
        Self::default()
    }

    /// Runs the query with an explicit [`Tally`] choice; see
    /// [`crate::Lftj::run_tallied`] for the counting/fast trade-off.
    ///
    /// # Errors
    ///
    /// Returns a [`JoinError`] when the catalog is missing a relation or a
    /// relation's arity mismatches its atom.
    pub fn run_tallied<T: Tally>(
        &mut self,
        plan: &CompiledQuery,
        catalog: &Catalog,
        sink: &mut dyn ResultSink,
    ) -> Result<EngineStats<T>, JoinError> {
        let mut stats = EngineStats::<T>::default();
        let query = plan.query();
        if query.is_projection() {
            return Err(JoinError::Plan {
                detail: "projected heads are not supported; every engine emits full joins".into(),
            });
        }

        // Seed with the first atom's tuples.
        let first = query.atoms().first().expect("validated queries have atoms");
        let rel = catalog
            .get(first.relation())
            .ok_or_else(|| JoinError::MissingRelation {
                name: first.relation().to_owned(),
            })?;
        if rel.arity() != first.arity() {
            return Err(JoinError::ArityMismatch {
                name: first.relation().to_owned(),
                atom_arity: first.arity(),
                relation_arity: rel.arity(),
            });
        }
        let mut schema: Vec<VarId> = first.vars().to_vec();
        let mut rows: Vec<Vec<Value>> = rel.iter().map(|t| t.to_vec()).collect();
        stats
            .access
            .record(AccessKind::IndexRead, rel.payload_bytes());

        for atom in &query.atoms()[1..] {
            let rel = catalog
                .get(atom.relation())
                .ok_or_else(|| JoinError::MissingRelation {
                    name: atom.relation().to_owned(),
                })?;
            if rel.arity() != atom.arity() {
                return Err(JoinError::ArityMismatch {
                    name: atom.relation().to_owned(),
                    atom_arity: atom.arity(),
                    relation_arity: rel.arity(),
                });
            }

            // Shared variables: (position in accumulated schema, position in atom).
            let shared: Vec<(usize, usize)> = schema
                .iter()
                .enumerate()
                .filter_map(|(si, v)| atom.vars().iter().position(|av| av == v).map(|ai| (si, ai)))
                .collect();
            let new_cols: Vec<usize> = (0..atom.arity())
                .filter(|ai| !shared.iter().any(|&(_, a)| a == *ai))
                .collect();

            // Build side: hash the atom's relation on the shared columns.
            let mut table: HashMap<Vec<Value>, Vec<&[Value]>> = HashMap::new();
            stats
                .access
                .record(AccessKind::IndexRead, rel.payload_bytes());
            for t in rel.iter() {
                let key: Vec<Value> = shared.iter().map(|&(_, ai)| t[ai]).collect();
                // Hash-table insertion is intermediate state.
                stats
                    .access
                    .record(AccessKind::Intermediate, t.len() as u64 * WORD_BYTES);
                table.entry(key).or_default().push(t);
            }

            // Probe side: every accumulated row.
            let mut next_rows = Vec::new();
            for row in &rows {
                stats.match_ops += 1;
                stats
                    .access
                    .record(AccessKind::Intermediate, row.len() as u64 * WORD_BYTES);
                let key: Vec<Value> = shared.iter().map(|&(si, _)| row[si]).collect();
                if let Some(matches) = table.get(&key) {
                    for t in matches {
                        let mut out = row.clone();
                        out.extend(new_cols.iter().map(|&ai| t[ai]));
                        stats
                            .access
                            .record(AccessKind::Intermediate, out.len() as u64 * WORD_BYTES);
                        next_rows.push(out);
                    }
                }
            }
            for &ai in &new_cols {
                schema.push(atom.vars()[ai]);
            }
            rows = next_rows;
            // Every materialized tuple of a non-final relation is an
            // intermediate result (the Figure 18 metric).
            if !std::ptr::eq(atom, query.atoms().last().expect("non-empty")) {
                stats.intermediates += rows.len() as u64;
            }
        }

        // Project to head order and emit.
        let head_pos: Vec<usize> = query
            .head()
            .iter()
            .map(|hv| {
                schema
                    .iter()
                    .position(|v| v == hv)
                    .expect("full join covers head")
            })
            .collect();
        let mut emit = vec![0; head_pos.len()];
        let mut emitter = BatchEmitter::new(head_pos.len());
        for row in &rows {
            for (slot, &pos) in head_pos.iter().enumerate() {
                emit[slot] = row[pos];
            }
            emitter.push(&emit, sink);
            stats.results += 1;
            stats
                .access
                .record(AccessKind::ResultWrite, emit.len() as u64 * WORD_BYTES);
        }
        emitter.flush(sink);
        Ok(stats)
    }
}

impl JoinEngine for PairwiseHash {
    fn name(&self) -> &'static str {
        "pairwise-hash"
    }

    fn execute(
        &mut self,
        plan: &CompiledQuery,
        catalog: &Catalog,
        sink: &mut dyn ResultSink,
    ) -> Result<EngineStats, JoinError> {
        self.run_tallied::<Counting>(plan, catalog, sink)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CollectSink, CountSink, Lftj};
    use triejax_query::patterns::{self, Pattern};
    use triejax_relation::Relation;

    fn catalog(edges: &[(u32, u32)]) -> Catalog {
        let mut c = Catalog::new();
        c.insert("G", Relation::from_pairs(edges.to_vec()));
        c
    }

    fn test_edges() -> Vec<(u32, u32)> {
        vec![
            (0, 1),
            (1, 2),
            (2, 0),
            (2, 3),
            (3, 1),
            (0, 2),
            (3, 0),
            (1, 3),
            (4, 1),
            (2, 4),
        ]
    }

    #[test]
    fn agrees_with_lftj_on_every_pattern() {
        let c = catalog(&test_edges());
        for p in Pattern::ALL {
            let plan = CompiledQuery::compile(&p.query()).unwrap();
            let mut a = CollectSink::new();
            let mut b = CollectSink::new();
            Lftj::new().execute(&plan, &c, &mut a).unwrap();
            PairwiseHash::new().execute(&plan, &c, &mut b).unwrap();
            assert_eq!(a.into_sorted(), b.into_sorted(), "{p}");
        }
    }

    #[test]
    fn pairwise_materializes_filtered_intermediates() {
        // Star-out graph: many length-2 paths, but no triangles. The
        // pairwise plan still materializes the whole path-2 relation.
        let mut edges = vec![];
        for i in 1..20u32 {
            edges.push((0, i));
            edges.push((i, 100 + i));
        }
        let c = catalog(&edges);
        let plan = CompiledQuery::compile(&patterns::cycle3()).unwrap();
        let mut sink = CountSink::default();
        let stats = PairwiseHash::new().execute(&plan, &c, &mut sink).unwrap();
        assert_eq!(sink.count(), 0);
        assert!(stats.intermediates >= 19, "path-2 intermediates exist");
    }

    #[test]
    fn wcoj_vs_pairwise_intermediate_gap() {
        // The Figure 18 premise: CTJ materializes no more intermediates
        // than the pairwise plan on the paper's queries.
        let c = catalog(&test_edges());
        for p in [Pattern::Path4, Pattern::Cycle4, Pattern::Clique4] {
            let plan = CompiledQuery::compile(&p.query()).unwrap();
            let mut s1 = CountSink::default();
            let pw = PairwiseHash::new().execute(&plan, &c, &mut s1).unwrap();
            let mut s2 = CountSink::default();
            let ctj = crate::Ctj::new().execute(&plan, &c, &mut s2).unwrap();
            assert!(
                ctj.intermediates <= pw.intermediates,
                "{p}: ctj {} > pairwise {}",
                ctj.intermediates,
                pw.intermediates
            );
        }
    }

    #[test]
    fn single_atom_query_scans() {
        let q = triejax_query::Query::builder("edges")
            .head(["x", "y"])
            .atom("G", ["x", "y"])
            .build()
            .unwrap();
        let plan = CompiledQuery::compile(&q).unwrap();
        let c = catalog(&[(1, 2), (3, 4)]);
        let mut sink = CollectSink::new();
        let stats = PairwiseHash::new().execute(&plan, &c, &mut sink).unwrap();
        assert_eq!(sink.into_sorted(), vec![vec![1, 2], vec![3, 4]]);
        assert_eq!(stats.intermediates, 0);
    }
}
