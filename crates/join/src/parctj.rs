use std::num::NonZeroUsize;
use std::sync::Mutex;

use triejax_query::CompiledQuery;
use triejax_relation::{Counting, Tally};

use crate::ctj::CtjDriver;
use crate::engine::head_slots;
use crate::shard::{execute_sharded, make_pool, plan_shards};
use crate::{Catalog, CtjConfig, EngineStats, JoinEngine, JoinError, ResultSink, TrieSet};

/// Parallel Cached TrieJoin: root-partitioned CTJ on the shared
/// [`triejax_exec::WorkerPool`] runtime, with one partial-join-result cache per worker.
///
/// "Flexible Caching in Trie Joins" (Kalinsky et al.) shows the PJR cache
/// is what makes CTJ competitive, so the parallel engine keeps it: every
/// worker owns a private cache that *persists across the root-range
/// shards it executes*. Cross-shard reuse is sound because cache entries
/// are keyed by the spec's key bindings only — a valid
/// [`triejax_query::CacheSpec`] guarantees the memoized match list
/// depends on nothing else — so a sub-join cached while working one root
/// range replays for every later range the worker picks up. At shard
/// join the per-worker caches' hit/miss/overflow counters are merged into
/// the returned [`EngineStats`] (total hits are at most sequential
/// [`crate::Ctj`]'s, since workers do not share entries).
///
/// Scheduling and emission are exactly [`crate::ParLftj`]'s: plan-seeded
/// root-range shards on the work-stealing pool, [`crate::ShardSink`]
/// batches through an order-preserving [`triejax_exec::OrderedMerge`].
/// The merged stream is
/// tuple-for-tuple identical to sequential [`crate::Ctj`] (and
/// [`crate::Lftj`]) — same tuples, same order.
///
/// # Example
///
/// ```
/// use triejax_join::{Catalog, CollectSink, Ctj, JoinEngine, ParCtj};
/// use triejax_query::{patterns, CompiledQuery};
/// use triejax_relation::Relation;
///
/// let mut catalog = Catalog::new();
/// catalog.insert("G", Relation::from_pairs(vec![(0, 1), (3, 1), (1, 5), (1, 6)]));
/// let plan = CompiledQuery::compile(&patterns::path3())?;
///
/// let mut seq = CollectSink::new();
/// Ctj::new().execute(&plan, &catalog, &mut seq)?;
/// let mut par = CollectSink::new();
/// ParCtj::with_pool(2).execute(&plan, &catalog, &mut par)?;
/// assert_eq!(seq.tuples(), par.tuples()); // identical, order included
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct ParCtj {
    /// Explicit worker count; `None` = `TRIEJAX_POOL` or one per core.
    workers: Option<NonZeroUsize>,
    /// Explicit shard count; `None` = seeded from the plan.
    granularity: Option<NonZeroUsize>,
    config: CtjConfig,
}

impl ParCtj {
    /// Engine with the default pool size, plan-seeded granularity and an
    /// unbounded cache; identical to `Default::default()`.
    pub fn new() -> Self {
        Self::default()
    }

    /// Engine with an explicit pool (worker) count.
    ///
    /// # Panics
    ///
    /// Panics if `workers == 0`.
    pub fn with_pool(workers: usize) -> Self {
        ParCtj {
            workers: Some(NonZeroUsize::new(workers).expect("workers must be positive")),
            granularity: None,
            config: CtjConfig::default(),
        }
    }

    /// Engine with an explicit per-worker cache configuration.
    pub fn with_config(config: CtjConfig) -> Self {
        ParCtj {
            workers: None,
            granularity: None,
            config,
        }
    }

    /// Sets the cache configuration, keeping the scheduling knobs.
    pub fn config(mut self, config: CtjConfig) -> Self {
        self.config = config;
        self
    }

    /// Sets an explicit shard count, keeping the pool size (otherwise the
    /// count is seeded from the plan).
    ///
    /// # Panics
    ///
    /// Panics if `shards == 0`.
    pub fn with_granularity(mut self, shards: usize) -> Self {
        self.granularity = Some(NonZeroUsize::new(shards).expect("shards must be positive"));
        self
    }

    /// The configured worker count, or `None` for automatic.
    pub fn workers(&self) -> Option<usize> {
        self.workers.map(NonZeroUsize::get)
    }

    /// The configured shard count, or `None` for plan-seeded.
    pub fn granularity(&self) -> Option<usize> {
        self.granularity.map(NonZeroUsize::get)
    }

    /// Runs the query with an explicit [`Tally`] choice; see
    /// [`crate::Lftj::run_tallied`] for the counting/fast trade-off.
    ///
    /// # Errors
    ///
    /// Returns a [`JoinError`] when the catalog is missing a relation, a
    /// relation's arity mismatches its atom, or the plan projects
    /// variables away from the head.
    pub fn run_tallied<T: Tally>(
        &mut self,
        plan: &CompiledQuery,
        catalog: &Catalog,
        sink: &mut dyn ResultSink,
    ) -> Result<EngineStats<T>, JoinError> {
        let tries = TrieSet::build(plan, catalog)?;
        let pool = make_pool(self.workers);
        let ranges = plan_shards(
            plan,
            catalog,
            &tries,
            pool.workers(),
            self.granularity.map(NonZeroUsize::get),
        );

        if ranges.len() <= 1 {
            let mut driver = CtjDriver::<T>::new(plan, &tries, self.config)?;
            driver.run(sink);
            let mut stats = driver.stats;
            stats.shards = 1;
            return Ok(stats);
        }

        // Validate the emission plan up front so shard workers cannot fail.
        head_slots(plan)?;
        let tries_ref = &tries;
        let config = self.config;
        // One lazily-created driver (and thus one PJR cache) per worker,
        // addressed by `WorkerCtx::worker`; a slot's mutex is only ever
        // taken by its owning worker during the run.
        let worker_drivers: Vec<Mutex<Option<CtjDriver<'_, T>>>> =
            (0..pool.workers().min(ranges.len()))
                .map(|_| Mutex::new(None))
                .collect();
        let (_, pool_stats) = execute_sharded(
            &pool,
            &ranges,
            plan.arity(),
            sink,
            |ctx, _lane, min, sup, shard_sink| {
                let mut slot = worker_drivers[ctx.worker]
                    .lock()
                    .expect("worker driver poisoned");
                let driver = slot.get_or_insert_with(|| {
                    let mut d = CtjDriver::new(plan, tries_ref, config)
                        .expect("emission plan validated before the parallel phase");
                    d.emit_passthrough(); // the ShardSink already batches
                    d
                });
                driver.run_range(min, sup, shard_sink);
            },
        );

        // Shard join: fold every worker's accumulated stats (cache
        // hit/miss/overflow counters included) into the run total.
        let mut stats = EngineStats::<T>::default();
        for slot in worker_drivers {
            if let Some(driver) = slot.into_inner().expect("worker driver poisoned") {
                stats.merge(&driver.stats);
            }
        }
        stats.shards = ranges.len() as u64;
        stats.steals = pool_stats.steals;
        Ok(stats)
    }
}

impl JoinEngine for ParCtj {
    fn name(&self) -> &'static str {
        "par-ctj"
    }

    fn execute(
        &mut self,
        plan: &CompiledQuery,
        catalog: &Catalog,
        sink: &mut dyn ResultSink,
    ) -> Result<EngineStats, JoinError> {
        self.run_tallied::<Counting>(plan, catalog, sink)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CollectSink, CountSink, Ctj, Lftj};
    use triejax_query::patterns::{self, Pattern};
    use triejax_relation::{NoTally, Relation};

    fn catalog(edges: &[(u32, u32)]) -> Catalog {
        let mut c = Catalog::new();
        c.insert("G", Relation::from_pairs(edges.to_vec()));
        c
    }

    fn test_edges() -> Vec<(u32, u32)> {
        let mut edges = vec![
            (0, 1),
            (1, 2),
            (2, 0),
            (2, 3),
            (3, 1),
            (0, 2),
            (3, 0),
            (1, 3),
            (4, 1),
            (2, 4),
        ];
        for i in 5..40u32 {
            edges.push((i, (i + 1) % 40));
            edges.push((i, (i * 7 + 3) % 40));
        }
        edges
    }

    #[test]
    fn agrees_with_sequential_ctj_in_order_for_every_pool_size() {
        let c = catalog(&test_edges());
        for p in Pattern::ALL {
            let plan = CompiledQuery::compile(&p.query()).unwrap();
            let mut reference = CollectSink::new();
            Ctj::new().execute(&plan, &c, &mut reference).unwrap();
            for workers in [1, 2, 3, 7, 64] {
                let mut sink = CollectSink::new();
                let stats = ParCtj::with_pool(workers)
                    .execute(&plan, &c, &mut sink)
                    .unwrap();
                assert_eq!(
                    sink.tuples(),
                    reference.tuples(),
                    "{p} with {workers} workers"
                );
                assert_eq!(stats.results as usize, reference.tuples().len());
            }
        }
    }

    #[test]
    fn agrees_with_lftj_too() {
        let c = catalog(&test_edges());
        let plan = CompiledQuery::compile(&patterns::path4()).unwrap();
        let mut reference = CollectSink::new();
        Lftj::new().execute(&plan, &c, &mut reference).unwrap();
        let mut sink = CollectSink::new();
        ParCtj::with_pool(3).execute(&plan, &c, &mut sink).unwrap();
        assert_eq!(sink.tuples(), reference.tuples());
    }

    #[test]
    fn per_worker_caches_report_merged_hit_stats() {
        // Heavily shared y values make caching pay off (cf. the sequential
        // CTJ tests): many x-parents funnel into one hub.
        let mut edges = Vec::new();
        for x in 0..30u32 {
            edges.push((x, 100));
        }
        for z in 200..220u32 {
            edges.push((100, z));
        }
        let c = catalog(&edges);
        let plan = CompiledQuery::compile(&patterns::path3()).unwrap();
        let mut seq_sink = CountSink::default();
        let seq = Ctj::new().execute(&plan, &c, &mut seq_sink).unwrap();
        let mut par_sink = CountSink::default();
        let par = ParCtj::with_pool(2)
            .execute(&plan, &c, &mut par_sink)
            .unwrap();
        assert_eq!(seq_sink.count(), par_sink.count());
        assert!(par.shards > 1, "hub graph must actually shard");
        // Every shard after a worker's first miss on y=100 replays from its
        // private cache: hits surface in the merged stats.
        assert!(par.cache_hits > 0, "expected cross-shard cache hits");
        assert!(par.cache_misses >= 1);
        assert!(
            par.cache_hits <= seq.cache_hits,
            "per-worker caches cannot beat the shared sequential cache"
        );
        assert_eq!(par.cache_hits + par.cache_misses, 30, "one lookup per x");
    }

    #[test]
    fn bounded_caches_stay_correct_in_parallel() {
        let c = catalog(&test_edges());
        let plan = CompiledQuery::compile(&patterns::path4()).unwrap();
        let mut reference = CollectSink::new();
        Ctj::new().execute(&plan, &c, &mut reference).unwrap();
        let cfg = CtjConfig {
            entry_capacity: Some(1),
            max_entries: Some(2),
        };
        let mut sink = CollectSink::new();
        ParCtj::with_config(cfg)
            .execute(&plan, &c, &mut sink)
            .unwrap();
        assert_eq!(sink.tuples(), reference.tuples());
    }

    #[test]
    fn untallied_parallel_run_matches() {
        let c = catalog(&test_edges());
        let plan = CompiledQuery::compile(&patterns::path3()).unwrap();
        let mut reference = CollectSink::new();
        Ctj::new().execute(&plan, &c, &mut reference).unwrap();
        let mut sink = CollectSink::new();
        let stats = ParCtj::with_pool(4)
            .run_tallied::<NoTally>(&plan, &c, &mut sink)
            .unwrap();
        assert_eq!(sink.tuples(), reference.tuples());
        assert_eq!(stats.memory_accesses(), 0);
    }

    #[test]
    fn explicit_granularity_is_respected() {
        let c = catalog(&test_edges());
        let plan = CompiledQuery::compile(&patterns::cycle3()).unwrap();
        let mut sink = CountSink::default();
        let stats = ParCtj::with_pool(2)
            .with_granularity(5)
            .execute(&plan, &c, &mut sink)
            .unwrap();
        assert_eq!(stats.shards, 5);
        assert_eq!(ParCtj::new().with_granularity(5).granularity(), Some(5));
    }

    #[test]
    fn empty_graph_yields_nothing() {
        let c = catalog(&[]);
        let plan = CompiledQuery::compile(&patterns::path4()).unwrap();
        let mut sink = CountSink::default();
        let stats = ParCtj::with_pool(4).execute(&plan, &c, &mut sink).unwrap();
        assert_eq!(sink.count(), 0);
        assert_eq!(stats.results, 0);
    }

    #[test]
    fn missing_relation_is_an_error() {
        let plan = CompiledQuery::compile(&patterns::path3()).unwrap();
        let mut sink = CountSink::default();
        assert!(ParCtj::new()
            .execute(&plan, &Catalog::new(), &mut sink)
            .is_err());
    }

    #[test]
    fn projected_plans_error_gracefully() {
        let q = triejax_query::Query::builder("pairs")
            .head(["x", "z"])
            .atom("G", ["x", "y"])
            .atom("G", ["y", "z"])
            .build_projected()
            .unwrap();
        let plan = CompiledQuery::compile(&q).unwrap();
        let c = catalog(&test_edges());
        let mut sink = CountSink::default();
        let err = ParCtj::with_pool(2).execute(&plan, &c, &mut sink);
        assert!(matches!(err, Err(JoinError::Plan { .. })));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_workers_panics() {
        let _ = ParCtj::with_pool(0);
    }
}
