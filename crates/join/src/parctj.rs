use std::num::NonZeroUsize;
use std::sync::Mutex;
use std::time::Duration;

use triejax_exec::{Budget, BudgetHandle, CancelToken, NoBudget, RunBudget};
use triejax_query::CompiledQuery;
use triejax_relation::{Counting, Tally};

use crate::cache::{LocalPjr, SharedPjrCache, SharedPjrHandle};
use crate::ctj::{plan_cache_mask, CtjDriver};
use crate::engine::head_slots;
use crate::shard::{
    can_split, compose_budget, env_split, env_split_depth, execute_sharded, execute_split,
    make_pool, plan_shards,
};
use crate::viewset::{plan_touches_delta, CursorSet, MergeSet};
use crate::{
    Catalog, CtjConfig, DeltaMap, EngineStats, JoinEngine, JoinError, ResultSink, TrieCache,
    TrieSet,
};
use triejax_exec::WorkerPool;

/// Name of the environment variable supplying the default shared-cache
/// capacity (total entries; `0` disables caching) for engines that were
/// not given an explicit [`CtjConfig`]. CI uses it (together with
/// `TRIEJAX_POOL`) to force the eviction and contention paths through the
/// whole test suite.
pub(crate) const CACHE_CAP_ENV: &str = "TRIEJAX_CACHE_CAP";

/// Name of the environment variable supplying the default adaptive-cache
/// choice ([`CtjConfig::adaptive`]) for engines that were not given an
/// explicit config. Accepts the usual on/off spellings.
pub(crate) const CACHE_ADAPT_ENV: &str = "TRIEJAX_CACHE_ADAPT";

/// Parallel Cached TrieJoin: root-partitioned CTJ on the shared
/// [`triejax_exec::WorkerPool`] runtime, with **one partial-join-result
/// cache shared by all workers** — the software analogue of the paper's
/// on-chip PJR cache, which every TrieJax lane reads and writes (§3.5).
///
/// "Flexible Caching in Trie Joins" (Kalinsky et al.) shows the PJR cache
/// is what makes CTJ competitive, and sharing it is where the speedup
/// lives: entries are keyed by the spec's key bindings only — a valid
/// [`triejax_query::CacheSpec`] guarantees the memoized match list
/// depends on nothing else — so an entry built by *any* worker in *any*
/// root range replays for every other worker and range. (The per-worker
/// caches this design replaced structurally capped hits below sequential
/// [`crate::Ctj`]'s; the shared cache restores them — a property the
/// conformance suite asserts.) The cache is lock-striped
/// ([`triejax_exec::Striped`]) with hash-determined stripe selection,
/// bounded by [`CtjConfig::max_entries`] as a *total* capacity with
/// per-stripe FIFO eviction, and insert races resolve first-writer-wins
/// with race-deduped miss accounting (`EngineStats::{cache_evictions,
/// cache_races, cache_contention}` report the churn).
///
/// Engines without an explicit config read the default capacity from the
/// `TRIEJAX_CACHE_CAP` environment variable (unset = unbounded).
///
/// Scheduling and emission are exactly [`crate::ParLftj`]'s: plan-seeded
/// root-range shards on the work-stealing pool, [`crate::ShardSink`]
/// batches through an order-preserving [`triejax_exec::OrderedMerge`].
/// The merged stream is tuple-for-tuple identical to sequential
/// [`crate::Ctj`] (and [`crate::Lftj`]) — same tuples, same order.
///
/// # Example
///
/// ```
/// use triejax_join::{Catalog, CollectSink, Ctj, JoinEngine, ParCtj};
/// use triejax_query::{patterns, CompiledQuery};
/// use triejax_relation::Relation;
///
/// let mut catalog = Catalog::new();
/// catalog.insert("G", Relation::from_pairs(vec![(0, 1), (3, 1), (1, 5), (1, 6)]));
/// let plan = CompiledQuery::compile(&patterns::path3())?;
///
/// let mut seq = CollectSink::new();
/// Ctj::new().execute(&plan, &catalog, &mut seq)?;
/// let mut par = CollectSink::new();
/// ParCtj::with_pool(2).execute(&plan, &catalog, &mut par)?;
/// assert_eq!(seq.tuples(), par.tuples()); // identical, order included
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct ParCtj {
    /// Explicit worker count; `None` = `TRIEJAX_POOL` or one per core.
    workers: Option<NonZeroUsize>,
    /// Explicit shard count; `None` = seeded from the plan.
    granularity: Option<NonZeroUsize>,
    /// Explicit cache configuration; `None` = unbounded entries with the
    /// shared capacity taken from `TRIEJAX_CACHE_CAP` (if set).
    config: Option<CtjConfig>,
    /// Explicit dynamic-splitting choice; `None` = `TRIEJAX_SPLIT` or off.
    split: Option<bool>,
    /// Explicit sub-root split depth cap; `None` = `TRIEJAX_SPLIT_DEPTH`
    /// or 0 (root-only splits).
    split_depth: Option<usize>,
    /// Explicit wall-clock deadline; `None` = `TRIEJAX_DEADLINE_MS` or none.
    deadline: Option<Duration>,
    /// Explicit result-row cap; `None` = `TRIEJAX_ROW_LIMIT` or none.
    row_limit: Option<u64>,
    /// Cap on charged intermediate tuples (cache entry rows); builder-only.
    intermediate_limit: Option<u64>,
    /// External cancellation token the caller can fire from another thread.
    cancel: Option<CancelToken>,
    /// Cross-query trie cache choice: `None` = the process-wide default
    /// (`TRIEJAX_TRIE_CACHE_MB`), `Some(None)` = explicitly disabled,
    /// `Some(Some(c))` = an explicit cache instance.
    trie_cache: Option<Option<std::sync::Arc<TrieCache>>>,
}

impl ParCtj {
    /// Engine with the default pool size, plan-seeded granularity and the
    /// default cache capacity (`TRIEJAX_CACHE_CAP` or unbounded);
    /// identical to `Default::default()`.
    pub fn new() -> Self {
        Self::default()
    }

    /// Engine with an explicit pool (worker) count.
    ///
    /// # Panics
    ///
    /// Panics if `workers == 0`.
    pub fn with_pool(workers: usize) -> Self {
        ParCtj {
            workers: Some(NonZeroUsize::new(workers).expect("workers must be positive")),
            ..Self::default()
        }
    }

    /// Engine with an explicit cache configuration
    /// ([`CtjConfig::max_entries`] is the shared cache's *total*
    /// capacity). An explicit config — even the default unbounded one —
    /// overrides `TRIEJAX_CACHE_CAP`.
    pub fn with_config(config: CtjConfig) -> Self {
        ParCtj {
            config: Some(config),
            ..Self::default()
        }
    }

    /// Sets the cache configuration, keeping the scheduling knobs; see
    /// [`with_config`](Self::with_config).
    pub fn config(mut self, config: CtjConfig) -> Self {
        self.config = Some(config);
        self
    }

    /// Sets the shared cache's total entry capacity (`0` disables
    /// caching), keeping the rest of the configuration.
    pub fn cache_capacity(mut self, entries: usize) -> Self {
        let mut config = self.config.unwrap_or_default();
        config.max_entries = Some(entries);
        self.config = Some(config);
        self
    }

    /// Sets an explicit shard count, keeping the pool size (otherwise the
    /// count is seeded from the plan).
    ///
    /// # Panics
    ///
    /// Panics if `shards == 0`.
    pub fn with_granularity(mut self, shards: usize) -> Self {
        self.granularity = Some(NonZeroUsize::new(shards).expect("shards must be positive"));
        self
    }

    /// The configured worker count, or `None` for automatic.
    pub fn workers(&self) -> Option<usize> {
        self.workers.map(NonZeroUsize::get)
    }

    /// The configured shard count, or `None` for plan-seeded.
    pub fn granularity(&self) -> Option<usize> {
        self.granularity.map(NonZeroUsize::get)
    }

    /// Enables or disables dynamic shard splitting, overriding the
    /// `TRIEJAX_SPLIT` environment default; see
    /// [`crate::ParLftj::with_split`] for the full protocol. Splitting
    /// never moves the shared PJR cache: entries are keyed by bindings
    /// alone, so both halves of a split keep hitting the same entries.
    ///
    /// ```
    /// use triejax_join::ParCtj;
    ///
    /// let engine = ParCtj::with_pool(4).with_split(true);
    /// assert_eq!(engine.splitting(), Some(true));
    /// ```
    pub fn with_split(mut self, on: bool) -> Self {
        self.split = Some(on);
        self
    }

    /// The configured splitting choice, or `None` for the `TRIEJAX_SPLIT`
    /// environment default.
    pub fn splitting(&self) -> Option<bool> {
        self.split
    }

    /// Caps how deep dynamic splits may donate work, overriding the
    /// `TRIEJAX_SPLIT_DEPTH` environment default; see
    /// [`crate::ParLftj::with_split_depth`] for the full protocol. One
    /// CTJ-specific rule: a level being recorded into the PJR cache never
    /// donates its tail (the published entry must hold the level's whole
    /// match list), so splits only fire at depths without a live cache
    /// spec.
    pub fn with_split_depth(mut self, depth: usize) -> Self {
        self.split_depth = Some(depth);
        self
    }

    /// The configured split-depth cap, or `None` for the
    /// `TRIEJAX_SPLIT_DEPTH` environment default.
    pub fn split_depth(&self) -> Option<usize> {
        self.split_depth
    }

    /// The split-depth cap this run will use; see
    /// [`crate::ParLftj::effective_split_depth`].
    ///
    /// # Panics
    ///
    /// Panics when `TRIEJAX_SPLIT_DEPTH` is consulted and set to anything
    /// but a non-negative integer or `"max"`.
    pub fn effective_split_depth(&self) -> usize {
        self.split_depth.unwrap_or_else(env_split_depth)
    }

    /// The splitting choice this run will use: the explicit one if set,
    /// otherwise the `TRIEJAX_SPLIT` environment default (off when the
    /// variable is unset); see [`crate::ParLftj::effective_split`].
    ///
    /// # Panics
    ///
    /// Panics when `TRIEJAX_SPLIT` is consulted and set to anything but a
    /// recognised on/off spelling.
    pub fn effective_split(&self) -> bool {
        self.split.unwrap_or_else(env_split)
    }

    /// The cache configuration this run will use: the explicit one if
    /// set, otherwise unbounded entries with `TRIEJAX_CACHE_CAP` (when
    /// present in the environment) as the shared capacity.
    ///
    /// # Panics
    ///
    /// Panics when `TRIEJAX_CACHE_CAP` is consulted and set to anything
    /// but a non-negative integer — an explicitly configured capacity
    /// that silently fell back to unbounded would defeat its purpose
    /// (e.g. CI pinning a tiny capacity to force the eviction paths).
    pub fn effective_config(&self) -> CtjConfig {
        self.config.unwrap_or_else(|| CtjConfig {
            entry_capacity: None,
            max_entries: env_cache_cap(),
            adaptive: env_cache_adapt(),
        })
    }

    /// Enables or disables the cost-based adaptive cache policy
    /// ([`CtjConfig::adaptive`]) on top of the current configuration,
    /// overriding the `TRIEJAX_CACHE_ADAPT` environment default.
    pub fn with_cache_adapt(mut self, on: bool) -> Self {
        let mut config = self.effective_config();
        config.adaptive = on;
        self.config = Some(config);
        self
    }

    /// Caps the run's wall-clock time; see
    /// [`crate::ParLftj::with_deadline`] for the cancellation contract.
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Caps delivered result rows at `limit`; see
    /// [`crate::ParLftj::with_row_limit`] for the exact-prefix contract.
    pub fn with_row_limit(mut self, limit: u64) -> Self {
        self.row_limit = Some(limit);
        self
    }

    /// Caps charged intermediate tuples — for CTJ that is the rows
    /// recorded into partial-join-result cache entries — at `limit`.
    pub fn with_intermediate_limit(mut self, limit: u64) -> Self {
        self.intermediate_limit = Some(limit);
        self
    }

    /// Ties every run of this engine to `token`; see
    /// [`crate::ParLftj::with_cancel_token`].
    pub fn with_cancel_token(mut self, token: CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }

    /// Serves and fills trie builds through `cache`, overriding the
    /// `TRIEJAX_TRIE_CACHE_MB` process default; see
    /// [`crate::ParLftj::with_trie_cache`].
    pub fn with_trie_cache(mut self, cache: std::sync::Arc<TrieCache>) -> Self {
        self.trie_cache = Some(Some(cache));
        self
    }

    /// Disables the cross-query trie cache for this engine even when
    /// `TRIEJAX_TRIE_CACHE_MB` enables one process-wide.
    pub fn without_trie_cache(mut self) -> Self {
        self.trie_cache = Some(None);
        self
    }

    /// The trie cache the next run will consult: the explicit choice if
    /// one was made, otherwise the process-wide
    /// [`TrieCache::global`] default.
    ///
    /// # Panics
    ///
    /// Panics when `TRIEJAX_TRIE_CACHE_MB` is consulted (first call
    /// process-wide) and set to anything but a non-negative integer.
    pub fn effective_trie_cache(&self) -> Option<std::sync::Arc<TrieCache>> {
        match &self.trie_cache {
            Some(choice) => choice.clone(),
            None => TrieCache::global(),
        }
    }

    /// The shared [`RunBudget`] the next run will be governed by, or
    /// `None` for an ungoverned run; see
    /// [`crate::ParLftj::effective_budget`].
    ///
    /// # Panics
    ///
    /// Panics when a consulted environment knob (`TRIEJAX_DEADLINE_MS`,
    /// `TRIEJAX_ROW_LIMIT`) is set to anything but a non-negative integer.
    pub fn effective_budget(&self) -> Option<std::sync::Arc<RunBudget>> {
        compose_budget(
            self.deadline,
            self.row_limit,
            self.intermediate_limit,
            self.cancel.as_ref(),
        )
    }

    /// Runs the query with an explicit [`Tally`] choice; see
    /// [`crate::Lftj::run_tallied`] for the counting/fast trade-off.
    ///
    /// # Errors
    ///
    /// Returns a [`JoinError`] when the catalog is missing a relation, a
    /// relation's arity mismatches its atom, or the plan projects
    /// variables away from the head.
    pub fn run_tallied<T: Tally>(
        &mut self,
        plan: &CompiledQuery,
        catalog: &Catalog,
        sink: &mut dyn ResultSink,
    ) -> Result<EngineStats<T>, JoinError> {
        self.run_tallied_opt(plan, catalog, None, sink)
    }

    /// Runs the query with the pending mutations in `deltas` folded in;
    /// see [`crate::ParLftj::run_tallied_with`] for the merge semantics
    /// and the frozen fast path. Cache-spec validity is unaffected: PJR
    /// entries are keyed by bindings alone, and a merged view changes
    /// which bindings occur, not what an entry means.
    ///
    /// # Errors
    ///
    /// As [`run_tallied`](Self::run_tallied), plus an arity mismatch
    /// between a delta and its atom.
    pub fn run_tallied_with<T: Tally>(
        &mut self,
        plan: &CompiledQuery,
        catalog: &Catalog,
        deltas: &DeltaMap,
        sink: &mut dyn ResultSink,
    ) -> Result<EngineStats<T>, JoinError> {
        self.run_tallied_opt(plan, catalog, Some(deltas), sink)
    }

    /// Shared budget dispatch of [`run_tallied`](Self::run_tallied) and
    /// [`run_tallied_with`](Self::run_tallied_with).
    fn run_tallied_opt<T: Tally>(
        &mut self,
        plan: &CompiledQuery,
        catalog: &Catalog,
        deltas: Option<&DeltaMap>,
        sink: &mut dyn ResultSink,
    ) -> Result<EngineStats<T>, JoinError> {
        match self.effective_budget() {
            // Ungoverned: monomorphize with NoBudget — byte-identical to
            // the pre-governance engine.
            None => self
                .run_budgeted::<T, NoBudget>(plan, catalog, deltas, sink, NoBudget, NoBudget, None),
            Some(shared) => {
                let stats = self.run_budgeted::<T, BudgetHandle>(
                    plan,
                    catalog,
                    deltas,
                    sink,
                    BudgetHandle::driving(shared.clone()),
                    BudgetHandle::worker(shared.clone()),
                    Some(&shared),
                )?;
                match shared.cancelled() {
                    Some(reason) => Err(JoinError::Cancelled {
                        reason,
                        partial: Box::new(stats.to_counting()),
                    }),
                    None => Ok(stats),
                }
            }
        }
    }

    /// Cursor-set dispatch, as `ParLftj::run_budgeted`: frozen plans get
    /// a [`TrieSet`], delta-touching plans a [`MergeSet`].
    #[allow(clippy::too_many_arguments)]
    fn run_budgeted<T: Tally, B: Budget + Clone + Send + Sync>(
        &self,
        plan: &CompiledQuery,
        catalog: &Catalog,
        deltas: Option<&DeltaMap>,
        sink: &mut dyn ResultSink,
        driving: B,
        worker: B,
        budget: Option<&RunBudget>,
    ) -> Result<EngineStats<T>, JoinError> {
        let pool = make_pool(self.workers);
        let cache = self.effective_trie_cache();
        // build_on times only actual cold-build work internally, so a
        // query fully served from the cache (or a preloaded store) reports
        // trie_build_ns == 0 exactly.
        match deltas.filter(|d| plan_touches_delta(plan, d)) {
            None => {
                let (tries, hits, ns) = TrieSet::build_on(plan, catalog, &pool, cache.as_deref())?;
                self.run_set_budgeted(
                    plan, catalog, &tries, &pool, hits, ns, sink, driving, worker, budget,
                )
            }
            Some(d) => {
                let (set, hits, ns) =
                    MergeSet::build_on(plan, catalog, d, &pool, cache.as_deref())?;
                self.run_set_budgeted(
                    plan, catalog, &set, &pool, hits, ns, sink, driving, worker, budget,
                )
            }
        }
    }

    /// The engine body, generic over the run's [`Budget`] and the
    /// [`CursorSet`] its shard drivers walk; same private contract as
    /// `ParLftj::run_set_budgeted` — `driving` for the sequential fast
    /// path (charges the row quota at emit), `worker` cloned into every
    /// shard driver (flag-only), `budget` polled by drain and task
    /// wrappers.
    #[allow(clippy::too_many_arguments)]
    fn run_set_budgeted<'s, T: Tally, B: Budget + Clone + Send + Sync, S: CursorSet<'s>>(
        &self,
        plan: &'s CompiledQuery,
        catalog: &Catalog,
        set: &'s S,
        pool: &WorkerPool,
        trie_cache_hits: u64,
        trie_build_ns: u64,
        sink: &mut dyn ResultSink,
        driving: B,
        worker: B,
        budget: Option<&RunBudget>,
    ) -> Result<EngineStats<T>, JoinError> {
        // Splitting needs a spare worker to hand work to, plus either a
        // root domain wide enough to carve or permission to split below
        // the root (where a narrow root domain is irrelevant); otherwise
        // fall back to the static schedule (and its sequential
        // single-shard fast path).
        let depth_cap = self.effective_split_depth();
        let split = self.effective_split()
            && pool.workers() > 1
            && (can_split(plan, set) || depth_cap >= 1);
        let ranges = plan_shards(
            plan,
            catalog,
            set,
            pool.workers(),
            self.granularity.map(NonZeroUsize::get),
            split,
        );
        let config = self.effective_config();

        // With splitting on, even a single seeded range spreads itself
        // across the idle pool; without it, a lone range runs
        // sequentially.
        if !split && ranges.len() <= 1 {
            // Single-shard fast path: one driver on a worker-local store
            // (no stripe locks to pay when nothing is shared). The
            // capacity then bounds live entries by dropping new inserts
            // rather than evicting.
            let mut driver = CtjDriver::<T, LocalPjr, B, S::Cur>::with_store_budget(
                plan,
                set,
                config,
                LocalPjr::with_adaptive(config, plan.arity()),
                driving,
            )?;
            if config.adaptive {
                driver.set_cache_mask(plan_cache_mask(plan, catalog));
            }
            driver.run(sink);
            let mut stats = driver.stats;
            stats.shards = 1;
            stats.trie_build_ns = trie_build_ns;
            stats.trie_cache_hits = trie_cache_hits;
            return Ok(stats);
        }

        // Validate the emission plan up front so shard workers cannot fail.
        head_slots(plan)?;
        // With splitting, every configured worker may end up running a
        // spawned shard; without it, a run never uses more workers than
        // it has planned ranges.
        let workers = if split {
            pool.workers()
        } else {
            pool.workers().min(ranges.len())
        };
        // One cache shared by every worker, striped for the worker count,
        // pre-sized from the plan's entry estimate over the catalog.
        let entries_hint = plan.cache_entries_estimate(|name| catalog.get(name).map(|r| r.len()));
        let mut cache = SharedPjrCache::new(workers, config.max_entries, entries_hint);
        if config.adaptive {
            // Probation state is shared: a depth demoted by one worker is
            // demoted for all of them.
            cache = cache.with_adaptive(plan.arity());
        }
        let cache = cache;
        let cache_mask = config.adaptive.then(|| plan_cache_mask(plan, catalog));
        // One lazily-created driver per worker, addressed by
        // `WorkerCtx::worker`; a slot's mutex is only ever taken by its
        // owning worker during the run. Each driver holds its own handle
        // onto the shared cache.
        #[allow(clippy::type_complexity)]
        let worker_drivers: Vec<
            Mutex<Option<CtjDriver<'_, T, SharedPjrHandle<'_>, B, S::Cur>>>,
        > = (0..workers).map(|_| Mutex::new(None)).collect();
        let new_driver = || {
            let mut d =
                CtjDriver::with_store_budget(plan, set, config, cache.handle(), worker.clone())
                    .expect("emission plan validated before the parallel phase");
            if let Some(mask) = &cache_mask {
                d.set_cache_mask(mask.clone());
            }
            d.emit_passthrough(); // the ShardSink already batches
            d
        };
        let pool_stats = if split {
            let (_, pool_stats) = execute_split(
                pool,
                &ranges,
                plan.arity(),
                depth_cap,
                sink,
                budget,
                |ctx, depth, prefix, min, sup, shard_sink, ctl| {
                    let mut slot = worker_drivers[ctx.worker]
                        .lock()
                        .expect("worker driver poisoned");
                    let driver = slot.get_or_insert_with(new_driver);
                    driver.run_split_at(depth, prefix, min, sup, shard_sink, ctl);
                },
            );
            pool_stats
        } else {
            let (_, pool_stats) = execute_sharded(
                pool,
                &ranges,
                plan.arity(),
                sink,
                budget,
                |ctx, _lane, min, sup, shard_sink| {
                    let mut slot = worker_drivers[ctx.worker]
                        .lock()
                        .expect("worker driver poisoned");
                    let driver = slot.get_or_insert_with(new_driver);
                    driver.run_range(min, sup, shard_sink);
                },
            );
            pool_stats
        };

        // Shard join: fold every worker's accumulated stats into the run
        // total. Cache counters sum cleanly because the shared store
        // already deduped insert races (a raced build is a late hit plus
        // a `cache_races` tick, never a second miss).
        let mut stats = EngineStats::<T>::default();
        for slot in worker_drivers {
            if let Some(driver) = slot.into_inner().expect("worker driver poisoned") {
                stats.merge(&driver.stats);
            }
        }
        // Split shards are shards too: count every task the pool ran.
        stats.shards = pool_stats.tasks as u64;
        stats.steals = pool_stats.steals;
        stats.trie_build_ns = trie_build_ns;
        stats.trie_cache_hits = trie_cache_hits;
        Ok(stats)
    }
}

impl JoinEngine for ParCtj {
    fn name(&self) -> &'static str {
        "par-ctj"
    }

    fn execute(
        &mut self,
        plan: &CompiledQuery,
        catalog: &Catalog,
        sink: &mut dyn ResultSink,
    ) -> Result<EngineStats, JoinError> {
        self.run_tallied::<Counting>(plan, catalog, sink)
    }
}

/// Reads the default adaptive-cache choice from `TRIEJAX_CACHE_ADAPT`.
/// Off when the variable is unset or empty; panics on junk — an
/// explicitly requested policy that silently fell back to "off" would
/// defeat its purpose (e.g. CI pinning the adaptive paths on).
fn env_cache_adapt() -> bool {
    match std::env::var(CACHE_ADAPT_ENV) {
        Err(_) => false,
        Ok(v) => match v.trim() {
            "" => false,
            "1" | "true" | "on" => true,
            "0" | "false" | "off" => false,
            other => panic!("{CACHE_ADAPT_ENV} must be an on/off spelling, got {other:?}"),
        },
    }
}

/// Reads the default shared-cache capacity from `TRIEJAX_CACHE_CAP`.
/// `None` when the variable is unset or empty; panics on junk (see
/// [`ParCtj::effective_config`]). `0` is valid and disables caching.
fn env_cache_cap() -> Option<usize> {
    let v = std::env::var(CACHE_CAP_ENV).ok()?;
    if v.trim().is_empty() {
        // CI matrices pass "" for "no cap"; treat it as unset.
        return None;
    }
    Some(
        v.trim().parse::<usize>().unwrap_or_else(|_| {
            panic!("{CACHE_CAP_ENV} must be a non-negative integer, got {v:?}")
        }),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CollectSink, CountSink, Ctj, Lftj};
    use triejax_query::patterns::{self, Pattern};
    use triejax_relation::{NoTally, Relation};

    fn catalog(edges: &[(u32, u32)]) -> Catalog {
        let mut c = Catalog::new();
        c.insert("G", Relation::from_pairs(edges.to_vec()));
        c
    }

    fn test_edges() -> Vec<(u32, u32)> {
        let mut edges = vec![
            (0, 1),
            (1, 2),
            (2, 0),
            (2, 3),
            (3, 1),
            (0, 2),
            (3, 0),
            (1, 3),
            (4, 1),
            (2, 4),
        ];
        for i in 5..40u32 {
            edges.push((i, (i + 1) % 40));
            edges.push((i, (i * 7 + 3) % 40));
        }
        edges
    }

    /// Hub graph: many x-parents funnel into one shared y, so caching
    /// pays off and hit counts are exactly predictable.
    fn hub_edges() -> Vec<(u32, u32)> {
        let mut edges = Vec::new();
        for x in 0..30u32 {
            edges.push((x, 100));
        }
        for z in 200..220u32 {
            edges.push((100, z));
        }
        edges
    }

    #[test]
    fn agrees_with_sequential_ctj_in_order_for_every_pool_size() {
        let c = catalog(&test_edges());
        for p in Pattern::ALL {
            let plan = CompiledQuery::compile(&p.query()).unwrap();
            let mut reference = CollectSink::new();
            Ctj::new().execute(&plan, &c, &mut reference).unwrap();
            for workers in [1, 2, 3, 7, 64] {
                let mut sink = CollectSink::new();
                let stats = ParCtj::with_pool(workers)
                    .execute(&plan, &c, &mut sink)
                    .unwrap();
                assert_eq!(
                    sink.tuples(),
                    reference.tuples(),
                    "{p} with {workers} workers"
                );
                assert_eq!(stats.results as usize, reference.tuples().len());
            }
        }
    }

    #[test]
    fn agrees_with_lftj_too() {
        let c = catalog(&test_edges());
        let plan = CompiledQuery::compile(&patterns::path4()).unwrap();
        let mut reference = CollectSink::new();
        Lftj::new().execute(&plan, &c, &mut reference).unwrap();
        let mut sink = CollectSink::new();
        ParCtj::with_pool(3).execute(&plan, &c, &mut sink).unwrap();
        assert_eq!(sink.tuples(), reference.tuples());
    }

    /// The tentpole invariant: with one cache shared by all workers, the
    /// parallel hit count matches sequential CTJ's — the per-worker
    /// caches this replaced were structurally capped *below* it (each
    /// worker re-missed on entries a sibling had already built).
    #[test]
    fn shared_cache_hits_match_sequential_ctj() {
        let c = catalog(&hub_edges());
        let plan = CompiledQuery::compile(&patterns::path3()).unwrap();
        let mut seq_sink = CountSink::default();
        let seq = Ctj::new().execute(&plan, &c, &mut seq_sink).unwrap();
        let mut par_sink = CountSink::default();
        // Explicitly unbounded so a TRIEJAX_CACHE_CAP test environment
        // cannot shrink the cache under this exact-count assertion.
        let par = ParCtj::with_pool(2)
            .config(CtjConfig::default())
            .execute(&plan, &c, &mut par_sink)
            .unwrap();
        assert_eq!(seq_sink.count(), par_sink.count());
        assert!(par.shards > 1, "hub graph must actually shard");
        assert!(
            par.cache_hits >= seq.cache_hits,
            "shared cache must not lose hits to partitioning: par {} < seq {}",
            par.cache_hits,
            seq.cache_hits
        );
        // One lookup per x-parent; misses count unique entry builds, so
        // the books balance exactly even when workers race.
        assert_eq!(par.cache_hits + par.cache_misses, 30);
        assert_eq!(par.cache_misses, 1, "y=100's entry is built exactly once");
        assert_eq!(par.cache_hits, 29);
        assert_eq!(seq.cache_hits, 29);
    }

    #[test]
    fn bounded_caches_stay_correct_in_parallel() {
        let c = catalog(&test_edges());
        let plan = CompiledQuery::compile(&patterns::path4()).unwrap();
        let mut reference = CollectSink::new();
        Ctj::new().execute(&plan, &c, &mut reference).unwrap();
        let cfg = CtjConfig {
            entry_capacity: Some(1),
            max_entries: Some(2),
            adaptive: false,
        };
        let mut sink = CollectSink::new();
        let stats = ParCtj::with_config(cfg)
            .with_granularity(6)
            .execute(&plan, &c, &mut sink)
            .unwrap();
        assert_eq!(sink.tuples(), reference.tuples());
        assert!(stats.shards > 1);
    }

    #[test]
    fn tiny_shared_capacity_evicts_and_stays_exact() {
        let c = catalog(&test_edges());
        let plan = CompiledQuery::compile(&patterns::path4()).unwrap();
        let mut reference = CollectSink::new();
        Ctj::new().execute(&plan, &c, &mut reference).unwrap();
        let mut sink = CollectSink::new();
        let stats = ParCtj::with_pool(2)
            .cache_capacity(2)
            .with_granularity(8)
            .execute(&plan, &c, &mut sink)
            .unwrap();
        assert_eq!(sink.tuples(), reference.tuples());
        assert!(
            stats.cache_evictions > 0,
            "a 2-entry shared cache must churn on path4"
        );
    }

    #[test]
    fn untallied_parallel_run_matches() {
        let c = catalog(&test_edges());
        let plan = CompiledQuery::compile(&patterns::path3()).unwrap();
        let mut reference = CollectSink::new();
        Ctj::new().execute(&plan, &c, &mut reference).unwrap();
        let mut sink = CollectSink::new();
        let stats = ParCtj::with_pool(4)
            .run_tallied::<NoTally>(&plan, &c, &mut sink)
            .unwrap();
        assert_eq!(sink.tuples(), reference.tuples());
        assert_eq!(stats.memory_accesses(), 0);
    }

    #[test]
    fn explicit_granularity_is_respected() {
        let c = catalog(&test_edges());
        let plan = CompiledQuery::compile(&patterns::cycle3()).unwrap();
        let mut sink = CountSink::default();
        let stats = ParCtj::with_pool(2)
            .with_granularity(5)
            .execute(&plan, &c, &mut sink)
            .unwrap();
        assert_eq!(stats.shards, 5);
        assert_eq!(ParCtj::new().with_granularity(5).granularity(), Some(5));
    }

    #[test]
    fn cache_capacity_builder_sets_an_explicit_config() {
        let engine = ParCtj::with_pool(2).cache_capacity(16);
        assert_eq!(engine.effective_config().max_entries, Some(16));
        let engine = ParCtj::with_config(CtjConfig {
            entry_capacity: Some(3),
            max_entries: None,
            adaptive: false,
        })
        .cache_capacity(5);
        let cfg = engine.effective_config();
        assert_eq!(cfg.entry_capacity, Some(3), "other knobs are kept");
        assert_eq!(cfg.max_entries, Some(5));
    }

    #[test]
    fn empty_graph_yields_nothing() {
        let c = catalog(&[]);
        let plan = CompiledQuery::compile(&patterns::path4()).unwrap();
        let mut sink = CountSink::default();
        let stats = ParCtj::with_pool(4).execute(&plan, &c, &mut sink).unwrap();
        assert_eq!(sink.count(), 0);
        assert_eq!(stats.results, 0);
    }

    /// A root domain too narrow to ever carve (< 3 values) must not pay
    /// for the splitting machinery: the run falls back to the static
    /// schedule — and for a domain of one value, its sequential
    /// single-shard fast path (worker-local drop-new cache semantics) —
    /// exactly as if splitting were off.
    #[test]
    fn split_on_a_tiny_root_domain_falls_back_to_the_static_schedule() {
        let c = catalog(&[(0, 1), (1, 0)]);
        let plan = CompiledQuery::compile(&patterns::cycle3()).unwrap();
        let mut reference = CollectSink::new();
        let static_stats = ParCtj::with_pool(4)
            .with_split(false)
            .execute(&plan, &c, &mut reference)
            .unwrap();
        let mut sink = CollectSink::new();
        let stats = ParCtj::with_pool(4)
            .with_split(true)
            .execute(&plan, &c, &mut sink)
            .unwrap();
        assert_eq!(sink.tuples(), reference.tuples());
        assert_eq!(stats.shards, static_stats.shards, "static schedule");
        assert_eq!(stats.splits, 0);

        // One root value: even the static schedule is a single shard, so
        // a split-requested run takes the sequential fast path.
        let c1 = catalog(&[(0, 1)]);
        let plan1 = CompiledQuery::compile(&patterns::path3()).unwrap();
        let mut sink1 = CountSink::default();
        let stats1 = ParCtj::with_pool(4)
            .with_split(true)
            .execute(&plan1, &c1, &mut sink1)
            .unwrap();
        assert_eq!(stats1.shards, 1, "sequential fast path");
    }

    #[test]
    fn missing_relation_is_an_error() {
        let plan = CompiledQuery::compile(&patterns::path3()).unwrap();
        let mut sink = CountSink::default();
        assert!(ParCtj::new()
            .execute(&plan, &Catalog::new(), &mut sink)
            .is_err());
    }

    #[test]
    fn row_limit_returns_cancelled_with_an_exact_prefix() {
        let c = catalog(&test_edges());
        let plan = CompiledQuery::compile(&patterns::path3()).unwrap();
        let mut reference = CollectSink::new();
        Ctj::new().execute(&plan, &c, &mut reference).unwrap();
        assert!(reference.tuples().len() > 4);
        for workers in [1, 2, 7] {
            for split in [false, true] {
                let mut sink = CollectSink::new();
                let err = ParCtj::with_pool(workers)
                    .with_split(split)
                    .with_row_limit(4)
                    .execute(&plan, &c, &mut sink)
                    .unwrap_err();
                match err {
                    JoinError::Cancelled { reason, partial } => {
                        assert_eq!(reason, triejax_exec::CancelReason::RowLimit);
                        assert!(partial.results >= 4);
                    }
                    other => panic!("expected Cancelled, got {other:?}"),
                }
                assert_eq!(
                    sink.tuples(),
                    &reference.tuples()[..4],
                    "{workers} workers, split={split}: the delivered rows \
                     must be the exact ordered prefix"
                );
            }
        }
    }

    #[test]
    fn intermediate_budget_cancels_with_a_prefix() {
        let c = catalog(&hub_edges());
        let plan = CompiledQuery::compile(&patterns::path3()).unwrap();
        let mut reference = CollectSink::new();
        Ctj::new().execute(&plan, &c, &mut reference).unwrap();
        let mut sink = CollectSink::new();
        // The hub entry alone holds 20 match rows, so a budget of 5 must
        // trip while it is being recorded.
        let err = ParCtj::with_pool(2)
            .with_intermediate_limit(5)
            .execute(&plan, &c, &mut sink)
            .unwrap_err();
        assert!(matches!(
            err,
            JoinError::Cancelled {
                reason: triejax_exec::CancelReason::MemoryBudget,
                ..
            }
        ));
        assert!(
            reference.tuples().starts_with(sink.tuples()),
            "delivered rows stay a prefix after a memory-budget trip"
        );
        assert!(sink.tuples().len() < reference.tuples().len());
    }

    #[test]
    fn pre_fired_token_cancels_before_any_row() {
        let c = catalog(&test_edges());
        let plan = CompiledQuery::compile(&patterns::path4()).unwrap();
        let token = triejax_exec::CancelToken::new();
        token.cancel();
        let mut sink = CollectSink::new();
        let err = ParCtj::with_pool(2)
            .with_cancel_token(token)
            .execute(&plan, &c, &mut sink)
            .unwrap_err();
        assert!(matches!(
            err,
            JoinError::Cancelled {
                reason: triejax_exec::CancelReason::External,
                ..
            }
        ));
        assert!(sink.tuples().is_empty());
    }

    #[test]
    fn generous_budgets_never_cancel() {
        let c = catalog(&test_edges());
        let plan = CompiledQuery::compile(&patterns::path3()).unwrap();
        let mut reference = CollectSink::new();
        Ctj::new().execute(&plan, &c, &mut reference).unwrap();
        let mut sink = CollectSink::new();
        let stats = ParCtj::with_pool(4)
            .with_row_limit(u64::MAX)
            .with_deadline(Duration::from_secs(3600))
            .execute(&plan, &c, &mut sink)
            .unwrap();
        assert_eq!(sink.tuples(), reference.tuples());
        assert_eq!(stats.results as usize, reference.tuples().len());
    }

    #[test]
    fn projected_plans_error_gracefully() {
        let q = triejax_query::Query::builder("pairs")
            .head(["x", "z"])
            .atom("G", ["x", "y"])
            .atom("G", ["y", "z"])
            .build_projected()
            .unwrap();
        let plan = CompiledQuery::compile(&q).unwrap();
        let c = catalog(&test_edges());
        let mut sink = CountSink::default();
        let err = ParCtj::with_pool(2).execute(&plan, &c, &mut sink);
        assert!(matches!(err, Err(JoinError::Plan { .. })));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_workers_panics() {
        let _ = ParCtj::with_pool(0);
    }
}
