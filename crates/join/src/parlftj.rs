use std::num::NonZeroUsize;

use triejax_query::CompiledQuery;
use triejax_relation::{Counting, Tally, Value};

use crate::lftj::Driver;
use crate::{Catalog, EngineStats, JoinEngine, JoinError, ResultSink, TrieSet};

/// Parallel LeapFrog TrieJoin: root-partitioned LFTJ across OS threads.
///
/// TrieJax gets its throughput from many concurrent join-processing units
/// walking one shared trie (paper §3.4, static first-attribute
/// partitioning); the same idea applied to the software engine is the
/// classic parallel-LFTJ construction: snapshot the trie level of the
/// *first* join variable, shard its value domain into contiguous ranges,
/// and run an independent sequential driver per shard. Shards share the
/// read-only tries and write into thread-local sinks; after the join the
/// per-shard result streams are concatenated in shard order and the
/// per-shard [`EngineStats`] are merged.
///
/// Because LFTJ emits root values in ascending order and the shards cover
/// contiguous ascending ranges, the merged stream is **tuple-for-tuple
/// identical** to sequential [`crate::Lftj`] — same tuples, same order.
/// Access *counts* differ slightly (each shard opens the root level and
/// seeks into its range independently), so use [`crate::Lftj`] when
/// reproducing the paper's exact access totals and `ParLftj` when you want
/// wall-clock speed.
///
/// Threading uses `std::thread::scope` (the build environment has no
/// external thread-pool crate); one thread is spawned per shard.
///
/// # Example
///
/// ```
/// use triejax_join::{Catalog, CollectSink, JoinEngine, Lftj, ParLftj};
/// use triejax_query::{patterns, CompiledQuery};
/// use triejax_relation::Relation;
///
/// let mut catalog = Catalog::new();
/// catalog.insert("G", Relation::from_pairs(vec![(0, 1), (1, 2), (2, 0), (1, 0)]));
/// let plan = CompiledQuery::compile(&patterns::cycle3())?;
///
/// let mut seq = CollectSink::new();
/// Lftj::new().execute(&plan, &catalog, &mut seq)?;
/// let mut par = CollectSink::new();
/// ParLftj::with_shards(2).execute(&plan, &catalog, &mut par)?;
/// assert_eq!(seq.tuples(), par.tuples()); // identical, order included
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct ParLftj {
    /// Explicit shard count; `None` = one shard per available core.
    shards: Option<NonZeroUsize>,
}

impl ParLftj {
    /// Engine with one shard per available core; identical to
    /// `Default::default()`.
    pub fn new() -> Self {
        Self::default()
    }

    /// Engine with an explicit shard (thread) count.
    ///
    /// # Panics
    ///
    /// Panics if `shards == 0`.
    pub fn with_shards(shards: usize) -> Self {
        ParLftj {
            shards: Some(NonZeroUsize::new(shards).expect("shards must be positive")),
        }
    }

    /// The configured shard count, or `None` for automatic.
    pub fn shards(&self) -> Option<usize> {
        self.shards.map(NonZeroUsize::get)
    }

    fn effective_shards(&self, root_len: usize) -> usize {
        let want = self.shards.map(NonZeroUsize::get).unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(NonZeroUsize::get)
                .unwrap_or(1)
        });
        want.min(root_len).max(1)
    }

    /// Runs the query with an explicit [`Tally`] choice; see
    /// [`crate::Lftj::run_tallied`] for the counting/fast trade-off. The
    /// usual pairing is `ParLftj` + [`triejax_relation::NoTally`] for pure
    /// throughput.
    ///
    /// # Errors
    ///
    /// Returns a [`JoinError`] when the catalog is missing a relation or a
    /// relation's arity mismatches its atom.
    pub fn run_tallied<T: Tally>(
        &mut self,
        plan: &CompiledQuery,
        catalog: &Catalog,
        sink: &mut dyn ResultSink,
    ) -> Result<EngineStats<T>, JoinError> {
        let tries = TrieSet::build(plan, catalog)?;

        // Snapshot the root level of the first join variable: any
        // participant's root values are a superset of the depth-0 matches;
        // the smallest one gives the best shard balance for the least
        // boundary-scanning.
        let root_values: &[Value] = plan
            .atoms_at(0)
            .iter()
            .map(|&(a, _)| tries.for_atom(a).level(0).values())
            .min_by_key(|v| v.len())
            .expect("every depth has at least one participant");

        let shards = self.effective_shards(root_values.len());
        if shards <= 1 {
            let mut driver = Driver::<T>::new(plan, &tries);
            driver.run(sink);
            return Ok(driver.stats);
        }

        // Contiguous value ranges [min, sup); the first shard starts at the
        // bottom of the domain and the last is unbounded above.
        let mut ranges: Vec<(Value, Option<Value>)> = Vec::with_capacity(shards);
        for i in 0..shards {
            let lo_idx = i * root_values.len() / shards;
            let hi_idx = (i + 1) * root_values.len() / shards;
            if lo_idx == hi_idx {
                continue; // empty shard (more shards than values)
            }
            let min = if ranges.is_empty() {
                0
            } else {
                root_values[lo_idx]
            };
            let sup = if hi_idx == root_values.len() {
                None
            } else {
                Some(root_values[hi_idx])
            };
            ranges.push((min, sup));
        }

        let arity = plan.arity();
        let tries_ref = &tries;
        let shard_outputs: Vec<(EngineStats<T>, Vec<Value>)> = std::thread::scope(|scope| {
            let handles: Vec<_> = ranges
                .iter()
                .map(|&(min, sup)| {
                    scope.spawn(move || {
                        let mut driver = Driver::<T>::with_root_range(plan, tries_ref, min, sup);
                        let mut local = RowBuffer { rows: Vec::new() };
                        driver.run(&mut local);
                        (driver.stats, local.rows)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("shard thread panicked"))
                .collect()
        });

        let mut stats = EngineStats::<T>::default();
        for (shard_stats, rows) in &shard_outputs {
            stats.merge(shard_stats);
            for tuple in rows.chunks_exact(arity) {
                sink.push(tuple);
            }
        }
        Ok(stats)
    }
}

impl JoinEngine for ParLftj {
    fn name(&self) -> &'static str {
        "par-lftj"
    }

    fn execute(
        &mut self,
        plan: &CompiledQuery,
        catalog: &Catalog,
        sink: &mut dyn ResultSink,
    ) -> Result<EngineStats, JoinError> {
        self.run_tallied::<Counting>(plan, catalog, sink)
    }
}

/// Thread-local sink: flat row storage, merged into the caller's sink
/// after the parallel phase.
struct RowBuffer {
    rows: Vec<Value>,
}

impl ResultSink for RowBuffer {
    fn push(&mut self, tuple: &[Value]) {
        self.rows.extend_from_slice(tuple);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CollectSink, CountSink, Lftj};
    use triejax_query::patterns::{self, Pattern};
    use triejax_relation::{NoTally, Relation};

    fn catalog(edges: &[(u32, u32)]) -> Catalog {
        let mut c = Catalog::new();
        c.insert("G", Relation::from_pairs(edges.to_vec()));
        c
    }

    fn test_edges() -> Vec<(u32, u32)> {
        let mut edges = vec![
            (0, 1),
            (1, 2),
            (2, 0),
            (2, 3),
            (3, 1),
            (0, 2),
            (3, 0),
            (1, 3),
            (4, 1),
            (2, 4),
            (4, 0),
        ];
        // A larger fringe so the root level has enough values to shard.
        for i in 5..40u32 {
            edges.push((i, (i + 1) % 40));
            edges.push((i, (i * 7 + 3) % 40));
        }
        edges
    }

    #[test]
    fn agrees_with_lftj_in_order_for_every_shard_count() {
        let c = catalog(&test_edges());
        for p in Pattern::ALL {
            let plan = CompiledQuery::compile(&p.query()).unwrap();
            let mut reference = CollectSink::new();
            Lftj::new().execute(&plan, &c, &mut reference).unwrap();
            for shards in [1, 2, 3, 7, 64] {
                let mut sink = CollectSink::new();
                let stats = ParLftj::with_shards(shards)
                    .execute(&plan, &c, &mut sink)
                    .unwrap();
                assert_eq!(
                    sink.tuples(),
                    reference.tuples(),
                    "{p} with {shards} shards"
                );
                assert_eq!(stats.results as usize, reference.tuples().len());
            }
        }
    }

    #[test]
    fn auto_shard_count_agrees_too() {
        let c = catalog(&test_edges());
        let plan = CompiledQuery::compile(&patterns::cycle3()).unwrap();
        let mut reference = CollectSink::new();
        Lftj::new().execute(&plan, &c, &mut reference).unwrap();
        let mut sink = CollectSink::new();
        ParLftj::new().execute(&plan, &c, &mut sink).unwrap();
        assert_eq!(sink.tuples(), reference.tuples());
    }

    #[test]
    fn untallied_parallel_run_matches() {
        let c = catalog(&test_edges());
        let plan = CompiledQuery::compile(&patterns::cycle4()).unwrap();
        let mut reference = CollectSink::new();
        Lftj::new().execute(&plan, &c, &mut reference).unwrap();
        let mut sink = CollectSink::new();
        let stats = ParLftj::with_shards(4)
            .run_tallied::<NoTally>(&plan, &c, &mut sink)
            .unwrap();
        assert_eq!(sink.tuples(), reference.tuples());
        assert_eq!(stats.memory_accesses(), 0);
        assert_eq!(stats.results as usize, reference.tuples().len());
    }

    #[test]
    fn empty_graph_yields_nothing() {
        let c = catalog(&[]);
        let plan = CompiledQuery::compile(&patterns::cycle4()).unwrap();
        let mut sink = CountSink::default();
        let stats = ParLftj::with_shards(4)
            .execute(&plan, &c, &mut sink)
            .unwrap();
        assert_eq!(sink.count(), 0);
        assert_eq!(stats.results, 0);
    }

    #[test]
    fn more_shards_than_root_values_is_fine() {
        let c = catalog(&[(0, 1), (1, 0)]);
        let plan = CompiledQuery::compile(&patterns::cycle3()).unwrap();
        let mut reference = CollectSink::new();
        Lftj::new().execute(&plan, &c, &mut reference).unwrap();
        let mut sink = CollectSink::new();
        ParLftj::with_shards(16)
            .execute(&plan, &c, &mut sink)
            .unwrap();
        assert_eq!(sink.tuples(), reference.tuples());
    }

    #[test]
    fn missing_relation_is_an_error() {
        let plan = CompiledQuery::compile(&patterns::path3()).unwrap();
        let mut sink = CountSink::default();
        assert!(ParLftj::new()
            .execute(&plan, &Catalog::new(), &mut sink)
            .is_err());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_shards_panics() {
        let _ = ParLftj::with_shards(0);
    }
}
