use std::num::NonZeroUsize;
use std::time::Duration;

use triejax_exec::{Budget, BudgetHandle, CancelToken, NoBudget, RunBudget};
use triejax_query::CompiledQuery;
use triejax_relation::{Counting, Tally};

use triejax_exec::WorkerPool;

use crate::engine::head_slots;
use crate::lftj::Driver;
use crate::shard::{
    can_split, compose_budget, env_split, env_split_depth, execute_sharded, execute_split,
    make_pool, plan_shards,
};
use crate::viewset::{plan_touches_delta, CursorSet, MergeSet};
use crate::{
    Catalog, DeltaMap, EngineStats, JoinEngine, JoinError, ResultSink, TrieCache, TrieSet,
};

/// Parallel LeapFrog TrieJoin: root-partitioned LFTJ on the shared
/// [`triejax_exec::WorkerPool`] runtime.
///
/// TrieJax gets its throughput from many concurrent join-processing units
/// walking one shared trie, dynamically picking up work instead of being
/// statically partitioned (paper §3.4). The software construction: shard
/// the first join variable's value domain into many more contiguous
/// *root ranges* than there are workers, queue them on a work-stealing
/// pool (`triejax-exec`), and run an independent sequential driver per
/// shard. Skewed root domains rebalance by stealing; a heavy range is one
/// unit of work among many, not a thread's whole static share.
///
/// Shards emit through [`crate::ShardSink`]s into an order-preserving
/// [`triejax_exec::OrderedMerge`]: batches stream to the caller's sink while later
/// shards are still running, so no shard materializes its full result.
/// Because LFTJ emits root values in ascending order and the shards cover
/// contiguous ascending ranges, the merged stream is **tuple-for-tuple
/// identical** to sequential [`crate::Lftj`] — same tuples, same order.
/// Access *counts* differ slightly (each shard opens the root level
/// clamped to its range), so use [`crate::Lftj`] when reproducing the
/// paper's exact access totals and `ParLftj` when you want wall-clock
/// speed. [`EngineStats::shards`] and [`EngineStats::steals`] report how
/// the run was scheduled.
///
/// # Example
///
/// ```
/// use triejax_join::{Catalog, CollectSink, JoinEngine, Lftj, ParLftj};
/// use triejax_query::{patterns, CompiledQuery};
/// use triejax_relation::Relation;
///
/// let mut catalog = Catalog::new();
/// catalog.insert("G", Relation::from_pairs(vec![(0, 1), (1, 2), (2, 0), (1, 0)]));
/// let plan = CompiledQuery::compile(&patterns::cycle3())?;
///
/// let mut seq = CollectSink::new();
/// Lftj::new().execute(&plan, &catalog, &mut seq)?;
/// let mut par = CollectSink::new();
/// ParLftj::with_pool(2).execute(&plan, &catalog, &mut par)?;
/// assert_eq!(seq.tuples(), par.tuples()); // identical, order included
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct ParLftj {
    /// Explicit worker count; `None` = `TRIEJAX_POOL` or one per core.
    workers: Option<NonZeroUsize>,
    /// Explicit shard count; `None` = seeded from the plan's root-domain
    /// estimate (see `CompiledQuery::shard_granularity`).
    granularity: Option<NonZeroUsize>,
    /// Explicit dynamic-splitting choice; `None` = `TRIEJAX_SPLIT` or off.
    split: Option<bool>,
    /// Explicit sub-root split depth cap; `None` = `TRIEJAX_SPLIT_DEPTH`
    /// or 0 (root-only splits).
    split_depth: Option<usize>,
    /// Explicit wall-clock deadline; `None` = `TRIEJAX_DEADLINE_MS` or none.
    deadline: Option<Duration>,
    /// Explicit result-row cap; `None` = `TRIEJAX_ROW_LIMIT` or none.
    row_limit: Option<u64>,
    /// Cap on charged intermediate tuples; builder-only (no env default).
    intermediate_limit: Option<u64>,
    /// External cancellation token the caller can fire from another thread.
    cancel: Option<CancelToken>,
    /// Cross-query trie cache choice: `None` = the `TRIEJAX_TRIE_CACHE_MB`
    /// process default, `Some(None)` = explicitly disabled, `Some(Some(c))`
    /// = an explicit cache instance.
    trie_cache: Option<Option<std::sync::Arc<TrieCache>>>,
}

impl ParLftj {
    /// Engine with the default pool size (the `TRIEJAX_POOL` environment
    /// variable, else one worker per core) and plan-seeded shard
    /// granularity; identical to `Default::default()`.
    pub fn new() -> Self {
        Self::default()
    }

    /// Engine with an explicit pool (worker) count; shard granularity is
    /// still seeded from the plan.
    ///
    /// # Panics
    ///
    /// Panics if `workers == 0`.
    pub fn with_pool(workers: usize) -> Self {
        ParLftj {
            workers: Some(NonZeroUsize::new(workers).expect("workers must be positive")),
            ..Self::default()
        }
    }

    /// Engine with an explicit shard count, one worker per shard — the
    /// pre-pool behaviour, kept for callers that want deterministic
    /// scheduling in experiments.
    ///
    /// # Panics
    ///
    /// Panics if `shards == 0`.
    pub fn with_shards(shards: usize) -> Self {
        let n = NonZeroUsize::new(shards).expect("shards must be positive");
        ParLftj {
            workers: Some(n),
            granularity: Some(n),
            ..Self::default()
        }
    }

    /// The configured worker count, or `None` for automatic.
    pub fn workers(&self) -> Option<usize> {
        self.workers.map(NonZeroUsize::get)
    }

    /// Sets an explicit shard count, keeping the pool size (otherwise the
    /// count is seeded from the plan).
    ///
    /// # Panics
    ///
    /// Panics if `shards == 0`.
    pub fn with_granularity(mut self, shards: usize) -> Self {
        self.granularity = Some(NonZeroUsize::new(shards).expect("shards must be positive"));
        self
    }

    /// The configured shard count, or `None` for plan-seeded.
    pub fn granularity(&self) -> Option<usize> {
        self.granularity.map(NonZeroUsize::get)
    }

    /// Enables or disables dynamic shard splitting (TrieJax §3.4
    /// spawn-on-match), overriding the `TRIEJAX_SPLIT` environment
    /// default.
    ///
    /// With splitting on, the plan seeds only one coarse root-range shard
    /// per worker; whenever a worker goes idle mid-run, a running shard
    /// observes it at its next root-level advance and hands the unvisited
    /// tail of its range off as a freshly spawned shard. Results remain
    /// tuple-for-tuple identical to sequential [`crate::Lftj`];
    /// [`EngineStats::splits`] and [`EngineStats::split_depth`] report the
    /// rebalancing. With splitting off (the default), skew is absorbed by
    /// 4x oversharding plus work stealing alone.
    ///
    /// ```
    /// use triejax_join::ParLftj;
    ///
    /// let engine = ParLftj::with_pool(4).with_split(true);
    /// assert_eq!(engine.splitting(), Some(true));
    /// ```
    pub fn with_split(mut self, on: bool) -> Self {
        self.split = Some(on);
        self
    }

    /// The configured splitting choice, or `None` for the `TRIEJAX_SPLIT`
    /// environment default.
    pub fn splitting(&self) -> Option<bool> {
        self.split
    }

    /// Caps how deep dynamic splits may donate work (TrieJax §3.4
    /// spawn-on-match at *any* trie level), overriding the
    /// `TRIEJAX_SPLIT_DEPTH` environment default.
    ///
    /// Depth 0 (the default) keeps the root-only splitting of
    /// [`with_split`](Self::with_split); depth `d` additionally lets a
    /// running shard donate the unvisited sibling tail of any trie level
    /// up to `d` — under the bound prefix — whenever a worker goes idle,
    /// which is the only way to rebalance a query whose root domain is
    /// too narrow to carve (e.g. a single hub vertex). `usize::MAX`
    /// uncaps the depth. Splitting itself must still be enabled (via
    /// [`with_split`](Self::with_split) or `TRIEJAX_SPLIT`) for any
    /// handoff to happen. Results remain tuple-for-tuple identical to
    /// sequential [`crate::Lftj`]; [`EngineStats::deep_splits`] reports
    /// how many handoffs happened below the root.
    ///
    /// ```
    /// use triejax_join::ParLftj;
    ///
    /// let engine = ParLftj::with_pool(4).with_split(true).with_split_depth(2);
    /// assert_eq!(engine.split_depth(), Some(2));
    /// ```
    pub fn with_split_depth(mut self, depth: usize) -> Self {
        self.split_depth = Some(depth);
        self
    }

    /// The configured split-depth cap, or `None` for the
    /// `TRIEJAX_SPLIT_DEPTH` environment default.
    pub fn split_depth(&self) -> Option<usize> {
        self.split_depth
    }

    /// The split-depth cap this run will use: the explicit one if set,
    /// otherwise the `TRIEJAX_SPLIT_DEPTH` environment default (0 — root
    /// only — when the variable is unset; `max` uncaps).
    ///
    /// # Panics
    ///
    /// Panics when `TRIEJAX_SPLIT_DEPTH` is consulted and set to anything
    /// but a non-negative integer or `"max"`.
    pub fn effective_split_depth(&self) -> usize {
        self.split_depth.unwrap_or_else(env_split_depth)
    }

    /// The splitting choice this run will use: the explicit one if set,
    /// otherwise the `TRIEJAX_SPLIT` environment default (off when the
    /// variable is unset).
    ///
    /// # Panics
    ///
    /// Panics when `TRIEJAX_SPLIT` is consulted and set to anything but a
    /// recognised on/off spelling (`0`/`1`/`true`/`false`/`on`/`off`) — an
    /// explicitly configured mode that silently fell back to "off" would
    /// defeat the configuration's purpose (e.g. CI pinning
    /// `TRIEJAX_SPLIT=1` to force the split paths through the test suite).
    pub fn effective_split(&self) -> bool {
        self.split.unwrap_or_else(env_split)
    }

    /// Caps the run's wall-clock time, overriding the `TRIEJAX_DEADLINE_MS`
    /// environment default. A run that outlives the deadline is cancelled
    /// cooperatively: workers stop at their next poll point, the rows
    /// already streamed to the sink stay an exact prefix of the full
    /// result, and the engine returns [`JoinError::Cancelled`] carrying
    /// the partial [`EngineStats`].
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Caps delivered result rows at `limit`, overriding the
    /// `TRIEJAX_ROW_LIMIT` environment default. The sink receives exactly
    /// the first `min(total, limit)` rows of the sequential result stream
    /// and the engine returns [`JoinError::Cancelled`] with
    /// [`triejax_exec::CancelReason::RowLimit`] when the cap actually
    /// truncated the run.
    pub fn with_row_limit(mut self, limit: u64) -> Self {
        self.row_limit = Some(limit);
        self
    }

    /// Caps charged intermediate tuples (materialized candidate sets;
    /// cache entry rows in [`crate::ParCtj`]) at `limit`.
    pub fn with_intermediate_limit(mut self, limit: u64) -> Self {
        self.intermediate_limit = Some(limit);
        self
    }

    /// Ties every run of this engine to `token`: firing it from any
    /// thread cancels the run cooperatively (see
    /// [`with_deadline`](Self::with_deadline) for the delivery contract).
    pub fn with_cancel_token(mut self, token: CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }

    /// Consults (and fills) `cache` before building tries, overriding the
    /// `TRIEJAX_TRIE_CACHE_MB` process default. Share one cache across
    /// engines to amortize trie construction over a query stream; see
    /// [`TrieCache`].
    pub fn with_trie_cache(mut self, cache: std::sync::Arc<TrieCache>) -> Self {
        self.trie_cache = Some(Some(cache));
        self
    }

    /// Disables trie caching for this engine even when
    /// `TRIEJAX_TRIE_CACHE_MB` configures a process-wide cache.
    pub fn without_trie_cache(mut self) -> Self {
        self.trie_cache = Some(None);
        self
    }

    /// The trie cache the next run will consult: the explicit choice if
    /// one was made, otherwise the process-wide [`TrieCache::global`]
    /// (`None` disables caching).
    pub fn effective_trie_cache(&self) -> Option<std::sync::Arc<TrieCache>> {
        match &self.trie_cache {
            Some(choice) => choice.clone(),
            None => TrieCache::global(),
        }
    }

    /// The shared [`RunBudget`] the next run will be governed by — the
    /// explicit builder knobs with `TRIEJAX_DEADLINE_MS` /
    /// `TRIEJAX_ROW_LIMIT` as per-knob environment fallbacks — or `None`
    /// when nothing governs the run and the engine stays on its zero-cost
    /// ungoverned code paths.
    ///
    /// # Panics
    ///
    /// Panics when a consulted environment knob is set to anything but a
    /// non-negative integer.
    pub fn effective_budget(&self) -> Option<std::sync::Arc<RunBudget>> {
        compose_budget(
            self.deadline,
            self.row_limit,
            self.intermediate_limit,
            self.cancel.as_ref(),
        )
    }

    /// Runs the query with an explicit [`Tally`] choice; see
    /// [`crate::Lftj::run_tallied`] for the counting/fast trade-off. The
    /// usual pairing is `ParLftj` + [`triejax_relation::NoTally`] for pure
    /// throughput.
    ///
    /// # Errors
    ///
    /// Returns a [`JoinError`] when the catalog is missing a relation, a
    /// relation's arity mismatches its atom, or the plan projects
    /// variables away from the head.
    pub fn run_tallied<T: Tally>(
        &mut self,
        plan: &CompiledQuery,
        catalog: &Catalog,
        sink: &mut dyn ResultSink,
    ) -> Result<EngineStats<T>, JoinError> {
        self.run_tallied_opt(plan, catalog, None, sink)
    }

    /// Runs the query over `catalog` with the pending mutations in
    /// `deltas` folded in: every atom over a mutated relation walks a
    /// [`triejax_relation::MergeCursor`] presenting
    /// `base ∪ inserts − tombstones`, without rebuilding the base trie.
    /// When no atom of the plan touches a non-empty delta, this is
    /// exactly [`run_tallied`](Self::run_tallied) — the frozen fast path,
    /// monomorphized to plain trie cursors.
    ///
    /// # Errors
    ///
    /// As [`run_tallied`](Self::run_tallied), plus an arity mismatch
    /// between a delta and its atom.
    pub fn run_tallied_with<T: Tally>(
        &mut self,
        plan: &CompiledQuery,
        catalog: &Catalog,
        deltas: &DeltaMap,
        sink: &mut dyn ResultSink,
    ) -> Result<EngineStats<T>, JoinError> {
        self.run_tallied_opt(plan, catalog, Some(deltas), sink)
    }

    /// Shared budget dispatch of [`run_tallied`](Self::run_tallied) and
    /// [`run_tallied_with`](Self::run_tallied_with).
    fn run_tallied_opt<T: Tally>(
        &mut self,
        plan: &CompiledQuery,
        catalog: &Catalog,
        deltas: Option<&DeltaMap>,
        sink: &mut dyn ResultSink,
    ) -> Result<EngineStats<T>, JoinError> {
        match self.effective_budget() {
            // Ungoverned: monomorphize with NoBudget — byte-identical to
            // the pre-governance engine.
            None => self
                .run_budgeted::<T, NoBudget>(plan, catalog, deltas, sink, NoBudget, NoBudget, None),
            Some(shared) => {
                let stats = self.run_budgeted::<T, BudgetHandle>(
                    plan,
                    catalog,
                    deltas,
                    sink,
                    BudgetHandle::driving(shared.clone()),
                    BudgetHandle::worker(shared.clone()),
                    Some(&shared),
                )?;
                match shared.cancelled() {
                    Some(reason) => Err(JoinError::Cancelled {
                        reason,
                        partial: Box::new(stats.to_counting()),
                    }),
                    None => Ok(stats),
                }
            }
        }
    }

    /// Cursor-set dispatch: frozen plans build a [`TrieSet`] (plain trie
    /// cursors, the pre-delta code paths), delta-touching plans a
    /// [`MergeSet`]; either way the body is
    /// [`run_set_budgeted`](Self::run_set_budgeted).
    #[allow(clippy::too_many_arguments)]
    fn run_budgeted<T: Tally, B: Budget + Clone + Send + Sync>(
        &self,
        plan: &CompiledQuery,
        catalog: &Catalog,
        deltas: Option<&DeltaMap>,
        sink: &mut dyn ResultSink,
        driving: B,
        worker: B,
        budget: Option<&RunBudget>,
    ) -> Result<EngineStats<T>, JoinError> {
        // The pool exists before the tries so construction itself runs on
        // it (partitioned builds, or one task per cold trie).
        let pool = make_pool(self.workers);
        let cache = self.effective_trie_cache();
        // build_on times only actual cold-build work internally, so a
        // query fully served from the cache (or a preloaded store) reports
        // trie_build_ns == 0 exactly.
        match deltas.filter(|d| plan_touches_delta(plan, d)) {
            None => {
                let (tries, hits, ns) = TrieSet::build_on(plan, catalog, &pool, cache.as_deref())?;
                self.run_set_budgeted(
                    plan, catalog, &tries, &pool, hits, ns, sink, driving, worker, budget,
                )
            }
            Some(d) => {
                let (set, hits, ns) =
                    MergeSet::build_on(plan, catalog, d, &pool, cache.as_deref())?;
                self.run_set_budgeted(
                    plan, catalog, &set, &pool, hits, ns, sink, driving, worker, budget,
                )
            }
        }
    }

    /// The engine body, generic over the run's [`Budget`] and the
    /// [`CursorSet`] its shard drivers walk: `driving` is the handle for
    /// the sequential fast path (it charges the row quota at emit time),
    /// `worker` is cloned into every shard driver (flag polling only —
    /// the ordered drain owns the quota in a parallel run), and `budget`
    /// is what the drain and the task wrappers poll.
    #[allow(clippy::too_many_arguments)]
    fn run_set_budgeted<'s, T: Tally, B: Budget + Clone + Send + Sync, S: CursorSet<'s>>(
        &self,
        plan: &'s CompiledQuery,
        catalog: &Catalog,
        set: &'s S,
        pool: &WorkerPool,
        trie_cache_hits: u64,
        trie_build_ns: u64,
        sink: &mut dyn ResultSink,
        driving: B,
        worker: B,
        budget: Option<&RunBudget>,
    ) -> Result<EngineStats<T>, JoinError> {
        // Splitting needs a spare worker to hand work to, plus either a
        // root domain wide enough to carve or permission to split below
        // the root (where a narrow root domain is irrelevant); otherwise
        // fall back to the static schedule (and its sequential
        // single-shard fast path).
        let depth_cap = self.effective_split_depth();
        let split = self.effective_split()
            && pool.workers() > 1
            && (can_split(plan, set) || depth_cap >= 1);
        let ranges = plan_shards(
            plan,
            catalog,
            set,
            pool.workers(),
            self.granularity.map(NonZeroUsize::get),
            split,
        );

        // With splitting on, even a single seeded range spreads itself
        // across the idle pool; without it, a lone range runs
        // sequentially.
        if !split && ranges.len() <= 1 {
            let mut driver = Driver::<T, B, S::Cur>::budgeted(plan, set, 0, None, driving)?;
            driver.run(sink);
            let mut stats = driver.stats;
            stats.shards = 1;
            stats.trie_build_ns = trie_build_ns;
            stats.trie_cache_hits = trie_cache_hits;
            return Ok(stats);
        }

        // Validate the emission plan up front so shard workers cannot fail.
        head_slots(plan)?;
        let new_driver = |min, sup| {
            let mut d = Driver::<T, B, S::Cur>::budgeted(plan, set, min, sup, worker.clone())
                .expect("emission plan validated before the parallel phase");
            d.emit_passthrough(); // the ShardSink already batches
            d
        };
        let (shard_stats, pool_stats) = if split {
            execute_split(
                pool,
                &ranges,
                plan.arity(),
                depth_cap,
                sink,
                budget,
                |_ctx, depth, prefix, min, sup, shard_sink, ctl| {
                    let mut driver = new_driver(0, None);
                    driver.run_split_at(depth, prefix, min, sup, shard_sink, ctl);
                    driver.stats
                },
            )
        } else {
            execute_sharded(
                pool,
                &ranges,
                plan.arity(),
                sink,
                budget,
                |_ctx, _lane, min, sup, shard_sink| {
                    let mut driver = new_driver(min, sup);
                    driver.run(shard_sink);
                    driver.stats
                },
            )
        };

        let mut stats = EngineStats::<T>::default();
        for shard in &shard_stats {
            stats.merge(shard);
        }
        // Split shards are shards too: count every task the pool ran.
        stats.shards = pool_stats.tasks as u64;
        stats.steals = pool_stats.steals;
        stats.trie_build_ns = trie_build_ns;
        stats.trie_cache_hits = trie_cache_hits;
        Ok(stats)
    }
}

impl JoinEngine for ParLftj {
    fn name(&self) -> &'static str {
        "par-lftj"
    }

    fn execute(
        &mut self,
        plan: &CompiledQuery,
        catalog: &Catalog,
        sink: &mut dyn ResultSink,
    ) -> Result<EngineStats, JoinError> {
        self.run_tallied::<Counting>(plan, catalog, sink)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CollectSink, CountSink, Lftj};
    use triejax_query::patterns::{self, Pattern};
    use triejax_relation::{NoTally, Relation};

    fn catalog(edges: &[(u32, u32)]) -> Catalog {
        let mut c = Catalog::new();
        c.insert("G", Relation::from_pairs(edges.to_vec()));
        c
    }

    fn test_edges() -> Vec<(u32, u32)> {
        let mut edges = vec![
            (0, 1),
            (1, 2),
            (2, 0),
            (2, 3),
            (3, 1),
            (0, 2),
            (3, 0),
            (1, 3),
            (4, 1),
            (2, 4),
            (4, 0),
        ];
        // A larger fringe so the root level has enough values to shard.
        for i in 5..40u32 {
            edges.push((i, (i + 1) % 40));
            edges.push((i, (i * 7 + 3) % 40));
        }
        edges
    }

    #[test]
    fn agrees_with_lftj_in_order_for_every_pool_size() {
        let c = catalog(&test_edges());
        for p in Pattern::ALL {
            let plan = CompiledQuery::compile(&p.query()).unwrap();
            let mut reference = CollectSink::new();
            Lftj::new().execute(&plan, &c, &mut reference).unwrap();
            for workers in [1, 2, 3, 7, 64] {
                let mut sink = CollectSink::new();
                let stats = ParLftj::with_pool(workers)
                    .execute(&plan, &c, &mut sink)
                    .unwrap();
                assert_eq!(
                    sink.tuples(),
                    reference.tuples(),
                    "{p} with {workers} workers"
                );
                assert_eq!(stats.results as usize, reference.tuples().len());
                assert!(stats.shards >= 1);
            }
        }
    }

    #[test]
    fn explicit_shard_counts_agree_too() {
        let c = catalog(&test_edges());
        for p in [Pattern::Cycle3, Pattern::Path4] {
            let plan = CompiledQuery::compile(&p.query()).unwrap();
            let mut reference = CollectSink::new();
            Lftj::new().execute(&plan, &c, &mut reference).unwrap();
            for shards in [1, 2, 3, 7, 64] {
                let mut sink = CollectSink::new();
                let stats = ParLftj::with_shards(shards)
                    .execute(&plan, &c, &mut sink)
                    .unwrap();
                assert_eq!(sink.tuples(), reference.tuples(), "{p} x{shards}");
                // Only the *seeded* shard count is bounded by the request:
                // when `TRIEJAX_SPLIT` is on, idle workers may split extra
                // shards off mid-run, and each is counted in both `shards`
                // and `splits`.
                let seeded = stats.shards - stats.splits;
                assert!(
                    seeded >= 1 && seeded <= shards as u64,
                    "{p} x{shards}: reported {} shards ({} split off)",
                    stats.shards,
                    stats.splits
                );
            }
        }
    }

    #[test]
    fn auto_pool_size_agrees_too() {
        let c = catalog(&test_edges());
        let plan = CompiledQuery::compile(&patterns::cycle3()).unwrap();
        let mut reference = CollectSink::new();
        Lftj::new().execute(&plan, &c, &mut reference).unwrap();
        let mut sink = CollectSink::new();
        ParLftj::new().execute(&plan, &c, &mut sink).unwrap();
        assert_eq!(sink.tuples(), reference.tuples());
    }

    #[test]
    fn untallied_parallel_run_matches() {
        let c = catalog(&test_edges());
        let plan = CompiledQuery::compile(&patterns::cycle4()).unwrap();
        let mut reference = CollectSink::new();
        Lftj::new().execute(&plan, &c, &mut reference).unwrap();
        let mut sink = CollectSink::new();
        let stats = ParLftj::with_pool(4)
            .run_tallied::<NoTally>(&plan, &c, &mut sink)
            .unwrap();
        assert_eq!(sink.tuples(), reference.tuples());
        assert_eq!(stats.memory_accesses(), 0);
        assert_eq!(stats.results as usize, reference.tuples().len());
    }

    #[test]
    fn multi_worker_runs_overshard_for_stealing() {
        let c = catalog(&test_edges());
        let plan = CompiledQuery::compile(&patterns::cycle3()).unwrap();
        let mut sink = CountSink::default();
        // Pinned to the static schedule: with splitting (builder or env)
        // the initial cut is deliberately coarse, not oversharded.
        let stats = ParLftj::with_pool(4)
            .with_split(false)
            .execute(&plan, &c, &mut sink)
            .unwrap();
        assert!(
            stats.shards > 4,
            "4 workers over a 40-value domain should overshard, got {}",
            stats.shards
        );
    }

    #[test]
    fn empty_graph_yields_nothing() {
        let c = catalog(&[]);
        let plan = CompiledQuery::compile(&patterns::cycle4()).unwrap();
        let mut sink = CountSink::default();
        let stats = ParLftj::with_pool(4).execute(&plan, &c, &mut sink).unwrap();
        assert_eq!(sink.count(), 0);
        assert_eq!(stats.results, 0);
    }

    #[test]
    fn more_shards_than_root_values_is_fine() {
        let c = catalog(&[(0, 1), (1, 0)]);
        let plan = CompiledQuery::compile(&patterns::cycle3()).unwrap();
        let mut reference = CollectSink::new();
        Lftj::new().execute(&plan, &c, &mut reference).unwrap();
        let mut sink = CollectSink::new();
        ParLftj::with_shards(16)
            .execute(&plan, &c, &mut sink)
            .unwrap();
        assert_eq!(sink.tuples(), reference.tuples());
    }

    /// A root domain too narrow to ever carve (< 3 values) must not pay
    /// for the splitting machinery: the run falls back to the static
    /// schedule and behaves exactly as if splitting were off.
    #[test]
    fn split_on_a_tiny_root_domain_falls_back_to_the_static_schedule() {
        let c = catalog(&[(0, 1), (1, 0)]);
        let plan = CompiledQuery::compile(&patterns::cycle3()).unwrap();
        let mut reference = CollectSink::new();
        let static_stats = ParLftj::with_pool(4)
            .with_split(false)
            .execute(&plan, &c, &mut reference)
            .unwrap();
        let mut sink = CollectSink::new();
        let stats = ParLftj::with_pool(4)
            .with_split(true)
            .execute(&plan, &c, &mut sink)
            .unwrap();
        assert_eq!(sink.tuples(), reference.tuples());
        assert_eq!(stats.shards, static_stats.shards, "static schedule");
        assert_eq!(stats.splits, 0);
    }

    #[test]
    fn missing_relation_is_an_error() {
        let plan = CompiledQuery::compile(&patterns::path3()).unwrap();
        let mut sink = CountSink::default();
        assert!(ParLftj::new()
            .execute(&plan, &Catalog::new(), &mut sink)
            .is_err());
    }

    #[test]
    fn row_limit_returns_cancelled_with_an_exact_prefix() {
        let c = catalog(&test_edges());
        let plan = CompiledQuery::compile(&patterns::cycle3()).unwrap();
        let mut reference = CollectSink::new();
        Lftj::new().execute(&plan, &c, &mut reference).unwrap();
        assert!(reference.tuples().len() > 3);
        for workers in [1, 2, 7] {
            for split in [false, true] {
                let mut sink = CollectSink::new();
                let err = ParLftj::with_pool(workers)
                    .with_split(split)
                    .with_row_limit(3)
                    .execute(&plan, &c, &mut sink)
                    .unwrap_err();
                match err {
                    JoinError::Cancelled { reason, partial } => {
                        assert_eq!(reason, triejax_exec::CancelReason::RowLimit);
                        assert!(
                            partial.results >= 3,
                            "workers emitted at least the delivered rows"
                        );
                    }
                    other => panic!("expected Cancelled, got {other:?}"),
                }
                assert_eq!(
                    sink.tuples(),
                    &reference.tuples()[..3],
                    "{workers} workers, split={split}: the delivered rows \
                     must be the exact ordered prefix"
                );
            }
        }
    }

    #[test]
    fn generous_row_limit_never_cancels() {
        let c = catalog(&test_edges());
        let plan = CompiledQuery::compile(&patterns::cycle3()).unwrap();
        let mut reference = CollectSink::new();
        Lftj::new().execute(&plan, &c, &mut reference).unwrap();
        let mut sink = CollectSink::new();
        let stats = ParLftj::with_pool(4)
            .with_row_limit(u64::MAX)
            .execute(&plan, &c, &mut sink)
            .unwrap();
        assert_eq!(sink.tuples(), reference.tuples());
        assert_eq!(stats.results as usize, reference.tuples().len());
    }

    #[test]
    fn pre_fired_token_cancels_before_any_row() {
        let c = catalog(&test_edges());
        let plan = CompiledQuery::compile(&patterns::cycle3()).unwrap();
        let token = triejax_exec::CancelToken::new();
        token.cancel();
        let mut sink = CollectSink::new();
        let err = ParLftj::with_pool(2)
            .with_cancel_token(token)
            .execute(&plan, &c, &mut sink)
            .unwrap_err();
        assert!(matches!(
            err,
            JoinError::Cancelled {
                reason: triejax_exec::CancelReason::External,
                ..
            }
        ));
        assert!(sink.tuples().is_empty(), "no rows after a pre-fired token");
    }

    #[test]
    fn elapsed_deadline_cancels_and_keeps_the_prefix_exact() {
        let c = catalog(&test_edges());
        let plan = CompiledQuery::compile(&patterns::cycle3()).unwrap();
        let mut reference = CollectSink::new();
        Lftj::new().execute(&plan, &c, &mut reference).unwrap();
        let mut sink = CollectSink::new();
        let err = ParLftj::with_pool(2)
            .with_deadline(Duration::ZERO)
            .execute(&plan, &c, &mut sink)
            .unwrap_err();
        assert!(matches!(
            err,
            JoinError::Cancelled {
                reason: triejax_exec::CancelReason::Deadline,
                ..
            }
        ));
        let delivered = sink.tuples();
        assert!(
            reference.tuples().starts_with(delivered),
            "whatever was delivered before the deadline is a prefix"
        );
    }

    #[test]
    fn effective_budget_is_none_without_knobs() {
        assert!(ParLftj::with_pool(4)
            .with_split(true)
            .effective_budget()
            .is_none());
        let governed = ParLftj::new().with_row_limit(10).effective_budget();
        assert_eq!(governed.unwrap().row_limit(), Some(10));
    }

    #[test]
    fn projected_plans_error_gracefully() {
        let q = triejax_query::Query::builder("pairs")
            .head(["x", "z"])
            .atom("G", ["x", "y"])
            .atom("G", ["y", "z"])
            .build_projected()
            .unwrap();
        let plan = CompiledQuery::compile(&q).unwrap();
        let c = catalog(&test_edges());
        let mut sink = CountSink::default();
        let err = ParLftj::with_pool(2).execute(&plan, &c, &mut sink);
        assert!(matches!(err, Err(JoinError::Plan { .. })));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_shards_panics() {
        let _ = ParLftj::with_shards(0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_workers_panics() {
        let _ = ParLftj::with_pool(0);
    }
}
