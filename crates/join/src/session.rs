//! Streaming query sessions: the serving layer over the parallel engines.
//!
//! A [`Session`] owns what a serving process shares across queries — the
//! catalog, one worker-pool configuration, and one cross-query
//! [`TrieCache`] — and hands out per-query [`QueryHandle`]s that carry
//! their own budgets (row limits, deadlines, shard granularity). A handle
//! either runs synchronously into any [`ResultSink`], or becomes a
//! pull-based [`ResultStream`]: an iterator that delivers tuples in the
//! **exact sequential order** while the join is still running, and whose
//! `Drop` cancels the run cooperatively — walking away from a stream can
//! never hang the pool or leak a runaway query.
//!
//! Sessions open directly from a persistent [`StoredCatalog`]
//! ([`Session::open`]): the stored tries preload the session cache, so the
//! first query of a cold process runs with zero trie builds. The inverse,
//! [`Session::snapshot`], warms the cache with a set of plans and packages
//! catalog + tries for [`StoredCatalog::save`].

use std::sync::mpsc::{sync_channel, Receiver, SyncSender};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use triejax_exec::{CancelToken, WorkerPool};
use triejax_query::CompiledQuery;
use triejax_relation::Value;
use triejax_store::{StoreError, StoredCatalog};

use crate::{Catalog, EngineStats, JoinError, ParCtj, ParLftj, ResultSink, TrieCache, TrieSet};

/// Rows per batch pushed through a stream's channel — same batching the
/// shard sinks use, so streaming adds one copy, not per-tuple signalling.
const STREAM_BATCH_ROWS: usize = 256;

/// Batches buffered in a stream's channel before the producing engine
/// blocks: bounds the memory between a fast producer and a slow consumer.
const STREAM_CHANNEL_BATCHES: usize = 16;

/// A serving-process context: one catalog, one worker-pool configuration,
/// and one shared cross-query trie cache.
///
/// Concurrent queries are the point — [`Session::query`] borrows nothing
/// mutably, and every [`QueryHandle`]/[`ResultStream`] owns `Arc`s into
/// the shared state, so any number of streams can run at once against the
/// same tries.
///
/// # Example
///
/// ```
/// use triejax_join::{Catalog, Session};
/// use triejax_query::{patterns, CompiledQuery};
/// use triejax_relation::Relation;
///
/// let mut catalog = Catalog::new();
/// catalog.insert("G", Relation::from_pairs(vec![(0, 1), (1, 2), (2, 0)]));
/// let session = Session::new(catalog).with_pool(2);
/// let plan = CompiledQuery::compile(&patterns::cycle3())?;
///
/// let mut rows = Vec::new();
/// for row in session.query(&plan).stream() {
///     rows.push(row); // arrives incrementally, in sequential order
/// }
/// assert_eq!(rows.len(), 3);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct Session {
    catalog: Arc<Catalog>,
    /// The pool configuration every query and snapshot of this session
    /// shares ([`WorkerPool`] is a `Copy` config; each run spawns its
    /// scoped workers from it).
    pool: WorkerPool,
    cache: Arc<TrieCache>,
}

impl Session {
    /// Creates a session over `catalog` with the default pool size
    /// (`TRIEJAX_POOL`, else one worker per core) and a fresh unbounded
    /// trie cache.
    pub fn new(catalog: Catalog) -> Self {
        Session {
            catalog: Arc::new(catalog),
            pool: WorkerPool::new(),
            cache: Arc::new(TrieCache::unbounded()),
        }
    }

    /// Opens a session from a saved [`StoredCatalog`] file: the stored
    /// relations become the catalog and every stored trie preloads the
    /// session cache, so queries whose tries were saved run with **zero**
    /// trie builds ([`EngineStats::trie_build_ns`] stays `0`).
    ///
    /// # Errors
    ///
    /// Returns the [`StoreError`] if the file cannot be read or fails
    /// validation.
    pub fn open(path: impl AsRef<std::path::Path>) -> Result<Self, StoreError> {
        Ok(Session::from_stored(&StoredCatalog::open(path)?))
    }

    /// Builds a session from an already-loaded stored catalog (the
    /// in-memory form of [`Session::open`]).
    pub fn from_stored(stored: &StoredCatalog) -> Self {
        let mut catalog = Catalog::new();
        for (name, rel) in stored.relations() {
            catalog.insert(name.clone(), rel.clone());
        }
        let cache = TrieCache::unbounded();
        cache.preload(stored);
        Session {
            catalog: Arc::new(catalog),
            pool: WorkerPool::new(),
            cache: Arc::new(cache),
        }
    }

    /// Sets the worker count shared by every query and snapshot.
    ///
    /// # Panics
    ///
    /// Panics if `workers == 0`.
    pub fn with_pool(mut self, workers: usize) -> Self {
        assert!(workers > 0, "workers must be positive");
        self.pool = WorkerPool::with_workers(workers);
        self
    }

    /// The shared catalog.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// The shared cross-query trie cache (inspect its hit/insertion
    /// counters to observe store/cache effectiveness).
    pub fn trie_cache(&self) -> &Arc<TrieCache> {
        &self.cache
    }

    /// The worker count this session's queries run with.
    pub fn workers(&self) -> usize {
        self.pool.workers()
    }

    /// Creates a query handle over `plan` sharing this session's catalog,
    /// pool configuration, and trie cache.
    pub fn query(&self, plan: &CompiledQuery) -> QueryHandle {
        QueryHandle {
            plan: plan.clone(),
            catalog: Arc::clone(&self.catalog),
            cache: Arc::clone(&self.cache),
            workers: self.pool.workers(),
            granularity: None,
            split: None,
            deadline: None,
            row_limit: None,
            ctj: false,
        }
    }

    /// Builds (into the session cache) every trie the given plans need,
    /// then packages the catalog plus all cached tries as a
    /// [`StoredCatalog`] ready for [`StoredCatalog::save`]. Entries are
    /// emitted in sorted key order, so the same session state always
    /// serializes to the same bytes.
    ///
    /// # Errors
    ///
    /// Returns a [`JoinError`] if a plan references a relation the catalog
    /// is missing or whose arity mismatches.
    pub fn snapshot(&self, plans: &[CompiledQuery]) -> Result<StoredCatalog, JoinError> {
        for plan in plans {
            TrieSet::build_on(plan, &self.catalog, &self.pool, Some(&self.cache))?;
        }
        let mut stored = StoredCatalog::new();
        let mut relations: Vec<_> = self.catalog.iter().collect();
        relations.sort_by_key(|(name, _)| name.to_owned());
        for (name, rel) in relations {
            stored.insert_relation(name, rel.clone());
        }
        let mut entries = self.cache.entries();
        entries.sort_by(|a, b| (&a.0, &a.2, a.1).cmp(&(&b.0, &b.2, b.1)));
        for (name, fingerprint, perm, trie) in entries {
            stored.insert_trie(name, fingerprint, perm, trie);
        }
        Ok(stored)
    }
}

/// One query's configuration against a [`Session`]: the per-query budgets
/// (row limit, deadline, shard granularity, splitting) layered over the
/// session's shared state.
///
/// Consume it with [`QueryHandle::stream`] for incremental pull-based
/// delivery, or [`QueryHandle::run`] to drive a sink synchronously.
#[derive(Debug, Clone)]
pub struct QueryHandle {
    plan: CompiledQuery,
    catalog: Arc<Catalog>,
    cache: Arc<TrieCache>,
    workers: usize,
    granularity: Option<usize>,
    split: Option<bool>,
    deadline: Option<Duration>,
    row_limit: Option<u64>,
    ctj: bool,
}

impl QueryHandle {
    /// Caps delivered rows: the stream (or sink) receives exactly the
    /// first `min(total, limit)` rows of the sequential result order.
    pub fn with_row_limit(mut self, limit: u64) -> Self {
        self.row_limit = Some(limit);
        self
    }

    /// Caps the query's wall-clock time; an overrunning query is
    /// cancelled cooperatively with the delivered rows staying an exact
    /// sequential prefix.
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Sets an explicit shard count for this query (the per-query shard
    /// budget; defaults to the plan-seeded granularity).
    ///
    /// # Panics
    ///
    /// Panics if `shards == 0` (when the query runs).
    pub fn with_granularity(mut self, shards: usize) -> Self {
        self.granularity = Some(shards);
        self
    }

    /// Enables or disables dynamic shard splitting for this query,
    /// overriding the `TRIEJAX_SPLIT` environment default.
    pub fn with_split(mut self, on: bool) -> Self {
        self.split = Some(on);
        self
    }

    /// Runs this query on [`ParCtj`] (the cached-TrieJoin engine) instead
    /// of the default [`ParLftj`]; result tuples and their order are
    /// identical either way.
    pub fn with_ctj(mut self) -> Self {
        self.ctj = true;
        self
    }

    /// Runs the query synchronously on the calling thread, pushing every
    /// result row into `sink` in exact sequential order.
    ///
    /// # Errors
    ///
    /// Propagates the engine's [`JoinError`]; a budget-terminated run
    /// reports [`JoinError::Cancelled`] with the rows delivered so far
    /// forming an exact prefix.
    pub fn run(&self, sink: &mut dyn ResultSink) -> Result<EngineStats, JoinError> {
        self.execute_into(None, sink)
    }

    /// Starts the query on a background thread and returns the pull-based
    /// stream of its results. See [`ResultStream`] for the delivery and
    /// cancellation contract.
    pub fn stream(self) -> ResultStream {
        let token = CancelToken::new();
        let cancel = token.clone();
        let arity = self.plan.arity();
        let (tx, rx) = sync_channel::<Vec<Value>>(STREAM_CHANNEL_BATCHES);
        let worker = std::thread::spawn(move || {
            let mut sink = ChannelSink::new(tx, arity);
            let result = self.execute_into(Some(token), &mut sink);
            sink.flush();
            result
        });
        ResultStream {
            arity,
            rx: Some(rx),
            batch: Vec::new(),
            pos: 0,
            cancel,
            worker: Some(worker),
            outcome: None,
        }
    }

    /// Builds the configured engine and runs it. Both engines share the
    /// builder surface, so the only divergence is the type name.
    fn execute_into(
        &self,
        token: Option<CancelToken>,
        sink: &mut dyn ResultSink,
    ) -> Result<EngineStats, JoinError> {
        macro_rules! run {
            ($engine:ty) => {{
                let mut e =
                    <$engine>::with_pool(self.workers).with_trie_cache(Arc::clone(&self.cache));
                if let Some(g) = self.granularity {
                    e = e.with_granularity(g);
                }
                if let Some(s) = self.split {
                    e = e.with_split(s);
                }
                if let Some(d) = self.deadline {
                    e = e.with_deadline(d);
                }
                if let Some(l) = self.row_limit {
                    e = e.with_row_limit(l);
                }
                if let Some(t) = token {
                    e = e.with_cancel_token(t);
                }
                e.run_tallied::<triejax_relation::Counting>(&self.plan, &self.catalog, sink)
            }};
        }
        if self.ctj {
            run!(ParCtj)
        } else {
            run!(ParLftj)
        }
    }
}

/// A pull-based iterator over one running query's result tuples.
///
/// Delivery contract:
///
/// * **Order** — tuples arrive in the exact sequential engine order
///   (tuple-for-tuple what [`crate::Lftj`] would emit), incrementally
///   while later shards are still executing.
/// * **Budgets** — a row-limited or deadlined query ends the stream after
///   an exact sequential prefix; [`ResultStream::outcome`] then reports
///   the [`JoinError::Cancelled`] carrying the partial stats.
/// * **Backpressure** — a bounded channel separates the engine from the
///   consumer; a slow consumer blocks the producer after
///   a fixed number of buffered batches instead of buffering the result.
/// * **Drop** — dropping the stream mid-iteration fires the query's
///   cancel token, disconnects the channel (which immediately unblocks
///   any waiting producer), and joins the engine thread: cooperative
///   cancellation, never a hung pool.
pub struct ResultStream {
    arity: usize,
    rx: Option<Receiver<Vec<Value>>>,
    /// The batch currently being sliced into rows, and the cursor into it.
    batch: Vec<Value>,
    pos: usize,
    cancel: CancelToken,
    worker: Option<JoinHandle<Result<EngineStats, JoinError>>>,
    outcome: Option<Result<EngineStats, JoinError>>,
}

impl std::fmt::Debug for ResultStream {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ResultStream")
            .field("arity", &self.arity)
            .field("live", &self.worker.is_some())
            .finish_non_exhaustive()
    }
}

impl ResultStream {
    /// Number of values per delivered row.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// The engine's final result, available once the stream is exhausted
    /// (iteration returned `None`): the run's [`EngineStats`] on success,
    /// or the [`JoinError`] — e.g. `Cancelled` after a row limit truncated
    /// the stream. `None` while tuples may still arrive.
    pub fn outcome(&mut self) -> Option<&Result<EngineStats, JoinError>> {
        if self.outcome.is_none() && self.rx.is_none() {
            self.join_worker();
        }
        self.outcome.as_ref()
    }

    fn join_worker(&mut self) {
        if let Some(handle) = self.worker.take() {
            match handle.join() {
                Ok(result) => self.outcome = Some(result),
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
    }
}

impl Iterator for ResultStream {
    type Item = Vec<Value>;

    fn next(&mut self) -> Option<Vec<Value>> {
        loop {
            if self.pos < self.batch.len() {
                let row = self.batch[self.pos..self.pos + self.arity].to_vec();
                self.pos += self.arity;
                return Some(row);
            }
            let rx = self.rx.as_ref()?;
            match rx.recv() {
                Ok(batch) => {
                    self.batch = batch;
                    self.pos = 0;
                }
                Err(_) => {
                    // Producer finished (or failed): all rows delivered.
                    self.rx = None;
                    self.join_worker();
                    return None;
                }
            }
        }
    }
}

impl Drop for ResultStream {
    fn drop(&mut self) {
        self.cancel.cancel();
        // Disconnecting the receiver makes any blocked `send` in the
        // producer return an error immediately — the engine thread can
        // never stay wedged on a full channel.
        self.rx = None;
        if let Some(handle) = self.worker.take() {
            // A panicking engine thread must not double-panic in drop;
            // its payload is intentionally discarded here.
            let _ = handle.join();
        }
    }
}

/// The producer-side sink of a [`ResultStream`]: batches rows and sends
/// them through the bounded channel. Once the consumer disconnects, rows
/// are discarded without blocking (the cancel token ends the run at its
/// next poll point).
struct ChannelSink {
    tx: SyncSender<Vec<Value>>,
    buf: Vec<Value>,
    batch_values: usize,
    disconnected: bool,
}

impl ChannelSink {
    fn new(tx: SyncSender<Vec<Value>>, arity: usize) -> Self {
        let batch_values = STREAM_BATCH_ROWS * arity.max(1);
        ChannelSink {
            tx,
            buf: Vec::with_capacity(batch_values),
            batch_values,
            disconnected: false,
        }
    }

    fn flush(&mut self) {
        if self.buf.is_empty() {
            return;
        }
        let batch = std::mem::take(&mut self.buf);
        if !self.disconnected && self.tx.send(batch).is_err() {
            self.disconnected = true;
        }
    }
}

impl ResultSink for ChannelSink {
    fn push(&mut self, tuple: &[Value]) {
        if self.disconnected {
            return;
        }
        self.buf.extend_from_slice(tuple);
        if self.buf.len() >= self.batch_values {
            self.flush();
        }
    }

    fn push_rows(&mut self, rows: &[Value], _arity: usize) {
        if self.disconnected {
            return;
        }
        self.buf.extend_from_slice(rows);
        if self.buf.len() >= self.batch_values {
            self.flush();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CollectSink, JoinEngine, Lftj};
    use triejax_exec::CancelReason;
    use triejax_query::patterns;
    use triejax_relation::Relation;

    fn grid_session(workers: usize) -> Session {
        let mut catalog = Catalog::new();
        // Complete directed graph on 12 vertices: plenty of cycles and
        // paths, so every pattern yields a multi-batch result stream.
        catalog.insert(
            "G",
            Relation::from_pairs(
                (0..12u32).flat_map(|a| (0..12u32).filter(move |&b| b != a).map(move |b| (a, b))),
            ),
        );
        Session::new(catalog).with_pool(workers)
    }

    fn sequential_tuples(session: &Session, plan: &CompiledQuery) -> Vec<Vec<Value>> {
        let mut sink = CollectSink::new();
        Lftj::new()
            .execute(plan, session.catalog(), &mut sink)
            .unwrap();
        sink.tuples().to_vec()
    }

    #[test]
    fn stream_delivers_exact_sequential_order() {
        let session = grid_session(4);
        for pattern in [patterns::cycle3(), patterns::path4()] {
            let plan = CompiledQuery::compile(&pattern).unwrap();
            let expect = sequential_tuples(&session, &plan);
            let mut stream = session.query(&plan).stream();
            let got: Vec<Vec<Value>> = stream.by_ref().collect();
            assert_eq!(got, expect, "stream must equal sequential order");
            assert!(stream.outcome().unwrap().is_ok());
        }
    }

    #[test]
    fn run_matches_stream() {
        let session = grid_session(2);
        let plan = CompiledQuery::compile(&patterns::cycle3()).unwrap();
        let mut sink = CollectSink::new();
        let stats = session.query(&plan).run(&mut sink).unwrap();
        assert!(stats.results > 0);
        let streamed: Vec<Vec<Value>> = session.query(&plan).stream().collect();
        assert_eq!(streamed, sink.tuples());
    }

    #[test]
    fn row_limit_truncates_to_exact_prefix() {
        let session = grid_session(3);
        let plan = CompiledQuery::compile(&patterns::cycle3()).unwrap();
        let expect = sequential_tuples(&session, &plan);
        assert!(expect.len() > 5);
        let mut stream = session.query(&plan).with_row_limit(5).stream();
        let got: Vec<Vec<Value>> = stream.by_ref().collect();
        assert_eq!(got, expect[..5], "row limit keeps the sequential prefix");
        match stream.outcome().unwrap() {
            Err(JoinError::Cancelled { reason, .. }) => {
                assert_eq!(*reason, CancelReason::RowLimit)
            }
            other => panic!("expected RowLimit cancellation, got {other:?}"),
        }
    }

    #[test]
    fn dropping_a_stream_mid_run_cancels_without_hanging() {
        let session = grid_session(4);
        let plan = CompiledQuery::compile(&patterns::path4()).unwrap();
        let expect = sequential_tuples(&session, &plan);
        // Take a couple of rows, then drop with the engine (very likely)
        // still producing; Drop must cancel and join promptly either way.
        let mut stream = session.query(&plan).stream();
        let first: Vec<_> = stream.by_ref().take(2).collect();
        assert_eq!(first, expect[..2]);
        drop(stream);
        // The session stays fully usable afterwards.
        let again: Vec<Vec<Value>> = session.query(&plan).stream().collect();
        assert_eq!(again, expect);
    }

    #[test]
    fn concurrent_streams_share_one_session() {
        let session = grid_session(2);
        let c3 = CompiledQuery::compile(&patterns::cycle3()).unwrap();
        let p4 = CompiledQuery::compile(&patterns::path4()).unwrap();
        let (e3, e4) = (
            sequential_tuples(&session, &c3),
            sequential_tuples(&session, &p4),
        );
        // Interleave pulls from two live streams against the same session.
        let mut s3 = session.query(&c3).stream();
        let mut s4 = session.query(&p4).stream();
        let (mut g3, mut g4) = (Vec::new(), Vec::new());
        loop {
            let a = s3.next();
            let b = s4.next();
            if let Some(r) = a {
                g3.push(r);
            }
            if let Some(r) = b {
                g4.push(r);
            }
            if s3.outcome().is_some() && s4.outcome().is_some() {
                break;
            }
        }
        g3.extend(s3.by_ref());
        g4.extend(s4.by_ref());
        assert_eq!(g3, e3);
        assert_eq!(g4, e4);
    }

    #[test]
    fn snapshot_then_open_serves_with_zero_builds() {
        let session = grid_session(2);
        let plan = CompiledQuery::compile(&patterns::cycle3()).unwrap();
        let expect = sequential_tuples(&session, &plan);
        let stored = session.snapshot(std::slice::from_ref(&plan)).unwrap();
        assert!(!stored.tries().is_empty());

        // A fresh session from the stored bytes (as a cold process would
        // open them) answers with zero trie builds.
        let reopened =
            Session::from_stored(&StoredCatalog::from_bytes(&stored.to_bytes()).unwrap())
                .with_pool(2);
        let mut sink = CollectSink::new();
        let stats = reopened.query(&plan).run(&mut sink).unwrap();
        assert_eq!(sink.tuples(), expect);
        assert_eq!(stats.trie_build_ns, 0, "no build work after preload");
        assert!(stats.trie_cache_hits > 0, "tries came from the store");
    }

    #[test]
    fn snapshot_is_deterministic() {
        let session = grid_session(2);
        let plans = [
            CompiledQuery::compile(&patterns::cycle3()).unwrap(),
            CompiledQuery::compile(&patterns::path3()).unwrap(),
        ];
        let a = session.snapshot(&plans).unwrap().to_bytes();
        let b = session.snapshot(&plans).unwrap().to_bytes();
        assert_eq!(a, b, "same state must serialize to the same bytes");
    }

    #[test]
    fn ctj_streams_identically() {
        let session = grid_session(3);
        let plan = CompiledQuery::compile(&patterns::cycle3()).unwrap();
        let lftj: Vec<Vec<Value>> = session.query(&plan).stream().collect();
        let ctj: Vec<Vec<Value>> = session.query(&plan).with_ctj().stream().collect();
        assert_eq!(lftj, ctj);
    }

    #[test]
    fn schema_errors_surface_through_the_outcome() {
        let session = Session::new(Catalog::new()).with_pool(2);
        let plan = CompiledQuery::compile(&patterns::cycle3()).unwrap();
        let mut stream = session.query(&plan).stream();
        assert_eq!(stream.next(), None, "no rows from a failed query");
        assert!(matches!(
            stream.outcome().unwrap(),
            Err(JoinError::MissingRelation { .. })
        ));
    }
}
