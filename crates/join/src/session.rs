//! Streaming query sessions: the serving layer over the parallel engines.
//!
//! A [`Session`] owns what a serving process shares across queries — the
//! catalog, one worker-pool configuration, and one cross-query
//! [`TrieCache`] — and hands out per-query [`QueryHandle`]s that carry
//! their own budgets (row limits, deadlines, shard granularity). A handle
//! either runs synchronously into any [`ResultSink`], or becomes a
//! pull-based [`ResultStream`]: an iterator that delivers tuples in the
//! **exact sequential order** while the join is still running, and whose
//! `Drop` cancels the run cooperatively — walking away from a stream can
//! never hang the pool or leak a runaway query.
//!
//! Sessions open directly from a persistent [`StoredCatalog`]
//! ([`Session::open`]): the stored tries preload the session cache, so the
//! first query of a cold process runs with zero trie builds. The inverse,
//! [`Session::snapshot`], warms the cache with a set of plans and packages
//! catalog + tries (+ any pending deltas, as format version 2) for
//! [`StoredCatalog::save`].
//!
//! # Mutation
//!
//! Sessions are mutable without ever rebuilding a base trie:
//! [`Session::apply`] folds one batch of inserts and deletes into a
//! per-relation [`RelationDelta`] kept beside the frozen base, bumping the
//! session **epoch**. Queries snapshot `(catalog, deltas, epoch)` at
//! [`Session::query`] time, so a long stream keeps reading the state it
//! started from while later batches land. Engines walk mutated relations
//! through [`triejax_relation::MergeCursor`]s (`base ∪ inserts −
//! tombstones`); untouched relations keep their plain trie cursors and
//! their cached tries. When a relation's delta outgrows
//! [`Session::with_compact_ratio`] × its base (or on an explicit
//! [`Session::compact`]), the delta is merged into a fresh frozen base —
//! an O(base) rebuild paid rarely, amortizing to O(batch) per apply.
//!
//! Applies are atomic: the new state is fully computed before it is
//! swapped in, so a panic mid-apply (fault injection, allocation failure)
//! leaves the session at its prior epoch with the old state intact.
//!
//! # Standing queries
//!
//! [`Session::watch`] registers a query for **semi-naïve incremental
//! evaluation**: after every applied batch the subscriber's
//! [`WatchStream`] receives exactly the result tuples that batch *newly
//! created* — computed by joining only the delta-containing atom
//! combinations, never by re-running the full query (see the module's
//! overlap-term decomposition in ARCHITECTURE.md).

use std::sync::mpsc::{channel, sync_channel, Receiver, Sender, SyncSender};
use std::sync::{Arc, Mutex, PoisonError, RwLock};
use std::thread::JoinHandle;
use std::time::Duration;

use triejax_exec::{CancelToken, WorkerPool};
use triejax_query::{CompiledQuery, Query};
use triejax_relation::{delta, NoTally, Relation, RelationDelta, Value};
use triejax_store::{StoreError, StoredCatalog};

use crate::engine::head_slots;
use crate::{
    Catalog, CollectSink, DeltaMap, EngineStats, JoinError, Lftj, ParCtj, ParLftj, ResultSink,
    TrieCache, TrieSet,
};

/// Name of the environment variable supplying the default delta-compaction
/// threshold: a relation's delta is merged into a fresh frozen base when
/// `delta.len() > ratio × base.len()` after an apply. Unset means `0.5`;
/// [`Session::with_compact_ratio`] overrides it per session.
pub const COMPACT_RATIO_ENV: &str = "TRIEJAX_DELTA_COMPACT_RATIO";

/// Reads the compaction ratio from the environment (default `0.5`).
fn env_compact_ratio() -> f64 {
    match std::env::var(COMPACT_RATIO_ENV) {
        Ok(v) if !v.trim().is_empty() => {
            let parsed = v.trim().parse::<f64>().ok().filter(|r| *r >= 0.0);
            parsed.unwrap_or_else(|| {
                panic!("{COMPACT_RATIO_ENV} must be a non-negative number, got {v:?}")
            })
        }
        _ => 0.5,
    }
}

/// Rows per batch pushed through a stream's channel — same batching the
/// shard sinks use, so streaming adds one copy, not per-tuple signalling.
const STREAM_BATCH_ROWS: usize = 256;

/// Batches buffered in a stream's channel before the producing engine
/// blocks: bounds the memory between a fast producer and a slow consumer.
const STREAM_CHANNEL_BATCHES: usize = 16;

/// One immutable generation of a session's data: the frozen bases, the
/// pending per-relation deltas, and the epoch that stamps them. Queries
/// clone this (two `Arc` bumps) and keep reading it while later epochs
/// land.
#[derive(Debug, Clone)]
struct SessionState {
    catalog: Arc<Catalog>,
    deltas: Arc<DeltaMap>,
    epoch: u64,
}

/// The interior every clone of a [`Session`] shares.
#[derive(Debug)]
struct Mutable {
    state: RwLock<SessionState>,
    /// Serializes [`Session::apply`]/[`Session::compact`]: the batch
    /// algebra (and watcher notification order) must compose sequentially.
    apply: Mutex<()>,
    watchers: Mutex<Vec<Watcher>>,
}

/// A serving-process context: one catalog, one worker-pool configuration,
/// and one shared cross-query trie cache.
///
/// Concurrent queries are the point — [`Session::query`] borrows nothing
/// mutably, and every [`QueryHandle`]/[`ResultStream`] owns `Arc`s into
/// the shared state, so any number of streams can run at once against the
/// same tries. Clones share the same mutable state: an [`Session::apply`]
/// through one clone advances the epoch every clone observes.
///
/// # Example
///
/// ```
/// use triejax_join::{Catalog, Session};
/// use triejax_query::{patterns, CompiledQuery};
/// use triejax_relation::Relation;
///
/// let mut catalog = Catalog::new();
/// catalog.insert("G", Relation::from_pairs(vec![(0, 1), (1, 2), (2, 0)]));
/// let session = Session::new(catalog).with_pool(2);
/// let plan = CompiledQuery::compile(&patterns::cycle3())?;
///
/// let mut rows = Vec::new();
/// for row in session.query(&plan).stream() {
///     rows.push(row); // arrives incrementally, in sequential order
/// }
/// assert_eq!(rows.len(), 3);
///
/// // Mutate without rebuilding: drop one edge, close a new triangle
/// // through a fresh vertex (0 → 3 → 1 → 0).
/// session.apply(
///     "G",
///     &Relation::from_pairs(vec![(0, 3), (3, 1), (1, 0)]),
///     &Relation::from_pairs(vec![(0, 1)]),
/// )?;
/// assert_eq!(session.query(&plan).stream().count(), 3);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct Session {
    shared: Arc<Mutable>,
    /// The pool configuration every query and snapshot of this session
    /// shares ([`WorkerPool`] is a `Copy` config; each run spawns its
    /// scoped workers from it).
    pool: WorkerPool,
    cache: Arc<TrieCache>,
    /// Explicit compaction ratio; `None` falls back to
    /// [`COMPACT_RATIO_ENV`] at each apply.
    compact_ratio: Option<f64>,
}

impl Session {
    /// Creates a session over `catalog` with the default pool size
    /// (`TRIEJAX_POOL`, else one worker per core) and a fresh unbounded
    /// trie cache.
    pub fn new(catalog: Catalog) -> Self {
        Session::from_parts(catalog, DeltaMap::new(), TrieCache::unbounded())
    }

    fn from_parts(catalog: Catalog, deltas: DeltaMap, cache: TrieCache) -> Self {
        Session {
            shared: Arc::new(Mutable {
                state: RwLock::new(SessionState {
                    catalog: Arc::new(catalog),
                    deltas: Arc::new(deltas),
                    epoch: 0,
                }),
                apply: Mutex::new(()),
                watchers: Mutex::new(Vec::new()),
            }),
            pool: WorkerPool::new(),
            cache: Arc::new(cache),
            compact_ratio: None,
        }
    }

    /// Opens a session from a saved [`StoredCatalog`] file: the stored
    /// relations become the catalog and every stored trie preloads the
    /// session cache, so queries whose tries were saved run with **zero**
    /// trie builds ([`EngineStats::trie_build_ns`] stays `0`). A
    /// version-2 file's delta section is restored as the session's
    /// pending deltas.
    ///
    /// # Errors
    ///
    /// Returns the [`StoreError`] if the file cannot be read or fails
    /// validation.
    pub fn open(path: impl AsRef<std::path::Path>) -> Result<Self, StoreError> {
        Ok(Session::from_stored(&StoredCatalog::open(path)?))
    }

    /// Builds a session from an already-loaded stored catalog (the
    /// in-memory form of [`Session::open`]).
    pub fn from_stored(stored: &StoredCatalog) -> Self {
        let mut catalog = Catalog::new();
        for (name, rel) in stored.relations() {
            catalog.insert(name.clone(), rel.clone());
        }
        let mut deltas = DeltaMap::new();
        for (name, delta) in stored.deltas() {
            if !delta.is_empty() {
                deltas.insert(name.clone(), delta.clone());
            }
        }
        let cache = TrieCache::unbounded();
        cache.preload(stored);
        Session::from_parts(catalog, deltas, cache)
    }

    /// Sets the worker count shared by every query and snapshot.
    ///
    /// # Panics
    ///
    /// Panics if `workers == 0`.
    pub fn with_pool(mut self, workers: usize) -> Self {
        assert!(workers > 0, "workers must be positive");
        self.pool = WorkerPool::with_workers(workers);
        self
    }

    /// Sets this session's delta-compaction threshold, overriding
    /// [`COMPACT_RATIO_ENV`]: after an apply leaves a relation with
    /// `delta.len() > ratio × base.len()`, the delta is merged into a
    /// fresh frozen base. `0.0` compacts after every apply; `f64::INFINITY`
    /// disables auto-compaction.
    ///
    /// # Panics
    ///
    /// Panics if `ratio` is negative or NaN.
    pub fn with_compact_ratio(mut self, ratio: f64) -> Self {
        assert!(ratio >= 0.0, "compact ratio must be non-negative");
        self.compact_ratio = Some(ratio);
        self
    }

    fn effective_compact_ratio(&self) -> f64 {
        self.compact_ratio.unwrap_or_else(env_compact_ratio)
    }

    /// A clone of the current state, taken under the read lock.
    fn state(&self) -> SessionState {
        self.shared
            .state
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .clone()
    }

    /// The current catalog of frozen base relations (pending deltas live
    /// beside it, see [`Session::deltas`]).
    pub fn catalog(&self) -> Arc<Catalog> {
        self.state().catalog
    }

    /// The pending per-relation deltas of the current epoch.
    pub fn deltas(&self) -> Arc<DeltaMap> {
        self.state().deltas
    }

    /// The current epoch: `0` at creation, bumped by every successful
    /// [`Session::apply`] and every compacting [`Session::compact`].
    pub fn epoch(&self) -> u64 {
        self.shared
            .state
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .epoch
    }

    /// The shared cross-query trie cache (inspect its hit/insertion
    /// counters to observe store/cache effectiveness).
    pub fn trie_cache(&self) -> &Arc<TrieCache> {
        &self.cache
    }

    /// The worker count this session's queries run with.
    pub fn workers(&self) -> usize {
        self.pool.workers()
    }

    /// Applies one mutation batch to relation `name`: `deletes` first,
    /// then `inserts` (a tuple in both ends up present). The batch folds
    /// into the relation's pending [`RelationDelta`] — the frozen base
    /// trie is **not** rebuilt — and the session epoch advances by one.
    /// Unknown names create a fresh relation of the batch arity.
    ///
    /// The apply is atomic: the new state is fully computed before the
    /// swap, so a panic mid-apply leaves the session at the prior epoch.
    /// After the swap every standing query ([`Session::watch`]) receives
    /// its incremental update for this batch, before `apply` returns.
    ///
    /// When the new delta exceeds the compaction threshold
    /// ([`Session::with_compact_ratio`]) relative to a **non-empty** base,
    /// the delta is merged into a fresh frozen base as part of the same
    /// epoch. Relations created by `apply` (empty base) never
    /// auto-compact; use [`Session::compact`] to promote them.
    ///
    /// Returns the new epoch.
    ///
    /// # Errors
    ///
    /// Returns [`JoinError::ArityMismatch`] when `inserts` and `deletes`
    /// disagree on arity or differ from the existing relation's arity; the
    /// session state is untouched.
    pub fn apply(
        &self,
        name: &str,
        inserts: &Relation,
        deletes: &Relation,
    ) -> Result<u64, JoinError> {
        let _apply = self
            .shared
            .apply
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        let state = self.state();
        if inserts.arity() != deletes.arity() {
            return Err(JoinError::ArityMismatch {
                name: name.to_owned(),
                atom_arity: inserts.arity(),
                relation_arity: deletes.arity(),
            });
        }
        let arity = inserts.arity();
        let (base, created) = match state.catalog.get(name) {
            Some(rel) if rel.arity() != arity => {
                return Err(JoinError::ArityMismatch {
                    name: name.to_owned(),
                    atom_arity: arity,
                    relation_arity: rel.arity(),
                });
            }
            Some(rel) => (rel.clone(), false),
            None => (
                Relation::new(arity).expect("batch relations have nonzero arity"),
                true,
            ),
        };
        let old_delta = state.deltas.get(name).cloned().unwrap_or_else(|| {
            RelationDelta::empty(arity).expect("batch relations have nonzero arity")
        });
        let (added, _removed) = old_delta.batch_effects(&base, inserts, deletes);
        let new_delta = old_delta.apply_batch(&base, inserts, deletes);
        let compact = !base.is_empty()
            && new_delta.len() as f64 > self.effective_compact_ratio() * base.len() as f64;

        let new_catalog = if created || compact {
            let mut cat = (*state.catalog).clone();
            if compact {
                cat.insert(name, new_delta.merge_into(&base));
            } else {
                cat.insert(name, base.clone());
            }
            Arc::new(cat)
        } else {
            Arc::clone(&state.catalog)
        };
        let new_deltas = {
            let mut dm = (*state.deltas).clone();
            if compact || new_delta.is_empty() {
                dm.remove(name);
            } else {
                dm.insert(name.to_owned(), new_delta.clone());
            }
            Arc::new(dm)
        };
        let epoch = state.epoch + 1;

        // Fault-injection hook: the new state is fully computed but not
        // yet visible — a panic fired here must leave the session (and any
        // subsequent observer) at the prior epoch.
        #[cfg(feature = "faults")]
        crate::faults::fire(crate::faults::FaultEvent::DeltaApply);

        *self
            .shared
            .state
            .write()
            .unwrap_or_else(PoisonError::into_inner) = SessionState {
            catalog: new_catalog,
            deltas: new_deltas,
            epoch,
        };
        self.notify_watchers(name, &base, &new_delta, &added, epoch);
        Ok(epoch)
    }

    /// Merges relation `name`'s pending delta into a fresh frozen base,
    /// regardless of the compaction ratio. A no-op (epoch unchanged) when
    /// the relation has no pending delta; otherwise the epoch advances.
    /// Standing queries are **not** notified — compaction never changes
    /// the merged view.
    ///
    /// Returns the (possibly unchanged) epoch.
    pub fn compact(&self, name: &str) -> u64 {
        let _apply = self
            .shared
            .apply
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        let state = self.state();
        let Some(delta) = state.deltas.get(name).filter(|d| !d.is_empty()) else {
            return state.epoch;
        };
        let base = state
            .catalog
            .get(name)
            .cloned()
            .unwrap_or_else(|| Relation::new(delta.arity()).expect("delta arity is nonzero"));
        let mut cat = (*state.catalog).clone();
        cat.insert(name, delta.merge_into(&base));
        let mut dm = (*state.deltas).clone();
        dm.remove(name);
        let epoch = state.epoch + 1;
        *self
            .shared
            .state
            .write()
            .unwrap_or_else(PoisonError::into_inner) = SessionState {
            catalog: Arc::new(cat),
            deltas: Arc::new(dm),
            epoch,
        };
        epoch
    }

    /// Registers `plan` as a **standing query**: the returned
    /// [`WatchStream`] receives one [`WatchUpdate`] per subsequent
    /// [`Session::apply`], carrying exactly the result tuples that batch
    /// newly created, in the engine's sequential order.
    ///
    /// Evaluation is semi-naïve: per applied batch only the
    /// delta-containing atom combinations are joined (one term per atom
    /// referencing the mutated relation), never the full query. Deletions
    /// cannot create results, so a delete-only batch yields an empty
    /// update. Dropping the stream unregisters the watcher at the next
    /// apply; the session is never blocked by a slow or gone subscriber.
    ///
    /// # Errors
    ///
    /// Returns [`JoinError::Plan`] for projected plans (standing queries
    /// emit full joins, like the engines themselves).
    pub fn watch(&self, plan: &CompiledQuery) -> Result<WatchStream, JoinError> {
        let slots = head_slots(plan)?;
        let q = plan.query();
        // Rebuild the query with one synthetic relation name per atom
        // ("rel@i"): the incremental terms give different atoms over the
        // same relation *different* views, which the engine's per-(name,
        // permutation) trie dedup must not conflate. Variable names keep
        // their positions, so VarIds (assigned by first appearance) and
        // hence `plan.order()` carry over unchanged.
        let mut builder = Query::builder(format!("{}@watch", q.name()))
            .head(q.head().iter().map(|&v| q.var_name(v)));
        for (i, atom) in q.atoms().iter().enumerate() {
            builder = builder.atom(
                format!("{}@{i}", atom.relation()),
                atom.vars().iter().map(|&v| q.var_name(v)),
            );
        }
        let renamed = builder.build().map_err(|e| JoinError::Plan {
            detail: format!("standing query could not be rebuilt: {e}"),
        })?;
        let term_plan = CompiledQuery::compile_with_order(&renamed, plan.order().to_vec())
            .map_err(|e| JoinError::Plan {
                detail: format!("standing query could not be re-planned: {e}"),
            })?;
        let relations = q.atoms().iter().map(|a| a.relation().to_owned()).collect();
        let (tx, rx) = channel();
        self.shared
            .watchers
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push(Watcher {
                relations,
                term_plan,
                slots,
                tx,
            });
        Ok(WatchStream { rx })
    }

    /// Evaluates every live watcher against the just-applied batch and
    /// sends its update; watchers whose subscriber is gone are dropped.
    /// Runs under the apply lock, so updates arrive in epoch order.
    fn notify_watchers(
        &self,
        name: &str,
        base: &Relation,
        new_delta: &RelationDelta,
        added: &Relation,
        epoch: u64,
    ) {
        let mut watchers = self
            .shared
            .watchers
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        if watchers.is_empty() {
            return;
        }
        let state = self.state();
        watchers.retain(|w| {
            let rows = w.evaluate(name, base, new_delta, added, &state);
            w.tx.send(WatchUpdate { epoch, rows }).is_ok()
        });
    }

    /// Creates a query handle over `plan` against a snapshot of this
    /// session's current epoch (catalog + pending deltas); later applies
    /// do not affect the handle or its streams.
    pub fn query(&self, plan: &CompiledQuery) -> QueryHandle {
        let state = self.state();
        QueryHandle {
            plan: plan.clone(),
            catalog: state.catalog,
            deltas: state.deltas,
            cache: Arc::clone(&self.cache),
            workers: self.pool.workers(),
            granularity: None,
            split: None,
            deadline: None,
            row_limit: None,
            ctj: false,
        }
    }

    /// Builds (into the session cache) every trie the given plans need,
    /// then packages the catalog plus all cached tries — and any pending
    /// deltas, which make the file format version 2 — as a
    /// [`StoredCatalog`] ready for [`StoredCatalog::save`]. Entries are
    /// emitted in sorted key order, so the same session state always
    /// serializes to the same bytes.
    ///
    /// # Errors
    ///
    /// Returns a [`JoinError`] if a plan references a relation the catalog
    /// is missing or whose arity mismatches.
    pub fn snapshot(&self, plans: &[CompiledQuery]) -> Result<StoredCatalog, JoinError> {
        let state = self.state();
        for plan in plans {
            TrieSet::build_on(plan, &state.catalog, &self.pool, Some(&self.cache))?;
        }
        let mut stored = StoredCatalog::new();
        let mut relations: Vec<_> = state.catalog.iter().collect();
        relations.sort_by_key(|(name, _)| name.to_owned());
        for (name, rel) in relations {
            stored.insert_relation(name, rel.clone());
        }
        let mut entries = self.cache.entries();
        entries.sort_by(|a, b| (&a.0, &a.2, a.1).cmp(&(&b.0, &b.2, b.1)));
        for (name, fingerprint, perm, trie) in entries {
            stored.insert_trie(name, fingerprint, perm, trie);
        }
        let mut deltas: Vec<_> = state.deltas.iter().collect();
        deltas.sort_by_key(|(name, _)| name.to_owned());
        for (name, delta) in deltas {
            stored.insert_delta(name, delta.clone());
        }
        Ok(stored)
    }
}

/// One update of a standing query ([`Session::watch`]): the tuples the
/// batch applied at `epoch` newly added to the query's result, in the
/// engine's sequential order. `rows` is empty when the batch created no
/// results (e.g. a delete-only batch).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WatchUpdate {
    /// The epoch whose apply produced this update.
    pub epoch: u64,
    /// The newly-created result tuples, in sequential order.
    pub rows: Vec<Vec<Value>>,
}

/// The subscriber half of a standing query: one [`WatchUpdate`] arrives
/// per [`Session::apply`] (synchronously, before `apply` returns).
/// Dropping the stream unsubscribes; an in-flight apply is unaffected and
/// never blocks on this channel (it is unbounded).
#[derive(Debug)]
pub struct WatchStream {
    rx: Receiver<WatchUpdate>,
}

impl WatchStream {
    /// The next pending update, if one has already been delivered.
    pub fn poll(&self) -> Option<WatchUpdate> {
        self.rx.try_recv().ok()
    }

    /// Blocks for the next update; `None` once every clone of the session
    /// is gone (no further applies can happen).
    pub fn recv(&self) -> Option<WatchUpdate> {
        self.rx.recv().ok()
    }
}

/// The session-side half of a standing query: the renamed term plan plus
/// what it takes to evaluate one batch's increment and deliver it.
#[derive(Debug)]
struct Watcher {
    /// Original relation name per atom; the term plan's atom `i` reads the
    /// synthetic view `"{relations[i]}@{i}"`.
    relations: Vec<String>,
    term_plan: CompiledQuery,
    /// Evaluation depth → head slot, for sorting concatenated term output
    /// back into the engine's sequential (binding-order) emission order.
    slots: Vec<usize>,
    tx: Sender<WatchUpdate>,
}

impl Watcher {
    /// The semi-naïve increment of one applied batch: with `A` the tuples
    /// the batch added to the mutated relation's merged view, `NEW` that
    /// view after the apply and `MID = NEW − A`, the newly-created results
    /// are the disjoint union over atoms `j` referencing the relation of
    ///
    /// ```text
    /// join(NEW at atoms < j, A alone at atom j, MID at atoms > j)
    /// ```
    ///
    /// (every new result uses `A` somewhere; the term of its *first*
    /// `A`-using atom counts it exactly once). Removals need no filtering:
    /// joins are monotone per view, so anything over `NEW`/`MID`/`A` that
    /// was not a result before the apply is genuinely new.
    fn evaluate(
        &self,
        name: &str,
        base: &Relation,
        new_delta: &RelationDelta,
        added: &Relation,
        state: &SessionState,
    ) -> Vec<Vec<Value>> {
        let touched: Vec<usize> = self
            .relations
            .iter()
            .enumerate()
            .filter(|(_, r)| r.as_str() == name)
            .map(|(i, _)| i)
            .collect();
        if touched.is_empty() || added.is_empty() {
            return Vec::new();
        }
        // MID as a delta over the same base: drop the added tuples from
        // the insert side, tombstone the added tuples that live in the
        // base (re-inserts of previously tombstoned rows).
        let mid = RelationDelta::from_parts(
            delta::difference(new_delta.inserts(), added),
            delta::union(new_delta.tombstones(), &delta::intersection(added, base)),
        )
        .expect("all parts share the batch arity");
        let mut rows: Vec<Vec<Value>> = Vec::new();
        for &j in &touched {
            let mut cat = Catalog::new();
            let mut dm = DeltaMap::new();
            let mut resolved = true;
            for (i, rel) in self.relations.iter().enumerate() {
                let view = format!("{rel}@{i}");
                if rel == name {
                    match i.cmp(&j) {
                        std::cmp::Ordering::Equal => cat.insert(view, added.clone()),
                        std::cmp::Ordering::Less => {
                            cat.insert(view.clone(), base.clone());
                            if !new_delta.is_empty() {
                                dm.insert(view, new_delta.clone());
                            }
                        }
                        std::cmp::Ordering::Greater => {
                            cat.insert(view.clone(), base.clone());
                            if !mid.is_empty() {
                                dm.insert(view, mid.clone());
                            }
                        }
                    }
                } else if let Some(r) = state.catalog.get(rel) {
                    cat.insert(view.clone(), r.clone());
                    if let Some(d) = state.deltas.get(rel).filter(|d| !d.is_empty()) {
                        dm.insert(view, d.clone());
                    }
                } else {
                    // A relation the query needs does not exist yet: the
                    // full join is empty, and so is every increment.
                    resolved = false;
                    break;
                }
            }
            if !resolved {
                return Vec::new();
            }
            let mut sink = CollectSink::new();
            if Lftj::new()
                .run_tallied_with::<NoTally>(&self.term_plan, &cat, &dm, &mut sink)
                .is_ok()
            {
                rows.extend(sink.tuples().iter().cloned());
            }
        }
        // Terms are disjoint, so concatenation has no duplicates; sorting
        // by the binding order restores the sequential emission order.
        rows.sort_by(|a, b| {
            self.slots
                .iter()
                .map(|&s| a[s])
                .cmp(self.slots.iter().map(|&s| b[s]))
        });
        rows
    }
}

/// One query's configuration against a [`Session`]: the per-query budgets
/// (row limit, deadline, shard granularity, splitting) layered over the
/// session's shared state.
///
/// Consume it with [`QueryHandle::stream`] for incremental pull-based
/// delivery, or [`QueryHandle::run`] to drive a sink synchronously.
#[derive(Debug, Clone)]
pub struct QueryHandle {
    plan: CompiledQuery,
    catalog: Arc<Catalog>,
    deltas: Arc<DeltaMap>,
    cache: Arc<TrieCache>,
    workers: usize,
    granularity: Option<usize>,
    split: Option<bool>,
    deadline: Option<Duration>,
    row_limit: Option<u64>,
    ctj: bool,
}

impl QueryHandle {
    /// Caps delivered rows: the stream (or sink) receives exactly the
    /// first `min(total, limit)` rows of the sequential result order.
    pub fn with_row_limit(mut self, limit: u64) -> Self {
        self.row_limit = Some(limit);
        self
    }

    /// Caps the query's wall-clock time; an overrunning query is
    /// cancelled cooperatively with the delivered rows staying an exact
    /// sequential prefix.
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Sets an explicit shard count for this query (the per-query shard
    /// budget; defaults to the plan-seeded granularity).
    ///
    /// # Panics
    ///
    /// Panics if `shards == 0` (when the query runs).
    pub fn with_granularity(mut self, shards: usize) -> Self {
        self.granularity = Some(shards);
        self
    }

    /// Enables or disables dynamic shard splitting for this query,
    /// overriding the `TRIEJAX_SPLIT` environment default.
    pub fn with_split(mut self, on: bool) -> Self {
        self.split = Some(on);
        self
    }

    /// Runs this query on [`ParCtj`] (the cached-TrieJoin engine) instead
    /// of the default [`ParLftj`]; result tuples and their order are
    /// identical either way.
    pub fn with_ctj(mut self) -> Self {
        self.ctj = true;
        self
    }

    /// Runs the query synchronously on the calling thread, pushing every
    /// result row into `sink` in exact sequential order.
    ///
    /// # Errors
    ///
    /// Propagates the engine's [`JoinError`]; a budget-terminated run
    /// reports [`JoinError::Cancelled`] with the rows delivered so far
    /// forming an exact prefix.
    pub fn run(&self, sink: &mut dyn ResultSink) -> Result<EngineStats, JoinError> {
        self.execute_into(None, sink)
    }

    /// Starts the query on a background thread and returns the pull-based
    /// stream of its results. See [`ResultStream`] for the delivery and
    /// cancellation contract.
    pub fn stream(self) -> ResultStream {
        let token = CancelToken::new();
        let cancel = token.clone();
        let arity = self.plan.arity();
        let (tx, rx) = sync_channel::<Vec<Value>>(STREAM_CHANNEL_BATCHES);
        let worker = std::thread::spawn(move || {
            let mut sink = ChannelSink::new(tx, arity);
            let result = self.execute_into(Some(token), &mut sink);
            sink.flush();
            result
        });
        ResultStream {
            arity,
            rx: Some(rx),
            batch: Vec::new(),
            pos: 0,
            cancel,
            worker: Some(worker),
            outcome: None,
        }
    }

    /// Builds the configured engine and runs it. Both engines share the
    /// builder surface, so the only divergence is the type name.
    fn execute_into(
        &self,
        token: Option<CancelToken>,
        sink: &mut dyn ResultSink,
    ) -> Result<EngineStats, JoinError> {
        macro_rules! run {
            ($engine:ty) => {{
                let mut e =
                    <$engine>::with_pool(self.workers).with_trie_cache(Arc::clone(&self.cache));
                if let Some(g) = self.granularity {
                    e = e.with_granularity(g);
                }
                if let Some(s) = self.split {
                    e = e.with_split(s);
                }
                if let Some(d) = self.deadline {
                    e = e.with_deadline(d);
                }
                if let Some(l) = self.row_limit {
                    e = e.with_row_limit(l);
                }
                if let Some(t) = token {
                    e = e.with_cancel_token(t);
                }
                e.run_tallied_with::<triejax_relation::Counting>(
                    &self.plan,
                    &self.catalog,
                    &self.deltas,
                    sink,
                )
            }};
        }
        if self.ctj {
            run!(ParCtj)
        } else {
            run!(ParLftj)
        }
    }
}

/// A pull-based iterator over one running query's result tuples.
///
/// Delivery contract:
///
/// * **Order** — tuples arrive in the exact sequential engine order
///   (tuple-for-tuple what [`crate::Lftj`] would emit), incrementally
///   while later shards are still executing.
/// * **Budgets** — a row-limited or deadlined query ends the stream after
///   an exact sequential prefix; [`ResultStream::outcome`] then reports
///   the [`JoinError::Cancelled`] carrying the partial stats.
/// * **Backpressure** — a bounded channel separates the engine from the
///   consumer; a slow consumer blocks the producer after
///   a fixed number of buffered batches instead of buffering the result.
/// * **Drop** — dropping the stream mid-iteration fires the query's
///   cancel token, disconnects the channel (which immediately unblocks
///   any waiting producer), and joins the engine thread: cooperative
///   cancellation, never a hung pool.
pub struct ResultStream {
    arity: usize,
    rx: Option<Receiver<Vec<Value>>>,
    /// The batch currently being sliced into rows, and the cursor into it.
    batch: Vec<Value>,
    pos: usize,
    cancel: CancelToken,
    worker: Option<JoinHandle<Result<EngineStats, JoinError>>>,
    outcome: Option<Result<EngineStats, JoinError>>,
}

impl std::fmt::Debug for ResultStream {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ResultStream")
            .field("arity", &self.arity)
            .field("live", &self.worker.is_some())
            .finish_non_exhaustive()
    }
}

impl ResultStream {
    /// Number of values per delivered row.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// The engine's final result, available once the stream is exhausted
    /// (iteration returned `None`): the run's [`EngineStats`] on success,
    /// or the [`JoinError`] — e.g. `Cancelled` after a row limit truncated
    /// the stream. `None` while tuples may still arrive.
    pub fn outcome(&mut self) -> Option<&Result<EngineStats, JoinError>> {
        if self.outcome.is_none() && self.rx.is_none() {
            self.join_worker();
        }
        self.outcome.as_ref()
    }

    fn join_worker(&mut self) {
        if let Some(handle) = self.worker.take() {
            match handle.join() {
                Ok(result) => self.outcome = Some(result),
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
    }
}

impl Iterator for ResultStream {
    type Item = Vec<Value>;

    fn next(&mut self) -> Option<Vec<Value>> {
        loop {
            if self.pos < self.batch.len() {
                let row = self.batch[self.pos..self.pos + self.arity].to_vec();
                self.pos += self.arity;
                return Some(row);
            }
            let rx = self.rx.as_ref()?;
            match rx.recv() {
                Ok(batch) => {
                    self.batch = batch;
                    self.pos = 0;
                }
                Err(_) => {
                    // Producer finished (or failed): all rows delivered.
                    self.rx = None;
                    self.join_worker();
                    return None;
                }
            }
        }
    }
}

impl Drop for ResultStream {
    fn drop(&mut self) {
        self.cancel.cancel();
        // Disconnecting the receiver makes any blocked `send` in the
        // producer return an error immediately — the engine thread can
        // never stay wedged on a full channel.
        self.rx = None;
        if let Some(handle) = self.worker.take() {
            // A panicking engine thread must not double-panic in drop;
            // its payload is intentionally discarded here.
            let _ = handle.join();
        }
    }
}

/// The producer-side sink of a [`ResultStream`]: batches rows and sends
/// them through the bounded channel. Once the consumer disconnects, rows
/// are discarded without blocking (the cancel token ends the run at its
/// next poll point).
struct ChannelSink {
    tx: SyncSender<Vec<Value>>,
    buf: Vec<Value>,
    batch_values: usize,
    disconnected: bool,
}

impl ChannelSink {
    fn new(tx: SyncSender<Vec<Value>>, arity: usize) -> Self {
        let batch_values = STREAM_BATCH_ROWS * arity.max(1);
        ChannelSink {
            tx,
            buf: Vec::with_capacity(batch_values),
            batch_values,
            disconnected: false,
        }
    }

    fn flush(&mut self) {
        if self.buf.is_empty() {
            return;
        }
        let batch = std::mem::take(&mut self.buf);
        if !self.disconnected && self.tx.send(batch).is_err() {
            self.disconnected = true;
        }
    }
}

impl ResultSink for ChannelSink {
    fn push(&mut self, tuple: &[Value]) {
        if self.disconnected {
            return;
        }
        self.buf.extend_from_slice(tuple);
        if self.buf.len() >= self.batch_values {
            self.flush();
        }
    }

    fn push_rows(&mut self, rows: &[Value], _arity: usize) {
        if self.disconnected {
            return;
        }
        self.buf.extend_from_slice(rows);
        if self.buf.len() >= self.batch_values {
            self.flush();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CollectSink, JoinEngine, Lftj};
    use triejax_exec::CancelReason;
    use triejax_query::patterns;
    use triejax_relation::Relation;

    fn grid_session(workers: usize) -> Session {
        let mut catalog = Catalog::new();
        // Complete directed graph on 12 vertices: plenty of cycles and
        // paths, so every pattern yields a multi-batch result stream.
        catalog.insert(
            "G",
            Relation::from_pairs(
                (0..12u32).flat_map(|a| (0..12u32).filter(move |&b| b != a).map(move |b| (a, b))),
            ),
        );
        Session::new(catalog).with_pool(workers)
    }

    fn sequential_tuples(session: &Session, plan: &CompiledQuery) -> Vec<Vec<Value>> {
        let mut sink = CollectSink::new();
        Lftj::new()
            .run_tallied_with::<triejax_relation::Counting>(
                plan,
                &session.catalog(),
                &session.deltas(),
                &mut sink,
            )
            .unwrap();
        sink.tuples().to_vec()
    }

    #[test]
    fn stream_delivers_exact_sequential_order() {
        let session = grid_session(4);
        for pattern in [patterns::cycle3(), patterns::path4()] {
            let plan = CompiledQuery::compile(&pattern).unwrap();
            let expect = sequential_tuples(&session, &plan);
            let mut stream = session.query(&plan).stream();
            let got: Vec<Vec<Value>> = stream.by_ref().collect();
            assert_eq!(got, expect, "stream must equal sequential order");
            assert!(stream.outcome().unwrap().is_ok());
        }
    }

    #[test]
    fn run_matches_stream() {
        let session = grid_session(2);
        let plan = CompiledQuery::compile(&patterns::cycle3()).unwrap();
        let mut sink = CollectSink::new();
        let stats = session.query(&plan).run(&mut sink).unwrap();
        assert!(stats.results > 0);
        let streamed: Vec<Vec<Value>> = session.query(&plan).stream().collect();
        assert_eq!(streamed, sink.tuples());
    }

    #[test]
    fn row_limit_truncates_to_exact_prefix() {
        let session = grid_session(3);
        let plan = CompiledQuery::compile(&patterns::cycle3()).unwrap();
        let expect = sequential_tuples(&session, &plan);
        assert!(expect.len() > 5);
        let mut stream = session.query(&plan).with_row_limit(5).stream();
        let got: Vec<Vec<Value>> = stream.by_ref().collect();
        assert_eq!(got, expect[..5], "row limit keeps the sequential prefix");
        match stream.outcome().unwrap() {
            Err(JoinError::Cancelled { reason, .. }) => {
                assert_eq!(*reason, CancelReason::RowLimit)
            }
            other => panic!("expected RowLimit cancellation, got {other:?}"),
        }
    }

    #[test]
    fn dropping_a_stream_mid_run_cancels_without_hanging() {
        let session = grid_session(4);
        let plan = CompiledQuery::compile(&patterns::path4()).unwrap();
        let expect = sequential_tuples(&session, &plan);
        // Take a couple of rows, then drop with the engine (very likely)
        // still producing; Drop must cancel and join promptly either way.
        let mut stream = session.query(&plan).stream();
        let first: Vec<_> = stream.by_ref().take(2).collect();
        assert_eq!(first, expect[..2]);
        drop(stream);
        // The session stays fully usable afterwards.
        let again: Vec<Vec<Value>> = session.query(&plan).stream().collect();
        assert_eq!(again, expect);
    }

    #[test]
    fn concurrent_streams_share_one_session() {
        let session = grid_session(2);
        let c3 = CompiledQuery::compile(&patterns::cycle3()).unwrap();
        let p4 = CompiledQuery::compile(&patterns::path4()).unwrap();
        let (e3, e4) = (
            sequential_tuples(&session, &c3),
            sequential_tuples(&session, &p4),
        );
        // Interleave pulls from two live streams against the same session.
        let mut s3 = session.query(&c3).stream();
        let mut s4 = session.query(&p4).stream();
        let (mut g3, mut g4) = (Vec::new(), Vec::new());
        loop {
            let a = s3.next();
            let b = s4.next();
            if let Some(r) = a {
                g3.push(r);
            }
            if let Some(r) = b {
                g4.push(r);
            }
            if s3.outcome().is_some() && s4.outcome().is_some() {
                break;
            }
        }
        g3.extend(s3.by_ref());
        g4.extend(s4.by_ref());
        assert_eq!(g3, e3);
        assert_eq!(g4, e4);
    }

    #[test]
    fn snapshot_then_open_serves_with_zero_builds() {
        let session = grid_session(2);
        let plan = CompiledQuery::compile(&patterns::cycle3()).unwrap();
        let expect = sequential_tuples(&session, &plan);
        let stored = session.snapshot(std::slice::from_ref(&plan)).unwrap();
        assert!(!stored.tries().is_empty());

        // A fresh session from the stored bytes (as a cold process would
        // open them) answers with zero trie builds.
        let reopened =
            Session::from_stored(&StoredCatalog::from_bytes(&stored.to_bytes()).unwrap())
                .with_pool(2);
        let mut sink = CollectSink::new();
        let stats = reopened.query(&plan).run(&mut sink).unwrap();
        assert_eq!(sink.tuples(), expect);
        assert_eq!(stats.trie_build_ns, 0, "no build work after preload");
        assert!(stats.trie_cache_hits > 0, "tries came from the store");
    }

    #[test]
    fn snapshot_is_deterministic() {
        let session = grid_session(2);
        let plans = [
            CompiledQuery::compile(&patterns::cycle3()).unwrap(),
            CompiledQuery::compile(&patterns::path3()).unwrap(),
        ];
        let a = session.snapshot(&plans).unwrap().to_bytes();
        let b = session.snapshot(&plans).unwrap().to_bytes();
        assert_eq!(a, b, "same state must serialize to the same bytes");
    }

    #[test]
    fn ctj_streams_identically() {
        let session = grid_session(3);
        let plan = CompiledQuery::compile(&patterns::cycle3()).unwrap();
        let lftj: Vec<Vec<Value>> = session.query(&plan).stream().collect();
        let ctj: Vec<Vec<Value>> = session.query(&plan).with_ctj().stream().collect();
        assert_eq!(lftj, ctj);
    }

    #[test]
    fn schema_errors_surface_through_the_outcome() {
        let session = Session::new(Catalog::new()).with_pool(2);
        let plan = CompiledQuery::compile(&patterns::cycle3()).unwrap();
        let mut stream = session.query(&plan).stream();
        assert_eq!(stream.next(), None, "no rows from a failed query");
        assert!(matches!(
            stream.outcome().unwrap(),
            Err(JoinError::MissingRelation { .. })
        ));
    }

    /// Rebuilds the session's merged view from scratch and runs `plan`
    /// over it sequentially — the ground truth every incremental path
    /// must match.
    fn rebuilt_tuples(session: &Session, plan: &CompiledQuery) -> Vec<Vec<Value>> {
        let mut catalog = Catalog::new();
        let deltas = session.deltas();
        for (name, rel) in session.catalog().iter() {
            match deltas.get(name) {
                Some(d) => catalog.insert(name, d.merge_into(rel)),
                None => catalog.insert(name, rel.clone()),
            }
        }
        let mut sink = CollectSink::new();
        Lftj::new().execute(plan, &catalog, &mut sink).unwrap();
        sink.tuples().to_vec()
    }

    #[test]
    fn apply_advances_the_epoch_and_queries_see_the_batch() {
        let session = grid_session(2).with_compact_ratio(f64::INFINITY);
        let plan = CompiledQuery::compile(&patterns::cycle3()).unwrap();
        assert_eq!(session.epoch(), 0);
        let before: Vec<Vec<Value>> = session.query(&plan).stream().collect();

        // Grow the graph by a vertex: new triangles appear through 12.
        let inserts = Relation::from_pairs(vec![(0, 12), (12, 1)]);
        let epoch = session
            .apply("G", &inserts, &Relation::new(2).unwrap())
            .unwrap();
        assert_eq!(epoch, 1);
        assert_eq!(session.epoch(), 1);
        assert!(!session.deltas().is_empty(), "delta is pending");

        let after: Vec<Vec<Value>> = session.query(&plan).stream().collect();
        assert!(after.len() > before.len());
        assert_eq!(after, rebuilt_tuples(&session, &plan));
    }

    #[test]
    fn query_handles_snapshot_the_epoch_they_were_created_at() {
        let session = grid_session(2).with_compact_ratio(f64::INFINITY);
        let plan = CompiledQuery::compile(&patterns::cycle3()).unwrap();
        let before: Vec<Vec<Value>> = session.query(&plan).stream().collect();
        let handle = session.query(&plan);
        session
            .apply(
                "G",
                &Relation::new(2).unwrap(),
                &Relation::from_pairs(vec![(0, 1)]),
            )
            .unwrap();
        // The pre-apply handle still sees epoch 0's result.
        let stale: Vec<Vec<Value>> = handle.stream().collect();
        assert_eq!(stale, before);
        let fresh: Vec<Vec<Value>> = session.query(&plan).stream().collect();
        assert!(fresh.len() < before.len());
    }

    #[test]
    fn deletes_apply_first_and_inserts_win() {
        let mut catalog = Catalog::new();
        catalog.insert("G", Relation::from_pairs(vec![(0, 1), (1, 2), (2, 0)]));
        let session = Session::new(catalog)
            .with_pool(1)
            .with_compact_ratio(f64::INFINITY);
        // Delete and re-insert (0,1) in one batch: it must survive.
        session
            .apply(
                "G",
                &Relation::from_pairs(vec![(0, 1)]),
                &Relation::from_pairs(vec![(0, 1), (1, 2)]),
            )
            .unwrap();
        let plan = CompiledQuery::compile(&patterns::cycle3()).unwrap();
        let rows: Vec<Vec<Value>> = session.query(&plan).stream().collect();
        assert!(rows.is_empty(), "breaking edge (1,2) kills the triangle");
        // Restore it: the triangle is back.
        session
            .apply(
                "G",
                &Relation::from_pairs(vec![(1, 2)]),
                &Relation::new(2).unwrap(),
            )
            .unwrap();
        assert!(
            session.deltas().is_empty(),
            "net-zero delta normalizes away"
        );
        assert_eq!(session.query(&plan).stream().count(), 3);
    }

    #[test]
    fn auto_compaction_folds_the_delta_into_the_base() {
        let mut catalog = Catalog::new();
        catalog.insert("G", Relation::from_pairs(vec![(0, 1), (1, 2), (2, 0)]));
        let session = Session::new(catalog).with_pool(1).with_compact_ratio(0.0);
        let plan = CompiledQuery::compile(&patterns::cycle3()).unwrap();
        session
            .apply(
                "G",
                &Relation::from_pairs(vec![(0, 3), (3, 1)]),
                &Relation::from_pairs(vec![(0, 1)]),
            )
            .unwrap();
        // Ratio 0 compacts every apply: no pending delta, merged base.
        assert!(session.deltas().is_empty());
        assert_eq!(
            session.catalog().get("G").unwrap(),
            &Relation::from_pairs(vec![(0, 3), (1, 2), (2, 0), (3, 1)])
        );
        // The merged graph is the 4-cycle 0→3→1→2→0: triangle-free.
        assert_eq!(session.query(&plan).stream().count(), 0);
    }

    #[test]
    fn explicit_compact_promotes_and_is_idempotent() {
        let session = grid_session(1).with_compact_ratio(f64::INFINITY);
        session
            .apply(
                "G",
                &Relation::from_pairs(vec![(0, 12)]),
                &Relation::new(2).unwrap(),
            )
            .unwrap();
        assert_eq!(session.epoch(), 1);
        assert!(!session.deltas().is_empty());
        assert_eq!(session.compact("G"), 2, "compaction bumps the epoch");
        assert!(session.deltas().is_empty());
        assert_eq!(session.compact("G"), 2, "nothing to compact: no-op");
        assert_eq!(session.compact("missing"), 2);
    }

    #[test]
    fn apply_creates_unknown_relations_at_the_batch_arity() {
        let session = Session::new(Catalog::new())
            .with_pool(1)
            .with_compact_ratio(f64::INFINITY);
        session
            .apply(
                "G",
                &Relation::from_pairs(vec![(0, 1), (1, 2), (2, 0)]),
                &Relation::new(2).unwrap(),
            )
            .unwrap();
        assert!(
            session.catalog().get("G").unwrap().is_empty(),
            "base stays empty; tuples live in the delta"
        );
        let plan = CompiledQuery::compile(&patterns::cycle3()).unwrap();
        assert_eq!(session.query(&plan).stream().count(), 3);
        // Delta-only relations never auto-compact, even at ratio 0 …
        let session = Session::new(Catalog::new())
            .with_pool(1)
            .with_compact_ratio(0.0);
        session
            .apply(
                "G",
                &Relation::from_pairs(vec![(0, 1)]),
                &Relation::new(2).unwrap(),
            )
            .unwrap();
        assert!(!session.deltas().is_empty());
        // … but explicit compaction promotes them to a frozen base.
        session.compact("G");
        assert!(session.deltas().is_empty());
        assert_eq!(
            session.catalog().get("G").unwrap(),
            &Relation::from_pairs(vec![(0, 1)])
        );
    }

    #[test]
    fn arity_mismatches_leave_the_session_untouched() {
        let session = grid_session(1);
        let triples = Relation::from_tuples(3, vec![[1, 2, 3]]).unwrap();
        let err = session
            .apply("G", &triples, &Relation::new(3).unwrap())
            .unwrap_err();
        assert!(matches!(err, JoinError::ArityMismatch { .. }));
        let err = session
            .apply("G", &Relation::new(2).unwrap(), &Relation::new(3).unwrap())
            .unwrap_err();
        assert!(matches!(err, JoinError::ArityMismatch { .. }));
        assert_eq!(session.epoch(), 0);
        assert!(session.deltas().is_empty());
    }

    #[test]
    fn watch_emits_exactly_the_new_triangles_in_order() {
        let mut catalog = Catalog::new();
        catalog.insert("G", Relation::from_pairs(vec![(0, 1), (1, 2)]));
        let session = Session::new(catalog)
            .with_pool(1)
            .with_compact_ratio(f64::INFINITY);
        let plan = CompiledQuery::compile(&patterns::cycle3()).unwrap();
        let watch = session.watch(&plan).unwrap();

        // Close the triangle: one new result.
        let full_before = sequential_tuples(&session, &plan);
        session
            .apply(
                "G",
                &Relation::from_pairs(vec![(2, 0)]),
                &Relation::new(2).unwrap(),
            )
            .unwrap();
        let full_after = sequential_tuples(&session, &plan);
        let update = watch.poll().expect("apply delivers synchronously");
        assert_eq!(update.epoch, 1);
        let expect: Vec<Vec<Value>> = full_after
            .iter()
            .filter(|r| !full_before.contains(r))
            .cloned()
            .collect();
        assert_eq!(update.rows, expect);
        assert_eq!(update.rows.len(), 3, "cycle3 counts each rotation");

        // A delete-only batch cannot create results.
        session
            .apply(
                "G",
                &Relation::new(2).unwrap(),
                &Relation::from_pairs(vec![(1, 2)]),
            )
            .unwrap();
        let update = watch.poll().unwrap();
        assert_eq!(update.epoch, 2);
        assert!(update.rows.is_empty());

        // No-op re-insert of a live tuple: nothing added, nothing emitted.
        session
            .apply(
                "G",
                &Relation::from_pairs(vec![(0, 1)]),
                &Relation::new(2).unwrap(),
            )
            .unwrap();
        assert!(watch.poll().unwrap().rows.is_empty());
        assert!(watch.poll().is_none(), "one update per apply");
    }

    #[test]
    fn dropped_watchers_unregister_without_blocking_applies() {
        let session = grid_session(1).with_compact_ratio(f64::INFINITY);
        let plan = CompiledQuery::compile(&patterns::cycle3()).unwrap();
        let watch = session.watch(&plan).unwrap();
        drop(watch);
        // The next apply notices the gone subscriber and keeps going.
        session
            .apply(
                "G",
                &Relation::from_pairs(vec![(0, 12), (12, 1)]),
                &Relation::new(2).unwrap(),
            )
            .unwrap();
        assert_eq!(session.epoch(), 1);
    }

    #[test]
    fn snapshot_round_trips_pending_deltas() {
        let session = grid_session(2).with_compact_ratio(f64::INFINITY);
        let plan = CompiledQuery::compile(&patterns::cycle3()).unwrap();
        session
            .apply(
                "G",
                &Relation::from_pairs(vec![(0, 12), (12, 1)]),
                &Relation::from_pairs(vec![(0, 1)]),
            )
            .unwrap();
        let expect = sequential_tuples(&session, &plan);

        let stored = session.snapshot(std::slice::from_ref(&plan)).unwrap();
        let reopened =
            Session::from_stored(&StoredCatalog::from_bytes(&stored.to_bytes()).unwrap())
                .with_pool(2);
        assert_eq!(reopened.deltas().len(), 1, "delta survived the store");
        let got: Vec<Vec<Value>> = reopened.query(&plan).stream().collect();
        assert_eq!(got, expect);
    }
}
