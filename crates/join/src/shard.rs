//! Root-range shard planning, execution, and the dynamic split protocol
//! shared by the parallel engines.

use triejax_exec::{
    CancelReason, OrderedMerge, PoolStats, RunBudget, Spawner, WorkerCtx, WorkerPool,
};
use triejax_query::CompiledQuery;
use triejax_relation::{JoinCursor, Tally, Value};

use crate::viewset::CursorSet;
use crate::{Catalog, EngineStats, ResultSink, ShardSink};

/// Name of the environment variable enabling dynamic shard splitting for
/// engines that were not configured explicitly. Accepts `1`/`true`/`on`
/// and `0`/`false`/`off`; unset or empty means off.
pub(crate) const SPLIT_ENV: &str = "TRIEJAX_SPLIT";

/// Reads the default splitting choice from `TRIEJAX_SPLIT`.
///
/// # Panics
///
/// Panics on anything but a recognised on/off spelling — an explicitly
/// configured mode that silently fell back to "off" would defeat the
/// configuration's purpose (e.g. CI pinning `TRIEJAX_SPLIT=1` to force
/// the split paths through the whole test suite).
pub(crate) fn env_split() -> bool {
    match std::env::var(SPLIT_ENV) {
        Ok(v) => match v.trim() {
            "" | "0" | "false" | "off" => false,
            "1" | "true" | "on" => true,
            other => panic!("{SPLIT_ENV} must be 0/1/true/false/on/off, got {other:?}"),
        },
        Err(_) => false,
    }
}

/// Name of the environment variable supplying a default maximum split
/// depth for engines that were not configured explicitly
/// (`ParLftj::with_split_depth` / `ParCtj::with_split_depth`). `0` (or
/// unset/empty) keeps dynamic splitting at the root level only; `max`
/// allows handoffs at every trie level; any other value is the deepest
/// level allowed to split. Only meaningful when splitting itself is on.
pub(crate) const SPLIT_DEPTH_ENV: &str = "TRIEJAX_SPLIT_DEPTH";

/// Reads the default split-depth cap from `TRIEJAX_SPLIT_DEPTH`.
///
/// # Panics
///
/// Panics on anything but an unsigned integer or `max` (see
/// [`env_split`] for why silent fallback is worse).
pub(crate) fn env_split_depth() -> usize {
    match std::env::var(SPLIT_DEPTH_ENV) {
        Ok(v) => match v.trim() {
            "" => 0,
            "max" => usize::MAX,
            n => n.parse::<usize>().unwrap_or_else(|_| {
                panic!("{SPLIT_DEPTH_ENV} must be a non-negative integer or \"max\", got {v:?}")
            }),
        },
        Err(_) => 0,
    }
}

/// Name of the environment variable supplying a default wall-clock
/// deadline, in milliseconds, for engines that were not given one through
/// [`crate::ParLftj::with_deadline`] / [`crate::ParCtj::with_deadline`].
/// Unset or empty means no deadline.
pub(crate) const DEADLINE_ENV: &str = "TRIEJAX_DEADLINE_MS";

/// Name of the environment variable supplying a default result-row limit
/// for engines that were not given one through
/// [`crate::ParLftj::with_row_limit`] / [`crate::ParCtj::with_row_limit`].
/// Unset or empty means unlimited; `0` is valid and delivers nothing.
pub(crate) const ROW_LIMIT_ENV: &str = "TRIEJAX_ROW_LIMIT";

/// Reads the default deadline from `TRIEJAX_DEADLINE_MS`. `None` when the
/// variable is unset or empty; panics on junk — a configured deadline
/// that silently fell back to "unlimited" would defeat its purpose.
pub(crate) fn env_deadline() -> Option<std::time::Duration> {
    let v = std::env::var(DEADLINE_ENV).ok()?;
    if v.trim().is_empty() {
        return None;
    }
    let ms = v.trim().parse::<u64>().unwrap_or_else(|_| {
        panic!("{DEADLINE_ENV} must be a non-negative integer of milliseconds, got {v:?}")
    });
    Some(std::time::Duration::from_millis(ms))
}

/// Reads the default row limit from `TRIEJAX_ROW_LIMIT`. `None` when the
/// variable is unset or empty; panics on junk (see [`env_deadline`]).
pub(crate) fn env_row_limit() -> Option<u64> {
    let v = std::env::var(ROW_LIMIT_ENV).ok()?;
    if v.trim().is_empty() {
        return None;
    }
    Some(
        v.trim().parse::<u64>().unwrap_or_else(|_| {
            panic!("{ROW_LIMIT_ENV} must be a non-negative integer, got {v:?}")
        }),
    )
}

/// Composes a run's shared [`RunBudget`] from the engine's explicit knobs
/// and the environment defaults (explicit wins, per knob). `None` when
/// nothing governs the run, so the engines can stay on their zero-cost
/// [`triejax_exec::NoBudget`] monomorphization.
pub(crate) fn compose_budget(
    deadline: Option<std::time::Duration>,
    row_limit: Option<u64>,
    intermediate_limit: Option<u64>,
    cancel: Option<&triejax_exec::CancelToken>,
) -> Option<std::sync::Arc<RunBudget>> {
    let deadline = deadline.or_else(env_deadline);
    let row_limit = row_limit.or_else(env_row_limit);
    if deadline.is_none() && row_limit.is_none() && intermediate_limit.is_none() && cancel.is_none()
    {
        return None;
    }
    let mut budget = RunBudget::new();
    if let Some(d) = deadline {
        budget = budget.with_deadline(d);
    }
    if let Some(l) = row_limit {
        budget = budget.with_row_limit(l);
    }
    if let Some(l) = intermediate_limit {
        budget = budget.with_intermediate_limit(l);
    }
    if let Some(t) = cancel {
        budget = budget.with_cancel_token(t.clone());
    }
    Some(std::sync::Arc::new(budget))
}

/// Plans the contiguous root-value ranges `[min, sup)` a parallel run
/// executes as independent work units.
///
/// The shard count is seeded from the compiled plan: the catalog's
/// relation cardinalities feed [`CompiledQuery::root_domain_estimate`],
/// and [`CompiledQuery::shard_granularity`] overshards relative to the
/// worker count so the work-stealing pool can rebalance skew (callers may
/// force an exact count with `granularity`). Returns a single unbounded
/// range when sharding isn't worthwhile — callers treat that as the
/// sequential fast path.
///
/// Range boundaries are drawn from the *smallest* depth-0 participant's
/// root level: any participant's root values are a superset of the
/// depth-0 matches, and the smallest one balances shards with the least
/// boundary scanning. The first shard starts at the bottom of the domain
/// and the last is unbounded above, so the ranges cover every root value
/// of every participant.
pub(crate) fn plan_shards<'s, S: CursorSet<'s>>(
    plan: &CompiledQuery,
    catalog: &Catalog,
    set: &'s S,
    workers: usize,
    granularity: Option<usize>,
    split: bool,
) -> Vec<(Value, Option<Value>)> {
    let root_values = planning_root_values(plan, set);

    let shards = granularity
        .unwrap_or_else(|| {
            let estimate = plan
                .root_domain_estimate(|name| catalog.get(name).map(|r| r.len()))
                .unwrap_or(root_values.len());
            let domain = estimate.min(root_values.len());
            // With dynamic splitting the run rebalances itself, so the
            // initial cut is coarse (one shard per worker); without it,
            // 4x oversharding is the only skew absorber.
            if split {
                plan.initial_shard_granularity(domain, workers)
            } else {
                plan.shard_granularity(domain, workers)
            }
        })
        .clamp(1, root_values.len().max(1));

    if shards <= 1 {
        return vec![(0, None)];
    }

    let mut ranges: Vec<(Value, Option<Value>)> = Vec::with_capacity(shards);
    for i in 0..shards {
        let lo_idx = i * root_values.len() / shards;
        let hi_idx = (i + 1) * root_values.len() / shards;
        if lo_idx == hi_idx {
            continue; // empty shard (more shards than values)
        }
        let min = if ranges.is_empty() {
            0
        } else {
            root_values[lo_idx]
        };
        let sup = if hi_idx == root_values.len() {
            None
        } else {
            Some(root_values[hi_idx])
        };
        ranges.push((min, sup));
    }
    ranges
}

/// The root level shard planning draws its boundaries from: the
/// *smallest* depth-0 participant's root values (any participant's root
/// values are a superset of the depth-0 matches, and the smallest one
/// balances shards with the least boundary scanning).
fn planning_root_values<'s, S: CursorSet<'s>>(plan: &CompiledQuery, set: &'s S) -> &'s [Value] {
    plan.atoms_at(0)
        .iter()
        .map(|&(a, _)| set.root_values(a))
        .min_by_key(|v| v.len())
        .expect("every depth has at least one participant")
}

/// `true` when a run over these tries could ever split: the planning
/// root level must hold the current value plus a non-empty kept head
/// and a non-empty tail (see [`MIN_SPLIT_TAIL`]). Engines with
/// splitting enabled fall back to the static schedule — and its
/// sequential single-shard fast path — when it cannot, instead of
/// paying for a pool, merge and shared cache that zero splits could
/// ever use.
pub(crate) fn can_split<'s, S: CursorSet<'s>>(plan: &CompiledQuery, set: &'s S) -> bool {
    planning_root_values(plan, set).len() > MIN_SPLIT_TAIL
}

/// Drains the merge into `sink`, enforcing `budget` when one governs the
/// run.
///
/// The foreground drain is the **only** consumer of the row quota in a
/// parallel run: workers emit freely into their merge lanes (their
/// [`triejax_exec::BudgetHandle`]s are flag-only), and the drain charges
/// [`RunBudget::charge_rows`] in exact stream order — so the rows that
/// reach the sink are exactly the first `limit` rows of the sequential
/// result, no matter how lanes interleaved. The cut is *sticky*: once the
/// quota is exhausted or a non-row-limit cancellation is observed, every
/// later batch is discarded but the drain keeps consuming, so producers
/// never block on a full merge and the run winds down instead of hanging.
fn drain_into(
    merge: &OrderedMerge<Vec<Value>>,
    sink: &mut dyn ResultSink,
    arity: usize,
    budget: Option<&RunBudget>,
) {
    match budget {
        None => merge.drain(|batch| sink.push_rows(&batch, arity)),
        Some(b) => {
            let mut cut = false;
            merge.drain(|batch| {
                if cut {
                    return;
                }
                if b.cancelled().is_some_and(|r| r != CancelReason::RowLimit) {
                    cut = true;
                    return;
                }
                let rows = (batch.len() / arity.max(1)) as u64;
                let allowed = b.charge_rows(rows);
                if allowed < rows {
                    cut = true;
                }
                if allowed > 0 {
                    sink.push_rows(&batch[..allowed as usize * arity], arity);
                }
            });
        }
    }
}

/// Runs every planned shard on the pool, streaming batches through an
/// order-preserving merge into `sink` — the execution skeleton every
/// pool-parallel engine shares.
///
/// `work` receives the worker context, the shard's lane, its root range
/// and a ready [`ShardSink`]. The sink is created *before* `work` runs so
/// its `Drop` closes the lane even when the shard body panics, keeping
/// the foreground drain (which runs on the calling thread, so `sink`
/// needs no `Send` bound) from blocking forever. Task results come back
/// in shard order alongside the pool's scheduling stats.
///
/// When `budget` governs the run, the drain enforces it (see
/// [`drain_into`]) and shards claimed after cancellation return
/// `R::default()` without running their driver — the lane still opens and
/// closes, so the drain always terminates.
pub(crate) fn execute_sharded<R, F>(
    pool: &WorkerPool,
    ranges: &[(Value, Option<Value>)],
    arity: usize,
    sink: &mut dyn ResultSink,
    budget: Option<&RunBudget>,
    work: F,
) -> (Vec<R>, PoolStats)
where
    R: Send + Default,
    F: Fn(WorkerCtx, usize, Value, Option<Value>, &mut ShardSink<'_>) -> R + Sync,
{
    let merge = OrderedMerge::new(ranges.len());
    let ((results, pool_stats), ()) = pool.run_with_foreground(
        ranges,
        |ctx, lane, &(min, sup)| {
            let mut shard_sink = ShardSink::new(&merge, lane, arity);
            // Fault hook *after* the sink exists: an injected panic here
            // unwinds through the sink's Drop, which closes the lane, so
            // the drain never waits on a dead shard.
            #[cfg(feature = "faults")]
            triejax_exec::faults::fire(triejax_exec::faults::FaultEvent::TaskStart);
            if budget.is_some_and(|b| b.cancelled().is_some()) {
                // Cancelled while queued: drop the task (the ShardSink
                // Drop closes the lane on the way out).
                return R::default();
            }
            work(ctx, lane, min, sup, &mut shard_sink)
        },
        || drain_into(&merge, sink, arity, budget),
    );
    (results, pool_stats)
}

/// Builds the pool for a parallel run: the engine's explicit worker count
/// when set, otherwise the environment/core-count default.
pub(crate) fn make_pool(workers: Option<std::num::NonZeroUsize>) -> WorkerPool {
    match workers {
        Some(w) => WorkerPool::with_workers(w.get()),
        None => WorkerPool::new(),
    }
}

/// The split protocol between a driver's level loops and the runtime.
///
/// A driver running a shard polls [`should_split`](SplitSpawn::should_split)
/// at every advance of a level at or below [`depth_cap`](SplitSpawn::depth_cap)
/// (a cheap atomic poll behind the controller's hysteresis) and, when it
/// reports an unserved idle sibling, computes a tail boundary for its
/// deepest eligible level and calls [`handoff`](SplitSpawn::handoff) to
/// turn the unvisited tail into a new task on a fresh merge lane.
///
/// Sub-root handoffs (depth ≥ 1) also open a *continuation* lane behind
/// the donated tail's lane: the donor keeps emitting rows below the
/// boundary on its current lane, and when it exits the split level it
/// switches to the continuation ([`take_switch`](SplitSpawn::take_switch))
/// so everything it produces *after* the donated subtree drains after the
/// donee — keeping the merged stream tuple-for-tuple sequential.
pub(crate) trait SplitSpawn {
    /// Cheap poll: is handing work off worthwhile right now? Takes `&mut`
    /// so controllers can apply hysteresis (cooldowns, handoff ceilings).
    fn should_split(&mut self) -> bool;
    /// This shard's split generation (0 for an initial shard, parent + 1
    /// for a split shard) — recorded as `EngineStats::split_depth`.
    fn generation(&self) -> u64;
    /// Deepest trie level allowed to split (`0` = root only).
    fn depth_cap(&self) -> usize {
        0
    }
    /// Hands the tail `[min, sup)` at `depth` under the bound `prefix`
    /// (one value per level above `depth`) off as a new task whose
    /// results drain immediately after this shard's current output.
    fn handoff(&mut self, depth: usize, prefix: &[Value], min: Value, sup: Option<Value>);
    /// Records that the tail `[boundary, sup)` at `depth` failed
    /// validation (some participant has no value in it). A level's `sup`
    /// only shrinks, so every later candidate at or above this boundary
    /// is doomed too and is skipped without re-probing
    /// ([`vetoed`](Self::vetoed)); *lower* candidates stay allowed — a
    /// different donor can legitimately propose one that validates.
    fn veto_at(&mut self, _depth: usize, _boundary: Value) {}
    /// `true` when a previously failed boundary at `depth` already covers
    /// `boundary`, so validation would probe the same doomed tail again.
    fn vetoed(&self, _depth: usize, _boundary: Value) -> bool {
        false
    }
    /// Hook invoked when the driver enters level `depth` under a new
    /// prefix: vetoes recorded at this depth or deeper belong to the
    /// previous subtree and are dropped.
    fn level_entered(&mut self, _depth: usize) {}
    /// Called when the driver exits level `depth`: when a sub-root split
    /// at that depth opened a continuation lane, returns it so the driver
    /// can redirect its sink ([`crate::ResultSink::redirect_lane`])
    /// before producing anything that must drain after the donee.
    fn take_switch(&mut self, _depth: usize) -> Option<usize> {
        None
    }
}

/// The sequential no-op controller: never splits, so the generic drivers
/// monomorphize their level loops down to the pre-split code.
pub(crate) struct NoSplit;

impl SplitSpawn for NoSplit {
    #[inline]
    fn should_split(&mut self) -> bool {
        false
    }
    fn generation(&self) -> u64 {
        0
    }
    fn handoff(&mut self, _depth: usize, _prefix: &[Value], _min: Value, _sup: Option<Value>) {
        unreachable!("NoSplit never offers a handoff")
    }
}

/// Smallest number of unvisited root values a shard must still hold to
/// split: one for the tail and one to keep, so neither side is empty.
const MIN_SPLIT_TAIL: usize = 2;

/// One splitting step of a driver's loop over level `depth`: polls `ctl`,
/// and when an idle sibling is reported, carves the far half of the
/// *unvisited* siblings of that level off into a handed-off tail task,
/// clamping the live cursors and the level's `sup` so this shard never
/// walks into the range it gave away.
///
/// Must be called with every depth-`depth` participant cursor positioned
/// on the current match at that level (exactly the state of the drivers'
/// level loops), with `prefix` holding the values bound at the levels
/// above.
///
/// The boundary is the midpoint of the unvisited siblings of the
/// participant with the *fewest* of them — that participant bounds the
/// remaining intersection most tightly, so its midpoint best balances
/// the halves ([`JoinCursor::split_boundary`]). Before committing, the
/// tail `[boundary, sup)` is validated *in place* against every
/// participant of the level (a counted [`JoinCursor::tail_contains`]
/// binary search over the participant's already-clamped sibling range,
/// so instrumented runs charge the validation probes exactly like the
/// clamp searches, at every depth): a match must appear in all of them,
/// so if any participant has no sibling in the tail, the tail joins to
/// nothing and the split is skipped. A failed boundary is
/// [vetoed](SplitSpawn::veto_at): the level's `sup` only shrinks while
/// the prefix is bound, so any candidate at or above it stays doomed and
/// is skipped without re-probing — while a lower candidate (a different
/// donor's midpoint after the cursors advance) is still attempted.
pub(crate) fn try_split_at<T: Tally, C: SplitSpawn, Cur: JoinCursor>(
    plan: &CompiledQuery,
    cursors: &mut [Cur],
    sup: &mut Option<Value>,
    depth: usize,
    prefix: &[Value],
    ctl: &mut C,
    stats: &mut EngineStats<T>,
) {
    debug_assert_eq!(prefix.len(), depth, "one bound value per level above");
    if !ctl.should_split() {
        return;
    }
    let parts = plan.atoms_at(depth);
    let (donor, remaining) = parts
        .iter()
        .map(|&(a, _)| (a, cursors[a].unvisited()))
        .min_by_key(|&(_, r)| r)
        .expect("every depth has at least one participant");
    if remaining < MIN_SPLIT_TAIL {
        return;
    }
    let boundary = cursors[donor].split_boundary();
    debug_assert!(boundary > cursors[donor].key());
    if ctl.vetoed(depth, boundary) {
        return;
    }
    for &(a, _) in parts {
        if !cursors[a].tail_contains(boundary, &mut stats.access) {
            ctl.veto_at(depth, boundary);
            return;
        }
    }
    let old_sup = *sup;
    for &(a, _) in parts {
        cursors[a].clamp_sup(boundary, &mut stats.access);
    }
    *sup = Some(boundary);
    ctl.handoff(depth, prefix, boundary, old_sup);
    stats.splits += 1;
    if depth > 0 {
        stats.deep_splits += 1;
    }
    stats.split_depth = stats.split_depth.max(ctl.generation() + 1);
}

/// One unit of work of a splitting run: a trie-level range plus the merge
/// lane its results stream into, the prefix binding the levels above it,
/// and its split generation. Initial shards are root ranges (`depth` 0,
/// empty prefix); sub-root handoffs carry the donor's bound prefix so the
/// donee can re-descend to the donated level.
pub(crate) struct SplitTask {
    lane: usize,
    depth: usize,
    prefix: Vec<Value>,
    min: Value,
    sup: Option<Value>,
    gen: u64,
}

/// Number of `should_split` polls suppressed after each committed
/// handoff. Splitting reacts to a *persistently* idle sibling; without a
/// cooldown, a many-core run observing one idle worker would shed a
/// cascade of slivers before the first donee even starts (handoff churn).
const SPLIT_COOLDOWN_POLLS: u32 = 16;

/// Hard ceiling on handoffs per task: a shard that already shed this many
/// tails stops splitting for the rest of its life. Together with the
/// cooldown this bounds the lane/spawn overhead a single skewed subtree
/// can generate.
const SPLIT_HANDOFF_CEILING: u32 = 64;

/// The controller handed to a driver running one [`SplitTask`]: wires
/// [`SplitSpawn::handoff`] to a fresh merge lane (inserted right after
/// this task's current one, keeping the drain order equal to sequential
/// order) and a [`Spawner::spawn`] onto the pool.
///
/// For sub-root handoffs it also maintains the *continuation* protocol:
/// each first handoff at a depth opens a second lane right behind the
/// donated tail's, and [`take_switch`](SplitSpawn::take_switch) hands it
/// to the driver when it exits that level, so rows the donor produces
/// after the donated subtree drain after the donee's. The pending stack
/// holds at most one continuation per depth, strictly increasing — a
/// deeper pending is always consumed (at its level's exit) before control
/// returns to a shallower level.
pub(crate) struct SplitHandle<'r> {
    spawner: &'r Spawner<'r, SplitTask>,
    merge: &'r OrderedMerge<Vec<Value>>,
    lane: usize,
    gen: u64,
    depth_cap: usize,
    /// Per-depth lowest boundary whose tail failed validation; candidates
    /// at or above it are skipped without re-probing (see
    /// [`SplitSpawn::veto_at`]). Cleared on subtree entry.
    vetoes: Vec<Option<Value>>,
    /// Continuation lanes not yet adopted: `(depth, lane)`, depths
    /// strictly increasing. Unconsumed entries (panic, cancellation) are
    /// finished on drop so the drain never waits on them.
    pending: Vec<(usize, usize)>,
    /// Remaining polls to suppress after the last handoff.
    cooldown: u32,
    /// Handoffs committed by this task so far.
    handoffs: u32,
}

impl<'r> SplitHandle<'r> {
    fn new(
        spawner: &'r Spawner<'r, SplitTask>,
        merge: &'r OrderedMerge<Vec<Value>>,
        lane: usize,
        gen: u64,
        depth_cap: usize,
    ) -> Self {
        SplitHandle {
            spawner,
            merge,
            lane,
            gen,
            depth_cap,
            vetoes: Vec::new(),
            pending: Vec::new(),
            cooldown: 0,
            handoffs: 0,
        }
    }
}

impl SplitSpawn for SplitHandle<'_> {
    #[inline]
    fn should_split(&mut self) -> bool {
        if self.handoffs >= SPLIT_HANDOFF_CEILING {
            return false;
        }
        if self.cooldown > 0 {
            self.cooldown -= 1;
            return false;
        }
        self.spawner.should_split()
    }

    fn generation(&self) -> u64 {
        self.gen
    }

    fn depth_cap(&self) -> usize {
        self.depth_cap
    }

    fn handoff(&mut self, depth: usize, prefix: &[Value], min: Value, sup: Option<Value>) {
        let lane = self.merge.open_lane_after(self.lane);
        // Fault window: the tail lane is open but the task not yet
        // spawned (and for sub-root handoffs the continuation lane not
        // yet opened). An injected failure here must close the fresh lane
        // before unwinding — otherwise the drain waits forever on a shard
        // that will never run. This is exactly the invariant the fault
        // harness probes, at the root and at depth.
        #[cfg(feature = "faults")]
        match triejax_exec::faults::on_event(triejax_exec::faults::FaultEvent::SplitHandoff) {
            Some(
                triejax_exec::faults::FaultAction::Panic
                | triejax_exec::faults::FaultAction::FailHandoff,
            ) => {
                self.merge.finish(lane);
                panic!(
                    "injected fault: SplitHandoff on worker {}",
                    triejax_exec::faults::current_worker()
                );
            }
            Some(triejax_exec::faults::FaultAction::Delay(ms)) => {
                std::thread::sleep(std::time::Duration::from_millis(ms));
            }
            _ => {}
        }
        if depth > 0 {
            // First handoff at this depth in this subtree: open the
            // continuation lane right behind the tail's. A repeat split
            // at the same depth reuses the pending continuation — the new
            // tail slots between the donor's lane and the previous tail,
            // which is exactly sequential order (the new boundary is
            // lower).
            let top = self.pending.last().map(|&(d, _)| d);
            debug_assert!(
                top.is_none_or(|d| d <= depth),
                "deeper continuations are consumed before shallower splits"
            );
            if top != Some(depth) {
                let cont = self.merge.open_lane_after(lane);
                self.pending.push((depth, cont));
            }
        }
        self.spawner.spawn(SplitTask {
            lane,
            depth,
            prefix: prefix.to_vec(),
            min,
            sup,
            gen: self.gen + 1,
        });
        self.cooldown = SPLIT_COOLDOWN_POLLS;
        self.handoffs += 1;
    }

    fn veto_at(&mut self, depth: usize, boundary: Value) {
        if self.vetoes.len() <= depth {
            self.vetoes.resize(depth + 1, None);
        }
        let slot = &mut self.vetoes[depth];
        *slot = Some(slot.map_or(boundary, |v| v.min(boundary)));
    }

    fn vetoed(&self, depth: usize, boundary: Value) -> bool {
        self.vetoes
            .get(depth)
            .copied()
            .flatten()
            .is_some_and(|v| boundary >= v)
    }

    fn level_entered(&mut self, depth: usize) {
        // A new subtree at `depth`: vetoes at this depth and deeper were
        // judged against the previous prefix and no longer apply.
        if self.vetoes.len() > depth {
            self.vetoes.truncate(depth);
        }
    }

    fn take_switch(&mut self, depth: usize) -> Option<usize> {
        match self.pending.last() {
            Some(&(d, cont)) if d == depth => {
                self.pending.pop();
                self.lane = cont;
                Some(cont)
            }
            _ => None,
        }
    }
}

impl Drop for SplitHandle<'_> {
    fn drop(&mut self) {
        // Continuations the driver never adopted (panic or cancellation
        // unwound past the level exit): close them so the foreground
        // drain, which visits every opened lane in order, terminates.
        for &(_, lane) in &self.pending {
            self.merge.finish(lane);
        }
    }
}

/// Runs the planned shards with dynamic splitting enabled: the pool's
/// spawning entry point plus mid-run merge lanes. `work` receives the
/// worker context, the task's depth and prefix, its level range, its
/// [`ShardSink`] and a [`SplitHandle`] (capped at `depth_cap`) to thread
/// into the driver's level loops. Results come back in completion order
/// (the engines only merge stats, which commutes); the streamed tuples
/// stay in exact submission order through the merge.
pub(crate) fn execute_split<R, F>(
    pool: &WorkerPool,
    ranges: &[(Value, Option<Value>)],
    arity: usize,
    depth_cap: usize,
    sink: &mut dyn ResultSink,
    budget: Option<&RunBudget>,
    work: F,
) -> (Vec<R>, PoolStats)
where
    R: Send + Default,
    F: Fn(
            WorkerCtx,
            usize,
            &[Value],
            Value,
            Option<Value>,
            &mut ShardSink<'_>,
            &mut SplitHandle<'_>,
        ) -> R
        + Sync,
{
    let merge = OrderedMerge::new(ranges.len());
    let seeds: Vec<SplitTask> = ranges
        .iter()
        .enumerate()
        .map(|(lane, &(min, sup))| SplitTask {
            lane,
            depth: 0,
            prefix: Vec::new(),
            min,
            sup,
            gen: 0,
        })
        .collect();
    let ((results, pool_stats), ()) = pool.run_spawning(
        seeds,
        |ctx, spawner, task| {
            let mut shard_sink = ShardSink::new(&merge, task.lane, arity);
            #[cfg(feature = "faults")]
            triejax_exec::faults::fire(triejax_exec::faults::FaultEvent::TaskStart);
            if budget.is_some_and(|b| b.cancelled().is_some()) {
                return R::default();
            }
            let mut handle = SplitHandle::new(spawner, &merge, task.lane, task.gen, depth_cap);
            work(
                ctx,
                task.depth,
                &task.prefix,
                task.min,
                task.sup,
                &mut shard_sink,
                &mut handle,
            )
        },
        || drain_into(&merge, sink, arity, budget),
    );
    (results, pool_stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TrieSet;
    use triejax_query::{patterns, Query};
    use triejax_relation::{Counting, Relation, TrieCursor};

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        let edges: Vec<(u32, u32)> = (0..40).map(|i| (i, (i + 1) % 40)).collect();
        c.insert("G", Relation::from_pairs(edges));
        c
    }

    #[test]
    fn ranges_cover_the_domain_without_gaps() {
        let c = catalog();
        let plan = triejax_query::CompiledQuery::compile(&patterns::cycle3()).unwrap();
        let tries = TrieSet::build(&plan, &c).unwrap();
        let ranges = plan_shards(&plan, &c, &tries, 4, None, false);
        assert!(ranges.len() > 4, "overshards beyond the worker count");
        assert_eq!(ranges[0].0, 0, "first shard starts at the domain bottom");
        assert_eq!(ranges.last().unwrap().1, None, "last shard is unbounded");
        for pair in ranges.windows(2) {
            assert_eq!(pair[0].1, Some(pair[1].0), "contiguous boundaries");
        }
    }

    #[test]
    fn single_worker_gets_the_sequential_range() {
        let c = catalog();
        let plan = triejax_query::CompiledQuery::compile(&patterns::cycle3()).unwrap();
        let tries = TrieSet::build(&plan, &c).unwrap();
        assert_eq!(
            plan_shards(&plan, &c, &tries, 1, None, false),
            vec![(0, None)]
        );
    }

    /// With splitting on, the initial cut is coarse — one shard per
    /// worker, the run rebalances itself — instead of 4x oversharded.
    #[test]
    fn splitting_runs_start_with_one_shard_per_worker() {
        let c = catalog();
        let plan = triejax_query::CompiledQuery::compile(&patterns::cycle3()).unwrap();
        let tries = TrieSet::build(&plan, &c).unwrap();
        let ranges = plan_shards(&plan, &c, &tries, 4, None, true);
        assert_eq!(ranges.len(), 4);
        assert_eq!(ranges[0].0, 0);
        assert_eq!(ranges.last().unwrap().1, None);
        for pair in ranges.windows(2) {
            assert_eq!(pair[0].1, Some(pair[1].0), "contiguous boundaries");
        }
    }

    /// Controller that always claims an idle sibling exists and records
    /// the offered handoffs — the driver-side protocol under a microscope.
    #[derive(Default)]
    struct Recorder {
        offers: Vec<(usize, Vec<Value>, Value, Option<Value>)>,
        veto: Option<(usize, Value)>,
    }

    impl SplitSpawn for Recorder {
        fn should_split(&mut self) -> bool {
            true
        }
        fn generation(&self) -> u64 {
            0
        }
        fn depth_cap(&self) -> usize {
            usize::MAX
        }
        fn handoff(&mut self, depth: usize, prefix: &[Value], min: Value, sup: Option<Value>) {
            self.offers.push((depth, prefix.to_vec(), min, sup));
        }
        fn veto_at(&mut self, depth: usize, boundary: Value) {
            let floor = match self.veto {
                Some((d, v)) if d == depth => v.min(boundary),
                _ => boundary,
            };
            self.veto = Some((depth, floor));
        }
        fn vetoed(&self, depth: usize, boundary: Value) -> bool {
            self.veto.is_some_and(|(d, v)| d == depth && boundary >= v)
        }
    }

    /// `ans(x, y) :- R(x, y), S(x, y)` — two depth-0 participants over
    /// *different* relations, so donor choice and tail validation both
    /// have real work to do. `compile` binds the head order, so `x` is
    /// the root variable.
    fn two_rel_fixture(
        r_roots: &[u32],
        s_roots: &[u32],
    ) -> (CompiledQuery, Catalog, crate::TrieSet) {
        let q = Query::builder("split_math")
            .head(["x", "y"])
            .atom("R", ["x", "y"])
            .atom("S", ["x", "y"])
            .build()
            .unwrap();
        let plan = CompiledQuery::compile(&q).unwrap();
        let mut c = Catalog::new();
        c.insert(
            "R",
            Relation::from_pairs(r_roots.iter().map(|&x| (x, 1)).collect::<Vec<_>>()),
        );
        c.insert(
            "S",
            Relation::from_pairs(s_roots.iter().map(|&x| (x, 1)).collect::<Vec<_>>()),
        );
        let tries = crate::TrieSet::build(&plan, &c).unwrap();
        (plan, c, tries)
    }

    /// Opens every depth-0 participant at the bottom of the root range —
    /// the drivers' root-loop state at the first common match.
    fn root_cursors<'a>(
        plan: &CompiledQuery,
        tries: &'a crate::TrieSet,
        sup: Option<Value>,
        stats: &mut EngineStats<Counting>,
    ) -> Vec<TrieCursor<'a>> {
        (0..plan.atoms_at(0).len())
            .map(|a| {
                let mut c = TrieCursor::new(tries.for_atom(a));
                assert!(c.open_root_range(0, sup, &mut stats.access));
                c
            })
            .collect()
    }

    #[test]
    fn split_hands_off_the_far_half_and_clamps_the_donor() {
        // Donor is S (fewest unvisited siblings): positioned on 0 with
        // {4, 8} remaining, the midpoint boundary is 8.
        let (plan, _c, tries) = two_rel_fixture(&[0, 1, 2, 3, 4, 5, 6, 7, 8], &[0, 4, 8]);
        let mut stats = EngineStats::<Counting>::default();
        let mut cursors = root_cursors(&plan, &tries, None, &mut stats);
        let mut root_sup = None;
        let mut ctl = Recorder::default();
        try_split_at(
            &plan,
            &mut cursors,
            &mut root_sup,
            0,
            &[],
            &mut ctl,
            &mut stats,
        );
        assert_eq!(
            ctl.offers,
            vec![(0, vec![], 8, None)],
            "tail = far half, open above"
        );
        assert_eq!(root_sup, Some(8), "parent's range shrank to [0, 8)");
        assert_eq!(stats.splits, 1);
        assert_eq!(stats.deep_splits, 0, "a root handoff is not a deep split");
        assert_eq!(stats.split_depth, 1);
        // Both cursors were clamped below the boundary: S now ends at 4,
        // R at 7.
        let s = &mut cursors[1];
        assert!(s.next(&mut stats.access));
        assert_eq!(s.key(), 4);
        assert!(!s.next(&mut stats.access), "8 was handed away");
    }

    #[test]
    fn single_spare_value_is_too_small_to_split() {
        // S has one unvisited sibling: a split would leave the parent or
        // the tail empty, so the offer must not happen.
        let (plan, _c, tries) = two_rel_fixture(&[0, 1, 2, 3, 4], &[0, 4]);
        let mut stats = EngineStats::<Counting>::default();
        let mut cursors = root_cursors(&plan, &tries, None, &mut stats);
        let mut root_sup = None;
        let mut ctl = Recorder::default();
        try_split_at(
            &plan,
            &mut cursors,
            &mut root_sup,
            0,
            &[],
            &mut ctl,
            &mut stats,
        );
        assert!(ctl.offers.is_empty());
        assert_eq!(root_sup, None, "range untouched");
        assert_eq!(stats.splits, 0);
    }

    #[test]
    fn empty_tail_in_any_participant_skips_the_split() {
        // Donor S offers boundary 20, but R has no root value >= 20: the
        // tail joins to nothing, so no task is spawned and the parent
        // keeps its range.
        let (plan, _c, tries) = two_rel_fixture(&[0, 1, 2, 3, 4, 5], &[0, 10, 20]);
        let mut stats = EngineStats::<Counting>::default();
        let mut cursors = root_cursors(&plan, &tries, None, &mut stats);
        let mut root_sup = None;
        let mut ctl = Recorder::default();
        try_split_at(
            &plan,
            &mut cursors,
            &mut root_sup,
            0,
            &[],
            &mut ctl,
            &mut stats,
        );
        assert!(ctl.offers.is_empty(), "empty tail must be rejected");
        assert_eq!(root_sup, None);
        assert_eq!(stats.splits, 0);
        // The failed boundary is vetoed: re-attempting the same (or any
        // higher) candidate skips the validation probes entirely.
        assert!(ctl.vetoed(0, 20) && ctl.vetoed(0, 21));
        assert!(!ctl.vetoed(0, 19), "lower candidates stay allowed");
        let probes = stats.memory_accesses();
        try_split_at(
            &plan,
            &mut cursors,
            &mut root_sup,
            0,
            &[],
            &mut ctl,
            &mut stats,
        );
        assert!(ctl.offers.is_empty() && stats.splits == 0);
        assert_eq!(
            stats.memory_accesses(),
            probes,
            "a vetoed candidate must not re-probe"
        );
    }

    /// A vetoed boundary must not kill splitting for good: after the
    /// cursors advance, a *different* donor can propose a lower boundary
    /// whose tail validates — and the shard still rebalances.
    #[test]
    fn lower_boundary_from_another_donor_splits_after_a_veto() {
        // At root match 0: R is the min-remaining donor, proposes 5000,
        // and S (nothing >= 5000) vetoes it. At root match 50: S is the
        // donor, proposes 70 < 5000, and both participants have root
        // values in [70, None) — the split must happen.
        let (plan, _c, tries) = two_rel_fixture(
            &[0, 50, 80, 5000, 6000, 7000],
            &[0, 1, 2, 3, 4, 50, 60, 70, 80],
        );
        let mut stats = EngineStats::<Counting>::default();
        let mut cursors = root_cursors(&plan, &tries, None, &mut stats);
        let mut root_sup = None;
        let mut ctl = Recorder::default();
        try_split_at(
            &plan,
            &mut cursors,
            &mut root_sup,
            0,
            &[],
            &mut ctl,
            &mut stats,
        );
        assert!(ctl.offers.is_empty() && ctl.vetoed(0, 5000), "5000 vetoed");
        // Advance every cursor to the next common root match, 50.
        for c in &mut cursors {
            assert!(c.seek(50, &mut stats.access));
            assert_eq!(c.key(), 50);
        }
        try_split_at(
            &plan,
            &mut cursors,
            &mut root_sup,
            0,
            &[],
            &mut ctl,
            &mut stats,
        );
        assert_eq!(
            ctl.offers,
            vec![(0, vec![], 70, None)],
            "the lower boundary splits"
        );
        assert_eq!(root_sup, Some(70));
        assert_eq!(stats.splits, 1);
    }

    /// The validation probes are real simulated traffic and must be
    /// charged like the clamp probes: a committed split records strictly
    /// more index reads than positioning the cursors did.
    #[test]
    fn split_validation_probes_are_counted() {
        let (plan, _c, tries) = two_rel_fixture(&[0, 1, 2, 3, 4, 5, 6, 7, 8], &[0, 4, 8]);
        let mut stats = EngineStats::<Counting>::default();
        let mut cursors = root_cursors(&plan, &tries, None, &mut stats);
        let mut root_sup = None;
        let mut ctl = Recorder::default();
        let before = stats.memory_accesses();
        try_split_at(
            &plan,
            &mut cursors,
            &mut root_sup,
            0,
            &[],
            &mut ctl,
            &mut stats,
        );
        assert_eq!(stats.splits, 1);
        assert!(
            stats.memory_accesses() > before,
            "validation + clamp searches must be tallied"
        );
    }

    /// Same shape as [`two_rel_fixture`] but with a single root value, so
    /// the only splittable level is the child level: `ans(x, y) :- R(x, y),
    /// S(x, y)` with every tuple under `x = 0`.
    fn deep_fixture(r_kids: &[u32], s_kids: &[u32]) -> (CompiledQuery, Catalog, crate::TrieSet) {
        let q = Query::builder("deep_split_math")
            .head(["x", "y"])
            .atom("R", ["x", "y"])
            .atom("S", ["x", "y"])
            .build()
            .unwrap();
        let plan = CompiledQuery::compile(&q).unwrap();
        let mut c = Catalog::new();
        c.insert(
            "R",
            Relation::from_pairs(r_kids.iter().map(|&y| (0, y)).collect::<Vec<_>>()),
        );
        c.insert(
            "S",
            Relation::from_pairs(s_kids.iter().map(|&y| (0, y)).collect::<Vec<_>>()),
        );
        let tries = crate::TrieSet::build(&plan, &c).unwrap();
        (plan, c, tries)
    }

    #[test]
    fn deep_split_hands_off_the_subtree_tail_with_its_prefix() {
        // Root domain is {0}: nothing to carve at depth 0. Under it, the
        // donor is S (positioned on 0 with {4, 8} unvisited), so the
        // depth-1 midpoint boundary is 8 and the offer must carry the
        // bound prefix [0] for the donee to re-descend.
        let (plan, _c, tries) = deep_fixture(&[0, 1, 2, 3, 4, 5, 6, 7, 8], &[0, 4, 8]);
        let mut stats = EngineStats::<Counting>::default();
        let mut cursors = root_cursors(&plan, &tries, None, &mut stats);
        for c in cursors.iter_mut() {
            assert_eq!(c.key(), 0);
            assert!(c.open(&mut stats.access));
        }
        let mut sup = None;
        let mut ctl = Recorder::default();
        try_split_at(&plan, &mut cursors, &mut sup, 1, &[0], &mut ctl, &mut stats);
        assert_eq!(
            ctl.offers,
            vec![(1, vec![0], 8, None)],
            "tail = far half of the children, tagged with the prefix"
        );
        assert_eq!(sup, Some(8), "child range shrank to [0, 8)");
        assert_eq!(stats.splits, 1);
        assert_eq!(stats.deep_splits, 1, "a sub-root handoff is a deep split");
        assert_eq!(stats.split_depth, 1);
        // Donor S was clamped below the boundary at the child level.
        let s = &mut cursors[1];
        assert!(s.next(&mut stats.access));
        assert_eq!(s.key(), 4);
        assert!(!s.next(&mut stats.access), "8 was handed away");
    }

    #[test]
    fn deep_split_validation_probes_are_counted() {
        // Satellite of the root-level probe test: the tail-validation
        // binary searches at depth 1 are charged exactly like the clamp
        // searches at the root.
        let (plan, _c, tries) = deep_fixture(&[0, 1, 2, 3, 4, 5, 6, 7, 8], &[0, 4, 8]);
        let mut stats = EngineStats::<Counting>::default();
        let mut cursors = root_cursors(&plan, &tries, None, &mut stats);
        for c in cursors.iter_mut() {
            assert!(c.open(&mut stats.access));
        }
        let mut sup = None;
        let mut ctl = Recorder::default();
        let before = stats.memory_accesses();
        try_split_at(&plan, &mut cursors, &mut sup, 1, &[0], &mut ctl, &mut stats);
        assert_eq!(stats.splits, 1);
        assert!(
            stats.memory_accesses() > before,
            "deep validation + clamp searches must be tallied"
        );
    }

    #[test]
    fn deep_empty_tail_vetoes_at_its_own_depth() {
        // S's midpoint lands at 20, but R has no child >= 20: the split
        // is rejected and the veto is recorded at depth 1 — not at the
        // root, where lower boundaries must stay probe-able.
        let (plan, _c, tries) = deep_fixture(&[0, 1, 2, 3, 4, 5], &[0, 10, 20]);
        let mut stats = EngineStats::<Counting>::default();
        let mut cursors = root_cursors(&plan, &tries, None, &mut stats);
        for c in cursors.iter_mut() {
            assert!(c.open(&mut stats.access));
        }
        let mut sup = None;
        let mut ctl = Recorder::default();
        try_split_at(&plan, &mut cursors, &mut sup, 1, &[0], &mut ctl, &mut stats);
        assert!(ctl.offers.is_empty(), "empty deep tail must be rejected");
        assert_eq!(sup, None);
        assert_eq!(stats.splits, 0);
        assert!(ctl.vetoed(1, 20) && ctl.vetoed(1, 25));
        assert!(
            !ctl.vetoed(0, 20),
            "the veto is scoped to the donated depth"
        );
    }

    #[test]
    fn bounded_shards_hand_off_within_their_own_sup() {
        // A shard already bounded above splits strictly inside [0, 7):
        // the tail inherits the parent's old sup.
        let (plan, _c, tries) = two_rel_fixture(&[0, 1, 2, 3, 4, 5, 6], &[0, 2, 4, 6]);
        let mut stats = EngineStats::<Counting>::default();
        let mut cursors = root_cursors(&plan, &tries, Some(7), &mut stats);
        let mut root_sup = Some(7);
        let mut ctl = Recorder::default();
        try_split_at(
            &plan,
            &mut cursors,
            &mut root_sup,
            0,
            &[],
            &mut ctl,
            &mut stats,
        );
        assert_eq!(
            ctl.offers,
            vec![(0, vec![], 4, Some(7))],
            "tail ends at the old sup"
        );
        assert_eq!(root_sup, Some(4));
    }

    #[test]
    fn explicit_granularity_wins_and_is_clamped() {
        let c = catalog();
        let plan = triejax_query::CompiledQuery::compile(&patterns::cycle3()).unwrap();
        let tries = TrieSet::build(&plan, &c).unwrap();
        assert_eq!(plan_shards(&plan, &c, &tries, 4, Some(3), false).len(), 3);
        // More shards than root values: clamped, never empty ranges.
        let ranges = plan_shards(&plan, &c, &tries, 4, Some(10_000), false);
        assert_eq!(ranges.len(), 40);
    }
}
