//! Root-range shard planning and execution shared by the parallel
//! engines.

use triejax_exec::{OrderedMerge, PoolStats, WorkerCtx, WorkerPool};
use triejax_query::CompiledQuery;
use triejax_relation::Value;

use crate::{Catalog, ResultSink, ShardSink, TrieSet};

/// Plans the contiguous root-value ranges `[min, sup)` a parallel run
/// executes as independent work units.
///
/// The shard count is seeded from the compiled plan: the catalog's
/// relation cardinalities feed [`CompiledQuery::root_domain_estimate`],
/// and [`CompiledQuery::shard_granularity`] overshards relative to the
/// worker count so the work-stealing pool can rebalance skew (callers may
/// force an exact count with `granularity`). Returns a single unbounded
/// range when sharding isn't worthwhile — callers treat that as the
/// sequential fast path.
///
/// Range boundaries are drawn from the *smallest* depth-0 participant's
/// root level: any participant's root values are a superset of the
/// depth-0 matches, and the smallest one balances shards with the least
/// boundary scanning. The first shard starts at the bottom of the domain
/// and the last is unbounded above, so the ranges cover every root value
/// of every participant.
pub(crate) fn plan_shards(
    plan: &CompiledQuery,
    catalog: &Catalog,
    tries: &TrieSet,
    workers: usize,
    granularity: Option<usize>,
) -> Vec<(Value, Option<Value>)> {
    let root_values: &[Value] = plan
        .atoms_at(0)
        .iter()
        .map(|&(a, _)| tries.for_atom(a).level(0).values())
        .min_by_key(|v| v.len())
        .expect("every depth has at least one participant");

    let shards = granularity
        .unwrap_or_else(|| {
            let estimate = plan
                .root_domain_estimate(|name| catalog.get(name).map(|r| r.len()))
                .unwrap_or(root_values.len());
            plan.shard_granularity(estimate.min(root_values.len()), workers)
        })
        .clamp(1, root_values.len().max(1));

    if shards <= 1 {
        return vec![(0, None)];
    }

    let mut ranges: Vec<(Value, Option<Value>)> = Vec::with_capacity(shards);
    for i in 0..shards {
        let lo_idx = i * root_values.len() / shards;
        let hi_idx = (i + 1) * root_values.len() / shards;
        if lo_idx == hi_idx {
            continue; // empty shard (more shards than values)
        }
        let min = if ranges.is_empty() {
            0
        } else {
            root_values[lo_idx]
        };
        let sup = if hi_idx == root_values.len() {
            None
        } else {
            Some(root_values[hi_idx])
        };
        ranges.push((min, sup));
    }
    ranges
}

/// Runs every planned shard on the pool, streaming batches through an
/// order-preserving merge into `sink` — the execution skeleton every
/// pool-parallel engine shares.
///
/// `work` receives the worker context, the shard's lane, its root range
/// and a ready [`ShardSink`]. The sink is created *before* `work` runs so
/// its `Drop` closes the lane even when the shard body panics, keeping
/// the foreground drain (which runs on the calling thread, so `sink`
/// needs no `Send` bound) from blocking forever. Task results come back
/// in shard order alongside the pool's scheduling stats.
pub(crate) fn execute_sharded<R, F>(
    pool: &WorkerPool,
    ranges: &[(Value, Option<Value>)],
    arity: usize,
    sink: &mut dyn ResultSink,
    work: F,
) -> (Vec<R>, PoolStats)
where
    R: Send,
    F: Fn(WorkerCtx, usize, Value, Option<Value>, &mut ShardSink<'_>) -> R + Sync,
{
    let merge = OrderedMerge::new(ranges.len());
    let ((results, pool_stats), ()) = pool.run_with_foreground(
        ranges,
        |ctx, lane, &(min, sup)| {
            let mut shard_sink = ShardSink::new(&merge, lane, arity);
            work(ctx, lane, min, sup, &mut shard_sink)
        },
        || merge.drain(|batch| sink.push_rows(&batch, arity)),
    );
    (results, pool_stats)
}

/// Builds the pool for a parallel run: the engine's explicit worker count
/// when set, otherwise the environment/core-count default.
pub(crate) fn make_pool(workers: Option<std::num::NonZeroUsize>) -> WorkerPool {
    match workers {
        Some(w) => WorkerPool::with_workers(w.get()),
        None => WorkerPool::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use triejax_query::patterns;
    use triejax_relation::Relation;

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        let edges: Vec<(u32, u32)> = (0..40).map(|i| (i, (i + 1) % 40)).collect();
        c.insert("G", Relation::from_pairs(edges));
        c
    }

    #[test]
    fn ranges_cover_the_domain_without_gaps() {
        let c = catalog();
        let plan = triejax_query::CompiledQuery::compile(&patterns::cycle3()).unwrap();
        let tries = TrieSet::build(&plan, &c).unwrap();
        let ranges = plan_shards(&plan, &c, &tries, 4, None);
        assert!(ranges.len() > 4, "overshards beyond the worker count");
        assert_eq!(ranges[0].0, 0, "first shard starts at the domain bottom");
        assert_eq!(ranges.last().unwrap().1, None, "last shard is unbounded");
        for pair in ranges.windows(2) {
            assert_eq!(pair[0].1, Some(pair[1].0), "contiguous boundaries");
        }
    }

    #[test]
    fn single_worker_gets_the_sequential_range() {
        let c = catalog();
        let plan = triejax_query::CompiledQuery::compile(&patterns::cycle3()).unwrap();
        let tries = TrieSet::build(&plan, &c).unwrap();
        assert_eq!(plan_shards(&plan, &c, &tries, 1, None), vec![(0, None)]);
    }

    #[test]
    fn explicit_granularity_wins_and_is_clamped() {
        let c = catalog();
        let plan = triejax_query::CompiledQuery::compile(&patterns::cycle3()).unwrap();
        let tries = TrieSet::build(&plan, &c).unwrap();
        assert_eq!(plan_shards(&plan, &c, &tries, 4, Some(3)).len(), 3);
        // More shards than root values: clamped, never empty ranges.
        let ranges = plan_shards(&plan, &c, &tries, 4, Some(10_000));
        assert_eq!(ranges.len(), 40);
    }
}
