use triejax_exec::OrderedMerge;
use triejax_relation::Value;

/// Consumer of join results.
///
/// Engines emit each result tuple in the *head* variable order of the
/// query, independently of the evaluation order, so different engines (and
/// different variable orders) produce comparable streams.
pub trait ResultSink {
    /// Receives one result tuple.
    fn push(&mut self, tuple: &[Value]);

    /// Receives a batch of result tuples, in stream order — the
    /// convenience flavour for callers whose tuples are not stored
    /// contiguously. The engines' own hot paths emit through
    /// [`push_rows`](Self::push_rows) (flat storage) or plain
    /// [`push`](Self::push); override this only if batch callers matter
    /// for your sink.
    ///
    /// The default forwards tuple-by-tuple to [`push`](Self::push).
    fn push_batch(&mut self, tuples: &[&[Value]]) {
        for t in tuples {
            self.push(t);
        }
    }

    /// Receives a batch of `arity`-wide tuples stored contiguously — the
    /// allocation-free bulk path the drivers' emit buffers and the
    /// parallel merge drain use (their batches are flat row storage
    /// already, so no per-flush vector of slice refs is needed). **This
    /// is the override that matters for throughput.**
    ///
    /// The default forwards tuple-by-tuple to [`push`](Self::push).
    fn push_rows(&mut self, rows: &[Value], arity: usize) {
        for t in rows.chunks_exact(arity.max(1)) {
            self.push(t);
        }
    }

    /// Switches the sink's output lane mid-stream — the continuation half
    /// of a sub-root dynamic split: after donating a tail at depth ≥ 1,
    /// the driver redirects its sink to the continuation lane when it
    /// exits the split level, so everything it produces afterwards drains
    /// *after* the donee's output. A no-op for every sink except
    /// [`ShardSink`], which flushes and closes its current lane first.
    #[doc(hidden)]
    fn redirect_lane(&mut self, _lane: usize) {}
}

/// Counts results without storing them — the usual sink for benchmarks,
/// where result sets can be large.
///
/// # Example
///
/// ```
/// use triejax_join::{CountSink, ResultSink};
///
/// let mut sink = CountSink::default();
/// sink.push(&[1, 2, 3]);
/// sink.push(&[4, 5, 6]);
/// assert_eq!(sink.count(), 2);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CountSink {
    count: u64,
}

impl CountSink {
    /// Creates a zeroed counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of tuples received.
    pub fn count(&self) -> u64 {
        self.count
    }
}

impl ResultSink for CountSink {
    fn push(&mut self, _tuple: &[Value]) {
        self.count += 1;
    }

    fn push_batch(&mut self, tuples: &[&[Value]]) {
        self.count += tuples.len() as u64;
    }

    fn push_rows(&mut self, rows: &[Value], arity: usize) {
        self.count += (rows.len() / arity.max(1)) as u64;
    }
}

/// Collects all results; used by tests that compare engines tuple-by-tuple.
///
/// [`CollectSink::into_sorted`] returns the tuples in lexicographic order so
/// engines with different emission orders can be compared directly.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct CollectSink {
    tuples: Vec<Vec<Value>>,
}

impl CollectSink {
    /// Creates an empty collector.
    pub fn new() -> Self {
        Self::default()
    }

    /// The collected tuples in emission order.
    pub fn tuples(&self) -> &[Vec<Value>] {
        &self.tuples
    }

    /// Consumes the sink, returning tuples sorted lexicographically.
    pub fn into_sorted(mut self) -> Vec<Vec<Value>> {
        self.tuples.sort_unstable();
        self.tuples
    }

    /// Number of tuples received.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// Returns `true` when no tuples were received.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }
}

impl ResultSink for CollectSink {
    fn push(&mut self, tuple: &[Value]) {
        self.tuples.push(tuple.to_vec());
    }

    fn push_batch(&mut self, tuples: &[&[Value]]) {
        self.tuples.reserve(tuples.len());
        self.tuples.extend(tuples.iter().map(|t| t.to_vec()));
    }

    fn push_rows(&mut self, rows: &[Value], arity: usize) {
        let arity = arity.max(1);
        self.tuples.reserve(rows.len() / arity);
        self.tuples
            .extend(rows.chunks_exact(arity).map(<[Value]>::to_vec));
    }
}

/// Per-shard sink of the parallel engines: buffers a worker's result rows
/// into fixed-size batches and flushes them to an [`OrderedMerge`] lane,
/// so the foreground drainer can forward results downstream *while later
/// shards are still running* — no shard ever materializes its full result.
///
/// Dropping the sink flushes the final partial batch and closes the lane
/// (so a panicking shard still unblocks the drainer);
/// [`finish`](Self::finish) does the same explicitly.
///
/// # Example
///
/// ```
/// use triejax_exec::OrderedMerge;
/// use triejax_join::{ResultSink, ShardSink};
///
/// let merge = OrderedMerge::new(2);
/// // Shard 1 completes first; its rows wait for shard 0.
/// ShardSink::new(&merge, 1, 2).push(&[9, 9]);
/// ShardSink::new(&merge, 0, 2).push(&[1, 1]);
/// let mut rows = Vec::new();
/// merge.drain(|batch| rows.extend(batch));
/// assert_eq!(rows, vec![1, 1, 9, 9]);
/// ```
#[derive(Debug)]
pub struct ShardSink<'m> {
    merge: &'m OrderedMerge<Vec<Value>>,
    lane: usize,
    arity: usize,
    /// Flush threshold in values (rows x arity).
    batch_values: usize,
    buf: Vec<Value>,
}

impl<'m> ShardSink<'m> {
    /// Rows per batch unless overridden: large enough to amortize the
    /// merge lock, small enough to keep the drainer streaming.
    pub const DEFAULT_BATCH_ROWS: usize = 256;

    /// Sink feeding `lane` of `merge` with `arity`-wide tuples.
    ///
    /// # Panics
    ///
    /// Panics if `arity == 0`.
    pub fn new(merge: &'m OrderedMerge<Vec<Value>>, lane: usize, arity: usize) -> Self {
        Self::with_batch_rows(merge, lane, arity, Self::DEFAULT_BATCH_ROWS)
    }

    /// Sink with an explicit batch size in rows.
    ///
    /// # Panics
    ///
    /// Panics if `arity == 0` or `batch_rows == 0`.
    pub fn with_batch_rows(
        merge: &'m OrderedMerge<Vec<Value>>,
        lane: usize,
        arity: usize,
        batch_rows: usize,
    ) -> Self {
        assert!(arity > 0, "tuples must have at least one column");
        assert!(batch_rows > 0, "batches must hold at least one row");
        ShardSink {
            merge,
            lane,
            arity,
            batch_values: batch_rows * arity,
            buf: Vec::with_capacity(batch_rows * arity),
        }
    }

    /// Flushes any buffered rows and closes the lane (equivalent to
    /// dropping the sink, made explicit for readability at call sites).
    pub fn finish(self) {}

    fn flush(&mut self) {
        if !self.buf.is_empty() {
            let batch = std::mem::replace(&mut self.buf, Vec::with_capacity(self.batch_values));
            self.merge.push(self.lane, batch);
        }
    }
}

impl ResultSink for ShardSink<'_> {
    fn push(&mut self, tuple: &[Value]) {
        debug_assert_eq!(tuple.len(), self.arity);
        self.buf.extend_from_slice(tuple);
        if self.buf.len() >= self.batch_values {
            self.flush();
        }
    }

    /// Bulk path: append the whole batch, then check the threshold once
    /// (a flushed batch may exceed the configured size — it's a target,
    /// not a bound — in exchange for no per-tuple bookkeeping).
    fn push_batch(&mut self, tuples: &[&[Value]]) {
        self.buf.reserve(tuples.len() * self.arity);
        for t in tuples {
            debug_assert_eq!(t.len(), self.arity);
            self.buf.extend_from_slice(t);
        }
        if self.buf.len() >= self.batch_values {
            self.flush();
        }
    }

    fn push_rows(&mut self, rows: &[Value], arity: usize) {
        debug_assert_eq!(arity, self.arity);
        debug_assert_eq!(rows.len() % self.arity, 0);
        self.buf.extend_from_slice(rows);
        if self.buf.len() >= self.batch_values {
            self.flush();
        }
    }

    fn redirect_lane(&mut self, lane: usize) {
        debug_assert_ne!(lane, self.lane, "redirect must move to a fresh lane");
        self.flush();
        self.merge.finish(self.lane);
        self.lane = lane;
    }
}

impl Drop for ShardSink<'_> {
    fn drop(&mut self) {
        // When the shard body panicked, only the lane close matters (it
        // unblocks the drainer); flushing would hand the truncated
        // mid-shard buffer downstream as if it were valid output.
        if !std::thread::panicking() {
            self.flush();
        }
        self.merge.finish(self.lane);
    }
}

/// Driver-side batching helper: accumulates emitted rows and forwards them
/// to the sink through [`ResultSink::push_batch`], taking the virtual call
/// out of the per-tuple path. Drivers must [`flush`](Self::flush) before
/// returning.
///
/// [`passthrough`](Self::passthrough) disables the buffering: the parallel
/// engines use it because their drivers already write into a [`ShardSink`]
/// that batches — stacking a second same-sized buffer in front of it would
/// just copy every row twice.
#[derive(Debug)]
pub(crate) struct BatchEmitter {
    arity: usize,
    /// Flush threshold in values; `0` = passthrough (no buffering).
    batch_values: usize,
    rows: Vec<Value>,
}

impl BatchEmitter {
    pub(crate) fn new(arity: usize) -> Self {
        let batch_values = ShardSink::DEFAULT_BATCH_ROWS * arity.max(1);
        BatchEmitter {
            arity: arity.max(1),
            batch_values,
            rows: Vec::new(),
        }
    }

    /// Switches to passthrough: every tuple goes straight to `sink.push`.
    pub(crate) fn passthrough(&mut self) {
        debug_assert!(self.rows.is_empty(), "switch modes before emitting");
        self.batch_values = 0;
    }

    #[inline]
    pub(crate) fn push(&mut self, tuple: &[Value], sink: &mut dyn ResultSink) {
        if self.batch_values == 0 {
            sink.push(tuple);
            return;
        }
        self.rows.extend_from_slice(tuple);
        if self.rows.len() >= self.batch_values {
            self.flush(sink);
        }
    }

    pub(crate) fn flush(&mut self, sink: &mut dyn ResultSink) {
        if self.rows.is_empty() {
            return;
        }
        sink.push_rows(&self.rows, self.arity);
        self.rows.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_batch_defaults_and_overrides_agree() {
        let rows: Vec<&[Value]> = vec![&[1, 2], &[3, 4], &[5, 6]];
        let mut count = CountSink::new();
        count.push_batch(&rows);
        assert_eq!(count.count(), 3);
        let mut collect = CollectSink::new();
        collect.push_batch(&rows);
        assert_eq!(collect.tuples(), &[vec![1, 2], vec![3, 4], vec![5, 6]]);
    }

    #[test]
    fn shard_sink_batches_and_preserves_lane_order() {
        let merge = OrderedMerge::new(2);
        {
            let mut late = ShardSink::with_batch_rows(&merge, 1, 2, 2);
            late.push(&[7, 8]);
            late.push(&[9, 10]); // second row triggers a mid-stream flush
            late.push(&[11, 12]);
            late.finish();
            let mut early = ShardSink::new(&merge, 0, 2);
            early.push(&[1, 2]);
            // Dropped without finish(): the Drop impl flushes and closes.
        }
        let mut rows: Vec<Value> = Vec::new();
        merge.drain(|batch| rows.extend(batch));
        assert_eq!(rows, vec![1, 2, 7, 8, 9, 10, 11, 12]);
    }

    #[test]
    fn panicking_shard_closes_its_lane_without_flushing_partial_rows() {
        let merge = OrderedMerge::new(1);
        let result = std::thread::scope(|s| {
            s.spawn(|| {
                let mut sink = ShardSink::new(&merge, 0, 2);
                sink.push(&[1, 2]);
                panic!("shard died mid-run");
            })
            .join()
        });
        assert!(result.is_err());
        let mut rows: Vec<Value> = Vec::new();
        merge.drain(|b| rows.extend(b)); // lane was closed: no hang...
        assert!(rows.is_empty(), "...and no truncated output leaked");
    }

    #[test]
    fn push_rows_default_and_overrides_agree() {
        let rows: &[Value] = &[1, 2, 3, 4, 5, 6];
        let mut count = CountSink::new();
        count.push_rows(rows, 2);
        assert_eq!(count.count(), 3);
        let mut collect = CollectSink::new();
        collect.push_rows(rows, 3);
        assert_eq!(collect.tuples(), &[vec![1, 2, 3], vec![4, 5, 6]]);
        let merge = OrderedMerge::new(1);
        ShardSink::new(&merge, 0, 2).push_rows(rows, 2);
        let mut drained: Vec<Value> = Vec::new();
        merge.drain(|batch| drained.extend(batch));
        assert_eq!(drained, rows);
    }

    #[test]
    fn passthrough_emitter_skips_buffering() {
        let mut emitter = BatchEmitter::new(2);
        emitter.passthrough();
        let mut sink = CollectSink::new();
        emitter.push(&[1, 2], &mut sink);
        assert_eq!(sink.len(), 1, "no buffering in passthrough mode");
        emitter.flush(&mut sink); // nothing pending
        assert_eq!(sink.tuples(), &[vec![1, 2]]);
    }

    #[test]
    fn batch_emitter_flushes_complete_rows() {
        let mut emitter = BatchEmitter::new(3);
        let mut sink = CollectSink::new();
        emitter.push(&[1, 2, 3], &mut sink);
        emitter.push(&[4, 5, 6], &mut sink);
        assert!(sink.is_empty(), "buffered until flushed");
        emitter.flush(&mut sink);
        assert_eq!(sink.tuples(), &[vec![1, 2, 3], vec![4, 5, 6]]);
        emitter.flush(&mut sink); // empty flush is a no-op
        assert_eq!(sink.len(), 2);
    }

    #[test]
    fn redirect_lane_flushes_then_moves_the_stream() {
        // Lanes drain in order 0, 1, 2. The shard starts on lane 0, a
        // donee owns lane 1, and the shard continues on lane 2: rows
        // pushed after the redirect must drain after the donee's.
        let merge = OrderedMerge::new(3);
        {
            let mut donor = ShardSink::new(&merge, 0, 2);
            donor.push(&[1, 1]);
            donor.redirect_lane(2);
            donor.push(&[9, 9]);
            let mut donee = ShardSink::new(&merge, 1, 2);
            donee.push(&[5, 5]);
        }
        let mut rows: Vec<Value> = Vec::new();
        merge.drain(|batch| rows.extend(batch));
        assert_eq!(rows, vec![1, 1, 5, 5, 9, 9]);
    }

    #[test]
    fn collect_sink_sorts() {
        let mut s = CollectSink::new();
        s.push(&[3, 1]);
        s.push(&[1, 2]);
        s.push(&[1, 1]);
        assert_eq!(s.len(), 3);
        assert!(!s.is_empty());
        assert_eq!(s.into_sorted(), vec![vec![1, 1], vec![1, 2], vec![3, 1]]);
    }
}
