use triejax_relation::Value;

/// Consumer of join results.
///
/// Engines emit each result tuple in the *head* variable order of the
/// query, independently of the evaluation order, so different engines (and
/// different variable orders) produce comparable streams.
pub trait ResultSink {
    /// Receives one result tuple.
    fn push(&mut self, tuple: &[Value]);
}

/// Counts results without storing them — the usual sink for benchmarks,
/// where result sets can be large.
///
/// # Example
///
/// ```
/// use triejax_join::{CountSink, ResultSink};
///
/// let mut sink = CountSink::default();
/// sink.push(&[1, 2, 3]);
/// sink.push(&[4, 5, 6]);
/// assert_eq!(sink.count(), 2);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CountSink {
    count: u64,
}

impl CountSink {
    /// Creates a zeroed counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of tuples received.
    pub fn count(&self) -> u64 {
        self.count
    }
}

impl ResultSink for CountSink {
    fn push(&mut self, _tuple: &[Value]) {
        self.count += 1;
    }
}

/// Collects all results; used by tests that compare engines tuple-by-tuple.
///
/// [`CollectSink::into_sorted`] returns the tuples in lexicographic order so
/// engines with different emission orders can be compared directly.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct CollectSink {
    tuples: Vec<Vec<Value>>,
}

impl CollectSink {
    /// Creates an empty collector.
    pub fn new() -> Self {
        Self::default()
    }

    /// The collected tuples in emission order.
    pub fn tuples(&self) -> &[Vec<Value>] {
        &self.tuples
    }

    /// Consumes the sink, returning tuples sorted lexicographically.
    pub fn into_sorted(mut self) -> Vec<Vec<Value>> {
        self.tuples.sort_unstable();
        self.tuples
    }

    /// Number of tuples received.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// Returns `true` when no tuples were received.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }
}

impl ResultSink for CollectSink {
    fn push(&mut self, tuple: &[Value]) {
        self.tuples.push(tuple.to_vec());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collect_sink_sorts() {
        let mut s = CollectSink::new();
        s.push(&[3, 1]);
        s.push(&[1, 2]);
        s.push(&[1, 1]);
        assert_eq!(s.len(), 3);
        assert!(!s.is_empty());
        assert_eq!(s.into_sorted(), vec![vec![1, 1], vec![1, 2], vec![3, 1]]);
    }
}
