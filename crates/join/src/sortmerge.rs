use triejax_query::{CompiledQuery, VarId};
use triejax_relation::{AccessKind, Counting, Tally, Value, WORD_BYTES};

use crate::sink::BatchEmitter;
use crate::{Catalog, EngineStats, JoinEngine, JoinError, ResultSink};

/// Traditional left-deep binary **sort-merge** join plan — the literal
/// operator repertoire of Q100 (Sort, Merge-Join; paper §2.1).
///
/// Each binary join sorts both sides on the shared variables and merges;
/// every intermediate relation is materialized and re-sorted for the next
/// operator, which is exactly why the Q100 model charges per-intermediate
/// sort passes. Sort comparisons are counted as `match_ops` and every
/// moved tuple as intermediate traffic.
///
/// Result sets are identical to [`crate::PairwiseHash`] (and every other
/// engine); only the work profile differs.
#[derive(Debug, Clone, Copy, Default)]
pub struct PairwiseSortMerge {
    _private: (),
}

impl PairwiseSortMerge {
    /// Creates the engine; identical to `Default::default()`.
    pub fn new() -> Self {
        Self::default()
    }
}

/// One intermediate relation: schema plus row storage.
struct Stage {
    schema: Vec<VarId>,
    rows: Vec<Vec<Value>>,
}

impl PairwiseSortMerge {
    /// Runs the query with an explicit [`Tally`] choice; see
    /// [`crate::Lftj::run_tallied`] for the counting/fast trade-off.
    ///
    /// # Errors
    ///
    /// Returns a [`JoinError`] when the catalog is missing a relation or a
    /// relation's arity mismatches its atom.
    pub fn run_tallied<T: Tally>(
        &mut self,
        plan: &CompiledQuery,
        catalog: &Catalog,
        sink: &mut dyn ResultSink,
    ) -> Result<EngineStats<T>, JoinError> {
        let mut stats = EngineStats::<T>::default();
        let query = plan.query();
        if query.is_projection() {
            return Err(JoinError::Plan {
                detail: "projected heads are not supported; every engine emits full joins".into(),
            });
        }

        let fetch = |name: &str, arity: usize| -> Result<Vec<Vec<Value>>, JoinError> {
            let rel = catalog
                .get(name)
                .ok_or_else(|| JoinError::MissingRelation {
                    name: name.to_owned(),
                })?;
            if rel.arity() != arity {
                return Err(JoinError::ArityMismatch {
                    name: name.to_owned(),
                    atom_arity: arity,
                    relation_arity: rel.arity(),
                });
            }
            Ok(rel.iter().map(|t| t.to_vec()).collect())
        };

        let first = query.atoms().first().expect("validated queries have atoms");
        let mut acc = Stage {
            schema: first.vars().to_vec(),
            rows: fetch(first.relation(), first.arity())?,
        };
        stats.access.record(
            AccessKind::IndexRead,
            (acc.rows.len() * first.arity()) as u64 * WORD_BYTES,
        );

        for atom in &query.atoms()[1..] {
            let mut right = Stage {
                schema: atom.vars().to_vec(),
                rows: fetch(atom.relation(), atom.arity())?,
            };
            stats.access.record(
                AccessKind::IndexRead,
                (right.rows.len() * atom.arity()) as u64 * WORD_BYTES,
            );

            // Shared variables: (left column, right column).
            let shared: Vec<(usize, usize)> = acc
                .schema
                .iter()
                .enumerate()
                .filter_map(|(li, v)| {
                    right
                        .schema
                        .iter()
                        .position(|rv| rv == v)
                        .map(|ri| (li, ri))
                })
                .collect();
            let new_cols: Vec<usize> = (0..right.schema.len())
                .filter(|ri| !shared.iter().any(|&(_, r)| r == *ri))
                .collect();

            // Sort both sides on the join key (a Q100 Sort operator each).
            let lkey =
                |row: &Vec<Value>| -> Vec<Value> { shared.iter().map(|&(l, _)| row[l]).collect() };
            let rkey =
                |row: &Vec<Value>| -> Vec<Value> { shared.iter().map(|&(_, r)| row[r]).collect() };
            sort_counted(&mut acc.rows, &lkey, &mut stats);
            sort_counted(&mut right.rows, &rkey, &mut stats);

            // Merge phase.
            let mut out = Vec::new();
            let (mut i, mut j) = (0usize, 0usize);
            while i < acc.rows.len() && j < right.rows.len() {
                stats.match_ops += 1;
                let kl = lkey(&acc.rows[i]);
                let kr = rkey(&right.rows[j]);
                match kl.cmp(&kr) {
                    std::cmp::Ordering::Less => i += 1,
                    std::cmp::Ordering::Greater => j += 1,
                    std::cmp::Ordering::Equal => {
                        // Emit the cross product of the equal-key runs.
                        let i_end = acc.rows[i..].iter().take_while(|r| lkey(r) == kl).count() + i;
                        let j_end =
                            right.rows[j..].iter().take_while(|r| rkey(r) == kr).count() + j;
                        for li in i..i_end {
                            for rj in j..j_end {
                                let mut row = acc.rows[li].clone();
                                row.extend(new_cols.iter().map(|&c| right.rows[rj][c]));
                                stats.access.record(
                                    AccessKind::Intermediate,
                                    row.len() as u64 * WORD_BYTES,
                                );
                                out.push(row);
                            }
                        }
                        i = i_end;
                        j = j_end;
                    }
                }
            }
            for &c in &new_cols {
                acc.schema.push(right.schema[c]);
            }
            acc.rows = out;
            if !std::ptr::eq(atom, query.atoms().last().expect("non-empty")) {
                stats.intermediates += acc.rows.len() as u64;
            }
        }

        // Project to head order and emit.
        let head_pos: Vec<usize> = query
            .head()
            .iter()
            .map(|hv| {
                acc.schema
                    .iter()
                    .position(|v| v == hv)
                    .expect("full join covers head")
            })
            .collect();
        let mut emit = vec![0; head_pos.len()];
        let mut emitter = BatchEmitter::new(head_pos.len());
        for row in &acc.rows {
            for (slot, &pos) in head_pos.iter().enumerate() {
                emit[slot] = row[pos];
            }
            emitter.push(&emit, sink);
            stats.results += 1;
            stats
                .access
                .record(AccessKind::ResultWrite, emit.len() as u64 * WORD_BYTES);
        }
        emitter.flush(sink);
        Ok(stats)
    }
}

impl JoinEngine for PairwiseSortMerge {
    fn name(&self) -> &'static str {
        "pairwise-sortmerge"
    }

    fn execute(
        &mut self,
        plan: &CompiledQuery,
        catalog: &Catalog,
        sink: &mut dyn ResultSink,
    ) -> Result<EngineStats, JoinError> {
        self.run_tallied::<Counting>(plan, catalog, sink)
    }
}

/// Sorts rows by a key extractor, charging `n log n` comparisons as match
/// operations and each row move as intermediate traffic.
fn sort_counted<K: Ord, T: Tally>(
    rows: &mut [Vec<Value>],
    key: &impl Fn(&Vec<Value>) -> K,
    stats: &mut EngineStats<T>,
) {
    let n = rows.len() as u64;
    if n > 1 {
        stats.match_ops += n * (64 - n.leading_zeros() as u64);
        let bytes: u64 = rows.iter().map(|r| r.len() as u64 * WORD_BYTES).sum();
        stats.access.record(AccessKind::Intermediate, bytes);
    }
    rows.sort_by_key(key);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CollectSink, CountSink, Lftj, PairwiseHash};
    use triejax_query::patterns::{self, Pattern};
    use triejax_relation::Relation;

    fn catalog(edges: &[(u32, u32)]) -> Catalog {
        let mut c = Catalog::new();
        c.insert("G", Relation::from_pairs(edges.to_vec()));
        c
    }

    fn test_edges() -> Vec<(u32, u32)> {
        vec![
            (0, 1),
            (1, 2),
            (2, 0),
            (2, 3),
            (3, 1),
            (0, 2),
            (3, 0),
            (1, 3),
            (4, 1),
            (2, 4),
        ]
    }

    #[test]
    fn agrees_with_lftj_on_every_pattern() {
        let c = catalog(&test_edges());
        for p in Pattern::ALL {
            let plan = CompiledQuery::compile(&p.query()).unwrap();
            let mut a = CollectSink::new();
            let mut b = CollectSink::new();
            Lftj::new().execute(&plan, &c, &mut a).unwrap();
            PairwiseSortMerge::new().execute(&plan, &c, &mut b).unwrap();
            assert_eq!(a.into_sorted(), b.into_sorted(), "{p}");
        }
    }

    #[test]
    fn intermediate_counts_match_the_hash_variant() {
        // Same left-deep plan: identical intermediate relation sizes,
        // different operator costs.
        let c = catalog(&test_edges());
        for p in [Pattern::Path4, Pattern::Cycle4, Pattern::Clique4] {
            let plan = CompiledQuery::compile(&p.query()).unwrap();
            let mut s1 = CountSink::default();
            let sm = PairwiseSortMerge::new()
                .execute(&plan, &c, &mut s1)
                .unwrap();
            let mut s2 = CountSink::default();
            let hj = PairwiseHash::new().execute(&plan, &c, &mut s2).unwrap();
            assert_eq!(sm.intermediates, hj.intermediates, "{p}");
            assert_eq!(s1.count(), s2.count(), "{p}");
        }
    }

    #[test]
    fn sort_costs_are_charged() {
        let c = catalog(&test_edges());
        let plan = CompiledQuery::compile(&patterns::path3()).unwrap();
        let mut sink = CountSink::default();
        let stats = PairwiseSortMerge::new()
            .execute(&plan, &c, &mut sink)
            .unwrap();
        assert!(stats.match_ops > 0);
        assert!(stats.access.intermediate_bytes > 0, "sorts move rows");
    }

    #[test]
    fn empty_side_yields_nothing() {
        let mut c = Catalog::new();
        c.insert("G", Relation::new(2).unwrap());
        let plan = CompiledQuery::compile(&patterns::cycle3()).unwrap();
        let mut sink = CountSink::default();
        let stats = PairwiseSortMerge::new()
            .execute(&plan, &c, &mut sink)
            .unwrap();
        assert_eq!(stats.results, 0);
    }
}
