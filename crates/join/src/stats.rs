use triejax_relation::AccessCounter;

/// Work counters accumulated by a join engine during one execution.
///
/// These feed three consumers: the paper's Figure 17 (main-memory accesses
/// per system), Figure 18 (intermediate results, CTJ versus pairwise), and
/// the baseline performance models in `triejax-baselines`, which convert
/// operation counts into cycles and energy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EngineStats {
    /// Number of result tuples emitted.
    pub results: u64,
    /// Intermediate results materialized: cached partial-join values for
    /// CTJ, intermediate-relation tuples for pairwise joins, candidate-set
    /// values for Generic Join. LFTJ materializes none.
    pub intermediates: u64,
    /// Partial-join cache hits (CTJ only).
    pub cache_hits: u64,
    /// Partial-join cache misses on cacheable lookups (CTJ only).
    pub cache_misses: u64,
    /// Cache entries discarded due to capacity overflow (CTJ only).
    pub cache_overflows: u64,
    /// Lowest-upper-bound (binary-search) operations issued.
    pub lub_ops: u64,
    /// Child-range expansions (the Midwife operation).
    pub expand_ops: u64,
    /// Per-variable match attempts (MatchMaker invocations / leapfrog
    /// searches, or per-level intersection calls for Generic Join, or
    /// probe operations for hash joins).
    pub match_ops: u64,
    /// Simulated memory touches.
    pub access: AccessCounter,
}

impl EngineStats {
    /// Creates zeroed stats; identical to `Default::default()`.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total main-memory accesses (the Figure 17 metric): every simulated
    /// word touch of index, intermediate, or result data.
    pub fn memory_accesses(&self) -> u64 {
        self.access.total_accesses()
    }

    /// Total simulated bytes moved.
    pub fn bytes_moved(&self) -> u64 {
        self.access.total_bytes()
    }

    /// Total discrete engine operations (used by software cost models).
    pub fn total_ops(&self) -> u64 {
        self.lub_ops + self.expand_ops + self.match_ops
    }

    /// Cache hit rate in `[0, 1]`; `0` when no cacheable lookups happened.
    pub fn cache_hit_rate(&self) -> f64 {
        let lookups = self.cache_hits + self.cache_misses;
        if lookups == 0 {
            0.0
        } else {
            self.cache_hits as f64 / lookups as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use triejax_relation::AccessKind;

    #[test]
    fn totals_sum_fields() {
        let mut s = EngineStats::new();
        s.lub_ops = 3;
        s.expand_ops = 2;
        s.match_ops = 5;
        assert_eq!(s.total_ops(), 10);
        s.access.record(AccessKind::IndexRead, 4);
        s.access.record(AccessKind::ResultWrite, 8);
        assert_eq!(s.memory_accesses(), 2);
        assert_eq!(s.bytes_moved(), 12);
    }

    #[test]
    fn hit_rate_handles_zero_lookups() {
        let mut s = EngineStats::new();
        assert_eq!(s.cache_hit_rate(), 0.0);
        s.cache_hits = 3;
        s.cache_misses = 1;
        assert!((s.cache_hit_rate() - 0.75).abs() < 1e-12);
    }
}
