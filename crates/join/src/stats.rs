use triejax_relation::{Counting, Tally};

/// Work counters accumulated by a join engine during one execution.
///
/// These feed three consumers: the paper's Figure 17 (main-memory accesses
/// per system), Figure 18 (intermediate results, CTJ versus pairwise), and
/// the baseline performance models in `triejax-baselines`, which convert
/// operation counts into cycles and energy.
///
/// The memory-access side is generic over a [`Tally`]: the default
/// [`Counting`] parameter records every simulated word touch (paper-figure
/// mode), while [`triejax_relation::NoTally`] turns the whole access
/// accounting into no-ops that the optimizer deletes (throughput mode).
/// The discrete operation counters (`lub_ops`, `match_ops`, …) are plain
/// integer increments and are kept in both modes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EngineStats<T: Tally = Counting> {
    /// Number of result tuples emitted.
    pub results: u64,
    /// Intermediate results materialized: cached partial-join values for
    /// CTJ, intermediate-relation tuples for pairwise joins, candidate-set
    /// values for Generic Join. LFTJ materializes none.
    pub intermediates: u64,
    /// Partial-join cache hits (CTJ only).
    pub cache_hits: u64,
    /// Partial-join cache misses on cacheable lookups (CTJ only).
    pub cache_misses: u64,
    /// Cache entries discarded due to capacity overflow (CTJ only): an
    /// entry that outgrew `entry_capacity` while being filled, or an
    /// insertion into a full store that does not evict.
    pub cache_overflows: u64,
    /// Cache entries evicted to make room for newer ones (the shared
    /// sharded cache of `ParCtj` only; the sequential store drops new
    /// insertions instead of evicting old entries).
    pub cache_evictions: u64,
    /// Insert races lost on the shared cache: a sibling worker published
    /// the same entry first, so this worker's duplicate build was
    /// discarded (first writer wins) and its miss reclassified as a late
    /// hit. Summed `cache_misses` therefore count *unique* entry builds.
    pub cache_races: u64,
    /// Shared-cache stripe locks that were contended — another worker
    /// held the stripe when this one arrived, so the acquisition waited.
    pub cache_contention: u64,
    /// Cache specs demoted at run time by the adaptive policy
    /// (`CtjConfig::adaptive` / `TRIEJAX_CACHE_ADAPT`): a spec whose
    /// observed hit rate stayed at zero after a fixed number of lookups
    /// stopped recording and looking up entries at its depth. Each
    /// demoted depth counts once per run.
    pub cache_demotions: u64,
    /// Lowest-upper-bound (binary-search) operations issued.
    pub lub_ops: u64,
    /// Child-range expansions (the Midwife operation).
    pub expand_ops: u64,
    /// Per-variable match attempts (MatchMaker invocations / leapfrog
    /// searches, or per-level intersection calls for Generic Join, or
    /// probe operations for hash joins).
    pub match_ops: u64,
    /// Root-range shards executed (parallel engines; 1 when an engine ran
    /// its sequential fast path, 0 for the inherently sequential engines).
    pub shards: u64,
    /// Shards obtained by work stealing — a sibling worker's queue ran dry
    /// and took the shard — rather than from the owning worker's queue
    /// (parallel engines only).
    pub steals: u64,
    /// Dynamic shard splits performed (parallel engines with splitting
    /// enabled, see `ParLftj::with_split`/`ParCtj::with_split` and the
    /// `TRIEJAX_SPLIT` environment default): a running shard observed an
    /// idle sibling worker and carved the unvisited tail of its root
    /// range off into a freshly spawned shard. Split shards are included
    /// in [`shards`](Self::shards).
    pub splits: u64,
    /// Dynamic splits performed *below* the root level (depth ≥ 1):
    /// spawn-on-match handoffs that donated the sibling tail of an inner
    /// trie level under a bound prefix (paper §3.4, enabled by
    /// `ParLftj::with_split_depth`/`ParCtj::with_split_depth` and the
    /// `TRIEJAX_SPLIT_DEPTH` environment default). A subset of
    /// [`splits`](Self::splits).
    pub deep_splits: u64,
    /// Deepest split generation reached: `0` when no split happened, `1`
    /// when an initial shard split, `2` when a split shard split again,
    /// and so on. Unlike the other counters this merges by *maximum* —
    /// it measures how long the longest handoff chain grew, which is the
    /// paper's §3.4 spawn depth, not a volume.
    pub split_depth: u64,
    /// Wall-clock nanoseconds spent building (or fetching) the query's
    /// [`crate::TrieSet`] before the join proper started (parallel engines
    /// only; the sequential engines report 0). Set once per run by the
    /// driving engine, so merging per-shard stats does not inflate it.
    pub trie_build_ns: u64,
    /// Tries served from the cross-query [`crate::TrieCache`] instead of
    /// being built (parallel engines with a trie cache only).
    pub trie_cache_hits: u64,
    /// Simulated memory touches, reported through the [`Tally`].
    pub access: T,
}

impl<T: Tally> EngineStats<T> {
    /// Creates zeroed stats; identical to `Default::default()`.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total main-memory accesses (the Figure 17 metric): every simulated
    /// word touch of index, intermediate, or result data. Always zero when
    /// the tally is [`triejax_relation::NoTally`].
    pub fn memory_accesses(&self) -> u64 {
        self.access.snapshot().total_accesses()
    }

    /// Total simulated bytes moved. Always zero when the tally is
    /// [`triejax_relation::NoTally`].
    pub fn bytes_moved(&self) -> u64 {
        self.access.snapshot().total_bytes()
    }

    /// Total discrete engine operations (used by software cost models).
    pub fn total_ops(&self) -> u64 {
        self.lub_ops + self.expand_ops + self.match_ops
    }

    /// Cache hit rate in `[0, 1]`; `0` when no cacheable lookups happened.
    pub fn cache_hit_rate(&self) -> f64 {
        let lookups = self.cache_hits + self.cache_misses;
        if lookups == 0 {
            0.0
        } else {
            self.cache_hits as f64 / lookups as f64
        }
    }

    /// These stats with the access tally snapshotted into the concrete
    /// [`Counting`] representation. A cancelled run reports its partial
    /// progress through [`crate::JoinError::Cancelled`] in this form
    /// regardless of which tally the engine ran with.
    pub fn to_counting(&self) -> EngineStats<Counting> {
        EngineStats {
            results: self.results,
            intermediates: self.intermediates,
            cache_hits: self.cache_hits,
            cache_misses: self.cache_misses,
            cache_overflows: self.cache_overflows,
            cache_evictions: self.cache_evictions,
            cache_races: self.cache_races,
            cache_contention: self.cache_contention,
            cache_demotions: self.cache_demotions,
            lub_ops: self.lub_ops,
            expand_ops: self.expand_ops,
            match_ops: self.match_ops,
            shards: self.shards,
            steals: self.steals,
            splits: self.splits,
            deep_splits: self.deep_splits,
            split_depth: self.split_depth,
            trie_build_ns: self.trie_build_ns,
            trie_cache_hits: self.trie_cache_hits,
            access: self.access.snapshot(),
        }
    }

    /// Adds another run's totals into this one (used by the parallel
    /// engine to combine per-shard stats).
    pub fn merge(&mut self, other: &Self) {
        self.results += other.results;
        self.intermediates += other.intermediates;
        self.cache_hits += other.cache_hits;
        self.cache_misses += other.cache_misses;
        self.cache_overflows += other.cache_overflows;
        self.cache_evictions += other.cache_evictions;
        self.cache_races += other.cache_races;
        self.cache_contention += other.cache_contention;
        self.cache_demotions += other.cache_demotions;
        self.lub_ops += other.lub_ops;
        self.expand_ops += other.expand_ops;
        self.match_ops += other.match_ops;
        self.shards += other.shards;
        self.steals += other.steals;
        self.splits += other.splits;
        self.deep_splits += other.deep_splits;
        self.split_depth = self.split_depth.max(other.split_depth);
        self.trie_build_ns += other.trie_build_ns;
        self.trie_cache_hits += other.trie_cache_hits;
        Tally::merge(&mut self.access, &other.access);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use triejax_relation::{AccessKind, NoTally};

    #[test]
    fn totals_sum_fields() {
        let mut s = EngineStats::<Counting>::new();
        s.lub_ops = 3;
        s.expand_ops = 2;
        s.match_ops = 5;
        assert_eq!(s.total_ops(), 10);
        s.access.record(AccessKind::IndexRead, 4);
        s.access.record(AccessKind::ResultWrite, 8);
        assert_eq!(s.memory_accesses(), 2);
        assert_eq!(s.bytes_moved(), 12);
    }

    #[test]
    fn hit_rate_handles_zero_lookups() {
        let mut s = EngineStats::<Counting>::new();
        assert_eq!(s.cache_hit_rate(), 0.0);
        s.cache_hits = 3;
        s.cache_misses = 1;
        assert!((s.cache_hit_rate() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn merge_sums_everything() {
        let mut a = EngineStats::<Counting>::new();
        a.results = 2;
        a.lub_ops = 1;
        a.cache_evictions = 4;
        a.access.record(AccessKind::IndexRead, 4);
        let mut b = EngineStats::<Counting>::new();
        b.results = 3;
        b.match_ops = 7;
        b.cache_evictions = 1;
        b.cache_races = 2;
        b.cache_contention = 3;
        a.splits = 4;
        a.deep_splits = 2;
        a.split_depth = 3;
        b.splits = 1;
        b.deep_splits = 1;
        b.split_depth = 2;
        b.cache_demotions = 1;
        b.access.record(AccessKind::ResultWrite, 8);
        a.merge(&b);
        assert_eq!(a.results, 5);
        assert_eq!(a.splits, 5, "splits sum");
        assert_eq!(a.deep_splits, 3, "deep splits sum");
        assert_eq!(a.split_depth, 3, "split depth merges by maximum");
        assert_eq!(a.cache_demotions, 1, "demotions sum");
        assert_eq!(a.lub_ops, 1);
        assert_eq!(a.match_ops, 7);
        assert_eq!(a.cache_evictions, 5);
        assert_eq!(a.cache_races, 2);
        assert_eq!(a.cache_contention, 3);
        assert_eq!(a.memory_accesses(), 2);
        assert_eq!(a.bytes_moved(), 12);
    }

    #[test]
    fn to_counting_preserves_counters_and_snapshots_the_tally() {
        let mut s: EngineStats<NoTally> = EngineStats::new();
        s.results = 7;
        s.shards = 3;
        s.splits = 2;
        s.access.record(AccessKind::IndexRead, 1 << 20);
        let c = s.to_counting();
        assert_eq!(c.results, 7);
        assert_eq!(c.shards, 3);
        assert_eq!(c.splits, 2);
        assert_eq!(c.memory_accesses(), 0, "NoTally snapshots to zero");

        let mut t = EngineStats::<Counting>::new();
        t.access.record(AccessKind::ResultWrite, 8);
        assert_eq!(t.to_counting().bytes_moved(), 8);
    }

    #[test]
    fn untallied_stats_report_zero_traffic() {
        let mut s: EngineStats<NoTally> = EngineStats::new();
        s.results = 9;
        s.access.record(AccessKind::ResultWrite, 1 << 30);
        assert_eq!(s.memory_accesses(), 0);
        assert_eq!(s.bytes_moved(), 0);
        let other = s;
        s.merge(&other);
        assert_eq!(s.results, 18);
    }
}
