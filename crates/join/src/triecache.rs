//! Cross-query trie cache: amortizes `TrieSet` construction over a stream
//! of queries against the same catalog.
//!
//! A [`TrieCache`] is a byte-capacity-bounded, lock-striped map from
//! `(relation name, content fingerprint, column permutation)` to
//! [`Arc<Trie>`]. The parallel engines ([`crate::ParLftj`] /
//! [`crate::ParCtj`]) consult it before building: a warm query's build
//! phase collapses to a handful of lookups. Keying on a *content
//! fingerprint* of the base relation (not just its name) means replacing a
//! relation in the catalog naturally invalidates its cached tries — stale
//! entries can never be served, only aged out.
//!
//! Insert races follow the shared PJR cache's discipline: first writer
//! wins, the loser discards its duplicate build and adopts the published
//! [`Arc`], and the accounting stays deduplicated (one insertion, one
//! race, no double byte charge). Capacity is enforced in bytes of trie
//! footprint ([`Trie::bytes`]) with per-stripe FIFO eviction; the entry
//! just published is never evicted by its own insert.
//!
//! The process-wide default instance honours the `TRIEJAX_TRIE_CACHE_MB`
//! environment variable (read once per process): unset or `0` disables
//! caching; engines can override per instance with
//! `with_trie_cache`/`without_trie_cache`. Setting `TRIEJAX_STORE` to a
//! saved catalog path additionally *preloads* the default cache with every
//! trie in the store, so a cold process serves its first query with zero
//! trie builds.

use std::collections::hash_map::DefaultHasher;
use std::collections::{HashMap, VecDeque};
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

use triejax_exec::{suggested_stripes, Striped};
use triejax_relation::{Relation, Trie};

/// Environment variable naming the default cross-query trie cache
/// capacity in mebibytes; unset or `0` disables the cache.
pub const TRIE_CACHE_ENV: &str = "TRIEJAX_TRIE_CACHE_MB";

/// Environment variable naming a saved [`StoredCatalog`] file to preload
/// into the process-wide default trie cache (unset or empty: no preload).
/// With the store set but `TRIEJAX_TRIE_CACHE_MB` unset, the default cache
/// is created unbounded so every stored trie stays servable; an explicit
/// `TRIEJAX_TRIE_CACHE_MB=0` still disables caching entirely.
///
/// [`StoredCatalog`]: triejax_store::StoredCatalog
pub const STORE_ENV: &str = "TRIEJAX_STORE";

/// Cache key: relation name, content fingerprint of the *base* relation,
/// and the column permutation the trie is built in.
type TrieKey = (String, u64, Vec<usize>);

#[derive(Debug, Default)]
struct TrieStripe {
    map: HashMap<TrieKey, Arc<Trie>>,
    /// Insertion order within the stripe, for FIFO eviction.
    fifo: VecDeque<TrieKey>,
}

/// A byte-capacity-bounded, lock-striped cross-query cache of built tries.
///
/// See the module docs for semantics. Shareable across threads and
/// engine instances via [`Arc`].
///
/// # Example
///
/// ```
/// use std::sync::Arc;
/// use triejax_join::TrieCache;
/// use triejax_relation::{Relation, Trie};
///
/// let cache = TrieCache::with_capacity_mb(64);
/// let rel = Relation::from_pairs(vec![(1, 2), (2, 3)]);
/// let fp = TrieCache::fingerprint(&rel);
/// assert!(cache.lookup("G", fp, &[0, 1]).is_none()); // cold
/// let built = Arc::new(Trie::build(&rel));
/// cache.insert("G", fp, &[0, 1], Arc::clone(&built));
/// assert!(cache.lookup("G", fp, &[0, 1]).is_some()); // warm
/// ```
#[derive(Debug)]
pub struct TrieCache {
    stripes: Striped<TrieStripe>,
    /// Byte bound over all live entries; `None` is unbounded.
    capacity: Option<u64>,
    /// Total bytes of live entries, maintained outside the stripe locks so
    /// capacity can be checked without sweeping.
    bytes: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    insertions: AtomicU64,
    evictions: AtomicU64,
    overflows: AtomicU64,
    races: AtomicU64,
}

impl TrieCache {
    /// Creates a cache bounded to `capacity` bytes of trie footprint
    /// (`None` is unbounded). A capacity of `Some(0)` admits nothing.
    pub fn new(capacity: Option<u64>) -> Self {
        let workers = std::thread::available_parallelism().map_or(1, usize::from);
        TrieCache {
            stripes: Striped::with_stripes(suggested_stripes(workers), TrieStripe::default),
            capacity,
            bytes: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            insertions: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            overflows: AtomicU64::new(0),
            races: AtomicU64::new(0),
        }
    }

    /// Creates a cache bounded to `mb` mebibytes of trie footprint.
    pub fn with_capacity_mb(mb: u64) -> Self {
        TrieCache::new(Some(mb.saturating_mul(1024 * 1024)))
    }

    /// Creates an unbounded cache.
    pub fn unbounded() -> Self {
        TrieCache::new(None)
    }

    /// Stable content fingerprint of a base relation: the relation's
    /// memoized [`Relation::fingerprint`], maintained at construction and
    /// mutation time — reading it here is free, so keying a cache (or a
    /// persistent store) never rehashes the full row buffer per query.
    pub fn fingerprint(relation: &Relation) -> u64 {
        relation.fingerprint()
    }

    /// The process-wide default cache, configured **once per process**:
    /// sized by `TRIEJAX_TRIE_CACHE_MB` (`None` when unset, empty, or `0`)
    /// and preloaded from the [`StoredCatalog`] named by `TRIEJAX_STORE`
    /// when that is set (creating an unbounded cache if no size was given).
    /// An explicit size of `0` disables caching even when a store is set.
    ///
    /// # Panics
    ///
    /// Panics (on first use) if the size variable does not parse as a
    /// non-negative integer, or if the store path cannot be opened and
    /// validated — a broken store file should fail loudly at startup, not
    /// silently degrade every query to cold builds.
    ///
    /// [`StoredCatalog`]: triejax_store::StoredCatalog
    pub fn global() -> Option<Arc<TrieCache>> {
        static GLOBAL: OnceLock<Option<Arc<TrieCache>>> = OnceLock::new();
        GLOBAL
            .get_or_init(|| {
                let store = env_store();
                let cache = match (env_mb(), &store) {
                    (None | Some(0), None) | (Some(0), Some(_)) => return None,
                    (None, Some(_)) => TrieCache::unbounded(),
                    (Some(mb), _) => TrieCache::with_capacity_mb(mb),
                };
                if let Some(path) = store {
                    let stored = triejax_store::StoredCatalog::open(&path).unwrap_or_else(|e| {
                        panic!("{STORE_ENV}={path:?} could not be opened: {e}")
                    });
                    cache.preload(&stored);
                }
                Some(Arc::new(cache))
            })
            .clone()
    }

    /// Inserts every trie of a stored catalog, making them servable under
    /// their saved `(name, fingerprint, perm)` keys. Tries whose base data
    /// has since changed are simply never looked up (stale-by-fingerprint).
    pub fn preload(&self, stored: &triejax_store::StoredCatalog) {
        for t in stored.tries() {
            self.insert(&t.name, t.fingerprint, &t.perm, Arc::clone(&t.trie));
        }
    }

    /// Snapshots every live entry as `(name, fingerprint, perm, trie)`
    /// (sweeps the stripes; order unspecified) — the producer side of a
    /// persistent store: run the queries to warm the cache, then snapshot
    /// and save.
    pub fn entries(&self) -> Vec<(String, u64, Vec<usize>, Arc<Trie>)> {
        (0..self.stripes.stripes())
            .flat_map(|i| {
                let (stripe, _) = self.stripes.lock(i as u64);
                stripe
                    .map
                    .iter()
                    .map(|((n, fp, perm), t)| (n.clone(), *fp, perm.clone(), Arc::clone(t)))
                    .collect::<Vec<_>>()
            })
            .collect()
    }

    /// Looks up the trie for `(name, fingerprint, perm)`, counting a hit
    /// or a miss.
    pub fn lookup(&self, name: &str, fingerprint: u64, perm: &[usize]) -> Option<Arc<Trie>> {
        let key = (name.to_owned(), fingerprint, perm.to_vec());
        let (stripe, _) = self.stripes.lock(stripe_hash(&key));
        let found = stripe.map.get(&key).cloned();
        drop(stripe);
        match &found {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        found
    }

    /// Publishes a built trie under `(name, fingerprint, perm)` and returns
    /// the canonical [`Arc`] for that key: the given one if this call
    /// published it, the sibling's if another thread won the insert race
    /// (first writer wins, the duplicate build is discarded and counted as
    /// a race, never double-charged against the byte bound).
    ///
    /// An entry larger than the whole capacity is not stored (counted as
    /// an overflow); the caller still uses the returned trie for its own
    /// query.
    pub fn insert(
        &self,
        name: &str,
        fingerprint: u64,
        perm: &[usize],
        trie: Arc<Trie>,
    ) -> Arc<Trie> {
        let entry_bytes = trie.bytes();
        if self.capacity.is_some_and(|cap| entry_bytes > cap) {
            self.overflows.fetch_add(1, Ordering::Relaxed);
            return trie;
        }
        #[cfg(feature = "faults")]
        triejax_exec::faults::fire(triejax_exec::faults::FaultEvent::CacheInsert);
        let key = (name.to_owned(), fingerprint, perm.to_vec());
        let hash = stripe_hash(&key);
        let lane = self.stripes.lane(hash);
        let (mut stripe, _) = self.stripes.lock(hash);
        if let Some(existing) = stripe.map.get(&key) {
            let existing = Arc::clone(existing);
            drop(stripe);
            self.races.fetch_add(1, Ordering::Relaxed);
            return existing;
        }
        stripe.fifo.push_back(key.clone());
        stripe.map.insert(key.clone(), Arc::clone(&trie));
        drop(stripe);
        self.bytes.fetch_add(entry_bytes, Ordering::AcqRel);
        self.insertions.fetch_add(1, Ordering::Relaxed);
        self.enforce_capacity(lane, &key);
        trie
    }

    /// Evicts oldest-first, stripe by stripe starting at `start_lane`,
    /// until total bytes fit the capacity again. The freshly inserted
    /// `protect` key is never evicted by its own insert (it fits the
    /// capacity by itself — larger entries were rejected up front).
    fn enforce_capacity(&self, start_lane: usize, protect: &TrieKey) {
        let Some(cap) = self.capacity else { return };
        let n = self.stripes.stripes();
        loop {
            if self.bytes.load(Ordering::Acquire) <= cap {
                return;
            }
            let mut evicted_any = false;
            for off in 0..n {
                let lane = (start_lane + off) % n;
                let (mut stripe, _) = self.stripes.lock(lane as u64);
                while self.bytes.load(Ordering::Acquire) > cap {
                    let Some(front) = stripe.fifo.front() else {
                        break;
                    };
                    if front == protect {
                        if stripe.fifo.len() <= 1 {
                            break;
                        }
                        stripe.fifo.rotate_left(1);
                        continue;
                    }
                    let victim = stripe.fifo.pop_front().expect("front exists");
                    if let Some(t) = stripe.map.remove(&victim) {
                        self.bytes.fetch_sub(t.bytes(), Ordering::AcqRel);
                        self.evictions.fetch_add(1, Ordering::Relaxed);
                        evicted_any = true;
                    }
                }
            }
            if !evicted_any {
                // Nothing left to evict anywhere (only protected or empty
                // stripes): the bound cannot be tightened further.
                return;
            }
        }
    }

    /// Total bytes of live entries.
    pub fn bytes(&self) -> u64 {
        self.bytes.load(Ordering::Acquire)
    }

    /// The byte capacity (`None` is unbounded).
    pub fn capacity_bytes(&self) -> Option<u64> {
        self.capacity
    }

    /// Lookup hits so far.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookup misses so far.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Unique entries published (races and overflows excluded).
    pub fn insertions(&self) -> u64 {
        self.insertions.load(Ordering::Relaxed)
    }

    /// Entries evicted to fit the byte bound.
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    /// Entries rejected because they alone exceed the capacity.
    pub fn overflows(&self) -> u64 {
        self.overflows.load(Ordering::Relaxed)
    }

    /// Insert races lost to a sibling (first writer wins).
    pub fn races(&self) -> u64 {
        self.races.load(Ordering::Relaxed)
    }

    /// Number of live entries (sweeps every stripe).
    pub fn len(&self) -> usize {
        (0..self.stripes.stripes())
            .map(|i| self.stripes.lock(i as u64).0.map.len())
            .sum()
    }

    /// Returns `true` when no entries are cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Stripe-selection hash: the std `DefaultHasher` (SipHash with fixed
/// default keys) — deterministic across threads and processes, so every
/// worker maps a key to the same stripe.
fn stripe_hash(key: &TrieKey) -> u64 {
    let mut h = DefaultHasher::new();
    key.hash(&mut h);
    h.finish()
}

/// Parses `TRIEJAX_TRIE_CACHE_MB`: `None` when unset or empty, panics on
/// junk so a typo'd knob fails loudly instead of silently disabling the
/// cache.
fn env_mb() -> Option<u64> {
    let v = std::env::var(TRIE_CACHE_ENV).ok()?;
    if v.trim().is_empty() {
        return None;
    }
    Some(v.trim().parse::<u64>().unwrap_or_else(|_| {
        panic!("{TRIE_CACHE_ENV} must be a non-negative integer (mebibytes), got {v:?}")
    }))
}

/// Reads `TRIEJAX_STORE`: `None` when unset or empty, otherwise the path
/// verbatim (existence and validity are checked at open time, which panics
/// with the typed store error on failure).
fn env_store() -> Option<String> {
    let v = std::env::var(STORE_ENV).ok()?;
    if v.trim().is_empty() {
        return None;
    }
    Some(v)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rel(seed: u32, rows: u32) -> Relation {
        Relation::from_pairs((0..rows).map(|i| (seed.wrapping_mul(31).wrapping_add(i), i)))
    }

    fn arc_trie(r: &Relation) -> Arc<Trie> {
        Arc::new(Trie::build(r))
    }

    #[test]
    fn lookup_after_insert_hits_and_counts() {
        let cache = TrieCache::unbounded();
        let r = rel(1, 8);
        let fp = TrieCache::fingerprint(&r);
        assert!(cache.lookup("G", fp, &[0, 1]).is_none());
        let t = cache.insert("G", fp, &[0, 1], arc_trie(&r));
        let got = cache.lookup("G", fp, &[0, 1]).expect("warm lookup hits");
        assert!(Arc::ptr_eq(&t, &got));
        assert_eq!(
            (cache.hits(), cache.misses(), cache.insertions()),
            (1, 1, 1)
        );
        assert_eq!(cache.bytes(), t.bytes());
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn fingerprint_tracks_content_not_name() {
        let a = rel(1, 8);
        let b = rel(2, 8);
        assert_ne!(TrieCache::fingerprint(&a), TrieCache::fingerprint(&b));
        assert_eq!(
            TrieCache::fingerprint(&a),
            TrieCache::fingerprint(&a.clone())
        );
        // Same name, different content: the stale trie is unreachable.
        let cache = TrieCache::unbounded();
        cache.insert("G", TrieCache::fingerprint(&a), &[0, 1], arc_trie(&a));
        assert!(cache
            .lookup("G", TrieCache::fingerprint(&b), &[0, 1])
            .is_none());
    }

    #[test]
    fn distinct_perms_are_distinct_entries() {
        let cache = TrieCache::unbounded();
        let r = rel(3, 8);
        let fp = TrieCache::fingerprint(&r);
        cache.insert("G", fp, &[0, 1], arc_trie(&r));
        assert!(cache.lookup("G", fp, &[1, 0]).is_none());
    }

    #[test]
    fn zero_capacity_admits_nothing() {
        let cache = TrieCache::new(Some(0));
        let r = rel(4, 8);
        let fp = TrieCache::fingerprint(&r);
        let t = cache.insert("G", fp, &[0, 1], arc_trie(&r));
        assert_eq!(t.tuple_count(), r.len(), "caller keeps its build");
        assert!(cache.lookup("G", fp, &[0, 1]).is_none());
        assert_eq!(cache.bytes(), 0);
        assert_eq!(cache.overflows(), 1);
        assert!(cache.is_empty());
    }

    #[test]
    fn byte_bound_is_exact_after_every_insert() {
        let r = rel(0, 16);
        let one = arc_trie(&r).bytes();
        // Room for exactly two entries of this shape.
        let cache = TrieCache::new(Some(2 * one));
        for i in 0..10u32 {
            let ri = rel(i, 16);
            cache.insert("G", TrieCache::fingerprint(&ri), &[0, 1], arc_trie(&ri));
            assert!(
                cache.bytes() <= 2 * one,
                "insert {i}: {} bytes exceeds bound {}",
                cache.bytes(),
                2 * one
            );
        }
        assert_eq!(cache.evictions(), 8, "each overflowing insert evicts");
        assert_eq!(cache.len(), 2);
        // The newest entry survived its own insert's eviction pass.
        let last = rel(9, 16);
        assert!(cache
            .lookup("G", TrieCache::fingerprint(&last), &[0, 1])
            .is_some());
    }

    #[test]
    fn insert_race_keeps_first_writer_and_accounting_balances() {
        let cache = TrieCache::unbounded();
        let r = rel(5, 32);
        let fp = TrieCache::fingerprint(&r);
        let winners: Vec<Arc<Trie>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..4)
                .map(|_| scope.spawn(|| cache.insert("G", fp, &[0, 1], arc_trie(&r))))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        // Everyone adopted the same published Arc.
        assert!(winners.iter().all(|w| Arc::ptr_eq(w, &winners[0])));
        assert_eq!(cache.insertions(), 1);
        assert_eq!(cache.races(), 3);
        assert_eq!(cache.bytes(), winners[0].bytes(), "no double charge");
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn preload_and_entries_round_trip_through_a_store() {
        let r = rel(6, 8);
        let fp = TrieCache::fingerprint(&r);
        let producer = TrieCache::unbounded();
        producer.insert("G", fp, &[0, 1], arc_trie(&r));
        producer.insert("G", fp, &[1, 0], arc_trie(&r.permute(&[1, 0])));
        let mut stored = triejax_store::StoredCatalog::new();
        for (name, fpr, perm, trie) in producer.entries() {
            stored.insert_trie(name, fpr, perm, trie);
        }
        let stored =
            triejax_store::StoredCatalog::from_bytes(&stored.to_bytes()).expect("round trip");
        let consumer = TrieCache::unbounded();
        consumer.preload(&stored);
        assert_eq!(consumer.len(), 2);
        let got = consumer.lookup("G", fp, &[0, 1]).expect("preload serves");
        assert_eq!(*got, Trie::build(&r));
        assert!(consumer.lookup("G", fp.wrapping_add(1), &[0, 1]).is_none());
    }

    #[test]
    fn env_parse_rejects_junk() {
        // Direct parse-path check without touching process env.
        assert_eq!("64".trim().parse::<u64>().ok(), Some(64));
        let err = std::panic::catch_unwind(|| {
            "junk".parse::<u64>().unwrap_or_else(|_| {
                panic!("{TRIE_CACHE_ENV} must be a non-negative integer (mebibytes), got \"junk\"")
            })
        });
        assert!(err.is_err());
    }
}
