//! Cursor factories for the generic join drivers: the frozen
//! [`TrieSet`] path and the delta-merged [`MergeSet`] path behind one
//! [`CursorSet`] trait.
//!
//! Every driver in this crate walks its atoms through the
//! [`JoinCursor`] trait; a `CursorSet` is what hands those cursors out.
//! [`TrieSet`] yields plain [`TrieCursor`]s (so queries over frozen
//! relations monomorphize to exactly the pre-delta code), while
//! [`MergeSet`] yields [`MergeCursor`]s presenting each mutated relation
//! as `base ∪ delta − tombstones` without rebuilding its base trie.

use std::collections::HashMap;
use std::sync::Arc;

use triejax_exec::WorkerPool;
use triejax_query::CompiledQuery;
use triejax_relation::{JoinCursor, MergeCursor, Relation, RelationDelta, Trie, TrieCursor, Value};

use crate::catalog::{build_one, resolve};
use crate::triecache::TrieCache;
use crate::{Catalog, JoinError, TrieSet};

/// The pending mutations of a catalog, keyed by relation name. Relations
/// without an entry (or with an [empty](RelationDelta::is_empty) one) are
/// served straight from their frozen base tries.
///
/// Every engine's `run_tallied_with` accepts one of these next to the
/// frozen [`Catalog`]; [`crate::Session`] maintains one per epoch and
/// threads it through automatically.
pub type DeltaMap = HashMap<String, RelationDelta>;

/// A factory of positioned join cursors, one per atom plan — the
/// abstraction that lets every engine run unmodified over frozen *or*
/// mutated relations.
///
/// The lifetime ties the handed-out cursors to the set: shard workers
/// share one `&'a` set and each builds its own cursors from it.
pub(crate) trait CursorSet<'a>: Sync {
    /// The cursor implementation this set hands out.
    type Cur: JoinCursor + Send + 'a;

    /// A fresh above-the-root cursor over atom plan `atom`'s view.
    fn cursor(&'a self, atom: usize) -> Self::Cur;

    /// The root-level key universe of atom `atom`'s view, for shard
    /// planning. May over-approximate (a merged view's union of side
    /// root values can contain keys with no live tuples below them);
    /// shard boundaries drawn from phantoms still partition correctly.
    fn root_values(&'a self, atom: usize) -> &'a [Value];
}

impl<'a> CursorSet<'a> for TrieSet {
    type Cur = TrieCursor<'a>;

    fn cursor(&'a self, atom: usize) -> TrieCursor<'a> {
        TrieCursor::new(self.for_atom(atom))
    }

    fn root_values(&'a self, atom: usize) -> &'a [Value] {
        self.for_atom(atom).level(0).values()
    }
}

/// One deduplicated `(relation, perm)` view of a mutated relation: the
/// optional frozen base trie, the optional trie of pending inserts, the
/// permuted tombstone rows, and the unioned root keys for shard planning.
#[derive(Debug)]
struct MergeView {
    base: Option<Arc<Trie>>,
    delta: Option<Arc<Trie>>,
    tombstones: Relation,
    root_values: Vec<Value>,
}

/// The tries and tombstones one compiled query needs to run over mutated
/// relations, deduplicated by `(relation name, column permutation)` like
/// [`TrieSet`].
///
/// Base tries are cached/served under the base relation's fingerprint
/// exactly as in [`TrieSet::build_on`]; delta tries are keyed by the
/// fingerprint of the insert set, so they are shared across queries for
/// as long as the delta is unchanged and become unreachable the moment a
/// new batch is applied. Tombstones are permuted per build (they are
/// plain sorted rows, not tries — the [`MergeCursor`] range-filters them
/// level by level).
#[derive(Debug)]
pub(crate) struct MergeSet {
    views: Vec<MergeView>,
    atom_view: Vec<usize>,
}

impl MergeSet {
    /// Builds (or reuses) every view the plan needs, sequentially on the
    /// caller's thread and without cache consultation.
    pub(crate) fn build(
        plan: &CompiledQuery,
        catalog: &Catalog,
        deltas: &DeltaMap,
    ) -> Result<MergeSet, JoinError> {
        Self::assemble(plan, catalog, deltas, None, None).map(|(s, _, _)| s)
    }

    /// Builds every view with cold trie builds parallelized on `pool`,
    /// consulting (and filling) `cache` when one is given. Returns the
    /// set, the cache hits, and the nanoseconds spent on cold builds
    /// (mirroring [`TrieSet::build_on`]).
    pub(crate) fn build_on(
        plan: &CompiledQuery,
        catalog: &Catalog,
        deltas: &DeltaMap,
        pool: &WorkerPool,
        cache: Option<&TrieCache>,
    ) -> Result<(MergeSet, u64, u64), JoinError> {
        Self::assemble(plan, catalog, deltas, Some(pool), cache)
    }

    fn assemble(
        plan: &CompiledQuery,
        catalog: &Catalog,
        deltas: &DeltaMap,
        pool: Option<&WorkerPool>,
        cache: Option<&TrieCache>,
    ) -> Result<(MergeSet, u64, u64), JoinError> {
        let mut keys: HashMap<(String, Vec<usize>), usize> = HashMap::new();
        let mut views: Vec<MergeView> = Vec::new();
        let mut atom_view = Vec::with_capacity(plan.atom_plans().len());
        let mut cache_hits = 0u64;
        let mut build_ns = 0u64;
        for ap in plan.atom_plans() {
            let rel = resolve(catalog, ap.relation(), ap.arity())?;
            let delta = deltas.get(ap.relation()).filter(|d| !d.is_empty());
            if let Some(d) = delta {
                if d.arity() != ap.arity() {
                    return Err(JoinError::ArityMismatch {
                        name: ap.relation().to_owned(),
                        atom_arity: ap.arity(),
                        relation_arity: d.arity(),
                    });
                }
            }
            let key = (ap.relation().to_owned(), ap.perm().to_vec());
            let idx = match keys.get(&key) {
                Some(&i) => i,
                None => {
                    let name = ap.relation();
                    let base = match rel.is_empty() {
                        true => None,
                        false => Some(serve(
                            name,
                            rel,
                            ap.perm(),
                            pool,
                            cache,
                            &mut cache_hits,
                            &mut build_ns,
                        )),
                    };
                    let dtrie = delta
                        .map(|d| d.inserts())
                        .filter(|i| !i.is_empty())
                        .map(|i| {
                            serve(
                                name,
                                i,
                                ap.perm(),
                                pool,
                                cache,
                                &mut cache_hits,
                                &mut build_ns,
                            )
                        });
                    let tombstones = match delta {
                        Some(d) if !d.tombstones().is_empty() => d.tombstones().permute(ap.perm()),
                        _ => Relation::new(ap.arity()).expect("atom arity is nonzero"),
                    };
                    let root_values = union_sorted(
                        base.as_deref().map_or(&[], |t| t.level(0).values()),
                        dtrie.as_deref().map_or(&[], |t| t.level(0).values()),
                    );
                    views.push(MergeView {
                        base,
                        delta: dtrie,
                        tombstones,
                        root_values,
                    });
                    keys.insert(key, views.len() - 1);
                    views.len() - 1
                }
            };
            atom_view.push(idx);
        }
        Ok((MergeSet { views, atom_view }, cache_hits, build_ns))
    }
}

/// Serves one trie from the cache or builds it cold, publishing the build
/// under `(name, fingerprint(rel), perm)` when a cache is present.
fn serve(
    name: &str,
    rel: &Relation,
    perm: &[usize],
    pool: Option<&WorkerPool>,
    cache: Option<&TrieCache>,
    cache_hits: &mut u64,
    build_ns: &mut u64,
) -> Arc<Trie> {
    let fp = rel.fingerprint();
    if let Some(c) = cache {
        if let Some(t) = c.lookup(name, fp, perm) {
            *cache_hits += 1;
            return t;
        }
    }
    let t0 = std::time::Instant::now();
    let built = Arc::new(build_one(rel, perm, pool));
    *build_ns += t0.elapsed().as_nanos() as u64;
    match cache {
        Some(c) => c.insert(name, fp, perm, built),
        None => built,
    }
}

/// Sorted-set union of two root-level key slices.
fn union_sorted(a: &[Value], b: &[Value]) -> Vec<Value> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => {
                out.push(a[i]);
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                out.push(b[j]);
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    out
}

impl<'a> CursorSet<'a> for MergeSet {
    type Cur = MergeCursor<'a>;

    fn cursor(&'a self, atom: usize) -> MergeCursor<'a> {
        let v = &self.views[self.atom_view[atom]];
        MergeCursor::new(v.base.as_deref(), v.delta.as_deref(), &v.tombstones)
    }

    fn root_values(&'a self, atom: usize) -> &'a [Value] {
        &self.views[self.atom_view[atom]].root_values
    }
}

/// `true` when any atom of the plan reads a relation with a non-empty
/// pending delta — the dispatch test between the frozen [`TrieSet`] fast
/// path and the [`MergeSet`] path.
pub(crate) fn plan_touches_delta(plan: &CompiledQuery, deltas: &DeltaMap) -> bool {
    plan.atom_plans()
        .iter()
        .any(|ap| deltas.get(ap.relation()).is_some_and(|d| !d.is_empty()))
}

/// A frozen catalog with every pending delta folded in: each mutated
/// relation is replaced by its merged contents (`base ∪ inserts −
/// tombstones`). The materializing fallback for engines that read trie
/// levels directly instead of walking [`JoinCursor`]s
/// ([`crate::GenericJoin`], the pairwise engines). Deltas naming
/// relations the catalog does not hold are ignored — plan resolution
/// reports the missing relation exactly like the frozen path — and so
/// are deltas whose arity mismatches their base relation (resolution
/// then reports the arity error, never a merge panic).
pub(crate) fn merged_catalog(catalog: &Catalog, deltas: &DeltaMap) -> Catalog {
    let mut merged = Catalog::new();
    for (name, rel) in catalog.iter() {
        match deltas.get(name).filter(|d| !d.is_empty()) {
            Some(d) if d.arity() == rel.arity() => merged.insert(name, d.merge_into(rel)),
            _ => merged.insert(name, rel.clone()),
        }
    }
    merged
}

#[cfg(test)]
mod tests {
    use super::*;
    use triejax_query::patterns;
    use triejax_relation::Counting;

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.insert("G", Relation::from_pairs(vec![(1, 2), (2, 3), (3, 1)]));
        c
    }

    fn delta_map(inserts: Vec<(u32, u32)>, deletes: Vec<(u32, u32)>) -> DeltaMap {
        let base = Relation::from_pairs(vec![(1, 2), (2, 3), (3, 1)]);
        let d = RelationDelta::empty(2).unwrap().apply_batch(
            &base,
            &Relation::from_pairs(inserts),
            &Relation::from_pairs(deletes),
        );
        let mut m = DeltaMap::new();
        m.insert("G".to_owned(), d);
        m
    }

    #[test]
    fn views_are_deduplicated_like_trie_sets() {
        let plan = CompiledQuery::compile(&patterns::cycle3()).unwrap();
        let set = MergeSet::build(&plan, &catalog(), &delta_map(vec![(5, 6)], vec![])).unwrap();
        assert_eq!(set.views.len(), 2, "identity and swapped order");
        assert_eq!(set.atom_view, vec![0, 0, 1]);
    }

    #[test]
    fn merged_root_values_union_both_sides() {
        let plan = CompiledQuery::compile(&patterns::cycle3()).unwrap();
        let deltas = delta_map(vec![(0, 9), (5, 6)], vec![(2, 3)]);
        let set = MergeSet::build(&plan, &catalog(), &deltas).unwrap();
        // Tombstoned roots may linger (phantoms are allowed); inserted
        // roots must appear.
        assert_eq!(set.root_values(0), &[0, 1, 2, 3, 5]);
    }

    #[test]
    fn empty_delta_map_serves_plain_base_views() {
        let plan = CompiledQuery::compile(&patterns::path3()).unwrap();
        let deltas = DeltaMap::new();
        assert!(!plan_touches_delta(&plan, &deltas));
        let set = MergeSet::build(&plan, &catalog(), &deltas).unwrap();
        let mut cur = set.cursor(0);
        let mut c = Counting::default();
        assert!(cur.open(&mut c));
        assert_eq!(cur.key(), 1);
    }

    #[test]
    fn delta_only_views_have_no_base_trie() {
        let plan = CompiledQuery::compile(&patterns::path3()).unwrap();
        let mut c = Catalog::new();
        c.insert("G", Relation::new(2).unwrap());
        let empty = Relation::new(2).unwrap();
        let d = RelationDelta::empty(2).unwrap().apply_batch(
            &empty,
            &Relation::from_pairs(vec![(4, 7)]),
            &empty,
        );
        let mut deltas = DeltaMap::new();
        deltas.insert("G".to_owned(), d);
        assert!(plan_touches_delta(&plan, &deltas));
        let set = MergeSet::build(&plan, &c, &deltas).unwrap();
        assert!(set.views[0].base.is_none());
        assert_eq!(set.root_values(0), &[4]);
    }

    #[test]
    fn build_on_serves_base_and_delta_tries_from_the_cache() {
        let pool = WorkerPool::with_workers(2);
        let cache = TrieCache::unbounded();
        let plan = CompiledQuery::compile(&patterns::cycle3()).unwrap();
        let deltas = delta_map(vec![(5, 6)], vec![]);
        let (_, hits, build_ns) =
            MergeSet::build_on(&plan, &catalog(), &deltas, &pool, Some(&cache)).unwrap();
        assert_eq!(hits, 0);
        assert!(build_ns > 0);
        // 2 base orders + 2 delta orders published.
        assert_eq!(cache.insertions(), 4);
        let (_, hits, build_ns) =
            MergeSet::build_on(&plan, &catalog(), &deltas, &pool, Some(&cache)).unwrap();
        assert_eq!(hits, 4, "warm build is all lookups");
        assert_eq!(build_ns, 0);
    }

    #[test]
    fn missing_relation_still_errors() {
        let plan = CompiledQuery::compile(&patterns::path3()).unwrap();
        let err = MergeSet::build(&plan, &Catalog::new(), &DeltaMap::new()).unwrap_err();
        assert!(matches!(err, JoinError::MissingRelation { .. }));
    }
}
