//! Property tests for the join engines: agreement against a brute-force
//! nested-loop reference on small random instances, including multi-table
//! catalogs (not just edge self-joins), and stats sanity.

use std::collections::HashMap;

use proptest::prelude::*;
use triejax_join::{
    Catalog, CollectSink, Counting, Ctj, CtjConfig, GenericJoin, JoinEngine, Lftj, NoTally,
    PairwiseHash, ParLftj,
};
use triejax_query::{patterns::Pattern, CompiledQuery, Query};
use triejax_relation::{Relation, Value};

/// Brute-force reference: enumerate every assignment of values to
/// variables and test all atoms.
fn nested_loop_reference(q: &Query, catalog: &Catalog) -> Vec<Vec<Value>> {
    // Collect the active domain.
    let mut domain: Vec<Value> = Vec::new();
    for atom in q.atoms() {
        let rel = catalog.get(atom.relation()).expect("present");
        for t in rel.iter() {
            domain.extend_from_slice(t);
        }
    }
    domain.sort_unstable();
    domain.dedup();

    let tuple_sets: HashMap<&str, Vec<&[Value]>> = q
        .atoms()
        .iter()
        .map(|a| {
            (
                a.relation(),
                catalog.get(a.relation()).expect("present").iter().collect(),
            )
        })
        .collect();

    let n = q.num_vars();
    let mut out = Vec::new();
    let mut binding = vec![0u32; n];
    enumerate(q, &tuple_sets, &domain, 0, &mut binding, &mut out);
    out.sort_unstable();
    out
}

fn enumerate(
    q: &Query,
    tuples: &HashMap<&str, Vec<&[Value]>>,
    domain: &[Value],
    var: usize,
    binding: &mut Vec<Value>,
    out: &mut Vec<Vec<Value>>,
) {
    if var == q.num_vars() {
        let ok = q.atoms().iter().all(|a| {
            let want: Vec<Value> = a.vars().iter().map(|&v| binding[v]).collect();
            tuples[a.relation()].contains(&want.as_slice())
        });
        if ok {
            // Head order == variable id order by construction.
            let head: Vec<Value> = q.head().iter().map(|&v| binding[v]).collect();
            out.push(head);
        }
        return;
    }
    for &v in domain {
        binding[var] = v;
        enumerate(q, tuples, domain, var + 1, binding, out);
    }
}

fn arb_edges(max_node: u32, max_len: usize) -> impl Strategy<Value = Vec<(u32, u32)>> {
    prop::collection::btree_set((0..max_node, 0..max_node), 1..max_len)
        .prop_map(|s| s.into_iter().collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    /// Two-relation query: every engine equals the nested-loop reference.
    #[test]
    fn engines_match_brute_force_on_two_relations(
        r_edges in arb_edges(6, 18),
        s_edges in arb_edges(6, 18),
    ) {
        let q = Query::builder("q")
            .head(["x", "y", "z"])
            .atom("R", ["x", "y"])
            .atom("S", ["y", "z"])
            .build()
            .unwrap();
        let mut catalog = Catalog::new();
        catalog.insert("R", Relation::from_pairs(r_edges));
        catalog.insert("S", Relation::from_pairs(s_edges));
        let plan = CompiledQuery::compile(&q).unwrap();
        let expect = nested_loop_reference(&q, &catalog);

        let engines: Vec<Box<dyn JoinEngine>> = vec![
            Box::new(Lftj::new()),
            Box::new(Ctj::new()),
            Box::new(GenericJoin::new()),
            Box::new(PairwiseHash::new()),
        ];
        for mut e in engines {
            let mut sink = CollectSink::new();
            e.execute(&plan, &catalog, &mut sink).unwrap();
            prop_assert_eq!(sink.into_sorted(), expect.clone(), "{}", e.name());
        }
    }

    /// Three-relation triangle across *distinct* tables.
    #[test]
    fn engines_match_brute_force_on_triangle(
        r_edges in arb_edges(5, 14),
        s_edges in arb_edges(5, 14),
        t_edges in arb_edges(5, 14),
    ) {
        let q = Query::builder("tri")
            .head(["x", "y", "z"])
            .atom("R", ["x", "y"])
            .atom("S", ["y", "z"])
            .atom("T", ["z", "x"])
            .build()
            .unwrap();
        let mut catalog = Catalog::new();
        catalog.insert("R", Relation::from_pairs(r_edges));
        catalog.insert("S", Relation::from_pairs(s_edges));
        catalog.insert("T", Relation::from_pairs(t_edges));
        let plan = CompiledQuery::compile(&q).unwrap();
        let expect = nested_loop_reference(&q, &catalog);

        let engines: Vec<Box<dyn JoinEngine>> = vec![
            Box::new(Lftj::new()),
            Box::new(Ctj::new()),
            Box::new(GenericJoin::new()),
            Box::new(PairwiseHash::new()),
        ];
        for mut e in engines {
            let mut sink = CollectSink::new();
            e.execute(&plan, &catalog, &mut sink).unwrap();
            prop_assert_eq!(sink.into_sorted(), expect.clone(), "{}", e.name());
        }
    }

    /// CTJ with adversarially tiny cache limits still agrees with LFTJ.
    #[test]
    fn ctj_cache_limits_never_change_results(
        edges in arb_edges(10, 60),
        entry_cap in 0usize..4,
        max_entries in 0usize..4,
    ) {
        let mut catalog = Catalog::new();
        catalog.insert("G", Relation::from_pairs(edges));
        let q = triejax_query::patterns::path4();
        let plan = CompiledQuery::compile(&q).unwrap();
        let mut reference = CollectSink::new();
        Lftj::new().execute(&plan, &catalog, &mut reference).unwrap();
        let cfg = CtjConfig {
            entry_capacity: Some(entry_cap),
            max_entries: Some(max_entries),
            adaptive: false,
        };
        let mut sink = CollectSink::new();
        Ctj::with_config(cfg).execute(&plan, &catalog, &mut sink).unwrap();
        prop_assert_eq!(sink.into_sorted(), reference.into_sorted());
    }

    /// The `Counting` and `NoTally` kernels are the same code path: on
    /// arbitrary graphs and every paper pattern they produce identical
    /// result sets (tuple-for-tuple, order included) and identical
    /// discrete operation counts — only the access accounting differs.
    #[test]
    fn tally_modes_produce_identical_results(
        edges in arb_edges(14, 90),
        pattern_idx in 0usize..Pattern::PAPER.len(),
    ) {
        let mut catalog = Catalog::new();
        catalog.insert("G", Relation::from_pairs(edges));
        let pattern = Pattern::PAPER[pattern_idx];
        let plan = CompiledQuery::compile(&pattern.query()).unwrap();

        let mut counted = CollectSink::new();
        let cs = Lftj::new()
            .run_tallied::<Counting>(&plan, &catalog, &mut counted)
            .unwrap();
        let mut fast = CollectSink::new();
        let fs = Lftj::new()
            .run_tallied::<NoTally>(&plan, &catalog, &mut fast)
            .unwrap();
        prop_assert_eq!(counted.tuples(), fast.tuples(), "lftj {}", pattern);
        prop_assert_eq!(cs.results, fs.results);
        prop_assert_eq!(cs.lub_ops, fs.lub_ops);
        prop_assert_eq!(cs.expand_ops, fs.expand_ops);
        prop_assert_eq!(cs.match_ops, fs.match_ops);
        prop_assert_eq!(fs.memory_accesses(), 0);

        let mut counted = CollectSink::new();
        let cs = Ctj::new()
            .run_tallied::<Counting>(&plan, &catalog, &mut counted)
            .unwrap();
        let mut fast = CollectSink::new();
        let fs = Ctj::new()
            .run_tallied::<NoTally>(&plan, &catalog, &mut fast)
            .unwrap();
        prop_assert_eq!(counted.tuples(), fast.tuples(), "ctj {}", pattern);
        prop_assert_eq!(cs.cache_hits, fs.cache_hits);
        prop_assert_eq!(cs.intermediates, fs.intermediates);
        prop_assert_eq!(fs.memory_accesses(), 0);

        let mut counted = CollectSink::new();
        let cs = GenericJoin::new()
            .run_tallied::<Counting>(&plan, &catalog, &mut counted)
            .unwrap();
        let mut fast = CollectSink::new();
        let fs = GenericJoin::new()
            .run_tallied::<NoTally>(&plan, &catalog, &mut fast)
            .unwrap();
        prop_assert_eq!(counted.tuples(), fast.tuples(), "generic {}", pattern);
        prop_assert_eq!(cs.intermediates, fs.intermediates);
        prop_assert_eq!(fs.memory_accesses(), 0);
    }

    /// The root-partitioned parallel engine agrees with sequential LFTJ
    /// tuple-for-tuple (order included) for shard counts 1, 2 and 7 on
    /// random graphs, in both tally modes.
    #[test]
    fn parlftj_agrees_with_lftj_across_shard_counts(
        edges in arb_edges(18, 140),
        pattern_idx in 0usize..Pattern::PAPER.len(),
    ) {
        let mut catalog = Catalog::new();
        catalog.insert("G", Relation::from_pairs(edges));
        let pattern = Pattern::PAPER[pattern_idx];
        let plan = CompiledQuery::compile(&pattern.query()).unwrap();

        let mut reference = CollectSink::new();
        Lftj::new().execute(&plan, &catalog, &mut reference).unwrap();

        for shards in [1usize, 2, 7] {
            let mut par = CollectSink::new();
            let stats = ParLftj::with_shards(shards)
                .execute(&plan, &catalog, &mut par)
                .unwrap();
            prop_assert_eq!(
                par.tuples(),
                reference.tuples(),
                "{} with {} shards",
                pattern,
                shards
            );
            prop_assert_eq!(stats.results as usize, reference.tuples().len());

            let mut fast = CollectSink::new();
            let fstats = ParLftj::with_shards(shards)
                .run_tallied::<NoTally>(&plan, &catalog, &mut fast)
                .unwrap();
            prop_assert_eq!(fast.tuples(), reference.tuples(),
                "untallied {} with {} shards", pattern, shards);
            prop_assert_eq!(fstats.memory_accesses(), 0);
        }
    }

    /// Engine statistics are internally consistent on arbitrary inputs.
    #[test]
    fn stats_are_consistent(edges in arb_edges(12, 80)) {
        let mut catalog = Catalog::new();
        catalog.insert("G", Relation::from_pairs(edges));
        let plan =
            CompiledQuery::compile(&triejax_query::patterns::cycle4()).unwrap();
        let mut sink = CollectSink::new();
        let stats = Ctj::new().execute(&plan, &catalog, &mut sink).unwrap();
        prop_assert_eq!(stats.results as usize, sink.len());
        prop_assert_eq!(stats.access.result_bytes, stats.results * 16);
        prop_assert!(stats.memory_accesses() >= stats.access.result_writes);
        prop_assert!(stats.cache_hit_rate() >= 0.0 && stats.cache_hit_rate() <= 1.0);
    }
}
