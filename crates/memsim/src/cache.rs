use crate::Addr;

/// Geometry of one set-associative cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheGeometry {
    /// Total capacity in bytes.
    pub capacity: u64,
    /// Associativity (ways per set).
    pub ways: u32,
    /// Line size in bytes (power of two).
    pub line_bytes: u64,
    /// Access latency in core cycles (charged on hit; added to the miss
    /// path as lookup time).
    pub latency: u64,
}

impl CacheGeometry {
    /// Number of sets implied by the geometry.
    ///
    /// # Panics
    ///
    /// Panics if the geometry does not divide into at least one whole set.
    pub fn sets(&self) -> u64 {
        let sets = self.capacity / (self.ways as u64 * self.line_bytes);
        assert!(sets > 0, "geometry must yield at least one set");
        sets
    }
}

/// Hit/miss counters for one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups that found the line.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
}

impl CacheStats {
    /// Total lookups.
    pub fn accesses(&self) -> u64 {
        self.hits + self.misses
    }

    /// Hit rate in `[0, 1]` (0 when never accessed).
    pub fn hit_rate(&self) -> f64 {
        if self.accesses() == 0 {
            0.0
        } else {
            self.hits as f64 / self.accesses() as f64
        }
    }
}

/// A set-associative cache with true-LRU replacement.
///
/// Tag-only: the simulator tracks presence, not data. Used for the
/// read-only L1/L2 of TrieJax and the shared LLC (paper Figure 5).
///
/// # Example
///
/// ```
/// use triejax_memsim::{Cache, CacheGeometry};
///
/// let mut c = Cache::new(CacheGeometry { capacity: 1024, ways: 2, line_bytes: 64, latency: 2 });
/// assert!(!c.access(0x40)); // cold miss
/// assert!(c.access(0x40));  // now resident
/// assert!(c.access(0x44));  // same line
/// ```
#[derive(Debug, Clone)]
pub struct Cache {
    geometry: CacheGeometry,
    sets: u64,
    /// `tags[set * ways + way]`; `u64::MAX` = invalid.
    tags: Vec<u64>,
    /// LRU stamps parallel to `tags`.
    stamps: Vec<u64>,
    clock: u64,
    stats: CacheStats,
}

impl Cache {
    /// Builds an empty cache with the given geometry.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is degenerate (zero ways or non-power-of-two
    /// set count).
    pub fn new(geometry: CacheGeometry) -> Self {
        assert!(geometry.ways > 0, "cache needs at least one way");
        let sets = geometry.sets();
        let slots = (sets * geometry.ways as u64) as usize;
        Cache {
            geometry,
            sets,
            tags: vec![u64::MAX; slots],
            stamps: vec![0; slots],
            clock: 0,
            stats: CacheStats::default(),
        }
    }

    /// The cache geometry.
    pub fn geometry(&self) -> CacheGeometry {
        self.geometry
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Looks up `addr`, inserting its line on a miss (LRU victim).
    /// Returns `true` on a hit.
    pub fn access(&mut self, addr: Addr) -> bool {
        self.clock += 1;
        let line = addr / self.geometry.line_bytes;
        let set = (line % self.sets) as usize;
        let tag = line / self.sets;
        let ways = self.geometry.ways as usize;
        let base = set * ways;

        let mut victim = base;
        for i in base..base + ways {
            if self.tags[i] == tag {
                self.stamps[i] = self.clock;
                self.stats.hits += 1;
                return true;
            }
            if self.stamps[i] < self.stamps[victim] {
                victim = i;
            }
        }
        self.tags[victim] = tag;
        self.stamps[victim] = self.clock;
        self.stats.misses += 1;
        false
    }

    /// Invalidates every line and clears statistics.
    pub fn reset(&mut self) {
        self.tags.fill(u64::MAX);
        self.stamps.fill(0);
        self.clock = 0;
        self.stats = CacheStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Cache {
        // 2 sets x 2 ways x 64B lines = 256B.
        Cache::new(CacheGeometry {
            capacity: 256,
            ways: 2,
            line_bytes: 64,
            latency: 1,
        })
    }

    #[test]
    fn hit_after_miss() {
        let mut c = tiny();
        assert!(!c.access(0));
        assert!(c.access(0));
        assert!(c.access(63));
        assert_eq!(c.stats().hits, 2);
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    #[allow(clippy::erasing_op, clippy::identity_op)] // line_index * 64 reads as an address
    fn lru_evicts_oldest() {
        let mut c = tiny();
        // Set 0 holds lines 0, 2, 4 (line index even -> set 0).
        c.access(0 * 64); // A
        c.access(2 * 64); // B
        c.access(0 * 64); // A again (B is now LRU)
        c.access(4 * 64); // C evicts B
        assert!(c.access(0 * 64), "A survives");
        assert!(!c.access(2 * 64), "B was evicted");
    }

    #[test]
    #[allow(clippy::erasing_op, clippy::identity_op)] // line_index * 64 reads as an address
    fn sets_are_independent() {
        let mut c = tiny();
        c.access(0 * 64); // set 0
        c.access(1 * 64); // set 1
        c.access(3 * 64); // set 1
        c.access(5 * 64); // set 1: evicts line 1
        assert!(c.access(0 * 64), "set 0 untouched");
    }

    #[test]
    fn reset_clears_everything() {
        let mut c = tiny();
        c.access(0);
        c.reset();
        assert_eq!(c.stats().accesses(), 0);
        assert!(!c.access(0));
    }

    #[test]
    fn hit_rate() {
        let mut c = tiny();
        assert_eq!(c.stats().hit_rate(), 0.0);
        c.access(0);
        c.access(0);
        assert!((c.stats().hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least one set")]
    fn bad_geometry_panics() {
        let _ = Cache::new(CacheGeometry {
            capacity: 32,
            ways: 1,
            line_bytes: 64,
            latency: 1,
        });
    }

    #[test]
    fn non_power_of_two_set_counts_work() {
        // 3 sets x 1 way: lines 0,3 collide; 0,1,2 do not.
        let mut c = Cache::new(CacheGeometry {
            capacity: 192,
            ways: 1,
            line_bytes: 64,
            latency: 1,
        });
        c.access(0);
        c.access(64);
        c.access(128);
        assert!(c.access(0));
        assert!(!c.access(3 * 64));
        assert!(!c.access(0), "line 3 evicted line 0");
    }
}
