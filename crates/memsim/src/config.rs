use crate::{CacheGeometry, DramConfig};

/// Full memory-system configuration (paper Table 3).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MemConfig {
    /// Core clock in GHz (2.38 for TrieJax, 2.4 for the Xeon baseline).
    pub freq_ghz: f64,
    /// Private L1 (read-only on TrieJax: index data only).
    pub l1: CacheGeometry,
    /// Private L2.
    pub l2: CacheGeometry,
    /// Shared last-level cache.
    pub llc: CacheGeometry,
    /// Main memory.
    pub dram: DramConfig,
    /// Result writes bypass the caches and stream to DRAM (paper §3.1).
    pub write_bypass: bool,
}

impl MemConfig {
    /// TrieJax-side configuration: `L1D ReadOnly 32KB 8-way`,
    /// `L2 ReadOnly 32KB 8-way`, `L3 20MB`, `4x DDR3-1600, 2x 12.8GB/s`.
    pub fn triejax() -> Self {
        MemConfig {
            freq_ghz: 2.38,
            l1: CacheGeometry {
                capacity: 32 << 10,
                ways: 8,
                line_bytes: 64,
                latency: 3,
            },
            l2: CacheGeometry {
                capacity: 32 << 10,
                ways: 8,
                line_bytes: 64,
                latency: 10,
            },
            llc: CacheGeometry {
                capacity: 20 << 20,
                ways: 16,
                line_bytes: 64,
                latency: 48,
            },
            dram: DramConfig::default(),
            write_bypass: true,
        }
    }

    /// Software-baseline (Xeon E5-2630 v3) configuration:
    /// `L1 32KB`, `L2 512KB`, `L3 40MB`, `4x DDR3-2133, 2x 17GB/s`.
    pub fn cpu() -> Self {
        MemConfig {
            freq_ghz: 2.4,
            l1: CacheGeometry {
                capacity: 32 << 10,
                ways: 8,
                line_bytes: 64,
                latency: 4,
            },
            l2: CacheGeometry {
                capacity: 512 << 10,
                ways: 8,
                line_bytes: 64,
                latency: 12,
            },
            llc: CacheGeometry {
                capacity: 40 << 20,
                ways: 16,
                line_bytes: 64,
                latency: 42,
            },
            dram: DramConfig {
                channels: 2,
                banks: 8,
                row_bytes: 8192,
                row_hit_cycles: 101,  // ~42 ns at 2.4 GHz
                row_miss_cycles: 156, // ~65 ns
                burst_cycles: 9,      // 64 B / 17 GB/s ≈ 3.8 ns
            },
            write_bypass: false,
        }
    }

    /// Cycles for a duration given in nanoseconds at this clock.
    pub fn ns_to_cycles(&self, ns: f64) -> u64 {
        (ns * self.freq_ghz).round() as u64
    }

    /// Seconds represented by `cycles` at this clock.
    pub fn cycles_to_seconds(&self, cycles: u64) -> f64 {
        cycles as f64 / (self.freq_ghz * 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_match_table3() {
        let t = MemConfig::triejax();
        assert_eq!(t.l1.capacity, 32 << 10);
        assert_eq!(t.l2.capacity, 32 << 10);
        assert_eq!(t.llc.capacity, 20 << 20);
        assert!(t.write_bypass);
        let c = MemConfig::cpu();
        assert_eq!(c.l2.capacity, 512 << 10);
        assert_eq!(c.llc.capacity, 40 << 20);
        assert!(!c.write_bypass);
    }

    #[test]
    fn time_conversions_round_trip() {
        let t = MemConfig::triejax();
        let cycles = t.ns_to_cycles(100.0);
        assert_eq!(cycles, 238);
        let secs = t.cycles_to_seconds(2_380_000_000);
        assert!((secs - 1.0).abs() < 1e-9);
    }
}
