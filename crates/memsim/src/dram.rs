use crate::{Addr, Cycle};

/// DDR3 channel/bank/timing configuration, in accelerator-clock cycles.
///
/// Defaults model the paper's DDR3-1600 with two 12.8 GB/s channels seen
/// from a 2.38 GHz core (paper Table 3): ~45 ns row-hit and ~70 ns
/// row-miss latency, 5 ns of channel occupancy per 64-byte burst.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DramConfig {
    /// Number of independent channels.
    pub channels: u32,
    /// Banks per channel (row buffers tracked per bank).
    pub banks: u32,
    /// Row-buffer size in bytes.
    pub row_bytes: u64,
    /// Latency of an access hitting the open row, in core cycles.
    pub row_hit_cycles: u64,
    /// Latency of an access that must activate a new row.
    pub row_miss_cycles: u64,
    /// Channel occupancy of one 64-byte burst, in core cycles.
    pub burst_cycles: u64,
}

impl Default for DramConfig {
    fn default() -> Self {
        // 2.38 GHz core: 1 ns ~ 2.38 cycles.
        DramConfig {
            channels: 2,
            banks: 8,
            row_bytes: 8192,
            row_hit_cycles: 107,  // ~45 ns
            row_miss_cycles: 167, // ~70 ns
            burst_cycles: 12,     // 64 B / 12.8 GB/s = 5 ns
        }
    }
}

/// Access counters for the DRAM model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DramStats {
    /// 64-byte read bursts served.
    pub reads: u64,
    /// 64-byte write bursts served.
    pub writes: u64,
    /// Accesses that hit an open row buffer.
    pub row_hits: u64,
    /// Accesses that required an activate.
    pub row_misses: u64,
    /// Cycles spent waiting for a busy channel (queueing delay).
    pub queue_cycles: u64,
}

impl DramStats {
    /// Total bursts.
    pub fn accesses(&self) -> u64 {
        self.reads + self.writes
    }

    /// Total bytes moved (64 bytes per burst).
    pub fn bytes(&self) -> u64 {
        self.accesses() * 64
    }
}

/// A banked DDR3 main-memory model (Ramulator substitute).
///
/// Latency = queueing (channel busy) + row-buffer hit or miss service
/// time. Bandwidth emerges from per-channel burst occupancy, which is what
/// throttles TrieJax on result-heavy queries like Path4 on wiki (paper
/// §4.3).
///
/// # Example
///
/// ```
/// use triejax_memsim::{Dram, DramConfig};
///
/// let mut d = Dram::new(DramConfig::default());
/// let first = d.access(0, 0, false);
/// // Address 128 maps to the same channel and row: a fast row-buffer hit.
/// let again = d.access(128, first, false);
/// assert!(again < first);
/// ```
#[derive(Debug, Clone)]
pub struct Dram {
    config: DramConfig,
    /// Open row per (channel, bank); `u64::MAX` = closed.
    open_rows: Vec<u64>,
    /// Cycle when each channel becomes free.
    channel_free: Vec<Cycle>,
    stats: DramStats,
}

impl Dram {
    /// Builds the model with all rows closed.
    ///
    /// # Panics
    ///
    /// Panics if `channels` or `banks` is zero.
    pub fn new(config: DramConfig) -> Self {
        assert!(
            config.channels > 0 && config.banks > 0,
            "need channels and banks"
        );
        Dram {
            config,
            open_rows: vec![u64::MAX; (config.channels * config.banks) as usize],
            channel_free: vec![0; config.channels as usize],
            stats: DramStats::default(),
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> DramConfig {
        self.config
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> DramStats {
        self.stats
    }

    /// Serves one 64-byte burst at `addr` issued at time `now`; returns the
    /// total latency in cycles (queueing + service).
    pub fn access(&mut self, addr: Addr, now: Cycle, is_write: bool) -> Cycle {
        let line = addr / 64;
        let channel = (line % self.config.channels as u64) as usize;
        let per_channel = line / self.config.channels as u64;
        let row = per_channel * 64 / self.config.row_bytes;
        let bank = (row % self.config.banks as u64) as usize;
        let slot = channel * self.config.banks as usize + bank;

        let free = self.channel_free[channel];
        let start = free.max(now);
        let queued = start - now;
        self.stats.queue_cycles += queued;

        let service = if self.open_rows[slot] == row {
            self.stats.row_hits += 1;
            self.config.row_hit_cycles
        } else {
            self.stats.row_misses += 1;
            self.open_rows[slot] = row;
            self.config.row_miss_cycles
        };
        self.channel_free[channel] = start + self.config.burst_cycles;
        if is_write {
            self.stats.writes += 1;
        } else {
            self.stats.reads += 1;
        }
        queued + service
    }

    /// Achievable peak bandwidth in bytes per cycle (all channels).
    pub fn peak_bytes_per_cycle(&self) -> f64 {
        self.config.channels as f64 * 64.0 / self.config.burst_cycles as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_hits_are_faster() {
        let mut d = Dram::new(DramConfig::default());
        let miss = d.access(0, 0, false);
        let hit = d.access(128, 1000, false);
        assert_eq!(miss, DramConfig::default().row_miss_cycles);
        assert_eq!(hit, DramConfig::default().row_hit_cycles);
        assert_eq!(d.stats().row_hits, 1);
        assert_eq!(d.stats().row_misses, 1);
    }

    #[test]
    fn channel_contention_queues() {
        let cfg = DramConfig::default();
        let mut d = Dram::new(cfg);
        // Two back-to-back accesses on the same channel at the same time.
        let a = d.access(0, 0, false);
        let b = d.access(256, 0, false); // line 4, channel 0 (4 % 2 == 0)
        assert!(
            b > a - cfg.row_miss_cycles + cfg.row_hit_cycles - 1,
            "second waits for burst"
        );
        assert!(d.stats().queue_cycles >= cfg.burst_cycles);
    }

    #[test]
    fn channels_are_independent() {
        let mut d = Dram::new(DramConfig::default());
        d.access(0, 0, false); // channel 0
        let lat = d.access(64, 0, false); // line 1 -> channel 1
        assert_eq!(
            lat,
            DramConfig::default().row_miss_cycles,
            "no queueing across channels"
        );
        assert_eq!(d.stats().queue_cycles, 0);
    }

    #[test]
    fn write_read_counters() {
        let mut d = Dram::new(DramConfig::default());
        d.access(0, 0, true);
        d.access(64, 0, false);
        assert_eq!(d.stats().writes, 1);
        assert_eq!(d.stats().reads, 1);
        assert_eq!(d.stats().bytes(), 128);
    }

    #[test]
    fn peak_bandwidth_matches_config() {
        let d = Dram::new(DramConfig::default());
        // 2 channels x 64B / 12 cycles ≈ 10.7 B/cycle ≈ 25.4 GB/s @2.38GHz.
        assert!((d.peak_bytes_per_cycle() - 10.666).abs() < 0.01);
    }
}
