use crate::MemStats;

/// Energy constants for a 45 nm-class design (CACTI/DRAMPower substitutes,
/// paper §4.1).
///
/// Dynamic energies are per access; static figures are leakage or
/// background power integrated over runtime. The defaults are
/// representative published values for the paper's structures: small
/// read-only SRAM caches, a 4 MB banked PJR SRAM, a 20 MB LLC slice, and
/// two-channel DDR3 whose background term (precharge standby + refresh)
/// dominates when runtimes stretch — the effect behind Figure 15's
/// DRAM-dominated breakdown.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyModel {
    /// L1 access energy, picojoules.
    pub l1_pj: f64,
    /// L2 access energy, picojoules.
    pub l2_pj: f64,
    /// LLC access energy, picojoules.
    pub llc_pj: f64,
    /// PJR-cache (4 MB SRAM) access energy, picojoules.
    pub pjr_pj: f64,
    /// PJR-cache leakage, milliwatts.
    pub pjr_leak_mw: f64,
    /// Core energy per component operation (LUB step, MatchMaker,
    /// Midwife, Cupid step), picojoules.
    pub core_op_pj: f64,
    /// Core static power (clock tree + thread stores), milliwatts.
    pub core_static_mw: f64,
    /// DRAM energy per row-hit burst, nanojoules.
    pub dram_hit_nj: f64,
    /// DRAM energy per row-miss burst (activate + precharge), nanojoules.
    pub dram_miss_nj: f64,
    /// DRAM background power across all ranks, milliwatts.
    pub dram_background_mw: f64,
    /// DRAM refresh power across all ranks, milliwatts.
    pub dram_refresh_mw: f64,
}

impl Default for EnergyModel {
    fn default() -> Self {
        EnergyModel {
            l1_pj: 15.0,
            l2_pj: 28.0,
            llc_pj: 240.0,
            pjr_pj: 45.0,
            pjr_leak_mw: 35.0,
            core_op_pj: 8.0,
            core_static_mw: 25.0,
            dram_hit_nj: 8.0,
            dram_miss_nj: 15.0,
            dram_background_mw: 260.0,
            dram_refresh_mw: 90.0,
        }
    }
}

impl EnergyModel {
    /// Computes the TrieJax-side energy breakdown from memory counters,
    /// accelerator activity, and runtime.
    ///
    /// `pjr_accesses` and `core_ops` come from the accelerator simulator;
    /// `runtime_s` integrates every static term.
    pub fn breakdown(
        &self,
        mem: &MemStats,
        pjr_accesses: u64,
        core_ops: u64,
        runtime_s: f64,
    ) -> EnergyBreakdown {
        let pj = 1e-12;
        let nj = 1e-9;
        let mw = 1e-3;
        EnergyBreakdown {
            core: core_ops as f64 * self.core_op_pj * pj + self.core_static_mw * mw * runtime_s,
            pjr: pjr_accesses as f64 * self.pjr_pj * pj
                + if pjr_accesses > 0 {
                    self.pjr_leak_mw * mw * runtime_s
                } else {
                    0.0
                },
            l1: mem.l1.accesses() as f64 * self.l1_pj * pj,
            l2: mem.l2.accesses() as f64 * self.l2_pj * pj,
            llc: mem.llc.accesses() as f64 * self.llc_pj * pj,
            dram: mem.dram.row_hits as f64 * self.dram_hit_nj * nj
                + mem.dram.row_misses as f64 * self.dram_miss_nj * nj
                + (self.dram_background_mw + self.dram_refresh_mw) * mw * runtime_s,
        }
    }
}

/// Joules consumed per component over one run (the Figure 15 axes).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct EnergyBreakdown {
    /// TrieJax core logic (Cupid, MatchMaker, Midwife, LUB, thread stores).
    pub core: f64,
    /// Partial-join-result cache SRAM.
    pub pjr: f64,
    /// Private L1.
    pub l1: f64,
    /// Private L2.
    pub l2: f64,
    /// Shared LLC.
    pub llc: f64,
    /// DRAM (dynamic + background + refresh).
    pub dram: f64,
}

impl EnergyBreakdown {
    /// Total joules.
    pub fn total(&self) -> f64 {
        self.core + self.pjr + self.l1 + self.l2 + self.llc + self.dram
    }

    /// DRAM's share of the total, in `[0, 1]`.
    pub fn dram_fraction(&self) -> f64 {
        if self.total() == 0.0 {
            0.0
        } else {
            self.dram / self.total()
        }
    }

    /// Memory system's share (everything but the core), in `[0, 1]`.
    pub fn memory_fraction(&self) -> f64 {
        if self.total() == 0.0 {
            0.0
        } else {
            1.0 - self.core / self.total()
        }
    }

    /// Component-wise sum.
    pub fn add(&self, other: &EnergyBreakdown) -> EnergyBreakdown {
        EnergyBreakdown {
            core: self.core + other.core,
            pjr: self.pjr + other.pjr,
            l1: self.l1 + other.l1,
            l2: self.l2 + other.l2,
            llc: self.llc + other.llc,
            dram: self.dram + other.dram,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CacheStats, DramStats};

    fn mem_stats() -> MemStats {
        MemStats {
            l1: CacheStats {
                hits: 900,
                misses: 100,
            },
            l2: CacheStats {
                hits: 60,
                misses: 40,
            },
            llc: CacheStats {
                hits: 30,
                misses: 10,
            },
            dram: DramStats {
                reads: 8,
                writes: 2,
                row_hits: 6,
                row_misses: 4,
                queue_cycles: 0,
            },
        }
    }

    #[test]
    fn breakdown_sums_components() {
        let m = EnergyModel::default();
        let b = m.breakdown(&mem_stats(), 50, 1000, 1e-3);
        assert!(b.total() > 0.0);
        let s = b.core + b.pjr + b.l1 + b.l2 + b.llc + b.dram;
        assert!((b.total() - s).abs() < 1e-18);
    }

    #[test]
    fn dram_dominates_long_runs() {
        // With a realistic runtime the DRAM background term dominates,
        // as in paper Figure 15 (74-90% of total).
        let m = EnergyModel::default();
        let b = m.breakdown(&mem_stats(), 50, 1000, 10e-3);
        assert!(
            b.dram_fraction() > 0.7,
            "dram fraction {}",
            b.dram_fraction()
        );
        assert!(b.memory_fraction() > 0.8);
    }

    #[test]
    fn pjr_leakage_only_charged_when_used() {
        let m = EnergyModel::default();
        let with = m.breakdown(&mem_stats(), 1, 0, 1e-3);
        let without = m.breakdown(&mem_stats(), 0, 0, 1e-3);
        assert!(with.pjr > 0.0);
        assert_eq!(without.pjr, 0.0);
    }

    #[test]
    fn add_is_componentwise() {
        let m = EnergyModel::default();
        let b = m.breakdown(&mem_stats(), 10, 10, 1e-3);
        let two = b.add(&b);
        assert!((two.total() - 2.0 * b.total()).abs() < 1e-15);
    }
}
