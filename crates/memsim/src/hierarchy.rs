use crate::{Addr, Cache, CacheStats, Cycle, Dram, DramStats, MemConfig};

/// Per-level counters of a [`MemorySystem`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MemStats {
    /// L1 lookups.
    pub l1: CacheStats,
    /// L2 lookups (L1 misses).
    pub l2: CacheStats,
    /// LLC lookups (L2 misses, plus non-bypassed writes).
    pub llc: CacheStats,
    /// DRAM bursts.
    pub dram: DramStats,
}

/// The load/store path of Figure 5: read-only private L1 and L2 for index
/// data, a shared LLC, and DRAM; result writes optionally bypass all
/// caches and stream to memory (paper §3.1).
///
/// The model is tag-only and charges additive lookup latencies down the
/// hierarchy; DRAM adds queueing when a channel is busy, which is how
/// bandwidth saturation appears in end-to-end runtimes.
///
/// # Example
///
/// ```
/// use triejax_memsim::{MemConfig, MemorySystem};
///
/// let mut mem = MemorySystem::new(MemConfig::triejax());
/// let miss = mem.read(0x4000, 0);
/// let hit = mem.read(0x4000, miss);
/// assert_eq!(hit, 3); // L1 latency
/// assert!(miss > 100); // went to DRAM
/// ```
#[derive(Debug, Clone)]
pub struct MemorySystem {
    config: MemConfig,
    l1: Cache,
    l2: Cache,
    llc: Cache,
    dram: Dram,
}

impl MemorySystem {
    /// Builds the hierarchy from a configuration preset.
    pub fn new(config: MemConfig) -> Self {
        MemorySystem {
            config,
            l1: Cache::new(config.l1),
            l2: Cache::new(config.l2),
            llc: Cache::new(config.llc),
            dram: Dram::new(config.dram),
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &MemConfig {
        &self.config
    }

    /// Current counters of every level.
    pub fn stats(&self) -> MemStats {
        MemStats {
            l1: self.l1.stats(),
            l2: self.l2.stats(),
            llc: self.llc.stats(),
            dram: self.dram.stats(),
        }
    }

    /// Loads the word at `addr` at time `now`; returns total latency in
    /// cycles.
    pub fn read(&mut self, addr: Addr, now: Cycle) -> Cycle {
        let mut latency = self.config.l1.latency;
        if self.l1.access(addr) {
            return latency;
        }
        latency += self.config.l2.latency;
        if self.l2.access(addr) {
            return latency;
        }
        latency += self.config.llc.latency;
        if self.llc.access(addr) {
            return latency;
        }
        latency + self.dram.access(addr, now + latency, false)
    }

    /// Stores one finished result cache-line at `addr` at time `now`.
    ///
    /// With `write_bypass` (TrieJax mode) the line streams straight to
    /// DRAM. Otherwise the store write-allocates through the private L1
    /// and L2 and the LLC — evicting the index working set, which is the
    /// cache thrashing the bypass avoids (worth up to 2.5x on path4 per
    /// paper §3.1). The eventual writeback is charged as a direct DRAM
    /// write so traffic is conserved in both modes.
    pub fn write_result(&mut self, addr: Addr, now: Cycle) -> Cycle {
        if self.config.write_bypass {
            return self.dram.access(addr, now, true);
        }
        self.l1.access(addr);
        self.l2.access(addr);
        let mut latency = self.config.l1.latency;
        if !self.llc.access(addr) {
            // Write-allocate: read-for-ownership fetches the line before
            // the store — the doubled traffic the bypass avoids.
            latency += self.dram.access(addr, now + latency, false);
        }
        latency + self.dram.access(addr, now + latency, true)
    }

    /// Invalidates all cache state and clears statistics (DRAM row
    /// buffers are also closed).
    pub fn reset(&mut self) {
        self.l1.reset();
        self.l2.reset();
        self.llc.reset();
        self.dram = Dram::new(self.config.dram);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_path_fills_all_levels() {
        let mut m = MemorySystem::new(MemConfig::triejax());
        let cold = m.read(0x8000, 0);
        assert!(cold > m.config().l1.latency + m.config().l2.latency);
        assert_eq!(m.stats().l1.misses, 1);
        assert_eq!(m.stats().l2.misses, 1);
        assert_eq!(m.stats().llc.misses, 1);
        assert_eq!(m.stats().dram.reads, 1);
        let warm = m.read(0x8000, cold);
        assert_eq!(warm, m.config().l1.latency);
        assert_eq!(m.stats().l1.hits, 1);
    }

    #[test]
    fn llc_serves_private_cache_conflict_misses() {
        let mut m = MemorySystem::new(MemConfig::triejax());
        m.read(0, 0);
        // L1 and L2 are both 32KB 8-way with 64 sets (Table 3), so filling
        // one set evicts the line from both; the re-read must stop in LLC.
        for i in 1..=8u64 {
            m.read(i * 4096, 0);
        }
        let lat = m.read(0, 0);
        let cfg = m.config();
        assert_eq!(
            lat,
            cfg.l1.latency + cfg.l2.latency + cfg.llc.latency,
            "LLC hit"
        );
        assert_eq!(m.stats().dram.reads, 9, "no extra DRAM traffic");
    }

    #[test]
    fn bypassed_writes_skip_caches() {
        let mut m = MemorySystem::new(MemConfig::triejax());
        m.write_result(0x100, 0);
        assert_eq!(m.stats().dram.writes, 1);
        assert_eq!(m.stats().llc.accesses(), 0);
        assert_eq!(m.stats().l1.accesses(), 0);
    }

    #[test]
    fn non_bypassed_writes_allocate_in_every_level() {
        let mut m = MemorySystem::new(MemConfig::cpu());
        m.write_result(0x100, 0);
        assert_eq!(m.stats().l1.accesses(), 1);
        assert_eq!(m.stats().l2.accesses(), 1);
        assert_eq!(m.stats().llc.accesses(), 1);
        assert_eq!(m.stats().dram.writes, 1);
    }

    #[test]
    fn non_bypassed_write_stream_thrashes_the_read_working_set() {
        let mut m = MemorySystem::new(MemConfig::cpu());
        m.read(0, 0);
        assert_eq!(m.read(0, 0), m.config().l1.latency, "hot in L1");
        // A result stream large enough to wrap every private-cache set.
        for i in 0..4096u64 {
            m.write_result(0x10_0000 + i * 64, 0);
        }
        assert!(m.read(0, 0) > m.config().l1.latency, "index line evicted");
    }

    #[test]
    fn reset_clears_state() {
        let mut m = MemorySystem::new(MemConfig::triejax());
        m.read(0, 0);
        m.reset();
        assert_eq!(m.stats().l1.accesses(), 0);
        assert_eq!(m.stats().dram.accesses(), 0);
    }
}
