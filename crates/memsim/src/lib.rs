//! Memory-hierarchy and energy simulator for the TrieJax reproduction.
//!
//! Substitutes for the paper's external tooling (§4.1):
//!
//! * **Ramulator** → [`Dram`]: a banked DDR3 model with row-buffer
//!   hit/miss latency and per-channel bandwidth occupancy.
//! * **DRAMPower** → per-access activate/read/write energy plus background
//!   and refresh power, integrated over runtime.
//! * **CACTI 6.5** → the SRAM/cache energy constants in [`EnergyModel`].
//!
//! [`MemorySystem`] composes read-only L1/L2, a shared LLC and DRAM into
//! the load path used by the TrieJax core, with the paper's result-write
//! bypass (§3.1): final-result stores stream directly to memory.
//!
//! All timing is expressed in cycles of the accelerator clock
//! (2.38 GHz, paper §4.1); [`MemConfig`] presets encode paper Table 3.
//!
//! # Example
//!
//! ```
//! use triejax_memsim::{MemConfig, MemorySystem};
//!
//! let mut mem = MemorySystem::new(MemConfig::triejax());
//! let cold = mem.read(0x1000, 0);
//! let warm = mem.read(0x1000, cold);
//! assert!(warm < cold); // second access hits in L1
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cache;
mod config;
mod dram;
mod energy;
mod hierarchy;

pub use cache::{Cache, CacheGeometry, CacheStats};
pub use config::MemConfig;
pub use dram::{Dram, DramConfig, DramStats};
pub use energy::{EnergyBreakdown, EnergyModel};
pub use hierarchy::{MemStats, MemorySystem};

/// Simulated byte address.
pub type Addr = u64;
/// Time in accelerator clock cycles.
pub type Cycle = u64;
