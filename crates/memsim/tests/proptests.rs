//! Property tests for the memory simulator: the set-associative cache
//! agrees with a straightforward reference LRU model, and latency/energy
//! bookkeeping stays conserved under arbitrary access traces.

use proptest::prelude::*;
use triejax_memsim::{
    Cache, CacheGeometry, Dram, DramConfig, EnergyModel, MemConfig, MemorySystem,
};

/// Reference model: per-set Vec of lines in recency order.
struct RefLru {
    sets: u64,
    ways: usize,
    line_bytes: u64,
    state: Vec<Vec<u64>>,
}

impl RefLru {
    fn new(g: CacheGeometry) -> Self {
        let sets = g.sets();
        RefLru {
            sets,
            ways: g.ways as usize,
            line_bytes: g.line_bytes,
            state: (0..sets).map(|_| Vec::new()).collect(),
        }
    }

    fn access(&mut self, addr: u64) -> bool {
        let line = addr / self.line_bytes;
        let set = (line % self.sets) as usize;
        let tag = line / self.sets;
        let entries = &mut self.state[set];
        if let Some(pos) = entries.iter().position(|&t| t == tag) {
            entries.remove(pos);
            entries.push(tag);
            true
        } else {
            if entries.len() == self.ways {
                entries.remove(0);
            }
            entries.push(tag);
            false
        }
    }
}

proptest! {
    /// The tag-array cache matches the reference LRU on arbitrary traces.
    #[test]
    fn cache_matches_reference_lru(
        addrs in prop::collection::vec(0u64..4096, 1..400),
        ways in 1u32..4,
    ) {
        let geometry =
            CacheGeometry { capacity: 512 * ways as u64, ways, line_bytes: 64, latency: 1 };
        let mut cache = Cache::new(geometry);
        let mut reference = RefLru::new(geometry);
        for &a in &addrs {
            prop_assert_eq!(cache.access(a), reference.access(a), "addr {}", a);
        }
        prop_assert_eq!(
            cache.stats().accesses() as usize, addrs.len()
        );
    }

    /// DRAM latencies are bounded by [row hit, row miss + queueing], and
    /// byte accounting is exact.
    #[test]
    fn dram_latency_and_traffic_bounds(
        addrs in prop::collection::vec((0u64..1_000_000, any::<bool>()), 1..200),
    ) {
        let cfg = DramConfig::default();
        let mut dram = Dram::new(cfg);
        let mut t = 0u64;
        for &(addr, write) in &addrs {
            let lat = dram.access(addr * 64, t, write);
            prop_assert!(lat >= cfg.row_hit_cycles);
            t += lat.min(500); // advance time loosely
        }
        let s = dram.stats();
        prop_assert_eq!(s.accesses() as usize, addrs.len());
        prop_assert_eq!(s.bytes(), addrs.len() as u64 * 64);
        prop_assert_eq!(s.row_hits + s.row_misses, s.accesses());
    }

    /// Hierarchy reads are monotone: a warm re-read is never slower than
    /// the cold read that fetched the line.
    #[test]
    fn warm_reads_never_slower(addr in 0u64..1_000_000) {
        let mut m = MemorySystem::new(MemConfig::triejax());
        let cold = m.read(addr, 0);
        let warm = m.read(addr, cold);
        prop_assert!(warm <= cold);
        prop_assert_eq!(warm, m.config().l1.latency);
    }

    /// Energy totals equal the component sum and grow monotonically with
    /// runtime.
    #[test]
    fn energy_is_conserved_and_monotone(
        reads in 0u64..10_000,
        runtime_ms in 1u64..100,
    ) {
        let model = EnergyModel::default();
        let mut m = MemorySystem::new(MemConfig::triejax());
        for i in 0..reads.min(500) {
            m.read(i * 64, 0);
        }
        let stats = m.stats();
        let short = model.breakdown(&stats, 10, 100, runtime_ms as f64 * 1e-3);
        let long = model.breakdown(&stats, 10, 100, (runtime_ms + 1) as f64 * 1e-3);
        let sum = short.core + short.pjr + short.l1 + short.l2 + short.llc + short.dram;
        prop_assert!((short.total() - sum).abs() < 1e-15);
        prop_assert!(long.total() > short.total());
    }
}
