//! The AGM bound (Atserias, Grohe, Marx — SIAM J. Comput. 2013), the
//! worst-case output-size bound that defines worst-case optimality
//! (paper §2.1).
//!
//! For a join query whose atoms all have the same cardinality `N`, the
//! output size is at most `N^ρ*`, where `ρ*` is the *fractional edge
//! cover number* of the query's hypergraph. The paper's example: the
//! triangle query has `ρ* = 3/2`, so at most `N^1.5` results — while any
//! pairwise join plan can materialize `N^2` intermediates.
//!
//! For queries whose atoms are edges (arity ≤ 2, our graph-pattern
//! class), the fractional edge cover LP always has a half-integral
//! optimal solution (a classical result for edge covers of graphs), so
//! the exact optimum is found by searching weights in {0, 1/2, 1}.

use crate::{Query, QueryError};

/// The exact fractional edge cover number `ρ*` of a query over unary and
/// binary atoms.
///
/// # Errors
///
/// Returns [`QueryError::NoAtoms`] if any atom has arity above 2, where
/// half-integrality no longer holds (the error is reused to keep the
/// error enum small; the message names the offending atom).
///
/// # Example
///
/// ```
/// use triejax_query::{agm, patterns};
///
/// assert_eq!(agm::fractional_edge_cover(&patterns::cycle3())?, 1.5);
/// assert_eq!(agm::fractional_edge_cover(&patterns::clique4())?, 2.0);
/// # Ok::<(), triejax_query::QueryError>(())
/// ```
pub fn fractional_edge_cover(query: &Query) -> Result<f64, QueryError> {
    if let Some(atom) = query.atoms().iter().find(|a| a.arity() > 2) {
        return Err(QueryError::Parse {
            message: format!(
                "fractional edge cover is computed for arity <= 2 atoms; {} has arity {}",
                atom.relation(),
                atom.arity()
            ),
        });
    }
    let m = query.atoms().len();
    let n = query.num_vars();
    assert!(
        m <= 12,
        "half-integral search is exponential; queries stay small"
    );

    // Search weights in half-units: w_i in {0, 1, 2} halves.
    let mut best = f64::INFINITY;
    let mut weights = vec![0u8; m];
    search(query, &mut weights, 0, n, &mut best);
    Ok(best / 2.0)
}

fn search(query: &Query, weights: &mut Vec<u8>, i: usize, n: usize, best: &mut f64) {
    let partial: u32 = weights[..i].iter().map(|&w| u32::from(w)).sum();
    if partial as f64 >= *best {
        return; // already no better than the incumbent
    }
    if i == weights.len() {
        // Feasible iff every variable is covered with total weight >= 1
        // (i.e. >= 2 halves).
        for v in 0..n {
            let cover: u32 = query
                .atoms()
                .iter()
                .zip(weights.iter())
                .filter(|(a, _)| a.vars().contains(&v))
                .map(|(_, &w)| u32::from(w))
                .sum();
            if cover < 2 {
                return;
            }
        }
        *best = partial as f64;
        return;
    }
    for w in 0..=2u8 {
        weights[i] = w;
        search(query, weights, i + 1, n, best);
    }
    weights[i] = 0;
}

/// The AGM bound `N^ρ*` for a query where every atom has `n` tuples.
///
/// # Errors
///
/// Propagates [`fractional_edge_cover`]'s arity restriction.
///
/// # Example
///
/// ```
/// use triejax_query::{agm, patterns};
///
/// // The paper's example: a triangle query over N-tuple relations has at
/// // most N^(3/2) results.
/// let bound = agm::agm_bound(&patterns::cycle3(), 10_000)?;
/// assert_eq!(bound, 1e6);
/// # Ok::<(), triejax_query::QueryError>(())
/// ```
pub fn agm_bound(query: &Query, n: u64) -> Result<f64, QueryError> {
    Ok((n as f64).powf(fractional_edge_cover(query)?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::patterns;

    #[test]
    fn known_cover_numbers() {
        // Paths: alternate full edges.
        assert_eq!(fractional_edge_cover(&patterns::path3()).unwrap(), 2.0);
        assert_eq!(fractional_edge_cover(&patterns::path4()).unwrap(), 2.0);
        assert_eq!(fractional_edge_cover(&patterns::path5()).unwrap(), 3.0);
        // Cycles: k/2 by putting 1/2 on every edge.
        assert_eq!(fractional_edge_cover(&patterns::cycle3()).unwrap(), 1.5);
        assert_eq!(fractional_edge_cover(&patterns::cycle4()).unwrap(), 2.0);
        assert_eq!(fractional_edge_cover(&patterns::cycle5()).unwrap(), 2.5);
        // K4: a perfect matching of two edges.
        assert_eq!(fractional_edge_cover(&patterns::clique4()).unwrap(), 2.0);
        // A star must cover each leaf separately.
        assert_eq!(fractional_edge_cover(&patterns::star3()).unwrap(), 3.0);
    }

    #[test]
    fn unary_atoms_are_supported() {
        let q = Query::builder("q")
            .head(["x", "y"])
            .atom("V", ["x"])
            .atom("E", ["x", "y"])
            .build()
            .unwrap();
        // E alone covers both variables.
        assert_eq!(fractional_edge_cover(&q).unwrap(), 1.0);
    }

    #[test]
    fn ternary_atoms_are_rejected() {
        let q = Query::builder("q")
            .head(["x", "y", "z"])
            .atom("T", ["x", "y", "z"])
            .build()
            .unwrap();
        assert!(fractional_edge_cover(&q).is_err());
    }

    #[test]
    fn agm_bound_scales_as_a_power() {
        let b1 = agm_bound(&patterns::cycle3(), 100).unwrap();
        let b2 = agm_bound(&patterns::cycle3(), 10_000).unwrap();
        assert_eq!(b1, 1000.0);
        assert_eq!(b2, 1e6);
    }
}
