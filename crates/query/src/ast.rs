use crate::QueryError;

/// Index of a variable within a [`Query`]'s variable table.
pub type VarId = usize;

/// One body atom `Name(v0, v1, ...)` of a conjunctive query.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Atom {
    relation: String,
    vars: Vec<VarId>,
}

impl Atom {
    /// Name of the relation this atom scans.
    pub fn relation(&self) -> &str {
        &self.relation
    }

    /// Variables of the atom, in the relation's column order.
    pub fn vars(&self) -> &[VarId] {
        &self.vars
    }

    /// Arity of the atom.
    pub fn arity(&self) -> usize {
        self.vars.len()
    }
}

/// A full conjunctive (natural-join) query: `head(vars) = atom, atom, ...`.
///
/// All body variables must appear in the head (the evaluation queries of the
/// paper are full joins without projection), and no atom may repeat a
/// variable.
///
/// # Example
///
/// ```
/// use triejax_query::Query;
///
/// let q = Query::builder("path3")
///     .head(["x", "y", "z"])
///     .atom("R", ["x", "y"])
///     .atom("S", ["y", "z"])
///     .build()?;
/// assert_eq!(q.num_vars(), 3);
/// assert_eq!(q.atoms().len(), 2);
/// # Ok::<(), triejax_query::QueryError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Query {
    name: String,
    var_names: Vec<String>,
    head: Vec<VarId>,
    atoms: Vec<Atom>,
}

impl Query {
    /// Starts building a query with the given head-predicate name.
    pub fn builder(name: impl Into<String>) -> QueryBuilder {
        QueryBuilder {
            name: name.into(),
            head: Vec::new(),
            atoms: Vec::new(),
        }
    }

    /// Query (head predicate) name, e.g. `"path3"`.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of distinct variables.
    pub fn num_vars(&self) -> usize {
        self.var_names.len()
    }

    /// Name of variable `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn var_name(&self, v: VarId) -> &str {
        &self.var_names[v]
    }

    /// Head variables in declaration order (the default evaluation order).
    pub fn head(&self) -> &[VarId] {
        &self.head
    }

    /// `true` when the head projects away at least one body variable
    /// (only constructible through [`QueryBuilder::build_projected`]).
    pub fn is_projection(&self) -> bool {
        self.head.len() < self.var_names.len()
    }

    /// Body atoms in declaration order.
    pub fn atoms(&self) -> &[Atom] {
        &self.atoms
    }

    /// The atoms (by index) that mention variable `v`.
    pub fn atoms_with(&self, v: VarId) -> impl Iterator<Item = usize> + '_ {
        self.atoms
            .iter()
            .enumerate()
            .filter(move |(_, a)| a.vars.contains(&v))
            .map(|(i, _)| i)
    }

    /// Renders the query in the paper's compact datalog format.
    pub fn to_datalog(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let _ = write!(s, "{}(", self.name);
        s.push_str(
            &self
                .head
                .iter()
                .map(|&v| self.var_names[v].as_str())
                .collect::<Vec<_>>()
                .join(","),
        );
        s.push_str(") = ");
        let body: Vec<String> = self
            .atoms
            .iter()
            .map(|a| {
                format!(
                    "{}({})",
                    a.relation,
                    a.vars
                        .iter()
                        .map(|&v| self.var_names[v].as_str())
                        .collect::<Vec<_>>()
                        .join(",")
                )
            })
            .collect();
        s.push_str(&body.join(","));
        s
    }
}

impl std::fmt::Display for Query {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.to_datalog())
    }
}

/// Incremental builder for [`Query`] (see [`Query::builder`]).
#[derive(Debug, Clone)]
pub struct QueryBuilder {
    name: String,
    head: Vec<String>,
    atoms: Vec<(String, Vec<String>)>,
}

impl QueryBuilder {
    /// Declares the head variables (also the default variable order).
    pub fn head<I, S>(mut self, vars: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.head = vars.into_iter().map(Into::into).collect();
        self
    }

    /// Appends a body atom.
    pub fn atom<I, S>(mut self, relation: impl Into<String>, vars: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.atoms
            .push((relation.into(), vars.into_iter().map(Into::into).collect()));
        self
    }

    /// Validates and constructs the [`Query`].
    ///
    /// # Errors
    ///
    /// Returns [`QueryError::NoAtoms`], [`QueryError::DuplicateVarInAtom`],
    /// or [`QueryError::HeadBodyMismatch`] on invalid input.
    pub fn build(self) -> Result<Query, QueryError> {
        self.build_inner(false)
    }

    /// Validates and constructs the [`Query`], allowing the head to
    /// *project*: body variables may be absent from the head.
    ///
    /// The paper's evaluation queries are all full joins, and the join
    /// engines do not implement projection — they reject such plans
    /// gracefully with a plan error instead of executing them. This
    /// constructor exists so harness code can express the query and get
    /// that graceful error (rather than the builder refusing the query
    /// outright, or an engine panicking mid-execution).
    ///
    /// # Errors
    ///
    /// Returns [`QueryError::NoAtoms`], [`QueryError::DuplicateVarInAtom`],
    /// or [`QueryError::HeadBodyMismatch`] (duplicate head variable, or a
    /// head variable that appears in no body atom).
    pub fn build_projected(self) -> Result<Query, QueryError> {
        self.build_inner(true)
    }

    fn build_inner(self, allow_projection: bool) -> Result<Query, QueryError> {
        if self.atoms.is_empty() {
            return Err(QueryError::NoAtoms);
        }
        let mut var_names: Vec<String> = Vec::new();
        let intern = |name: &str, var_names: &mut Vec<String>| -> VarId {
            if let Some(i) = var_names.iter().position(|n| n == name) {
                i
            } else {
                var_names.push(name.to_owned());
                var_names.len() - 1
            }
        };
        // Intern head variables first so VarIds follow head order.
        let mut head = Vec::with_capacity(self.head.len());
        for h in &self.head {
            head.push(intern(h, &mut var_names));
        }
        let mut atoms = Vec::with_capacity(self.atoms.len());
        for (rel, vars) in &self.atoms {
            let mut ids = Vec::with_capacity(vars.len());
            for v in vars {
                let id = intern(v, &mut var_names);
                if ids.contains(&id) {
                    return Err(QueryError::DuplicateVarInAtom {
                        atom: rel.clone(),
                        var: v.clone(),
                    });
                }
                ids.push(id);
            }
            atoms.push(Atom {
                relation: rel.clone(),
                vars: ids,
            });
        }
        // Duplicate head variables are never allowed; a full join must
        // additionally cover exactly the body variables.
        let mut seen_in_head = vec![false; var_names.len()];
        for &h in &head {
            if seen_in_head[h] {
                return Err(QueryError::HeadBodyMismatch);
            }
            seen_in_head[h] = true;
        }
        if allow_projection {
            // Every head variable must still be bound by some atom.
            for &h in &head {
                if !atoms.iter().any(|a| a.vars.contains(&h)) {
                    return Err(QueryError::HeadBodyMismatch);
                }
            }
        } else if seen_in_head.iter().any(|&s| !s) || head.len() != var_names.len() {
            return Err(QueryError::HeadBodyMismatch);
        }
        Ok(Query {
            name: self.name,
            var_names,
            head,
            atoms,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_projected_allows_a_strict_head_subset() {
        let q = Query::builder("pairs")
            .head(["x", "z"])
            .atom("G", ["x", "y"])
            .atom("G", ["y", "z"])
            .build_projected()
            .unwrap();
        assert!(q.is_projection());
        assert_eq!(q.head(), &[0, 1]);
        assert_eq!(q.num_vars(), 3);
        // The same query is rejected by the full-join builder.
        let err = Query::builder("pairs")
            .head(["x", "z"])
            .atom("G", ["x", "y"])
            .atom("G", ["y", "z"])
            .build()
            .unwrap_err();
        assert_eq!(err, QueryError::HeadBodyMismatch);
    }

    #[test]
    fn build_projected_still_rejects_bad_heads() {
        // Duplicate head variable.
        assert!(Query::builder("q")
            .head(["x", "x"])
            .atom("G", ["x", "y"])
            .build_projected()
            .is_err());
        // Head variable bound by no atom.
        assert!(Query::builder("q")
            .head(["w"])
            .atom("G", ["x", "y"])
            .build_projected()
            .is_err());
    }

    #[test]
    fn full_queries_are_not_projections() {
        let q = Query::builder("q")
            .head(["x", "y"])
            .atom("G", ["x", "y"])
            .build()
            .unwrap();
        assert!(!q.is_projection());
    }

    fn path3() -> Query {
        Query::builder("path3")
            .head(["x", "y", "z"])
            .atom("R", ["x", "y"])
            .atom("S", ["y", "z"])
            .build()
            .unwrap()
    }

    #[test]
    fn builder_interns_variables_in_head_order() {
        let q = path3();
        assert_eq!(q.num_vars(), 3);
        assert_eq!(q.var_name(0), "x");
        assert_eq!(q.var_name(1), "y");
        assert_eq!(q.var_name(2), "z");
        assert_eq!(q.head(), &[0, 1, 2]);
        assert_eq!(q.atoms()[1].vars(), &[1, 2]);
    }

    #[test]
    fn atoms_with_finds_membership() {
        let q = path3();
        assert_eq!(q.atoms_with(1).collect::<Vec<_>>(), vec![0, 1]);
        assert_eq!(q.atoms_with(0).collect::<Vec<_>>(), vec![0]);
    }

    #[test]
    fn no_atoms_is_rejected() {
        let err = Query::builder("q").head(["x"]).build().unwrap_err();
        assert_eq!(err, QueryError::NoAtoms);
    }

    #[test]
    fn duplicate_var_in_atom_is_rejected() {
        let err = Query::builder("q")
            .head(["x"])
            .atom("R", ["x", "x"])
            .build()
            .unwrap_err();
        assert!(matches!(err, QueryError::DuplicateVarInAtom { .. }));
    }

    #[test]
    fn head_must_cover_body() {
        let err = Query::builder("q")
            .head(["x"])
            .atom("R", ["x", "y"])
            .build()
            .unwrap_err();
        assert_eq!(err, QueryError::HeadBodyMismatch);
        let err = Query::builder("q")
            .head(["x", "x"])
            .atom("R", ["x", "y"])
            .build()
            .unwrap_err();
        assert_eq!(err, QueryError::HeadBodyMismatch);
    }

    #[test]
    fn datalog_rendering_matches_paper_style() {
        assert_eq!(path3().to_datalog(), "path3(x,y,z) = R(x,y),S(y,z)");
        assert_eq!(path3().to_string(), "path3(x,y,z) = R(x,y),S(y,z)");
    }
}
