use std::error::Error;
use std::fmt;

/// Errors raised while constructing, parsing or compiling queries.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum QueryError {
    /// The query has no atoms.
    NoAtoms,
    /// An atom mentioned the same variable twice (unsupported).
    DuplicateVarInAtom {
        /// Relation name of the offending atom.
        atom: String,
        /// Repeated variable name.
        var: String,
    },
    /// The head does not mention exactly the variables of the body.
    HeadBodyMismatch,
    /// A supplied variable order is not a permutation of the query variables.
    BadVariableOrder,
    /// The datalog text could not be parsed.
    Parse {
        /// Human-readable description of the syntax problem.
        message: String,
    },
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::NoAtoms => write!(f, "query must have at least one atom"),
            QueryError::DuplicateVarInAtom { atom, var } => {
                write!(
                    f,
                    "atom {atom} repeats variable {var}, which is unsupported"
                )
            }
            QueryError::HeadBodyMismatch => {
                write!(f, "head variables must be exactly the body variables")
            }
            QueryError::BadVariableOrder => {
                write!(
                    f,
                    "variable order must be a permutation of the query variables"
                )
            }
            QueryError::Parse { message } => write!(f, "parse error: {message}"),
        }
    }
}

impl Error for QueryError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_details() {
        let e = QueryError::DuplicateVarInAtom {
            atom: "R".into(),
            var: "x".into(),
        };
        assert!(e.to_string().contains('R'));
        assert!(e.to_string().contains('x'));
    }
}
