//! Conjunctive query model and CTJ plan compiler for the TrieJax
//! reproduction.
//!
//! Graph pattern matching problems are expressed as natural-join queries in
//! datalog form, exactly as in Table 1 of the paper, e.g.
//! `path3(x,y,z) = R(x,y),S(y,z)`. This crate provides:
//!
//! * [`Query`] / [`Atom`] — the query AST with validation.
//! * [`parse_query`] — a small datalog parser accepting both `:-` and `=`.
//! * [`patterns`] — the five evaluation queries of Table 1 plus extensions.
//! * [`CompiledQuery`] — the execution plan shared by every engine and by
//!   the TrieJax simulator: a global variable order, per-atom trie
//!   permutations, the per-depth atom participation lists, and the CTJ
//!   partial-join cache specification (paper §2.2.2) derived from the query
//!   structure.
//!
//! # Example
//!
//! ```
//! use triejax_query::{parse_query, CompiledQuery};
//!
//! let q = parse_query("triangle(x,y,z) = R(x,y), S(y,z), T(z,x)")?;
//! let plan = CompiledQuery::compile(&q)?;
//! assert_eq!(plan.arity(), 3);
//! // Cycle-3 admits no valid partial-join cache (paper §4.4).
//! assert!(plan.cache_specs().is_empty());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod agm;
mod ast;
mod error;
mod order;
mod parser;
pub mod patterns;
mod plan;

pub use ast::{Atom, Query, QueryBuilder, VarId};
pub use error::QueryError;
pub use order::{optimize_order, suggest_order};
pub use parser::parse_query;
pub use plan::{AtomPlan, CacheSpec, CompiledQuery};
