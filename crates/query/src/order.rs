use crate::{CompiledQuery, Query, VarId};

/// Suggests a variable order for `query`: variables that appear in more
/// atoms come first (they constrain the search earliest), ties broken by
/// head position.
///
/// The paper's evaluation uses the natural head order of Table 1, which the
/// compiler uses by default; this heuristic is provided for ad-hoc queries.
///
/// # Example
///
/// ```
/// use triejax_query::{parse_query, suggest_order};
///
/// let q = parse_query("q(a,b,c) = R(a,b), S(b,c), T(b,a)")?;
/// let order = suggest_order(&q);
/// assert_eq!(q.var_name(order[0]), "b"); // b appears in all three atoms
/// # Ok::<(), triejax_query::QueryError>(())
/// ```
pub fn suggest_order(query: &Query) -> Vec<VarId> {
    let mut vars: Vec<VarId> = query.head().to_vec();
    let count = |v: VarId| query.atoms_with(v).count();
    let head_pos = |v: VarId| {
        query
            .head()
            .iter()
            .position(|&h| h == v)
            .unwrap_or(usize::MAX)
    };
    vars.sort_by(|&a, &b| count(b).cmp(&count(a)).then(head_pos(a).cmp(&head_pos(b))));
    vars
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::patterns;

    #[test]
    fn symmetric_queries_keep_head_order() {
        let q = patterns::cycle3();
        // x, y, z each appear in exactly two atoms: stable head order.
        assert_eq!(suggest_order(&q), vec![0, 1, 2]);
    }

    #[test]
    fn frequent_variables_come_first() {
        let q = Query::builder("q")
            .head(["a", "b"])
            .atom("R", ["a", "b"])
            .atom("S", ["b", "a"])
            .atom("T", ["b", "c"])
            .atom("U", ["c", "b"])
            .build();
        // c must be in the head for validity; rebuild correctly:
        let q = match q {
            Ok(q) => q,
            Err(_) => Query::builder("q")
                .head(["a", "b", "c"])
                .atom("R", ["a", "b"])
                .atom("S", ["b", "a"])
                .atom("T", ["b", "c"])
                .atom("U", ["c", "b"])
                .build()
                .unwrap(),
        };
        let order = suggest_order(&q);
        assert_eq!(q.var_name(order[0]), "b"); // 4 atoms
    }
}

/// Exhaustively searches variable orders (feasible for the paper's <= 5
/// variables) and returns the one with the best static score:
///
/// 1. every prefix must stay *connected* (each new variable shares an atom
///    with an earlier one), avoiding Cartesian blowups;
/// 2. more-constrained variables (more atoms) come earlier;
/// 3. among the remaining ties, prefer orders that admit more CTJ cache
///    specs with smaller keys — cache opportunities are the whole point
///    of the architecture.
///
/// # Panics
///
/// Panics if the query has more than 8 variables (40320 permutations);
/// use [`suggest_order`] for larger queries.
///
/// # Example
///
/// ```
/// use triejax_query::{optimize_order, parse_query, CompiledQuery};
///
/// let q = parse_query("q(a,b,c) = R(a,b), S(b,c)")?;
/// let order = optimize_order(&q);
/// let plan = CompiledQuery::compile_with_order(&q, order)?;
/// assert!(!plan.cache_specs().is_empty());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn optimize_order(query: &Query) -> Vec<VarId> {
    let n = query.num_vars();
    assert!(n <= 8, "exhaustive order search is limited to 8 variables");
    let mut best: Option<(f64, Vec<VarId>)> = None;
    let mut order: Vec<VarId> = Vec::with_capacity(n);
    let mut used = vec![false; n];
    permute(query, &mut order, &mut used, &mut best);
    best.expect("at least one permutation").1
}

fn permute(
    query: &Query,
    order: &mut Vec<VarId>,
    used: &mut Vec<bool>,
    best: &mut Option<(f64, Vec<VarId>)>,
) {
    let n = query.num_vars();
    if order.len() == n {
        let score = score_order(query, order);
        if best.as_ref().is_none_or(|(s, _)| score > *s) {
            *best = Some((score, order.clone()));
        }
        return;
    }
    for v in 0..n {
        if used[v] {
            continue;
        }
        used[v] = true;
        order.push(v);
        permute(query, order, used, best);
        order.pop();
        used[v] = false;
    }
}

fn score_order(query: &Query, order: &[VarId]) -> f64 {
    let mut score = 0.0;
    // 1. Connectivity: each non-first variable should share an atom with
    //    the prefix (heavily weighted).
    for (d, &v) in order.iter().enumerate().skip(1) {
        let connected = query
            .atoms()
            .iter()
            .any(|a| a.vars().contains(&v) && a.vars().iter().any(|u| order[..d].contains(u)));
        if connected {
            score += 100.0;
        }
    }
    // 2. Constrained-first: weight atom membership by earliness.
    for (d, &v) in order.iter().enumerate() {
        let membership = query.atoms_with(v).count() as f64;
        score += membership * (order.len() - d) as f64;
    }
    // 3. Cache opportunities: one point per spec, plus a bonus for small
    //    keys (cheaper lookups, more hits).
    if let Ok(plan) = CompiledQuery::compile_with_order(query, order.to_vec()) {
        for spec in plan.cache_specs() {
            score += 10.0;
            score += 5.0 / (1.0 + spec.key_depths().len() as f64);
        }
    }
    score
}

#[cfg(test)]
mod optimizer_tests {
    use super::*;
    use crate::{patterns, CompiledQuery};

    #[test]
    fn optimized_orders_have_connected_prefixes() {
        for p in patterns::Pattern::ALL {
            let q = p.query();
            let order = optimize_order(&q);
            for d in 1..order.len() {
                let connected = q.atoms().iter().any(|a| {
                    a.vars().contains(&order[d]) && a.vars().iter().any(|u| order[..d].contains(u))
                });
                assert!(connected, "{p}: disconnected prefix at depth {d}");
            }
        }
    }

    #[test]
    fn path3_keeps_a_cacheable_order() {
        let q = patterns::path3();
        let order = optimize_order(&q);
        let plan = CompiledQuery::compile_with_order(&q, order).unwrap();
        assert!(!plan.cache_specs().is_empty());
    }

    #[test]
    fn disconnected_orders_are_avoided() {
        // q(a,b,c,d) = R(a,b), S(c,d), T(b,c): a naive order could place
        // d second and force a Cartesian product.
        let q = Query::builder("q")
            .head(["a", "b", "c", "d"])
            .atom("R", ["a", "b"])
            .atom("S", ["c", "d"])
            .atom("T", ["b", "c"])
            .build()
            .unwrap();
        let order = optimize_order(&q);
        // The first two variables must share an atom.
        let (v0, v1) = (order[0], order[1]);
        assert!(q
            .atoms()
            .iter()
            .any(|a| a.vars().contains(&v0) && a.vars().contains(&v1)));
    }
}
