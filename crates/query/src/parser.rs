use crate::{Query, QueryError};

/// Parses a query in the paper's compact datalog format.
///
/// Both the textbook `:-` separator and the paper's `=` are accepted, and a
/// trailing period is optional:
///
/// ```text
/// path4(x,y,z,w) = R(x,y),S(y,z),T(z,w).
/// cycle3(x,y,z) :- R(x,y), S(y,z), T(z,x)
/// ```
///
/// # Errors
///
/// Returns [`QueryError::Parse`] for malformed text and the regular
/// validation errors for structurally invalid queries (e.g. head/body
/// variable mismatch).
///
/// # Example
///
/// ```
/// use triejax_query::parse_query;
///
/// let q = parse_query("path3(x,y,z) = R(x,y),S(y,z).")?;
/// assert_eq!(q.name(), "path3");
/// assert_eq!(q.atoms().len(), 2);
/// # Ok::<(), triejax_query::QueryError>(())
/// ```
pub fn parse_query(text: &str) -> Result<Query, QueryError> {
    let text = text.trim().trim_end_matches('.').trim();
    let (head_txt, body_txt) = split_rule(text)?;
    let (name, head_vars) = parse_predicate(head_txt)?;
    let mut builder = Query::builder(name).head(head_vars);
    for atom_txt in split_atoms(body_txt)? {
        let (rel, vars) = parse_predicate(&atom_txt)?;
        builder = builder.atom(rel, vars);
    }
    builder.build()
}

/// Splits `head = body` or `head :- body` at the top level.
fn split_rule(text: &str) -> Result<(&str, &str), QueryError> {
    if let Some(idx) = text.find(":-") {
        return Ok((&text[..idx], &text[idx + 2..]));
    }
    // `=` must appear outside parentheses.
    let mut depth = 0usize;
    for (i, ch) in text.char_indices() {
        match ch {
            '(' => depth += 1,
            ')' => depth = depth.saturating_sub(1),
            '=' if depth == 0 => return Ok((&text[..i], &text[i + 1..])),
            _ => {}
        }
    }
    Err(QueryError::Parse {
        message: "missing `=` or `:-` rule separator".into(),
    })
}

/// Splits the body on top-level commas into atom strings.
fn split_atoms(body: &str) -> Result<Vec<String>, QueryError> {
    let mut atoms = Vec::new();
    let mut depth = 0usize;
    let mut current = String::new();
    for ch in body.chars() {
        match ch {
            '(' => {
                depth += 1;
                current.push(ch);
            }
            ')' => {
                if depth == 0 {
                    return Err(QueryError::Parse {
                        message: "unbalanced parentheses".into(),
                    });
                }
                depth -= 1;
                current.push(ch);
            }
            ',' if depth == 0 => {
                atoms.push(std::mem::take(&mut current));
            }
            _ => current.push(ch),
        }
    }
    if depth != 0 {
        return Err(QueryError::Parse {
            message: "unbalanced parentheses".into(),
        });
    }
    atoms.push(current);
    let atoms: Vec<String> = atoms
        .into_iter()
        .map(|a| a.trim().to_owned())
        .filter(|a| !a.is_empty())
        .collect();
    if atoms.is_empty() {
        return Err(QueryError::Parse {
            message: "empty rule body".into(),
        });
    }
    Ok(atoms)
}

/// Parses `Name(v1, v2, ...)` into the name and variable list.
fn parse_predicate(text: &str) -> Result<(String, Vec<String>), QueryError> {
    let text = text.trim();
    let open = text.find('(').ok_or_else(|| QueryError::Parse {
        message: format!("expected `(` in `{text}`"),
    })?;
    if !text.ends_with(')') {
        return Err(QueryError::Parse {
            message: format!("expected `)` at end of `{text}`"),
        });
    }
    let name = text[..open].trim();
    if name.is_empty() || !name.chars().all(|c| c.is_alphanumeric() || c == '_') {
        return Err(QueryError::Parse {
            message: format!("bad predicate name in `{text}`"),
        });
    }
    let inner = &text[open + 1..text.len() - 1];
    let vars: Vec<String> = inner.split(',').map(|v| v.trim().to_owned()).collect();
    if vars
        .iter()
        .any(|v| v.is_empty() || !v.chars().all(|c| c.is_alphanumeric() || c == '_'))
    {
        return Err(QueryError::Parse {
            message: format!("bad variable list in `{text}`"),
        });
    }
    Ok((name.to_owned(), vars))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_paper_format() {
        let q = parse_query("path4(x,y,z,w) = R(x,y),S(y,z),T(z,w).").unwrap();
        assert_eq!(q.name(), "path4");
        assert_eq!(q.num_vars(), 4);
        assert_eq!(q.atoms().len(), 3);
        assert_eq!(q.to_datalog(), "path4(x,y,z,w) = R(x,y),S(y,z),T(z,w)");
    }

    #[test]
    fn parses_datalog_separator_and_whitespace() {
        let q = parse_query("  cycle3( x, y ,z ) :- R(x,y) , S(y,z), T(z, x)  ").unwrap();
        assert_eq!(q.name(), "cycle3");
        assert_eq!(q.atoms()[2].relation(), "T");
        assert_eq!(q.atoms()[2].vars(), &[2, 0]);
    }

    #[test]
    fn round_trips_through_to_datalog() {
        let text = "clique4(x,y,z,w) = R(x,y),S(y,z),T(z,w),U(w,x),V(z,x),W(w,y)";
        let q = parse_query(text).unwrap();
        assert_eq!(q.to_datalog(), text);
        let q2 = parse_query(&q.to_datalog()).unwrap();
        assert_eq!(q, q2);
    }

    #[test]
    fn missing_separator_is_a_parse_error() {
        let err = parse_query("path3(x,y,z) R(x,y)").unwrap_err();
        assert!(matches!(err, QueryError::Parse { .. }));
    }

    #[test]
    fn unbalanced_parens_is_a_parse_error() {
        assert!(matches!(
            parse_query("q(x) = R(x").unwrap_err(),
            QueryError::Parse { .. }
        ));
        assert!(matches!(
            parse_query("q(x) = R)x(").unwrap_err(),
            QueryError::Parse { .. }
        ));
    }

    #[test]
    fn bad_names_are_parse_errors() {
        assert!(matches!(
            parse_query("q!(x) = R(x)").unwrap_err(),
            QueryError::Parse { .. }
        ));
        assert!(matches!(
            parse_query("q(x) = R(x y)").unwrap_err(),
            QueryError::Parse { .. }
        ));
    }

    #[test]
    fn semantic_validation_still_applies() {
        let err = parse_query("q(x) = R(x,y)").unwrap_err();
        assert_eq!(err, QueryError::HeadBodyMismatch);
    }
}
