//! The graph-pattern queries of paper Table 1, plus extensions.
//!
//! Every query joins copies of a single edge relation named `G` (the graph's
//! adjacency table): the paper writes distinct relation names `R,S,T,...`
//! but evaluates all of them over one graph, i.e. self-joins of the edge
//! table. We use the name `G` for every atom so a catalog needs just one
//! relation per dataset.

use crate::Query;

/// Identifier for the evaluation patterns used throughout the harness.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[non_exhaustive]
pub enum Pattern {
    /// `path3(x,y,z) = G(x,y),G(y,z)` — length-2 path.
    Path3,
    /// `path4(x,y,z,w) = G(x,y),G(y,z),G(z,w)` — length-3 path.
    Path4,
    /// `cycle3(x,y,z) = G(x,y),G(y,z),G(z,x)` — triangle.
    Cycle3,
    /// `cycle4(x,y,z,w) = G(x,y),G(y,z),G(z,w),G(w,x)` — 4-cycle.
    Cycle4,
    /// `clique4` — complete graph on four vertices (6 atoms).
    Clique4,
    /// `path5` (extension) — length-4 path.
    Path5,
    /// `cycle5` (extension) — 5-cycle.
    Cycle5,
    /// `star3` (extension) — one hub with three out-neighbours.
    Star3,
}

impl Pattern {
    /// The five patterns evaluated in the paper (Table 1), in paper order.
    pub const PAPER: [Pattern; 5] = [
        Pattern::Path3,
        Pattern::Path4,
        Pattern::Cycle3,
        Pattern::Cycle4,
        Pattern::Clique4,
    ];

    /// All built-in patterns, including extensions beyond the paper.
    pub const ALL: [Pattern; 8] = [
        Pattern::Path3,
        Pattern::Path4,
        Pattern::Cycle3,
        Pattern::Cycle4,
        Pattern::Clique4,
        Pattern::Path5,
        Pattern::Cycle5,
        Pattern::Star3,
    ];

    /// Short name as used in the paper's figures (e.g. `"Path4"`).
    pub fn label(self) -> &'static str {
        match self {
            Pattern::Path3 => "Path3",
            Pattern::Path4 => "Path4",
            Pattern::Cycle3 => "Cycle3",
            Pattern::Cycle4 => "Cycle4",
            Pattern::Clique4 => "Clique4",
            Pattern::Path5 => "Path5",
            Pattern::Cycle5 => "Cycle5",
            Pattern::Star3 => "Star3",
        }
    }

    /// Builds the query AST for this pattern.
    pub fn query(self) -> Query {
        match self {
            Pattern::Path3 => path3(),
            Pattern::Path4 => path4(),
            Pattern::Cycle3 => cycle3(),
            Pattern::Cycle4 => cycle4(),
            Pattern::Clique4 => clique4(),
            Pattern::Path5 => path5(),
            Pattern::Cycle5 => cycle5(),
            Pattern::Star3 => star3(),
        }
    }

    /// Parses a pattern from its label, case-insensitively.
    pub fn from_label(label: &str) -> Option<Pattern> {
        Pattern::ALL
            .into_iter()
            .find(|p| p.label().eq_ignore_ascii_case(label))
    }
}

impl std::fmt::Display for Pattern {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

fn must(q: Result<Query, crate::QueryError>) -> Query {
    q.expect("built-in patterns are valid queries")
}

/// `path3(x,y,z) = G(x,y),G(y,z)`.
pub fn path3() -> Query {
    must(
        Query::builder("path3")
            .head(["x", "y", "z"])
            .atom("G", ["x", "y"])
            .atom("G", ["y", "z"])
            .build(),
    )
}

/// `path4(x,y,z,w) = G(x,y),G(y,z),G(z,w)`.
pub fn path4() -> Query {
    must(
        Query::builder("path4")
            .head(["x", "y", "z", "w"])
            .atom("G", ["x", "y"])
            .atom("G", ["y", "z"])
            .atom("G", ["z", "w"])
            .build(),
    )
}

/// `cycle3(x,y,z) = G(x,y),G(y,z),G(z,x)` (triangles).
pub fn cycle3() -> Query {
    must(
        Query::builder("cycle3")
            .head(["x", "y", "z"])
            .atom("G", ["x", "y"])
            .atom("G", ["y", "z"])
            .atom("G", ["z", "x"])
            .build(),
    )
}

/// `cycle4(x,y,z,w) = G(x,y),G(y,z),G(z,w),G(w,x)`.
pub fn cycle4() -> Query {
    must(
        Query::builder("cycle4")
            .head(["x", "y", "z", "w"])
            .atom("G", ["x", "y"])
            .atom("G", ["y", "z"])
            .atom("G", ["z", "w"])
            .atom("G", ["w", "x"])
            .build(),
    )
}

/// `clique4(x,y,z,w) = G(x,y),G(y,z),G(z,w),G(w,x),G(z,x),G(w,y)`
/// (paper Table 1, with `V` and `W` also reading the edge table).
pub fn clique4() -> Query {
    must(
        Query::builder("clique4")
            .head(["x", "y", "z", "w"])
            .atom("G", ["x", "y"])
            .atom("G", ["y", "z"])
            .atom("G", ["z", "w"])
            .atom("G", ["w", "x"])
            .atom("G", ["z", "x"])
            .atom("G", ["w", "y"])
            .build(),
    )
}

/// Extension: `path5(x,y,z,w,v) = G(x,y),G(y,z),G(z,w),G(w,v)`.
pub fn path5() -> Query {
    must(
        Query::builder("path5")
            .head(["x", "y", "z", "w", "v"])
            .atom("G", ["x", "y"])
            .atom("G", ["y", "z"])
            .atom("G", ["z", "w"])
            .atom("G", ["w", "v"])
            .build(),
    )
}

/// Extension: `cycle5(x,y,z,w,v)` — 5-cycle.
pub fn cycle5() -> Query {
    must(
        Query::builder("cycle5")
            .head(["x", "y", "z", "w", "v"])
            .atom("G", ["x", "y"])
            .atom("G", ["y", "z"])
            .atom("G", ["z", "w"])
            .atom("G", ["w", "v"])
            .atom("G", ["v", "x"])
            .build(),
    )
}

/// Extension: `star3(x,a,b,c)` — a hub `x` with three distinct-variable
/// out-edges (out-star of size 3).
pub fn star3() -> Query {
    must(
        Query::builder("star3")
            .head(["x", "a", "b", "c"])
            .atom("G", ["x", "a"])
            .atom("G", ["x", "b"])
            .atom("G", ["x", "c"])
            .build(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CompiledQuery;

    #[test]
    fn paper_queries_match_table1_shapes() {
        assert_eq!(path3().to_datalog(), "path3(x,y,z) = G(x,y),G(y,z)");
        assert_eq!(path4().atoms().len(), 3);
        assert_eq!(cycle3().atoms().len(), 3);
        assert_eq!(cycle4().atoms().len(), 4);
        assert_eq!(clique4().atoms().len(), 6);
    }

    #[test]
    fn every_builtin_compiles() {
        for p in Pattern::ALL {
            let q = p.query();
            let plan = CompiledQuery::compile(&q).expect("pattern compiles");
            assert_eq!(plan.arity(), q.num_vars(), "{p}");
        }
    }

    #[test]
    fn labels_round_trip() {
        for p in Pattern::ALL {
            assert_eq!(Pattern::from_label(p.label()), Some(p));
            assert_eq!(Pattern::from_label(&p.label().to_lowercase()), Some(p));
        }
        assert_eq!(Pattern::from_label("nope"), None);
    }

    #[test]
    fn paper_set_is_the_first_five() {
        assert_eq!(Pattern::PAPER.len(), 5);
        assert_eq!(Pattern::PAPER[4], Pattern::Clique4);
    }
}
