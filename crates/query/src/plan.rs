use crate::{Query, QueryError, VarId};

/// Execution plan for one body atom: which trie to build (relation name plus
/// column permutation) and which global depth each trie level binds.
///
/// LeapFrog TrieJoin requires every atom's trie attribute order to be
/// consistent with the global variable order; `perm` reorders the stored
/// relation's columns accordingly (paper Figure 2 shows the same table
/// indexed as both `T(z,w)` and `T(w,z)`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AtomPlan {
    atom_index: usize,
    relation: String,
    perm: Vec<usize>,
    var_order: Vec<VarId>,
    depth_of_level: Vec<usize>,
}

impl AtomPlan {
    /// Index of the originating atom in [`Query::atoms`].
    pub fn atom_index(&self) -> usize {
        self.atom_index
    }

    /// Relation (table) name the trie is built from.
    pub fn relation(&self) -> &str {
        &self.relation
    }

    /// Column permutation: trie level `l` stores relation column `perm[l]`.
    pub fn perm(&self) -> &[usize] {
        &self.perm
    }

    /// Variable bound at each trie level.
    pub fn var_order(&self) -> &[VarId] {
        &self.var_order
    }

    /// Global evaluation depth of each trie level (strictly increasing).
    pub fn depth_of_level(&self) -> &[usize] {
        &self.depth_of_level
    }

    /// Arity of the atom's trie.
    pub fn arity(&self) -> usize {
        self.perm.len()
    }

    /// `true` if the trie has levels below `level` (its nodes have children
    /// to expand once `level` is matched).
    pub fn continues_below(&self, level: usize) -> bool {
        level + 1 < self.perm.len()
    }
}

/// One CTJ partial-join-result cache specification (paper §2.2.2).
///
/// At evaluation depth [`value_depth`](Self::value_depth), the set of
/// matching values depends only on the bindings at
/// [`key_depths`](Self::key_depths); CTJ therefore memoizes the match list
/// keyed by those bindings. A spec exists only when the key is a *strict*
/// subset of the bound prefix — otherwise every lookup key would be unique
/// and caching useless (cycle3, clique4).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CacheSpec {
    key_depths: Vec<usize>,
    value_depth: usize,
}

impl CacheSpec {
    /// Depths (positions in the variable order) whose bound values form the
    /// cache key, in ascending depth order.
    pub fn key_depths(&self) -> &[usize] {
        &self.key_depths
    }

    /// The depth whose match list is cached.
    pub fn value_depth(&self) -> usize {
        self.value_depth
    }
}

/// A compiled conjunctive query: the shared execution plan for every
/// software engine and for the TrieJax simulator.
///
/// # Example
///
/// ```
/// use triejax_query::{patterns, CompiledQuery};
///
/// let plan = CompiledQuery::compile(&patterns::path4())?;
/// assert_eq!(plan.arity(), 4);
/// // Two valid caches: z keyed by {y}, and w keyed by {z}.
/// assert_eq!(plan.cache_specs().len(), 2);
/// assert_eq!(plan.cache_specs()[0].key_depths(), &[1]);
/// assert_eq!(plan.cache_specs()[0].value_depth(), 2);
/// # Ok::<(), triejax_query::QueryError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompiledQuery {
    query: Query,
    order: Vec<VarId>,
    depth_of_var: Vec<usize>,
    atom_plans: Vec<AtomPlan>,
    atoms_at: Vec<Vec<(usize, usize)>>,
    cache_specs: Vec<CacheSpec>,
    cache_at_depth: Vec<Option<usize>>,
}

impl CompiledQuery {
    /// Compiles `query` using its head order as the variable order (the
    /// order used throughout the paper's evaluation).
    ///
    /// For a projected query (see
    /// [`crate::QueryBuilder::build_projected`]) the non-head variables
    /// are appended to the order after the head, so the plan itself is
    /// well-formed; engines that cannot emit projected results reject it
    /// at execution time.
    ///
    /// # Errors
    ///
    /// Propagates [`QueryError::BadVariableOrder`] (impossible from this
    /// entry point) — see [`CompiledQuery::compile_with_order`].
    pub fn compile(query: &Query) -> Result<CompiledQuery, QueryError> {
        let mut order = query.head().to_vec();
        for v in 0..query.num_vars() {
            if !order.contains(&v) {
                order.push(v);
            }
        }
        CompiledQuery::compile_with_order(query, order)
    }

    /// Compiles `query` with an explicit variable order.
    ///
    /// # Errors
    ///
    /// Returns [`QueryError::BadVariableOrder`] if `order` is not a
    /// permutation of the query variables.
    pub fn compile_with_order(
        query: &Query,
        order: Vec<VarId>,
    ) -> Result<CompiledQuery, QueryError> {
        let n = query.num_vars();
        if order.len() != n {
            return Err(QueryError::BadVariableOrder);
        }
        let mut depth_of_var = vec![usize::MAX; n];
        for (d, &v) in order.iter().enumerate() {
            if v >= n || depth_of_var[v] != usize::MAX {
                return Err(QueryError::BadVariableOrder);
            }
            depth_of_var[v] = d;
        }

        // Per-atom trie plans: sort each atom's columns by global depth.
        let mut atom_plans = Vec::with_capacity(query.atoms().len());
        for (ai, atom) in query.atoms().iter().enumerate() {
            let mut cols: Vec<usize> = (0..atom.arity()).collect();
            cols.sort_by_key(|&c| depth_of_var[atom.vars()[c]]);
            let var_order: Vec<VarId> = cols.iter().map(|&c| atom.vars()[c]).collect();
            let depth_of_level: Vec<usize> = var_order.iter().map(|&v| depth_of_var[v]).collect();
            atom_plans.push(AtomPlan {
                atom_index: ai,
                relation: atom.relation().to_owned(),
                perm: cols,
                var_order,
                depth_of_level,
            });
        }

        // Participation lists per depth.
        let mut atoms_at: Vec<Vec<(usize, usize)>> = vec![Vec::new(); n];
        for (pi, plan) in atom_plans.iter().enumerate() {
            for (level, &d) in plan.depth_of_level.iter().enumerate() {
                atoms_at[d].push((pi, level));
            }
        }

        // CTJ cache-spec derivation (paper §2.2.2): the key of depth d is
        // every earlier depth whose variable shares an atom with any
        // variable at depth >= d. A spec is valid iff the key is a strict
        // subset of the bound prefix.
        let mut cache_specs = Vec::new();
        let mut cache_at_depth: Vec<Option<usize>> = vec![None; n];
        for (d, slot) in cache_at_depth.iter_mut().enumerate().skip(1) {
            let mut in_key = vec![false; n];
            for atom in query.atoms() {
                let touches_suffix = atom.vars().iter().any(|&v| depth_of_var[v] >= d);
                if touches_suffix {
                    for &v in atom.vars() {
                        let dv = depth_of_var[v];
                        if dv < d {
                            in_key[dv] = true;
                        }
                    }
                }
            }
            let key_depths: Vec<usize> = (0..d).filter(|&dd| in_key[dd]).collect();
            if key_depths.len() < d {
                *slot = Some(cache_specs.len());
                cache_specs.push(CacheSpec {
                    key_depths,
                    value_depth: d,
                });
            }
        }

        Ok(CompiledQuery {
            query: query.clone(),
            order,
            depth_of_var,
            atom_plans,
            atoms_at,
            cache_specs,
            cache_at_depth,
        })
    }

    /// The source query.
    pub fn query(&self) -> &Query {
        &self.query
    }

    /// Number of join variables (evaluation depths).
    pub fn arity(&self) -> usize {
        self.order.len()
    }

    /// The variable bound at each depth.
    pub fn order(&self) -> &[VarId] {
        &self.order
    }

    /// Depth at which each variable is bound (inverse of [`order`](Self::order)).
    pub fn depth_of_var(&self) -> &[usize] {
        &self.depth_of_var
    }

    /// Per-atom trie plans, in atom order.
    pub fn atom_plans(&self) -> &[AtomPlan] {
        &self.atom_plans
    }

    /// `(atom_plan_index, trie_level)` pairs participating at `depth`.
    ///
    /// # Panics
    ///
    /// Panics if `depth >= self.arity()`.
    pub fn atoms_at(&self, depth: usize) -> &[(usize, usize)] {
        &self.atoms_at[depth]
    }

    /// All valid CTJ cache specifications, by ascending cached depth.
    pub fn cache_specs(&self) -> &[CacheSpec] {
        &self.cache_specs
    }

    /// The cache spec whose value is cached at `depth`, if any.
    ///
    /// # Panics
    ///
    /// Panics if `depth >= self.arity()`.
    pub fn cache_spec_at(&self, depth: usize) -> Option<&CacheSpec> {
        self.cache_at_depth[depth].map(|i| &self.cache_specs[i])
    }

    /// Upper-bound estimate of the root variable's domain size, given a
    /// way to look up relation cardinalities (typically
    /// `|name| catalog.get(name).map(Relation::len)`).
    ///
    /// Every depth-0 participant's root level holds at most as many
    /// distinct values as its relation holds tuples, so the minimum over
    /// the participants bounds the domain the parallel engines shard.
    /// Returns `None` when no participating relation's cardinality is
    /// known.
    pub fn root_domain_estimate<F>(&self, cardinality: F) -> Option<usize>
    where
        F: Fn(&str) -> Option<usize>,
    {
        self.depth_domain_estimate(0, cardinality)
    }

    /// Upper-bound estimate of the domain of the variable bound at
    /// `depth`: every participating trie level holds at most as many
    /// distinct values as its relation holds tuples, so the minimum over
    /// the participants bounds the domain. Returns `None` when no
    /// participating relation's cardinality is known.
    ///
    /// # Panics
    ///
    /// Panics if `depth >= self.arity()`.
    pub fn depth_domain_estimate<F>(&self, depth: usize, cardinality: F) -> Option<usize>
    where
        F: Fn(&str) -> Option<usize>,
    {
        self.atoms_at(depth)
            .iter()
            .filter_map(|&(a, _)| cardinality(self.atom_plans[a].relation()))
            .min()
    }

    /// Upper-bound estimate of the number of live partial-join-result
    /// cache entries this plan can create: for each [`CacheSpec`], the
    /// distinct key bindings are bounded by the product of the key
    /// depths' domain estimates; the per-spec bounds sum (saturating).
    ///
    /// This is the plan-side capacity hint for the shared sharded PJR
    /// cache of the parallel CTJ engine: an unbounded cache pre-sizes its
    /// stripe tables from it, and operators picking a `--cache-cap` can
    /// compare against it. Returns `None` when the plan has no cache
    /// specs or some participating cardinality is unknown — callers fall
    /// back to not pre-sizing.
    pub fn cache_entries_estimate<F>(&self, cardinality: F) -> Option<usize>
    where
        F: Fn(&str) -> Option<usize>,
    {
        if self.cache_specs.is_empty() {
            return None;
        }
        let mut total = 0usize;
        for spec in &self.cache_specs {
            let mut keys = 1usize;
            for &kd in spec.key_depths() {
                keys = keys.saturating_mul(self.depth_domain_estimate(kd, &cardinality)?);
            }
            total = total.saturating_add(keys);
        }
        Some(total)
    }

    /// Upper-bound estimate of the *reuse factor* of the cache spec at
    /// `depth`: how many distinct prefix visits could share one cache
    /// entry. The cached level is revisited once per binding of its
    /// prefix depths `0..depth`, but entries are keyed only by the
    /// spec's key depths, so per-entry reuse is bounded by the product
    /// of the *non-key* prefix depths' domain estimates. An estimate of
    /// 1 means every visit would build a fresh entry — caching there
    /// can only cost, and the adaptive CTJ policy drops the spec at
    /// plan time.
    ///
    /// Returns `None` when `depth` has no cache spec or some
    /// participating cardinality is unknown; callers fall back to
    /// keeping the spec.
    ///
    /// # Panics
    ///
    /// Panics if `depth >= self.arity()`.
    pub fn cache_reuse_estimate<F>(&self, depth: usize, cardinality: F) -> Option<usize>
    where
        F: Fn(&str) -> Option<usize>,
    {
        let spec = self.cache_spec_at(depth)?;
        let mut reuse = 1usize;
        for d in 0..depth {
            if spec.key_depths().contains(&d) {
                continue;
            }
            reuse = reuse.saturating_mul(self.depth_domain_estimate(d, &cardinality)?);
        }
        Some(reuse)
    }

    /// Suggested number of root-range shards for a parallel run over
    /// `workers` workers, given the (estimated or exact) root-domain size.
    ///
    /// The plan overshards by 4x so the work-stealing pool can rebalance a
    /// skewed root domain — a shard that turns out to carry the heavy
    /// hitters is one unit of work among many, not a worker's whole static
    /// partition (paper §3.4's dynamic spawn-on-match is the model).
    /// Clamped to the domain size; degenerate domains and single-worker
    /// pools get one shard (the sequential fast path).
    pub fn shard_granularity(&self, root_domain: usize, workers: usize) -> usize {
        const OVERSHARD: usize = 4;
        if workers <= 1 || root_domain <= 1 {
            return 1;
        }
        workers.saturating_mul(OVERSHARD).min(root_domain)
    }

    /// Suggested number of *initial* root-range shards when dynamic shard
    /// splitting is enabled: one per worker, clamped to the domain size.
    ///
    /// With splitting, oversharding up front is wasted planning — a shard
    /// that turns out to carry the heavy hitters carves off the unvisited
    /// tail of its range at run time the moment a worker goes idle — so
    /// the initial cut only needs to hand every worker a starting range.
    /// Compare [`shard_granularity`](Self::shard_granularity), the 4x
    /// oversharding used when skew can only be absorbed by stealing
    /// statically planned shards.
    pub fn initial_shard_granularity(&self, root_domain: usize, workers: usize) -> usize {
        if workers <= 1 || root_domain <= 1 {
            return 1;
        }
        workers.min(root_domain)
    }

    /// Human-readable plan summary (variable order plus cache specs).
    pub fn describe(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let names: Vec<&str> = self.order.iter().map(|&v| self.query.var_name(v)).collect();
        let _ = write!(s, "order: {}", names.join(" -> "));
        for spec in &self.cache_specs {
            let keys: Vec<&str> = spec
                .key_depths
                .iter()
                .map(|&d| self.query.var_name(self.order[d]))
                .collect();
            let _ = write!(
                s,
                "; cache {} keyed by {{{}}}",
                self.query.var_name(self.order[spec.value_depth]),
                keys.join(",")
            );
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::patterns;

    #[test]
    fn path3_cache_is_z_keyed_by_y() {
        let plan = CompiledQuery::compile(&patterns::path3()).unwrap();
        assert_eq!(plan.cache_specs().len(), 1);
        let spec = &plan.cache_specs()[0];
        assert_eq!(spec.key_depths(), &[1]);
        assert_eq!(spec.value_depth(), 2);
        assert_eq!(plan.cache_spec_at(2), Some(spec));
        assert_eq!(plan.cache_spec_at(1), None);
    }

    #[test]
    fn path4_caches_z_by_y_and_w_by_z() {
        let plan = CompiledQuery::compile(&patterns::path4()).unwrap();
        let specs = plan.cache_specs();
        assert_eq!(specs.len(), 2);
        assert_eq!(specs[0].key_depths(), &[1]);
        assert_eq!(specs[0].value_depth(), 2);
        assert_eq!(specs[1].key_depths(), &[2]);
        assert_eq!(specs[1].value_depth(), 3);
    }

    #[test]
    fn cycle3_and_clique4_have_no_valid_cache() {
        // Matches the paper's §4.4: "for Cycle3 and Clique4 queries there
        // are no valid intermediate result caches".
        for q in [patterns::cycle3(), patterns::clique4()] {
            let plan = CompiledQuery::compile(&q).unwrap();
            assert!(plan.cache_specs().is_empty(), "{}", q.name());
        }
    }

    #[test]
    fn cycle4_caches_w_keyed_by_x_and_z() {
        let plan = CompiledQuery::compile(&patterns::cycle4()).unwrap();
        let specs = plan.cache_specs();
        assert_eq!(specs.len(), 1);
        assert_eq!(specs[0].key_depths(), &[0, 2]);
        assert_eq!(specs[0].value_depth(), 3);
    }

    #[test]
    fn atom_plans_reorder_columns_to_match_global_order() {
        let plan = CompiledQuery::compile(&patterns::cycle3()).unwrap();
        // Third atom is G(z,x): global order x(0) < z(2), so the trie must
        // store column 1 (x) first: perm = [1, 0].
        let t = &plan.atom_plans()[2];
        assert_eq!(t.perm(), &[1, 0]);
        assert_eq!(t.depth_of_level(), &[0, 2]);
        assert!(t.continues_below(0));
        assert!(!t.continues_below(1));
    }

    #[test]
    fn atoms_at_lists_participants_per_depth() {
        let plan = CompiledQuery::compile(&patterns::cycle3()).unwrap();
        // Depth 0 (x): G(x,y) level 0 and G(z,x) reindexed as (x,z) level 0.
        assert_eq!(plan.atoms_at(0), &[(0, 0), (2, 0)]);
        // Depth 1 (y): G(x,y) level 1 and G(y,z) level 0.
        assert_eq!(plan.atoms_at(1), &[(0, 1), (1, 0)]);
        assert_eq!(plan.atoms_at(2), &[(1, 1), (2, 1)]);
    }

    #[test]
    fn every_depth_has_at_least_one_participant() {
        for p in patterns::Pattern::ALL {
            let plan = CompiledQuery::compile(&p.query()).unwrap();
            for d in 0..plan.arity() {
                assert!(!plan.atoms_at(d).is_empty(), "{p} depth {d}");
            }
        }
    }

    #[test]
    fn custom_order_is_validated() {
        let q = patterns::path3();
        assert!(CompiledQuery::compile_with_order(&q, vec![0, 1]).is_err());
        assert!(CompiledQuery::compile_with_order(&q, vec![0, 1, 1]).is_err());
        assert!(CompiledQuery::compile_with_order(&q, vec![0, 1, 5]).is_err());
        let plan = CompiledQuery::compile_with_order(&q, vec![2, 1, 0]).unwrap();
        assert_eq!(plan.order(), &[2, 1, 0]);
        assert_eq!(plan.depth_of_var(), &[2, 1, 0]);
    }

    #[test]
    fn reverse_order_changes_cache_structure() {
        // path3 evaluated z -> y -> x caches x keyed by {y}.
        let plan = CompiledQuery::compile_with_order(&patterns::path3(), vec![2, 1, 0]).unwrap();
        assert_eq!(plan.cache_specs().len(), 1);
        assert_eq!(plan.cache_specs()[0].value_depth(), 2);
        assert_eq!(plan.cache_specs()[0].key_depths(), &[1]);
    }

    #[test]
    fn describe_mentions_order_and_caches() {
        let plan = CompiledQuery::compile(&patterns::path3()).unwrap();
        let d = plan.describe();
        assert!(d.contains("x -> y -> z"));
        assert!(d.contains("cache z keyed by {y}"));
    }

    #[test]
    fn projected_query_compiles_with_non_head_vars_appended() {
        use crate::Query;
        let q = Query::builder("pairs")
            .head(["x", "z"])
            .atom("G", ["x", "y"])
            .atom("G", ["y", "z"])
            .build_projected()
            .unwrap();
        assert!(q.is_projection());
        let plan = CompiledQuery::compile(&q).unwrap();
        // Order is head (x, z) then the projected-away y.
        assert_eq!(plan.arity(), 3);
        assert_eq!(plan.order().len(), 3);
        assert_eq!(&plan.order()[..2], q.head());
    }

    #[test]
    fn root_domain_estimate_takes_the_smallest_participant() {
        use std::collections::HashMap;
        let plan = CompiledQuery::compile(&patterns::path3()).unwrap();
        // Every atom scans G; estimate = |G|.
        let cards = HashMap::from([("G".to_string(), 42usize)]);
        let est = plan.root_domain_estimate(|n| cards.get(n).copied());
        assert_eq!(est, Some(42));
        assert_eq!(plan.root_domain_estimate(|_| None), None);

        // Two-relation query: only depth-0 participants count.
        let q = crate::Query::builder("two")
            .head(["x", "y", "z"])
            .atom("R", ["x", "y"])
            .atom("S", ["y", "z"])
            .build()
            .unwrap();
        let plan = CompiledQuery::compile(&q).unwrap();
        let cards = HashMap::from([("R".to_string(), 10usize), ("S".to_string(), 3usize)]);
        // Depth 0 binds x: only R participates, so S's smaller cardinality
        // must not leak into the estimate.
        assert_eq!(
            plan.root_domain_estimate(|n| cards.get(n).copied()),
            Some(10)
        );
    }

    #[test]
    fn cache_entries_estimate_bounds_distinct_keys() {
        use std::collections::HashMap;
        let cards = HashMap::from([("G".to_string(), 42usize)]);
        let card = |n: &str| cards.get(n).copied();

        // path3: one spec keyed by {y}; y's domain is bounded by |G|.
        let plan = CompiledQuery::compile(&patterns::path3()).unwrap();
        assert_eq!(plan.depth_domain_estimate(1, card), Some(42));
        assert_eq!(plan.cache_entries_estimate(card), Some(42));

        // path4: two single-key specs sum.
        let plan = CompiledQuery::compile(&patterns::path4()).unwrap();
        assert_eq!(plan.cache_entries_estimate(card), Some(84));

        // cycle4: one spec keyed by {x, z} — the key domains multiply.
        let plan = CompiledQuery::compile(&patterns::cycle4()).unwrap();
        assert_eq!(plan.cache_entries_estimate(card), Some(42 * 42));

        // No valid specs (cycle3) or unknown cardinalities: no hint.
        let plan = CompiledQuery::compile(&patterns::cycle3()).unwrap();
        assert_eq!(plan.cache_entries_estimate(card), None);
        let plan = CompiledQuery::compile(&patterns::path3()).unwrap();
        assert_eq!(plan.cache_entries_estimate(|_| None), None);

        // Huge cardinalities saturate instead of overflowing.
        let plan = CompiledQuery::compile(&patterns::cycle4()).unwrap();
        assert_eq!(
            plan.cache_entries_estimate(|_| Some(usize::MAX / 2)),
            Some(usize::MAX)
        );
    }

    #[test]
    fn cache_reuse_estimate_multiplies_the_non_key_prefix() {
        use std::collections::HashMap;
        let cards = HashMap::from([("G".to_string(), 42usize)]);
        let card = |n: &str| cards.get(n).copied();

        // path3: the spec at depth 2 is keyed by {y} (depth 1), so reuse
        // comes from revisits across x — the one non-key prefix depth.
        let plan = CompiledQuery::compile(&patterns::path3()).unwrap();
        assert_eq!(plan.cache_reuse_estimate(2, card), Some(42));
        assert_eq!(plan.cache_reuse_estimate(1, card), None, "no spec there");
        assert_eq!(plan.cache_reuse_estimate(2, |_| None), None);

        // cycle4: keyed by {x, z}; only depth 1 (y) is non-key prefix.
        let plan = CompiledQuery::compile(&patterns::cycle4()).unwrap();
        assert_eq!(plan.cache_reuse_estimate(3, card), Some(42));

        // A domain of 1 on every non-key prefix depth means each entry is
        // built exactly once: the adaptive planner's drop threshold.
        let plan = CompiledQuery::compile(&patterns::path3()).unwrap();
        assert_eq!(plan.cache_reuse_estimate(2, |_| Some(1)), Some(1));

        // Huge cardinalities saturate instead of overflowing.
        let plan = CompiledQuery::compile(&patterns::cycle4()).unwrap();
        assert_eq!(
            plan.cache_reuse_estimate(3, |_| Some(usize::MAX / 2)),
            Some(usize::MAX / 2)
        );
    }

    #[test]
    fn shard_granularity_overshards_and_clamps() {
        let plan = CompiledQuery::compile(&patterns::cycle3()).unwrap();
        assert_eq!(plan.shard_granularity(1000, 4), 16, "4x oversharding");
        assert_eq!(plan.shard_granularity(10, 4), 10, "clamped to the domain");
        assert_eq!(plan.shard_granularity(1000, 1), 1, "one worker: sequential");
        assert_eq!(plan.shard_granularity(0, 8), 1);
        assert_eq!(plan.shard_granularity(1, 8), 1);
    }

    #[test]
    fn star3_caches_every_leaf_by_hub() {
        // star3(x,a,b,c): each of b and c depends only on x once bound.
        let plan = CompiledQuery::compile(&patterns::star3()).unwrap();
        assert!(!plan.cache_specs().is_empty());
        for spec in plan.cache_specs() {
            assert_eq!(spec.key_depths(), &[0], "keys must be the hub depth");
        }
    }
}
