//! Property tests for the query crate: parser round-trips on arbitrary
//! generated queries, and structural invariants of compiled plans.

use proptest::prelude::*;
use triejax_query::{agm, parse_query, CompiledQuery, Query};

/// Strategy: random full-join queries over binary atoms with 2..=5
/// variables named v0..v4 and 1..=6 atoms.
fn arb_query() -> impl Strategy<Value = Query> {
    (2usize..=5).prop_flat_map(|nvars| {
        let atom = (0..nvars, 0..nvars).prop_filter("no repeated var in atom", |(a, b)| a != b);
        prop::collection::vec(atom, 1..=6).prop_filter_map("head must cover body", move |atoms| {
            let names: Vec<String> = (0..nvars).map(|i| format!("v{i}")).collect();
            // Ensure every variable appears in some atom by extending
            // with a chain over missing ones.
            let mut used: Vec<bool> = vec![false; nvars];
            for &(a, b) in &atoms {
                used[a] = true;
                used[b] = true;
            }
            let mut atoms = atoms;
            for (v, _) in used.iter().enumerate().filter(|(_, u)| !**u) {
                atoms.push((v, (v + 1) % nvars));
            }
            let mut builder = Query::builder("q").head(names.clone());
            for (a, b) in atoms {
                builder = builder.atom("G", [names[a].clone(), names[b].clone()]);
            }
            builder.build().ok()
        })
    })
}

proptest! {
    /// Rendering to datalog and re-parsing yields the same query.
    #[test]
    fn parser_round_trips(q in arb_query()) {
        let text = q.to_datalog();
        let back = parse_query(&text).expect("rendered queries parse");
        prop_assert_eq!(q, back);
    }

    /// Compiled plans cover every depth with at least one atom, and every
    /// atom level appears at exactly one depth.
    #[test]
    fn plans_cover_all_depths(q in arb_query()) {
        let plan = CompiledQuery::compile(&q).expect("compiles");
        let mut level_count = 0usize;
        for d in 0..plan.arity() {
            prop_assert!(!plan.atoms_at(d).is_empty());
            level_count += plan.atoms_at(d).len();
        }
        let total_levels: usize = plan.atom_plans().iter().map(|a| a.arity()).sum();
        prop_assert_eq!(level_count, total_levels);
        // Depths within each atom are strictly increasing.
        for ap in plan.atom_plans() {
            prop_assert!(ap.depth_of_level().windows(2).all(|w| w[0] < w[1]));
        }
    }

    /// Cache keys are strict subsets of the bound prefix, sorted, and the
    /// cached depth is beyond every key depth.
    #[test]
    fn cache_specs_are_well_formed(q in arb_query()) {
        let plan = CompiledQuery::compile(&q).expect("compiles");
        for spec in plan.cache_specs() {
            let d = spec.value_depth();
            prop_assert!(d >= 1);
            prop_assert!(spec.key_depths().len() < d, "strict subset");
            prop_assert!(spec.key_depths().windows(2).all(|w| w[0] < w[1]));
            prop_assert!(spec.key_depths().iter().all(|&k| k < d));
        }
    }

    /// The fractional edge cover is at least 1 (something must cover) and
    /// at most the atom count (integral cover of weight one each).
    #[test]
    fn edge_cover_is_bounded(q in arb_query()) {
        let rho = agm::fractional_edge_cover(&q).expect("binary atoms");
        prop_assert!(rho >= 1.0);
        prop_assert!(rho <= q.atoms().len() as f64);
        // Half-integrality: 2*rho is an integer.
        prop_assert!((rho * 2.0).fract() == 0.0);
    }
}
